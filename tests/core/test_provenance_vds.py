"""Tests for provenance and the VirtualDataSystem facade."""

from __future__ import annotations

import pytest

from repro.core import VirtualDataSystem
from repro.core.errors import ExecutionError
from repro.core.provenance import InvocationRecord, ProvenanceStore
from repro.pegasus.options import PlannerOptions


def record(job_id, outputs, inputs=(), success=True):
    return InvocationRecord(
        job_id=job_id,
        transformation="t",
        site="isi",
        start_time=0.0,
        end_time=1.0,
        inputs=tuple(inputs),
        outputs=tuple(outputs),
        success=success,
    )


class TestProvenanceStore:
    def test_producer_lookup(self):
        store = ProvenanceStore()
        store.record(record("j1", ["a"]))
        assert store.producer("a").job_id == "j1"
        assert store.producer("zz") is None

    def test_failed_invocations_not_indexed(self):
        store = ProvenanceStore()
        store.record(record("j1", ["a"], success=False))
        assert store.producer("a") is None
        assert len(store) == 1

    def test_lineage_walks_chain(self):
        store = ProvenanceStore()
        store.record(record("j1", ["b"], inputs=["a"]))
        store.record(record("j2", ["c"], inputs=["b"]))
        chain = store.lineage("c")
        assert [r.job_id for r in chain] == ["j2", "j1"]

    def test_lineage_stops_at_raw_data(self):
        store = ProvenanceStore()
        store.record(record("j1", ["b"], inputs=["raw"]))
        assert [r.job_id for r in store.lineage("b")] == ["j1"]
        assert store.lineage("raw") == []

    def test_duration(self):
        assert record("j", ["x"]).duration == 1.0


def build_vds() -> VirtualDataSystem:
    vds = VirtualDataSystem(
        planner_options=PlannerOptions(
            output_site="store", site_selection="round-robin", replica_selection="first"
        )
    )
    vds.add_storage_site("store")
    vds.define(
        "TR upper( in x, out y ) { }\n"
        'DV d->upper( x=@{in:"raw.txt"}, y=@{out:"result.txt"} );'
    )
    vds.registry.register(
        "upper", lambda job, inputs: {job.outputs[0]: next(iter(inputs.values())).upper()}
    )
    vds.tc.install("upper", "uwisc", "/bin/upper")
    return vds


class TestVirtualDataSystem:
    def test_pools_get_storage_sites(self):
        vds = VirtualDataSystem()
        assert set(vds.sites) >= {"isi", "uwisc", "fnal"}
        assert set(vds.rls.sites()) >= {"isi", "uwisc", "fnal"}

    def test_duplicate_storage_site(self):
        vds = VirtualDataSystem()
        with pytest.raises(ValueError):
            vds.add_storage_site("isi")

    def test_publish_retrieve(self):
        vds = build_vds()
        pfn = vds.publish("raw.txt", b"abc", "store")
        assert pfn.endswith("/data/raw.txt")
        assert vds.retrieve("raw.txt") == b"abc"

    def test_retrieve_missing(self):
        vds = build_vds()
        with pytest.raises(ExecutionError):
            vds.retrieve("ghost")

    def test_materialize_local(self):
        vds = build_vds()
        vds.publish("raw.txt", b"abc", "store")
        plan, report = vds.materialize(["result.txt"])
        assert report.succeeded
        assert vds.retrieve("result.txt") == b"ABC"
        # provenance knows how the result was made
        assert vds.provenance.producer("result.txt").transformation == "upper"

    def test_second_request_reuses(self):
        vds = build_vds()
        vds.publish("raw.txt", b"abc", "store")
        vds.materialize(["result.txt"])
        plan2 = vds.plan(["result.txt"])
        assert plan2.reduction.fully_satisfied

    def test_simulate_mode(self):
        vds = build_vds()
        vds.publish("raw.txt", b"abc", "store")
        plan = vds.plan(["result.txt"])
        report = vds.execute(plan, mode="simulate")
        assert report.succeeded
        assert report.makespan > 0

    def test_unknown_mode(self):
        vds = build_vds()
        vds.publish("raw.txt", b"abc", "store")
        plan = vds.plan(["result.txt"])
        with pytest.raises(ValueError):
            vds.execute(plan, mode="quantum")

    def test_size_estimator_feeds_transfer_sizes(self):
        vds = build_vds()
        vds.publish("raw.txt", b"abcdef", "store")
        plan = vds.plan(["result.txt"])
        stage_ins = plan.concrete.transfer_nodes()
        sizes = {t.lfn: t.size_bytes for t in stage_ins}
        assert sizes.get("raw.txt") == 6
