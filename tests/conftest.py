"""Shared fixtures: a small cluster, a tiny wired grid, hypothesis config."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

from repro.catalog.coords import SkyPosition
from repro.sky.cluster import ClusterModel

# A single profile tuned for CI-ish determinism: no deadline (image work can
# be slow on shared machines), modest example counts.
settings.register_profile(
    "repro",
    deadline=None,
    max_examples=50,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture()
def small_cluster() -> ClusterModel:
    """A 24-member cluster: big enough for statistics, fast to render."""
    return ClusterModel(
        name="TEST01",
        center=SkyPosition(150.0, 2.2),
        redshift=0.05,
        n_galaxies=24,
        core_radius_deg=0.04,
        tidal_radius_deg=0.4,
        seed=42,
        context_image_count=9,
    )


@pytest.fixture()
def tiny_cluster() -> ClusterModel:
    """An 8-member cluster for fast end-to-end runs."""
    return ClusterModel(
        name="TEST02",
        center=SkyPosition(30.0, -10.0),
        redshift=0.03,
        n_galaxies=8,
        core_radius_deg=0.03,
        tidal_radius_deg=0.3,
        seed=7,
        context_image_count=5,
    )
