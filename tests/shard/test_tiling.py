"""The sky quad-tree: stable ids, exact coverage, deterministic routing."""

from __future__ import annotations

import math

import pytest

from repro.shard.tiling import (
    DEFAULT_LEVEL,
    ROOT,
    SkyTile,
    children,
    parent,
    position_for_cluster,
    tile_for,
    tile_for_cluster,
    tiles_at_level,
)
from repro.sky.registry_data import DEMONSTRATION_CLUSTERS


def _grid(n_ra: int = 24, n_dec: int = 13) -> list[tuple[float, float]]:
    return [
        (360.0 * i / n_ra, -90.0 + 180.0 * j / (n_dec - 1))
        for i in range(n_ra)
        for j in range(n_dec)
    ]


class TestTileIds:
    def test_root_identity(self):
        assert ROOT.tile_id == "t0:root"
        assert tile_for(123.4, -45.6, level=0) == ROOT

    def test_id_encodes_level_and_path(self):
        tile = tile_for(200.0, 30.0, level=3)
        assert tile.tile_id == f"t3:{tile.path}"
        assert len(tile.path) == 3
        assert set(tile.path) <= set("0123")

    def test_ids_are_stable_across_processes_by_construction(self):
        # Pure function of position: recomputation always agrees.
        for ra, dec in _grid():
            assert tile_for(ra, dec).tile_id == tile_for(ra, dec).tile_id

    def test_deepening_refines_without_renaming(self):
        # A level-L path is a prefix of the same point's level-(L+1) path:
        # ancestors keep their identity when the tiling deepens.
        for ra, dec in _grid():
            for level in range(3):
                shallow = tile_for(ra, dec, level)
                deep = tile_for(ra, dec, level + 1)
                assert deep.path.startswith(shallow.path)

    def test_ra_wraps_dec_validates(self):
        assert tile_for(365.0, 10.0) == tile_for(5.0, 10.0)
        assert tile_for(-10.0, 10.0) == tile_for(350.0, 10.0)
        with pytest.raises(ValueError):
            tile_for(10.0, 91.0)
        with pytest.raises(ValueError):
            tile_for(10.0, 0.0, level=-1)


class TestCoverage:
    def test_level_has_4_to_the_L_distinct_tiles(self):
        for level in (0, 1, 2, DEFAULT_LEVEL):
            tiles = tiles_at_level(level)
            assert len(tiles) == 4**level
            assert len({t.tile_id for t in tiles}) == 4**level

    def test_every_point_in_exactly_one_tile(self):
        tiles = tiles_at_level(2)
        for ra, dec in _grid():
            holding = [t for t in tiles if t.contains(ra, dec)]
            assert len(holding) == 1
            assert holding[0] == tile_for(ra, dec, 2)

    def test_poles_and_seams_belong_somewhere(self):
        tiles = tiles_at_level(DEFAULT_LEVEL)
        for ra, dec in [(0.0, 90.0), (0.0, -90.0), (359.999, 0.0), (180.0, 0.0)]:
            assert sum(t.contains(ra, dec) for t in tiles) == 1

    def test_tile_contains_its_center(self):
        for tile in tiles_at_level(DEFAULT_LEVEL):
            ra, dec = tile.center
            assert tile.contains(ra, dec)
            assert tile_for(ra, dec, tile.level) == tile


class TestTreeStructure:
    def test_children_partition_the_parent(self):
        tile = tile_for(200.0, 30.0, level=2)
        kids = children(tile)
        assert len(kids) == 4
        for kid in kids:
            assert kid.level == tile.level + 1
            assert kid.path.startswith(tile.path)
            assert parent(kid) == tile
        # the four children tile the parent's bounds exactly
        assert min(k.ra_min for k in kids) == tile.ra_min
        assert max(k.ra_max for k in kids) == tile.ra_max
        assert min(k.dec_min for k in kids) == tile.dec_min
        assert max(k.dec_max for k in kids) == tile.dec_max

    def test_root_is_its_own_parent(self):
        assert parent(ROOT) == ROOT


class TestClusterRouting:
    def test_demonstration_clusters_route_by_registry_coordinates(self):
        for cluster in DEMONSTRATION_CLUSTERS:
            expected = tile_for(cluster.center.ra, cluster.center.dec)
            assert tile_for_cluster(cluster.name) == expected

    def test_unknown_names_get_deterministic_pseudo_positions(self):
        ra1, dec1 = position_for_cluster("SYNTH-XYZ")
        ra2, dec2 = position_for_cluster("SYNTH-XYZ")
        assert (ra1, dec1) == (ra2, dec2)
        assert 0.0 <= ra1 < 360.0
        assert -90.0 <= dec1 <= 90.0
        # distinct names land in distinct places (overwhelmingly)
        assert position_for_cluster("SYNTH-ABC") != (ra1, dec1)

    def test_pseudo_positions_are_roughly_uniform_on_the_sphere(self):
        # asin correction: the |dec| > 60 deg caps hold ~13.4% of the sphere's
        # area; a naive uniform-dec draw would put ~33% of names there.
        names = [f"LOAD-{i:04d}" for i in range(400)]
        decs = [position_for_cluster(n)[1] for n in names]
        polar = sum(1 for d in decs if abs(d) > 60.0) / len(decs)
        expected = 1.0 - math.sin(math.radians(60.0))  # ~0.134
        assert polar < 2.5 * expected

    def test_every_cluster_routes_to_exactly_one_tile(self):
        tiles = {t.tile_id: t for t in tiles_at_level(DEFAULT_LEVEL)}
        for name in ["A3526", "SYNTH-1", "B99", "x"]:
            tile = tile_for_cluster(name)
            assert tile.tile_id in tiles
            ra, dec = position_for_cluster(name)
            assert tiles[tile.tile_id].contains(ra % 360.0, dec)


class TestSkyTileValue:
    def test_frozen_and_hashable(self):
        tile = tile_for(10.0, 10.0)
        assert isinstance(tile, SkyTile)
        assert tile in {tile}
        with pytest.raises(AttributeError):
            tile.tile_id = "t0:other"  # type: ignore[misc]
