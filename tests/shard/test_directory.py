"""The shared signature directory and the shard-side cache ladder."""

from __future__ import annotations

from repro.rls.rls import ReplicaLocationService
from repro.rls.site import StorageSite
from repro.scheduler.cache import RlsResultCache
from repro.shard.directory import FleetResultCache, SignatureStore

PAYLOAD = b"<VOTABLE>merged</VOTABLE>"


def _local_cache(name: str = "s0-cache") -> RlsResultCache:
    return RlsResultCache(ReplicaLocationService(), StorageSite(name), name)


class TestSignatureStore:
    def test_roundtrip_with_owner(self, tmp_path):
        store = SignatureStore(tmp_path / "sigstore")
        lfn = store.store("sig-abc123", PAYLOAD, shard="s1")
        assert lfn == "sig-abc123.vot"
        assert store.lookup("sig-abc123") == PAYLOAD
        assert store.owner("sig-abc123") == "s1"
        assert "sig-abc123" in store
        assert store.signatures() == ["sig-abc123"]
        assert len(store) == 1

    def test_missing_entries_answer_none(self, tmp_path):
        store = SignatureStore(tmp_path / "sigstore")
        assert store.lookup("sig-nope") is None
        assert store.owner("sig-nope") is None
        assert "sig-nope" not in store

    def test_last_writer_wins_and_stays_consistent(self, tmp_path):
        store = SignatureStore(tmp_path / "sigstore")
        store.store("sig-abc", b"first", shard="s0")
        store.store("sig-abc", b"second", shard="s3")
        assert store.lookup("sig-abc") == b"second"
        assert store.owner("sig-abc") == "s3"
        assert len(store) == 1

    def test_atomic_writes_leave_no_temp_litter(self, tmp_path):
        root = tmp_path / "sigstore"
        store = SignatureStore(root)
        for i in range(16):
            store.store(f"sig-{i:04d}", PAYLOAD, shard="s0")
        assert not list(root.glob(".tmp-*"))
        assert len(store) == 16

    def test_two_store_objects_share_one_directory(self, tmp_path):
        # the cross-shard property: independent processes see each other's
        # entries through nothing but the filesystem
        a = SignatureStore(tmp_path / "sigstore")
        b = SignatureStore(tmp_path / "sigstore")
        a.store("sig-x", PAYLOAD, shard="s0")
        assert b.lookup("sig-x") == PAYLOAD
        assert b.owner("sig-x") == "s0"


class TestFleetResultCache:
    def test_store_publishes_to_both_tiers(self, tmp_path):
        store = SignatureStore(tmp_path / "sigstore")
        local = _local_cache()
        cache = FleetResultCache(store, "s0", local=local)
        cache.store("sig-abc", PAYLOAD)
        assert store.lookup("sig-abc") == PAYLOAD
        assert store.owner("sig-abc") == "s0"
        assert local.lookup("sig-abc") == PAYLOAD

    def test_local_hit_never_touches_the_shared_tier(self, tmp_path):
        cache = FleetResultCache(
            SignatureStore(tmp_path / "sigstore"), "s0", local=_local_cache()
        )
        cache.store("sig-abc", PAYLOAD)
        assert cache.lookup("sig-abc") == PAYLOAD
        assert cache.shared_hits == 0
        assert cache.cross_shard_hits == 0

    def test_cross_shard_hit_counted_when_owner_differs(self, tmp_path):
        store = SignatureStore(tmp_path / "sigstore")
        store.store("sig-abc", PAYLOAD, shard="s1")  # someone else derived it
        cache = FleetResultCache(store, "s0", local=_local_cache())
        assert cache.lookup("sig-abc") == PAYLOAD
        assert cache.shared_hits == 1
        assert cache.cross_shard_hits == 1
        # pulled through: the second hit answers locally
        assert cache.lookup("sig-abc") == PAYLOAD
        assert cache.shared_hits == 1

    def test_own_shared_entry_is_not_a_cross_shard_hit(self, tmp_path):
        store = SignatureStore(tmp_path / "sigstore")
        store.store("sig-abc", PAYLOAD, shard="s0")
        cache = FleetResultCache(store, "s0", local=None)
        assert cache.lookup("sig-abc") == PAYLOAD
        assert cache.shared_hits == 1
        assert cache.cross_shard_hits == 0

    def test_miss_everywhere_returns_none(self, tmp_path):
        cache = FleetResultCache(
            SignatureStore(tmp_path / "sigstore"), "s0", local=_local_cache()
        )
        assert cache.lookup("sig-nope") is None

    def test_lfn_matches_store_naming(self, tmp_path):
        assert FleetResultCache.lfn_for("sig-abc") == "sig-abc.vot"
