"""The sharded serving stack: ready line, HTTP aggregation, shard columns."""

from __future__ import annotations

import asyncio
import json
import re

from repro.serve.harness import build_fleet_serving_stack, ready_line
from repro.serve.loadgen import http_request
from repro.serve.top import render_dashboard

from tests.serve.conftest import build_tiny_stack

READY_RE = re.compile(
    r"^repro-serve-ready port=(\d+) url=(\S+)(?: shards=(\d+))?$"
)


class TestReadyLine:
    def test_single_manager_stack_omits_shards(self):
        async def scenario():
            async with build_tiny_stack(port=0) as stack:
                return ready_line(stack), stack.server.port

        line, port = asyncio.run(scenario())
        match = READY_RE.match(line)
        assert match, line
        assert int(match.group(1)) == port and port != 0
        assert match.group(3) is None

    def test_fleet_stack_reports_shard_count(self, tmp_path):
        async def scenario():
            async with build_fleet_serving_stack(
                str(tmp_path / "fleet"), shards=2, port=0,
                base_seconds=0.001, spread_seconds=0.0,
            ) as stack:
                return ready_line(stack), stack.server.port

        line, port = asyncio.run(scenario())
        match = READY_RE.match(line)
        assert match, line
        assert int(match.group(1)) == port
        assert match.group(3) == "2"


class TestFleetHttpSurface:
    def test_health_queue_metrics_aggregate_the_fleet(self, tmp_path):
        async def scenario():
            async with build_fleet_serving_stack(
                str(tmp_path / "fleet"), shards=2, port=0,
                base_seconds=0.001, spread_seconds=0.0,
            ) as stack:
                host, port = stack.server.host, stack.server.port
                status, _, body = await http_request(
                    host, port, "POST", "/jobs",
                    headers=[("X-Tenant", "alice"), ("Content-Type", "application/json")],
                    body=json.dumps({"cluster": "A3526"}).encode(),
                )
                assert status == 202
                job = json.loads(body)
                while True:
                    _, _, poll = await http_request(host, port, "GET", f"/jobs/{job['job_id']}")
                    if json.loads(poll)["terminal"]:
                        break
                    await asyncio.sleep(0.01)
                _, _, health = await http_request(host, port, "GET", "/health")
                _, _, queue = await http_request(host, port, "GET", "/queue")
                _, _, metrics = await http_request(host, port, "GET", "/metrics")
                return job, json.loads(health), json.loads(queue), metrics.decode()

        job, health, queue, metrics = asyncio.run(scenario())
        assert job["shard"] in {"s0", "s1"}
        assert job["job_id"].startswith(f"{job['shard']}-job-")

        fleet = health["shards"]
        assert fleet["alive"] == 2 and fleet["dead"] == []
        assert set(fleet["shards"]) == {"s0", "s1"}
        assert health["status"] == "ok"

        assert queue["sharded"] is True
        assert set(queue["shards"]) == {"s0", "s1"}
        assert any(j["shard"] == job["shard"] for j in queue["jobs"])
        assert metrics  # exposition renders even with telemetry off


class TestDashboardShardRow:
    HEALTH = {
        "queued": 1,
        "running": 2,
        "inflight": 3,
        "status": "degraded",
        "shards": {
            "alive": 1,
            "dead": ["s1"],
            "relocated_jobs": 3,
            "shards": {
                "s0": {"alive": True, "queued": 4, "running": 1},
                "s1": {"alive": False},
            },
        },
    }

    def test_renders_live_dead_and_relocations(self):
        frame = render_dashboard({}, {}, self.HEALTH)
        line = next(l for l in frame.splitlines() if l.startswith("shards"))
        assert "s0 q4/r1" in line
        assert "s1 DEAD" in line
        assert "relocated 3" in line

    def test_unsharded_health_has_no_shard_row(self):
        frame = render_dashboard({}, {}, {"queued": 0})
        assert not any(l.startswith("shards") for l in frame.splitlines())
