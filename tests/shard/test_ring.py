"""Consistent-hash ring: the ISSUE's quantitative balance + remap gates."""

from __future__ import annotations

import pytest

from repro.shard.ring import ConsistentHashRing
from repro.shard.tiling import DEFAULT_LEVEL, tiles_at_level

TILE_IDS = [t.tile_id for t in tiles_at_level(DEFAULT_LEVEL)]  # 64 tiles


def _placement(ring: ConsistentHashRing) -> dict[str, str]:
    return {tile: ring.node_for(tile) for tile in TILE_IDS}


class TestBalance:
    def test_canonical_64_tiles_4_shards_skew_under_1_5(self):
        # The acceptance gate: max/mean tile-count skew < 1.5x.
        ring = ConsistentHashRing([f"s{i}" for i in range(4)])
        assert ring.skew(TILE_IDS) < 1.5

    @pytest.mark.parametrize("shards", [2, 3, 4, 8])
    def test_no_shard_starves(self, shards):
        ring = ConsistentHashRing([f"s{i}" for i in range(shards)])
        counts = {n: len(ks) for n, ks in ring.assignments(TILE_IDS).items()}
        assert len(counts) == shards
        assert all(count > 0 for count in counts.values())
        assert sum(counts.values()) == len(TILE_IDS)

    def test_skew_of_trivial_inputs_is_one(self):
        assert ConsistentHashRing(["s0"]).skew(TILE_IDS) == 1.0
        assert ConsistentHashRing(["s0", "s1"]).skew([]) == 1.0


class TestBoundedRemapping:
    def test_join_moves_less_than_2_over_n(self):
        ring = ConsistentHashRing([f"s{i}" for i in range(4)])
        before = _placement(ring)
        ring.add_node("s4")
        after = _placement(ring)
        moved = [t for t in TILE_IDS if before[t] != after[t]]
        # ideal movement on join is 1/N of keys (N = new size); gate at 2/N
        assert len(moved) / len(TILE_IDS) < 2.0 / len(ring)
        # every moved tile moved *to* the joiner, never between survivors
        assert all(after[t] == "s4" for t in moved)

    def test_leave_moves_less_than_2_over_n(self):
        names = [f"s{i}" for i in range(4)]
        ring = ConsistentHashRing(names)
        before = _placement(ring)
        ring.remove_node("s2")
        after = _placement(ring)
        moved = [t for t in TILE_IDS if before[t] != after[t]]
        assert len(moved) / len(TILE_IDS) < 2.0 / len(names)
        # exactly the departed shard's tiles moved, nothing else
        assert set(moved) == {t for t in TILE_IDS if before[t] == "s2"}

    def test_rejoin_restores_the_exact_placement(self):
        ring = ConsistentHashRing([f"s{i}" for i in range(4)])
        before = _placement(ring)
        ring.remove_node("s1")
        ring.add_node("s1")
        assert _placement(ring) == before

    def test_placement_is_deterministic_across_ring_instances(self):
        a = ConsistentHashRing(["s0", "s1", "s2"])
        b = ConsistentHashRing(["s2", "s0", "s1"])  # insertion order irrelevant
        assert _placement(a) == _placement(b)


class TestMembership:
    def test_duplicate_and_empty_names_rejected(self):
        ring = ConsistentHashRing(["s0"])
        with pytest.raises(ValueError):
            ring.add_node("s0")
        with pytest.raises(ValueError):
            ring.add_node("")
        with pytest.raises(ValueError):
            ConsistentHashRing(replicas=0)

    def test_remove_unknown_raises(self):
        with pytest.raises(KeyError):
            ConsistentHashRing(["s0"]).remove_node("ghost")

    def test_empty_ring_cannot_place(self):
        with pytest.raises(LookupError):
            ConsistentHashRing().node_for("t3:000")

    def test_len_contains_nodes(self):
        ring = ConsistentHashRing(["s1", "s0"])
        assert len(ring) == 2
        assert "s0" in ring and "s1" in ring and "s2" not in ring
        assert ring.nodes() == ["s0", "s1"]

    def test_assignments_lists_every_node_even_when_empty(self):
        ring = ConsistentHashRing(["s0", "s1"])
        placed = ring.assignments(["t3:000"])
        assert set(placed) == {"s0", "s1"}
        assert sum(len(v) for v in placed.values()) == 1
