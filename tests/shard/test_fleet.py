"""The multi-process fleet: routing, byte-identity, crash rebalance.

These tests spawn real worker processes (multiprocessing ``spawn``), so
they are the closest thing to the chaos campaign that still runs inside
the tier-1 suite — kept small (2-4 shards, synthetic runner, millisecond
jobs) so the whole module stays in single-digit seconds.
"""

from __future__ import annotations

import pytest

from repro.scheduler.job import JobSpec, JobState, derivation_signature
from repro.serve.harness import SyntheticJobRunner
from repro.shard.fleet import ShardFleet, iter_shard_assignments
from repro.shard.ring import ConsistentHashRing

CLUSTERS = [f"FT{i:02d}" for i in range(8)]


def _expected_bytes(cluster: str, options: dict | None = None) -> bytes:
    spec = JobSpec.create("anyone", cluster, options)
    return SyntheticJobRunner(0.0, 0.0).run(spec, None).result_bytes


def _fleet(tmp_path, shards: int = 2, **kwargs) -> ShardFleet:
    kwargs.setdefault("base_seconds", 0.001)
    kwargs.setdefault("spread_seconds", 0.002)
    return ShardFleet(tmp_path / "fleet", shards=shards, **kwargs)


class TestRoutingAndIdentity:
    def test_submissions_route_by_tile_and_complete_byte_identical(self, tmp_path):
        with _fleet(tmp_path) as fleet:
            records = [fleet.submit("alice", c) for c in CLUSTERS]
            for record in records:
                tile_id, shard = fleet.placement(record.spec.cluster)
                assert record.job_id.startswith(f"{shard}-job-")
                assert record.shard == shard
                assert record.extra["tile"] == tile_id
            for record in records:
                done = fleet.wait(record.job_id, timeout=30.0)
                assert done.state is JobState.COMPLETED
                assert fleet.result_bytes(record.job_id) == _expected_bytes(
                    record.spec.cluster
                )
            assert fleet.queue_depth() == 0
        assert fleet.leaked_processes() == []

    def test_matches_the_shard_map(self, tmp_path):
        with _fleet(tmp_path, shards=4) as fleet:
            assignments = iter_shard_assignments(
                CLUSTERS, ConsistentHashRing(fleet.shard_names())
            )
            for shard, placed in assignments.items():
                for cluster, tile_id in placed:
                    assert fleet.placement(cluster) == (tile_id, shard)

    def test_jobs_and_snapshot_span_every_shard(self, tmp_path):
        with _fleet(tmp_path) as fleet:
            for cluster in CLUSTERS:
                fleet.submit("alice", cluster)
            fleet.drain(timeout=30.0)
            listed = fleet.jobs()
            assert len(listed) == len(CLUSTERS)
            assert {r.spec.cluster for r in listed} == set(CLUSTERS)
            snap = fleet.snapshot()
            assert snap["sharded"] is True
            assert len(snap["jobs"]) == len(CLUSTERS)
            assert set(snap["shards"]) == set(fleet.shard_names())
            assert {j["shard"] for j in snap["jobs"]} <= set(snap["shards"])

    def test_unknown_job_raises(self, tmp_path):
        from repro.core.errors import UnknownJobError

        with _fleet(tmp_path) as fleet:
            with pytest.raises(UnknownJobError):
                fleet.job("s0-job-999999-ffffff")
            with pytest.raises(UnknownJobError):
                fleet.job("not-even-an-id")


class TestFairShareAndHealth:
    def test_global_usage_spans_shards(self, tmp_path):
        with _fleet(tmp_path) as fleet:
            for i, cluster in enumerate(CLUSTERS):
                fleet.submit("alice" if i % 2 else "bob", cluster)
            fleet.drain(timeout=30.0)
            usage = fleet.fair_share_usage()
            assert usage.get("alice", 0.0) > 0.0
            assert usage.get("bob", 0.0) > 0.0
            debts = fleet.fair_share_debts()
            assert set(debts) == {"alice", "bob"}

    def test_shard_health_reports_every_worker(self, tmp_path):
        with _fleet(tmp_path) as fleet:
            health = fleet.shard_health()
            assert health["alive"] == 2
            assert health["dead"] == []
            for name in fleet.shard_names():
                assert health["shards"][name]["alive"] is True
                assert health["shards"][name]["pid"] > 0


class TestCrashRebalance:
    def test_sigkill_mid_flight_rebalances_byte_identical(self, tmp_path):
        with _fleet(
            tmp_path, shards=4, base_seconds=0.05, spread_seconds=0.05, max_workers=1
        ) as fleet:
            records = [fleet.submit("alice", c) for c in CLUSTERS]
            by_shard: dict[str, int] = {}
            for record in records:
                by_shard[record.shard] = by_shard.get(record.shard, 0) + 1
            victim = max(sorted(by_shard), key=lambda s: by_shard[s])
            fleet.kill_worker(victim)

            assert victim not in fleet.shard_names()
            assert victim not in fleet.ring
            # every original id still answers, via aliases where relocated
            for record in records:
                done = fleet.wait(record.job_id, timeout=60.0)
                assert done.state is JobState.COMPLETED
                assert fleet.result_bytes(record.job_id) == _expected_bytes(
                    record.spec.cluster
                )
            health = fleet.shard_health()
            assert health["dead"] == [victim]
            assert health["alive"] == 3

            # the union replay is stable: crash recovery left a replayable story
            first = fleet.global_fingerprint()
            second = fleet.global_fingerprint()
            assert first == second and first
        assert fleet.leaked_processes() == []

    def test_merged_journals_stay_disjoint_after_rebalance(self, tmp_path):
        with _fleet(
            tmp_path, shards=3, base_seconds=0.02, spread_seconds=0.02, max_workers=1
        ) as fleet:
            records = [fleet.submit("alice", c) for c in CLUSTERS]
            victim = records[0].shard
            fleet.kill_worker(victim)
            for record in records:
                fleet.wait(record.job_id, timeout=60.0)
            merged = fleet.merged_journal_state()  # raises on duplicate ids
            # merged view holds the dead shard's story plus the relocations
            assert len(merged.jobs) >= len(CLUSTERS)
        assert fleet.leaked_processes() == []


class TestCrossShardReuse:
    def test_foreign_store_entry_short_circuits_compute(self, tmp_path):
        content = _expected_bytes("FT00", {"pass": 2})
        signature = derivation_signature(JobSpec.create("alice", "FT00", {"pass": 2}))
        fleet = _fleet(tmp_path)
        # some earlier topology's shard already materialised the product
        fleet.store.store(signature, content, shard="retired-shard")
        with fleet:
            record = fleet.submit("bob", "FT00", options={"pass": 2})
            done = fleet.wait(record.job_id, timeout=30.0)
            assert done.state is JobState.COMPLETED
            assert done.cache_hit is True
            assert fleet.result_bytes(record.job_id) == content
            assert fleet.cross_shard_hits() == 1
        assert fleet.leaked_processes() == []

    def test_results_survive_their_shard_through_the_store(self, tmp_path):
        with _fleet(
            tmp_path, shards=2, base_seconds=0.01, spread_seconds=0.0
        ) as fleet:
            record = fleet.submit("alice", "FT03")
            done = fleet.wait(record.job_id, timeout=30.0)
            owner = done.shard
            fleet.kill_worker(owner)
            # terminal job archived; bytes still answerable via the store
            assert fleet.result_bytes(record.job_id) == _expected_bytes("FT03")
            assert fleet.job(record.job_id).state is JobState.COMPLETED
        assert fleet.leaked_processes() == []
