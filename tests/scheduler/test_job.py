"""Tests for the job model and the derivation signature."""

from __future__ import annotations

import pytest

from repro.scheduler.job import (
    JobRecord,
    JobSpec,
    JobState,
    TERMINAL_STATES,
    derivation_signature,
)


class TestJobSpec:
    def test_create_normalises_options(self):
        a = JobSpec.create("alice", "A3526", {"b": 2, "a": 1})
        b = JobSpec.create("alice", "A3526", {"a": 1, "b": 2})
        assert a == b
        assert a.options == (("a", 1), ("b", 2))
        assert a.options_dict() == {"a": 1, "b": 2}

    def test_requires_user_and_cluster(self):
        with pytest.raises(ValueError):
            JobSpec.create("", "A3526")
        with pytest.raises(ValueError):
            JobSpec.create("alice", "")


class TestDerivationSignature:
    def test_deterministic(self):
        spec = JobSpec.create("alice", "A3526", {"bins": 5})
        assert derivation_signature(spec) == derivation_signature(spec)

    def test_user_and_priority_do_not_participate(self):
        # Cross-tenant reuse is the point: only the derived product matters.
        a = JobSpec.create("alice", "A3526", {"bins": 5}, priority=9)
        b = JobSpec.create("bob", "A3526", {"bins": 5}, priority=0)
        assert derivation_signature(a) == derivation_signature(b)

    def test_cluster_options_and_version_do(self):
        base = JobSpec.create("alice", "A3526", {"bins": 5})
        assert derivation_signature(base) != derivation_signature(
            JobSpec.create("alice", "MS0451", {"bins": 5})
        )
        assert derivation_signature(base) != derivation_signature(
            JobSpec.create("alice", "A3526", {"bins": 6})
        )
        assert derivation_signature(base) != derivation_signature(
            base, code_version="v-next"
        )

    def test_shape(self):
        sig = derivation_signature(JobSpec.create("u", "c"))
        assert sig.startswith("sig-") and len(sig) == 20


class TestJobRecord:
    def record(self) -> JobRecord:
        spec = JobSpec.create("alice", "A3526", {"bins": 5}, priority=2)
        return JobRecord(
            job_id="job-000001-abcdef",
            spec=spec,
            signature=derivation_signature(spec),
            seq=1,
            submitted_at=10.0,
        )

    def test_round_trips_through_record_dict(self):
        record = self.record()
        clone = JobRecord.from_record(record.as_record())
        assert clone.spec == record.spec
        assert clone.signature == record.signature
        assert clone.seq == record.seq
        assert clone.state is JobState.QUEUED

    def test_timing_properties(self):
        record = self.record()
        assert record.wait_seconds is None and record.run_seconds is None
        record.started_at = 12.0
        record.finished_at = 15.5
        assert record.wait_seconds == pytest.approx(2.0)
        assert record.run_seconds == pytest.approx(3.5)

    def test_wait_never_negative_across_clock_domains(self):
        # Replayed journals carry another process's monotonic timestamps.
        record = self.record()
        record.submitted_at = 1e9
        record.started_at = 5.0
        assert record.wait_seconds == 0.0

    def test_terminal_states(self):
        record = self.record()
        assert not record.terminal
        for state in TERMINAL_STATES:
            record.state = state
            assert record.terminal
        record.state = JobState.RUNNING
        assert not record.terminal
