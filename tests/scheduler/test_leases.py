"""Tests for pool-slot leases."""

from __future__ import annotations

import threading

import pytest

from repro.core.errors import SchedulerError
from repro.scheduler.leases import SlotLeaseManager


class TestSlotLeaseManager:
    def test_accounting(self):
        leases = SlotLeaseManager(8)
        a = leases.acquire("alice", 3)
        assert leases.in_use() == 3 and leases.available() == 5
        assert leases.held_by("alice") == 3
        leases.release(a)
        assert leases.in_use() == 0 and leases.held_by("alice") == 0

    def test_global_bound(self):
        leases = SlotLeaseManager(4)
        leases.acquire("alice", 2)
        leases.acquire("bob", 2)
        assert leases.try_acquire("carol", 1) is None

    def test_per_user_cap(self):
        leases = SlotLeaseManager(10, per_user_cap=4)
        leases.acquire("alice", 4)
        # alice is at her cap; the pool still has room for others.
        assert leases.try_acquire("alice", 1) is None
        assert leases.try_acquire("bob", 4) is not None

    def test_can_acquire_matches_try_acquire(self):
        leases = SlotLeaseManager(2)
        assert leases.can_acquire("alice", 2)
        leases.acquire("alice", 2)
        assert not leases.can_acquire("bob", 1)

    def test_impossible_requests_rejected(self):
        leases = SlotLeaseManager(4, per_user_cap=2)
        with pytest.raises(SchedulerError):
            leases.try_acquire("alice", 0)
        with pytest.raises(SchedulerError):
            leases.try_acquire("alice", 5)  # larger than the pool
        with pytest.raises(SchedulerError):
            leases.try_acquire("alice", 3)  # larger than the cap

    def test_double_release_rejected(self):
        leases = SlotLeaseManager(2)
        lease = leases.acquire("alice", 1)
        leases.release(lease)
        with pytest.raises(SchedulerError):
            leases.release(lease)

    def test_acquire_timeout(self):
        leases = SlotLeaseManager(1)
        leases.acquire("alice", 1)
        with pytest.raises(SchedulerError):
            leases.acquire("bob", 1, timeout=0.01)

    def test_blocking_acquire_wakes_on_release(self):
        leases = SlotLeaseManager(1)
        first = leases.acquire("alice", 1)
        acquired = threading.Event()

        def waiter() -> None:
            lease = leases.acquire("bob", 1, timeout=5.0)
            acquired.set()
            leases.release(lease)

        thread = threading.Thread(target=waiter)
        thread.start()
        leases.release(first)
        thread.join(timeout=5.0)
        assert acquired.is_set()

    def test_validation(self):
        with pytest.raises(ValueError):
            SlotLeaseManager(0)
        with pytest.raises(ValueError):
            SlotLeaseManager(4, per_user_cap=0)
