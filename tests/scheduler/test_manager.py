"""Tests for the workload manager over a stub runner.

Everything here avoids the real portal: the runner is a fake whose cost
model we control, so queue mechanics (fair share, leases, dedup, rescue,
journal replay, admission) are exercised quickly and deterministically.
"""

from __future__ import annotations

import statistics
import threading
import time

import pytest

from repro.core.errors import (
    QueueFullError,
    QuotaExceededError,
    SchedulerError,
    UnknownJobError,
)
from repro.rls.rls import ReplicaLocationService
from repro.rls.site import StorageSite
from repro.scheduler import (
    AdmissionPolicy,
    JobFailure,
    JobJournal,
    JobOutcome,
    JobState,
    RlsResultCache,
    WorkloadManager,
)


class StubRunner:
    """Deterministic job bodies: configurable sleep, scripted failures."""

    def __init__(self, delay: float = 0.0) -> None:
        self.delay = delay
        self.calls: list[tuple[str, set[str] | None]] = []
        self.fail_next: list[JobFailure] = []
        self._lock = threading.Lock()

    def run(self, spec, resume_from):
        with self._lock:
            self.calls.append((spec.cluster, set(resume_from) if resume_from else None))
            failure = self.fail_next.pop(0) if self.fail_next else None
        if self.delay:
            time.sleep(self.delay)
        if failure is not None:
            raise failure
        return JobOutcome(result_bytes=f"votable:{spec.cluster}".encode(), galaxies=8)


def fresh_cache() -> RlsResultCache:
    site = StorageSite("cache-site")
    return RlsResultCache(ReplicaLocationService(), site, "cache-site")


class TestSubmitAndRun:
    def test_jobs_complete_with_results(self):
        runner = StubRunner()
        with WorkloadManager(runner, total_slots=8, slots_per_job=2) as mgr:
            a = mgr.submit("alice", "A3526")
            b = mgr.submit("bob", "MS0451")
            assert mgr.wait(a.job_id, timeout=10).state is JobState.COMPLETED
            assert mgr.wait(b.job_id, timeout=10).state is JobState.COMPLETED
            assert mgr.result_bytes(a.job_id) == b"votable:A3526"
            assert mgr.result_bytes(b.job_id) == b"votable:MS0451"
        assert len(runner.calls) == 2

    def test_submit_without_start_spools(self):
        mgr = WorkloadManager(StubRunner())
        mgr.submit("alice", "A3526")
        assert mgr.queue_depth() == 1  # nothing dispatches until start()

    def test_runnerless_manager_cannot_start(self):
        mgr = WorkloadManager(None)
        with pytest.raises(SchedulerError):
            mgr.start()

    def test_unknown_job_id(self):
        mgr = WorkloadManager(StubRunner())
        with pytest.raises(UnknownJobError):
            mgr.job("job-999999-nope")

    def test_cancel_queued_job(self):
        mgr = WorkloadManager(StubRunner())
        record = mgr.submit("alice", "A3526")
        assert mgr.cancel(record.job_id)
        assert mgr.job(record.job_id).state is JobState.CANCELLED
        assert not mgr.cancel(record.job_id)  # already terminal
        assert mgr.queue_depth() == 0

    def test_failed_job_records_error(self):
        runner = StubRunner()
        runner.fail_next.append(JobFailure("grid melted", rescue_nodes=frozenset({"n1"})))
        with WorkloadManager(runner) as mgr:
            record = mgr.submit("alice", "A3526")
            done = mgr.wait(record.job_id, timeout=10)
            assert done.state is JobState.FAILED
            assert "grid melted" in done.error
            with pytest.raises(SchedulerError):
                mgr.result_bytes(record.job_id)


class TestAdmission:
    def test_queue_backpressure(self):
        mgr = WorkloadManager(
            StubRunner(), admission=AdmissionPolicy(max_queue_depth=2)
        )
        mgr.submit("alice", "A")
        mgr.submit("bob", "B")
        with pytest.raises(QueueFullError):
            mgr.submit("carol", "C")

    def test_per_user_quota(self):
        mgr = WorkloadManager(
            StubRunner(), admission=AdmissionPolicy(max_active_per_user=2)
        )
        mgr.submit("alice", "A")
        mgr.submit("alice", "B")
        with pytest.raises(QuotaExceededError):
            mgr.submit("alice", "C")
        mgr.submit("bob", "D")  # other tenants unaffected

    def test_rejected_submission_not_journaled(self):
        journal = JobJournal(None)
        mgr = WorkloadManager(
            StubRunner(),
            admission=AdmissionPolicy(max_queue_depth=1),
            journal=journal,
        )
        mgr.submit("alice", "A")
        with pytest.raises(QueueFullError):
            mgr.submit("bob", "B")
        assert len(journal.events()) == 1


class TestResultCache:
    def test_identical_resubmission_is_cache_hit(self):
        runner = StubRunner()
        with WorkloadManager(runner, cache=fresh_cache()) as mgr:
            first = mgr.submit("alice", "A3526", {"bins": 5})
            mgr.wait(first.job_id, timeout=10)
            second = mgr.submit("bob", "A3526", {"bins": 5})  # other tenant!
            done = mgr.wait(second.job_id, timeout=10)
        assert done.cache_hit
        assert len(runner.calls) == 1  # zero compute for the resubmission
        assert mgr.result_bytes(second.job_id) == mgr.result_bytes(first.job_id)
        assert done.result_lfn == first.result_lfn

    def test_different_options_miss(self):
        runner = StubRunner()
        with WorkloadManager(runner, cache=fresh_cache()) as mgr:
            a = mgr.submit("alice", "A3526", {"bins": 5})
            mgr.wait(a.job_id, timeout=10)
            b = mgr.submit("alice", "A3526", {"bins": 6})
            assert not mgr.wait(b.job_id, timeout=10).cache_hit
        assert len(runner.calls) == 2

    def test_inflight_duplicate_held_back_and_answered_from_cache(self):
        runner = StubRunner(delay=0.1)
        with WorkloadManager(runner, cache=fresh_cache(), max_workers=4) as mgr:
            a = mgr.submit("alice", "A3526")
            b = mgr.submit("bob", "A3526")  # identical derivation, in flight
            mgr.wait(a.job_id, timeout=10)
            done = mgr.wait(b.job_id, timeout=10)
        assert len(runner.calls) == 1
        assert done.cache_hit

    def test_cache_survives_manager_restart(self):
        cache = fresh_cache()
        runner = StubRunner()
        with WorkloadManager(runner, cache=cache) as mgr:
            record = mgr.submit("alice", "A3526")
            mgr.wait(record.job_id, timeout=10)
        # A fresh manager over the same RLS answers without compute.
        with WorkloadManager(StubRunner(), cache=cache) as mgr2:
            again = mgr2.submit("bob", "A3526")
            assert mgr2.wait(again.job_id, timeout=10).cache_hit


class TestRescueState:
    def test_failure_banks_rescue_nodes_for_resubmission(self):
        runner = StubRunner()
        runner.fail_next.append(
            JobFailure("node died", rescue_nodes=frozenset({"job-dv-a", "job-dv-b"}))
        )
        with WorkloadManager(runner) as mgr:
            first = mgr.submit("alice", "A3526")
            assert mgr.wait(first.job_id, timeout=10).state is JobState.FAILED
            assert mgr.rescue_state(first.signature) == {"job-dv-a", "job-dv-b"}
            second = mgr.submit("alice", "A3526")
            done = mgr.wait(second.job_id, timeout=10)
        assert done.state is JobState.COMPLETED
        # The resubmission received the rescue nodes as its resume set.
        assert runner.calls[1][1] == {"job-dv-a", "job-dv-b"}
        # Success clears the banked state.
        assert mgr.rescue_state(first.signature) == set()

    def test_repeated_failures_accumulate_nodes(self):
        runner = StubRunner()
        runner.fail_next.append(JobFailure("x", rescue_nodes=frozenset({"a"})))
        runner.fail_next.append(JobFailure("y", rescue_nodes=frozenset({"a", "b"})))
        with WorkloadManager(runner) as mgr:
            first = mgr.submit("alice", "A3526")
            mgr.wait(first.job_id, timeout=10)
            second = mgr.submit("alice", "A3526")
            mgr.wait(second.job_id, timeout=10)
            assert mgr.rescue_state(first.signature) == {"a", "b"}


class TestJournalRecovery:
    def test_replay_restores_queue_exactly(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        mgr = WorkloadManager(StubRunner(), journal=JobJournal(path))
        for user, cluster in [("alice", "A"), ("bob", "B"), ("alice", "C")]:
            mgr.submit(user, cluster)
        before = mgr.journal.replay().fingerprint()

        # "Crash": a brand-new manager over the same journal file.
        mgr2 = WorkloadManager(StubRunner(), journal=JobJournal(path))
        assert mgr2.journal.replay().fingerprint() == before
        assert mgr2.queue_depth() == 3
        with mgr2:
            mgr2.drain(timeout=10)
        assert all(r.state is JobState.COMPLETED for r in mgr2.jobs())

    def test_no_lost_or_duplicated_jobs_after_mid_queue_crash(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        runner = StubRunner()
        with WorkloadManager(runner, journal=JobJournal(path)) as mgr:
            first = mgr.submit("alice", "A")
            mgr.wait(first.job_id, timeout=10)
            mgr.submit("bob", "B")  # queued at "crash" time
            mgr.submit("carol", "C")
            # Simulated kill: stop dispatching before B/C run.
            # (stop() lets running jobs finish; B/C may or may not have
            # started — drain whatever did.)
        mgr2 = WorkloadManager(StubRunner(), journal=JobJournal(path))
        states = {r.job_id: r.state for r in mgr2.jobs()}
        assert len(states) == 3  # nothing lost, nothing duplicated
        assert states[first.job_id] is JobState.COMPLETED  # finished work kept

    def test_usage_survives_restart(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        runner = StubRunner(delay=0.02)
        with WorkloadManager(runner, journal=JobJournal(path)) as mgr:
            record = mgr.submit("alice", "A")
            mgr.wait(record.job_id, timeout=10)
        mgr2 = WorkloadManager(StubRunner(), journal=JobJournal(path))
        assert mgr2.scheduler.usage("alice") > 0.0

    def test_rescue_survives_restart(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        runner = StubRunner()
        runner.fail_next.append(JobFailure("boom", rescue_nodes=frozenset({"n1"})))
        with WorkloadManager(runner, journal=JobJournal(path)) as mgr:
            record = mgr.submit("alice", "A")
            mgr.wait(record.job_id, timeout=10)
        mgr2 = WorkloadManager(StubRunner(), journal=JobJournal(path))
        assert mgr2.rescue_state(record.signature) == {"n1"}


class TestFairShareUnderSaturation:
    def test_bursty_tenant_does_not_starve_others(self):
        """One tenant floods the queue; everyone's median wait stays within
        2x the global median (the ISSUE acceptance bound)."""
        runner = StubRunner(delay=0.03)
        with WorkloadManager(
            runner,
            total_slots=4,
            slots_per_job=4,  # one job at a time: fully saturated
            max_workers=1,
            admission=AdmissionPolicy(max_queue_depth=64, max_active_per_user=32),
        ) as mgr:
            records = []
            # the burst lands first...
            for i in range(12):
                records.append(mgr.submit("burst", f"B{i}"))
            # ...then three light tenants, one job each
            for user in ("light1", "light2", "light3"):
                records.append(mgr.submit(user, f"C-{user}"))
            mgr.drain(timeout=60)

        waits: dict[str, list[float]] = {}
        for record in mgr.jobs():
            assert record.state is JobState.COMPLETED
            assert record.wait_seconds is not None
            waits.setdefault(record.spec.user, []).append(record.wait_seconds)
        global_median = statistics.median(
            w for per_user in waits.values() for w in per_user
        )
        for user, user_waits in waits.items():
            assert statistics.median(user_waits) <= 2.0 * global_median + 0.05, (
                f"{user} starved: median {statistics.median(user_waits):.3f}s "
                f"vs global {global_median:.3f}s"
            )

    def test_usage_charged_by_slot_seconds(self):
        runner = StubRunner(delay=0.02)
        with WorkloadManager(runner, total_slots=8, slots_per_job=4) as mgr:
            record = mgr.submit("alice", "A")
            mgr.wait(record.job_id, timeout=10)
            run = mgr.job(record.job_id).run_seconds
            assert run is not None
            assert mgr.scheduler.usage("alice") == pytest.approx(run * 4, rel=0.01)

    def test_per_tenant_slot_cap_defaults_to_half_pool(self):
        mgr = WorkloadManager(StubRunner(), total_slots=48, slots_per_job=4)
        assert mgr.leases.per_user_cap == 24
