"""Tests for the scheduler CLI verbs and the campaign exit code."""

from __future__ import annotations

import pytest

from repro import cli
from repro.catalog.coords import SkyPosition
from repro.cli import main
from repro.portal.demo import build_demo_environment
from repro.sky.cluster import ClusterModel


def tiny(name: str, n: int = 6, ra: float = 25.0) -> ClusterModel:
    return ClusterModel(
        name=name,
        center=SkyPosition(ra, 3.0),
        redshift=0.04,
        n_galaxies=n,
        seed=13,
        context_image_count=5,
    )


class TestSubmitAndQueueVerbs:
    def test_submit_then_queue(self, tmp_path, capsys):
        journal = str(tmp_path / "journal.jsonl")
        assert main(["submit", "alice", "A3526", "--journal", journal]) == 0
        assert main(
            ["submit", "bob", "MS0451", "--journal", journal, "-o", "bins=5",
             "--priority", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "queued job-000000-" in out and "queued job-000001-" in out
        assert "priority=3" in out

        assert main(["queue", "--journal", journal]) == 0
        out = capsys.readouterr().out
        assert "alice" in out and "bob" in out
        assert "queued=2" in out

    def test_queue_empty(self, tmp_path, capsys):
        assert main(["queue", "--journal", str(tmp_path / "missing.jsonl")]) == 0
        assert "queue is empty" in capsys.readouterr().out

    def test_submit_rejects_malformed_option(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["submit", "alice", "A3526", "--journal",
                  str(tmp_path / "j.jsonl"), "-o", "oops"])

    def test_option_values_are_typed(self):
        assert cli._parse_options(["a=1", "b=2.5", "c=true", "d=x"]) == {
            "a": 1, "b": 2.5, "c": True, "d": "x",
        }


class TestServeVerb:
    def test_spool_then_serve_then_queue(self, tmp_path, capsys, monkeypatch):
        clusters = [tiny("CLI-A", ra=20.0), tiny("CLI-B", n=7, ra=70.0)]
        monkeypatch.setattr(
            cli,
            "_env",
            lambda *a, **k: build_demo_environment(
                clusters=clusters, seed_virtual_data_reuse=False
            ),
        )
        journal = str(tmp_path / "journal.jsonl")
        main(["submit", "alice", "CLI-A", "--journal", journal])
        main(["submit", "bob", "CLI-B", "--journal", journal])
        main(["submit", "carol", "CLI-A", "--journal", journal])  # cache hit
        capsys.readouterr()

        assert main(["serve", "--journal", journal, "--max-workers", "2",
                     "--timeout", "300"]) == 0
        out = capsys.readouterr().out
        assert "3 queued job(s)" in out
        assert out.count("completed") == 3
        assert "yes" in out  # carol's duplicate derivation hit the cache

        assert main(["queue", "--journal", journal]) == 0
        out = capsys.readouterr().out
        assert "completed=3" in out
        assert "charged usage" in out


class TestCampaignExitCode:
    def test_nonzero_on_failed_cluster(self, capsys, monkeypatch):
        def env_factory(*args, **kwargs):
            env = build_demo_environment(
                clusters=[tiny("CLI-F", n=6)],
                seed_virtual_data_reuse=False,
                max_retries=1,
            )
            env.vds.simulation_options.forced_failures["job-dv-CLI-F-0000"] = 99
            return env

        monkeypatch.setattr(cli, "_env", env_factory)
        assert main(["campaign"]) == 1
        captured = capsys.readouterr()
        assert "did not complete" in captured.err
        assert "failed node(s)" in captured.err

    def test_zero_on_clean_run(self, capsys, monkeypatch):
        monkeypatch.setattr(
            cli,
            "_env",
            lambda *a, **k: build_demo_environment(
                clusters=[tiny("CLI-OK", n=6)], seed_virtual_data_reuse=False
            ),
        )
        assert main(["campaign"]) == 0
        assert "did not complete" not in capsys.readouterr().err


class TestQueueJson:
    def test_json_payload_shape(self, tmp_path, capsys):
        import json

        journal = str(tmp_path / "journal.jsonl")
        assert main(["submit", "alice", "A3526", "--journal", journal]) == 0
        assert main(
            ["submit", "bob", "MS0451", "--journal", journal, "-o", "bins=5"]
        ) == 0
        capsys.readouterr()

        assert main(["queue", "--json", "--journal", journal]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["journal"] == journal
        assert payload["counts"] == {"queued": 2}
        assert payload["queued"] == 2 and payload["running"] == 0
        assert payload["drained"] is False
        users = {job["user"] for job in payload["jobs"]}
        assert users == {"alice", "bob"}
        for job in payload["jobs"]:
            assert {"job_id", "state", "cluster", "cache_hit", "error"} <= set(job)

    def test_json_empty_journal_reports_drained(self, tmp_path, capsys):
        import json

        assert main(
            ["queue", "--json", "--journal", str(tmp_path / "missing.jsonl")]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["jobs"] == []
        assert payload["counts"] == {}
        assert payload["drained"] is True

    def test_json_carries_journal_wall_times(self, tmp_path, capsys):
        import json

        journal = str(tmp_path / "journal.jsonl")
        assert main(["submit", "alice", "A3526", "--journal", journal]) == 0
        capsys.readouterr()

        assert main(["queue", "--json", "--journal", journal]) == 0
        (job,) = json.loads(capsys.readouterr().out)["jobs"]
        # A queued job has its submit stamp but no start/finish/wait yet.
        assert isinstance(job["submitted_ts"], float)
        assert job["started_ts"] is None
        assert job["finished_ts"] is None
        assert job["wait_s"] is None

    def test_json_wait_seconds_after_drain(self, tmp_path, capsys, monkeypatch):
        import json

        clusters = [tiny("CLI-W", ra=40.0)]
        monkeypatch.setattr(
            cli,
            "_env",
            lambda *a, **k: build_demo_environment(
                clusters=clusters, seed_virtual_data_reuse=False
            ),
        )
        journal = str(tmp_path / "journal.jsonl")
        main(["submit", "alice", "CLI-W", "--journal", journal])
        assert main(["serve", "--journal", journal, "--timeout", "300"]) == 0
        capsys.readouterr()

        assert main(["queue", "--json", "--journal", journal]) == 0
        (job,) = json.loads(capsys.readouterr().out)["jobs"]
        assert job["state"] == "completed"
        assert job["submitted_ts"] <= job["started_ts"] <= job["finished_ts"]
        assert job["wait_s"] >= 0.0


class TestTelemetryReportTraceFilter:
    def _write_trace(self, path):
        import json

        from repro.telemetry.tracing import make_record

        spans = [
            make_record("serve.request", "t-one", "s1", None, 0.0, 1.0),
            make_record("scheduler.job", "t-one", "s2", "s1", 0.2, 0.9),
            make_record("serve.request", "t-two", "s3", None, 0.0, 0.5),
        ]
        with open(path, "w", encoding="utf-8") as fh:
            for span in spans:
                fh.write(json.dumps(span) + "\n")

    def test_filters_to_one_trace(self, tmp_path, capsys):
        trace = str(tmp_path / "trace.jsonl")
        self._write_trace(trace)
        assert main(["telemetry", "report", trace, "--trace-id", "t-one"]) == 0
        out = capsys.readouterr().out
        assert "serve.request" in out and "scheduler.job" in out

    def test_unknown_trace_id_fails(self, tmp_path, capsys):
        trace = str(tmp_path / "trace.jsonl")
        self._write_trace(trace)
        assert main(["telemetry", "report", trace, "--trace-id", "nope"]) == 1
        assert "no spans with trace id" in capsys.readouterr().err
