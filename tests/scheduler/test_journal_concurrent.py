"""Journal crash-replay while a serve process holds the spool.

The journal is the only shared state between a serving tier and whatever
restarts after a crash.  These tests submit over real HTTP (so the spool
is being appended to by a live serving stack's manager threads) while a
second reader replays the same file mid-flight, then assert replay
fingerprint stability and exact agreement with what the manager saw.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing as mp

from repro.scheduler import (
    JobJournal,
    WorkloadManager,
    global_fingerprint,
    merge_states,
)
from repro.scheduler.job import JobState
from repro.serve.harness import SyntheticJobRunner, build_serving_stack
from repro.serve.loadgen import http_request

from tests.serve.conftest import tiny_cluster

TENANTS = ("alice", "bob", "carol")


def run_serve_session(journal_path, submits: int) -> dict:
    """Boot a journaled stack, submit ``submits`` jobs over HTTP with
    concurrent mid-flight replays, drain, and return what the manager saw."""

    async def session() -> dict:
        stack = build_serving_stack(
            runner="synthetic",
            clusters=[tiny_cluster()],
            journal_path=str(journal_path),
            port=0,
        )
        mid_flight: list = []
        async with stack:
            host, port = stack.server.host, stack.server.port

            async def submit(i: int) -> int:
                status, _, _ = await http_request(
                    host,
                    port,
                    "POST",
                    "/jobs",
                    headers=[
                        ("X-Tenant", TENANTS[i % len(TENANTS)]),
                        ("Content-Type", "application/json"),
                    ],
                    body=json.dumps(
                        {"cluster": "SRV01", "options": {"seq": i}}
                    ).encode(),
                )
                return status

            async def replay_while_submitting() -> None:
                # a second process reading the spool the server is appending
                for _ in range(8):
                    state = await asyncio.to_thread(
                        lambda: JobJournal(journal_path).replay()
                    )
                    mid_flight.append(state)
                    await asyncio.sleep(0.01)

            statuses, _ = await asyncio.gather(
                asyncio.gather(*(submit(i) for i in range(submits))),
                replay_while_submitting(),
            )
            assert all(s == 202 for s in statuses), statuses

            while stack.manager.queue_depth() or stack.manager.running_jobs():
                await asyncio.sleep(0.02)
            return {
                "jobs": {r.job_id: r.state for r in stack.manager.jobs()},
                "mid_flight": mid_flight,
            }

    return asyncio.run(session())


class TestReplayWhileServing:
    def test_fingerprint_stable_and_complete_after_crash(self, tmp_path):
        journal_path = tmp_path / "serve-journal.jsonl"
        seen = run_serve_session(journal_path, submits=18)

        # every mid-flight replay was a valid prefix: monotone job counts,
        # never a half-written record exploding the reader
        counts = [len(state.jobs) for state in seen["mid_flight"]]
        assert counts == sorted(counts)

        # the "crash": the serving process is gone; replay twice
        first = JobJournal(journal_path).replay()
        second = JobJournal(journal_path).replay()
        assert first.fingerprint() == second.fingerprint()

        # nothing lost, nothing duplicated, terminal states journaled
        assert set(first.jobs) == set(seen["jobs"])
        for job_id, record in first.jobs.items():
            assert record.state is JobState.COMPLETED
            assert record.state is seen["jobs"][job_id]

    def test_restarted_manager_resumes_the_replayed_queue(self, tmp_path):
        journal_path = tmp_path / "serve-journal.jsonl"
        run_serve_session(journal_path, submits=9)

        # append a queued job the "crashed" server never ran
        spool = JobJournal(journal_path)
        state = spool.replay()
        orphan = WorkloadManager(
            runner=None, journal=spool
        ).submit("dave", "SRV01", {"orphan": True})

        restarted = WorkloadManager(
            SyntheticJobRunner(), journal=JobJournal(journal_path)
        )
        assert restarted.queue_depth() == 1  # only the orphan is non-terminal
        assert orphan.job_id in {r.job_id for r in restarted.jobs()}
        fingerprint = JobJournal(journal_path).replay().fingerprint()
        assert fingerprint == JobJournal(journal_path).replay().fingerprint()
        assert len(restarted.jobs()) == len(state.jobs) + 1


def _shard_writer(journal_path: str, shard: str, submits: int) -> None:
    """One fleet shard's life, in miniature: journal every transition."""
    manager = WorkloadManager(
        SyntheticJobRunner(0.001, 0.002),
        journal=JobJournal(journal_path),
        shard=shard,
        max_workers=2,
    )
    manager.start()
    try:
        for i in range(submits):
            manager.submit(TENANTS[i % len(TENANTS)], f"MP{shard}-{i % 4}")
        manager.drain(timeout=60.0)
    finally:
        manager.stop()


class TestInterleavedShardWriters:
    """Two *processes* appending to separate shard journals, replayed globally.

    The fleet's invariant: per-shard journals are independently owned
    (no cross-process file contention), yet their union replays into one
    consistent, stably-fingerprinted global state — shard-prefixed job ids
    keep the namespaces disjoint by construction.
    """

    SUBMITS = 12

    def _run_writers(self, tmp_path) -> list:
        ctx = mp.get_context("spawn")
        paths = [tmp_path / f"journal-s{i}.jsonl" for i in range(2)]
        procs = [
            ctx.Process(
                target=_shard_writer, args=(str(path), f"s{i}", self.SUBMITS)
            )
            for i, path in enumerate(paths)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120.0)
            assert proc.exitcode == 0
        return paths

    def test_global_replay_is_stable_and_disjoint(self, tmp_path):
        paths = self._run_writers(tmp_path)

        # merge raises on duplicate ids; prefixed ids keep shards disjoint
        merged = merge_states(JobJournal(p).replay() for p in paths)
        assert len(merged.jobs) == 2 * self.SUBMITS
        shards = {record.shard for record in merged.jobs.values()}
        assert shards == {"s0", "s1"}
        assert all(r.state is JobState.COMPLETED for r in merged.jobs.values())

        # the global fingerprint is a pure function of the journal set
        first = global_fingerprint(paths)
        second = global_fingerprint(paths)
        assert first == second
        assert len(first) == 2 * self.SUBMITS
        assert global_fingerprint(reversed(paths)) == first

    def test_usage_ledgers_sum_across_shard_journals(self, tmp_path):
        paths = self._run_writers(tmp_path)
        merged = merge_states(JobJournal(p).replay() for p in paths)
        per_shard = [JobJournal(p).replay().usage for p in paths]
        for tenant in TENANTS:
            expected = sum(usage.get(tenant, 0.0) for usage in per_shard)
            assert merged.usage.get(tenant, 0.0) == expected
            assert expected > 0.0
