"""End-to-end workload-manager tests over the real demonstration Grid.

These are the ISSUE acceptance scenarios: concurrent multi-tenant
campaigns produce byte-identical per-cluster results, identical
resubmissions are answered from the RLS-backed cache with zero compute,
and a failed Grid run leaves rescue-DAG state that a resubmission resumes
from (only the remainder executes).
"""

from __future__ import annotations

import pytest

from repro import telemetry
from repro.catalog.coords import SkyPosition
from repro.portal.demo import build_demo_environment
from repro.scheduler import JobState, WorkloadManager
from repro.sky.cluster import ClusterModel
from repro.votable.writer import write_votable


def cluster(name: str, n: int, ra: float) -> ClusterModel:
    return ClusterModel(
        name=name,
        center=SkyPosition(ra, 4.0),
        redshift=0.04,
        n_galaxies=n,
        seed=11,
        context_image_count=5,
    )


CLUSTERS = [
    cluster("WM-A", 6, ra=20.0),
    cluster("WM-B", 7, ra=60.0),
    cluster("WM-C", 8, ra=100.0),
    cluster("WM-D", 9, ra=140.0),
]


def build_env(**kwargs):
    kwargs.setdefault("seed_virtual_data_reuse", False)
    return build_demo_environment(clusters=CLUSTERS, **kwargs)


@pytest.fixture()
def metrics_registry():
    telemetry.enable()
    yield telemetry.get_registry()
    telemetry.disable()


class TestConcurrentCampaigns:
    def test_twenty_jobs_four_users_byte_identical_to_sequential(self):
        # Sequential ground truth: one fresh environment, one pass per cluster.
        seq_env = build_env()
        expected: dict[str, bytes] = {}
        for model in CLUSTERS:
            session = seq_env.portal.run_analysis(model.name)
            assert session.merged is not None
            expected[model.name] = write_votable(
                session.merged, namespaced=True
            ).encode("utf-8")

        # Concurrent run: 20 jobs from 4 users over a shared environment.
        env = build_env()
        users = ("alice", "bob", "carol", "dave")
        with WorkloadManager.for_environment(env, max_workers=4) as mgr:
            records = [
                mgr.submit(users[i % len(users)], CLUSTERS[i % len(CLUSTERS)].name)
                for i in range(20)
            ]
            mgr.drain(timeout=600)
            for record in records:
                assert mgr.job(record.job_id).state is JobState.COMPLETED, (
                    mgr.job(record.job_id).error
                )
            produced = {r.job_id: mgr.result_bytes(r.job_id) for r in records}

        for record in records:
            assert produced[record.job_id] == expected[record.spec.cluster], (
                f"{record.job_id} ({record.spec.cluster}) diverged from the "
                "sequential baseline"
            )
        # Only 4 distinct derivations exist; dedup + cache answered the rest.
        unique_misses = sum(1 for r in records if not r.cache_hit)
        assert unique_misses == len(CLUSTERS)

    def test_no_tenant_starves_under_saturation(self):
        env = build_env()
        users = ("alice", "bob", "carol", "dave")
        with WorkloadManager.for_environment(
            env, max_workers=2, slots_per_job=8
        ) as mgr:
            records = [
                # Distinct options per job: every derivation is unique, so
                # nothing short-circuits through the cache.
                mgr.submit(
                    users[i % len(users)],
                    CLUSTERS[i % len(CLUSTERS)].name,
                    {"salt": i},
                )
                for i in range(12)
            ]
            mgr.drain(timeout=600)
        import statistics

        waits: dict[str, list[float]] = {}
        for record in records:
            assert record.wait_seconds is not None
            waits.setdefault(record.spec.user, []).append(record.wait_seconds)
        global_median = statistics.median(
            w for per_user in waits.values() for w in per_user
        )
        for user, user_waits in waits.items():
            assert statistics.median(user_waits) <= 2.0 * global_median + 0.1, (
                f"{user}: median wait {statistics.median(user_waits):.3f}s "
                f"vs global {global_median:.3f}s"
            )


class TestCacheReuse:
    def test_identical_resubmission_zero_compute(self, metrics_registry):
        env = build_env()
        with WorkloadManager.for_environment(env, max_workers=2) as mgr:
            first = mgr.submit("alice", "WM-A")
            mgr.wait(first.job_id, timeout=300)
            requests_before = len(env.compute_service.requests)
            hits_before = metrics_registry.counter("scheduler_cache_hits_total").total()

            second = mgr.submit("bob", "WM-A")
            done = mgr.wait(second.job_id, timeout=300)

            assert done.state is JobState.COMPLETED and done.cache_hit
            # Zero compute: the portal flow never ran for the resubmission.
            assert len(env.compute_service.requests) == requests_before
            assert (
                metrics_registry.counter("scheduler_cache_hits_total").total()
                == hits_before + 1
            )
            # The product resolves through the same RLS mapping.
            assert done.result_lfn == first.result_lfn
            assert env.vds.rls.exists(done.result_lfn)
            assert mgr.result_bytes(second.job_id) == mgr.result_bytes(first.job_id)


class TestRescueResumeThroughResubmission:
    def test_resubmission_resumes_only_the_remainder(self):
        env = build_env(max_retries=1)
        concat_node = "job-dv-concat-WM-B-morphology.vot"
        # First run: the concat node fails beyond its retry budget.
        env.vds.simulation_options.forced_failures[concat_node] = 99

        with WorkloadManager.for_environment(env, max_workers=1) as mgr:
            first = mgr.submit("alice", "WM-B")
            failed = mgr.wait(first.job_id, timeout=300)
            assert failed.state is JobState.FAILED

            rescue = mgr.rescue_state(first.signature)
            # Only derivation-named compute nodes are banked: they are the
            # ids that stay meaningful across the resubmission's replan.
            assert rescue == {f"job-dv-WM-B-{i:04d}" for i in range(7)}
            assert concat_node not in rescue

            # Lose the intermediate RLS registrations (the bytes survive at
            # the sites).  Without them Pegasus reduction cannot prune the
            # galaxy nodes, so completing without recompute *requires* the
            # rescue resume to pre-mark them DONE.
            for i in range(7):
                lfn = f"WM-B-{i:04d}.txt"
                for replica in env.vds.rls.lookup(lfn):
                    env.vds.rls.unregister(lfn, replica.site, replica.pfn)

            # The operator clears the fault and the tenant resubmits.
            del env.vds.simulation_options.forced_failures[concat_node]
            second = mgr.submit("alice", "WM-B")
            done = mgr.wait(second.job_id, timeout=300)

            assert done.state is JobState.COMPLETED, done.error
            # The service pre-marked all seven rescued nodes DONE...
            assert done.resumed_nodes == 7
            # ...and executed only the remainder: the concat node itself.
            request = list(env.compute_service.requests.values())[-1]
            assert request.report is not None
            executed = [r.node_id for r in request.report.compute_runs]
            assert executed == [concat_node]
            # Success clears the banked rescue state.
            assert mgr.rescue_state(first.signature) == set()
            assert mgr.result_bytes(second.job_id)
