"""Tests for admission control and the fair-share scheduler."""

from __future__ import annotations

import pytest

from repro.core.errors import QueueFullError, QuotaExceededError
from repro.scheduler.job import JobRecord, JobSpec, derivation_signature
from repro.scheduler.policy import AdmissionPolicy, FairShareScheduler


def record(seq: int, user: str, cluster: str = "A3526", priority: int = 0) -> JobRecord:
    spec = JobSpec.create(user, cluster, priority=priority)
    return JobRecord(
        job_id=f"job-{seq:06d}-test",
        spec=spec,
        signature=derivation_signature(spec),
        seq=seq,
        submitted_at=float(seq),
    )


class TestAdmissionPolicy:
    def test_admits_under_bounds(self):
        AdmissionPolicy(max_queue_depth=2, max_active_per_user=2).admit("alice", 1, 1)

    def test_queue_depth_backpressure(self):
        policy = AdmissionPolicy(max_queue_depth=2)
        with pytest.raises(QueueFullError):
            policy.admit("alice", 2, 0)

    def test_per_user_quota(self):
        policy = AdmissionPolicy(max_active_per_user=3)
        with pytest.raises(QuotaExceededError):
            policy.admit("alice", 0, 3)


class ManualClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestFairShareScheduler:
    def test_charge_and_normalized_usage(self):
        fs = FairShareScheduler(weights={"alice": 2.0})
        fs.charge("alice", 10.0)
        fs.charge("bob", 10.0)
        assert fs.usage("alice") == 10.0
        assert fs.normalized_usage("alice") == 5.0  # weight 2 halves the bill
        assert fs.normalized_usage("bob") == 10.0

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            FairShareScheduler().charge("alice", -1.0)

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError):
            FairShareScheduler(weights={"alice": 0.0})

    def test_debts_floor_at_least_served(self):
        fs = FairShareScheduler()
        fs.charge("alice", 6.0)
        fs.charge("bob", 2.0)
        debts = fs.debts(["alice", "bob", "carol"])
        assert debts["carol"] == 0.0  # least served
        assert debts["bob"] == pytest.approx(2.0)
        assert debts["alice"] == pytest.approx(6.0)

    def test_half_life_decay_forgives_old_usage(self):
        clock = ManualClock()
        fs = FairShareScheduler(half_life_s=10.0, clock=clock)
        fs.charge("alice", 8.0)
        clock.now = 10.0  # one half-life later
        assert fs.usage("alice") == pytest.approx(4.0)
        clock.now = 20.0
        assert fs.usage("alice") == pytest.approx(2.0)

    def test_restore_usage_survives_restart(self):
        fs = FairShareScheduler()
        fs.restore_usage({"alice": 5.0, "bob": 1.0})
        assert fs.usage("alice") == 5.0
        # Lowest normalized usage dispatches first after the restore.
        picked = fs.pick([record(0, "alice"), record(1, "bob")])
        assert picked is not None and picked.spec.user == "bob"

    def test_pick_lowest_normalized_usage_first(self):
        fs = FairShareScheduler()
        fs.charge("alice", 10.0)
        picked = fs.pick([record(0, "alice"), record(1, "bob")])
        assert picked is not None and picked.spec.user == "bob"

    def test_pick_priority_then_fifo_within_user(self):
        fs = FairShareScheduler()
        jobs = [
            record(0, "alice", priority=0),
            record(1, "alice", priority=5),
            record(2, "alice", priority=5),
        ]
        picked = fs.pick(jobs)
        assert picked is not None and picked.seq == 1  # highest prio, earliest seq

    def test_pick_skips_ineligible_users(self):
        # The no-starvation property: a blocked front-runner never wedges
        # the queue for everyone else.
        fs = FairShareScheduler()
        jobs = [record(0, "alice"), record(1, "bob")]
        picked = fs.pick(jobs, eligible=lambda r: r.spec.user != "alice")
        assert picked is not None and picked.spec.user == "bob"

    def test_pick_empty_or_all_ineligible(self):
        fs = FairShareScheduler()
        assert fs.pick([]) is None
        assert fs.pick([record(0, "alice")], eligible=lambda r: False) is None

    def test_saturated_interleave(self):
        # A bursty tenant and a light tenant: dispatch alternates rather
        # than draining the burst first.
        fs = FairShareScheduler()
        queued = [record(i, "burst") for i in range(4)] + [record(9, "light")]
        order = []
        while queued:
            picked = fs.pick(queued)
            assert picked is not None
            order.append(picked.spec.user)
            queued.remove(picked)
            fs.charge(picked.spec.user, 1.0)
        assert order[:2] in (["burst", "light"], ["light", "burst"])
        # light's single job is not last: the burst never starves it out.
        assert order.index("light") < len(order) - 1
