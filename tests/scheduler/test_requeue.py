"""Tests for the transient-failure requeue path of the workload manager.

A job whose run raised a *transient* :class:`JobFailure` goes back to the
queue — with the requeue policy's exponential backoff as a not-before
gate, the rescue bank carried across attempts, and fair share charged per
attempt — until the policy's attempt budget is exhausted.
"""

from __future__ import annotations

import threading
import time

from repro.resilience.retry import RetryPolicy
from repro.scheduler import (
    JobFailure,
    JobJournal,
    JobOutcome,
    JobState,
    WorkloadManager,
)

FAST_REQUEUE = RetryPolicy(max_attempts=3, base_delay_s=0.01, max_delay_s=0.05, jitter=0.0, seed=1)


class ScriptedRunner:
    """Raises the scripted failures in order, then succeeds."""

    def __init__(self, failures: list[JobFailure]) -> None:
        self.failures = list(failures)
        self.calls: list[set[str] | None] = []
        self._lock = threading.Lock()

    def run(self, spec, resume_from):
        with self._lock:
            self.calls.append(set(resume_from) if resume_from else None)
            failure = self.failures.pop(0) if self.failures else None
        if failure is not None:
            raise failure
        return JobOutcome(result_bytes=f"golden:{spec.cluster}".encode(), galaxies=4)


class TestTransientRequeue:
    def test_transient_failure_requeued_until_success(self):
        runner = ScriptedRunner(
            [JobFailure("grid hiccup", transient=True)] * 2
        )
        with WorkloadManager(runner, requeue_policy=FAST_REQUEUE) as mgr:
            record = mgr.submit("alice", "A3526")
            done = mgr.wait(record.job_id, timeout=10)
        assert done.state is JobState.COMPLETED
        assert done.attempts == 3
        assert done.error == ""  # earlier attempts' errors cleared on success
        assert mgr.result_bytes(record.job_id) == b"golden:A3526"

    def test_rescue_bank_rides_the_requeue(self):
        runner = ScriptedRunner(
            [
                JobFailure("n1 died", rescue_nodes=frozenset({"n0"}), transient=True),
                JobFailure("n2 died", rescue_nodes=frozenset({"n1"}), transient=True),
            ]
        )
        with WorkloadManager(runner, requeue_policy=FAST_REQUEUE) as mgr:
            record = mgr.submit("alice", "A3526")
            assert mgr.wait(record.job_id, timeout=10).state is JobState.COMPLETED
        # Attempt 2 resumed from the first bank, attempt 3 from the merged one.
        assert runner.calls == [None, {"n0"}, {"n0", "n1"}]

    def test_permanent_failure_not_requeued(self):
        runner = ScriptedRunner([JobFailure("bad derivation", transient=False)])
        with WorkloadManager(runner, requeue_policy=FAST_REQUEUE) as mgr:
            record = mgr.submit("alice", "A3526")
            done = mgr.wait(record.job_id, timeout=10)
        assert done.state is JobState.FAILED
        assert done.attempts == 1
        assert "bad derivation" in done.error

    def test_no_policy_means_no_requeue(self):
        runner = ScriptedRunner([JobFailure("hiccup", transient=True)])
        with WorkloadManager(runner) as mgr:
            record = mgr.submit("alice", "A3526")
            done = mgr.wait(record.job_id, timeout=10)
        assert done.state is JobState.FAILED and done.attempts == 1

    def test_attempt_budget_exhausts_to_failed(self):
        runner = ScriptedRunner([JobFailure("still down", transient=True)] * 10)
        with WorkloadManager(runner, requeue_policy=FAST_REQUEUE) as mgr:
            record = mgr.submit("alice", "A3526")
            done = mgr.wait(record.job_id, timeout=10)
        assert done.state is JobState.FAILED
        assert done.attempts == FAST_REQUEUE.max_attempts
        assert "still down" in done.error

    def test_backoff_gates_the_resubmission(self):
        policy = RetryPolicy(
            max_attempts=2, base_delay_s=0.25, max_delay_s=0.25, jitter=0.0, seed=1
        )
        runner = ScriptedRunner([JobFailure("hiccup", transient=True)])
        t0 = time.monotonic()
        with WorkloadManager(runner, requeue_policy=policy) as mgr:
            record = mgr.submit("alice", "A3526")
            done = mgr.wait(record.job_id, timeout=10)
        assert done.state is JobState.COMPLETED
        assert time.monotonic() - t0 >= 0.25  # not-before gate honoured

    def test_fair_share_charged_per_attempt(self):
        runner = ScriptedRunner([JobFailure("hiccup", transient=True)])
        with WorkloadManager(runner, requeue_policy=FAST_REQUEUE) as mgr:
            record = mgr.submit("alice", "A3526")
            mgr.wait(record.job_id, timeout=10)
            usage = mgr.scheduler.usage("alice")
        assert usage >= 0.0  # both attempts flowed through the accountant


class TestRequeueJournal:
    def test_requeue_event_journaled_and_replayed(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        runner = ScriptedRunner([JobFailure("hiccup", transient=True)] * 2)
        with WorkloadManager(
            runner, journal=JobJournal(path), requeue_policy=FAST_REQUEUE
        ) as mgr:
            record = mgr.submit("alice", "A3526")
            mgr.wait(record.job_id, timeout=10)

        events = [line["event"] for line in JobJournal(path).events()]
        assert events.count("requeue") == 2
        assert events[-1] == "complete"

    def test_crash_after_requeue_replays_to_queued(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        runner = ScriptedRunner([JobFailure("hiccup", transient=True)] * 50)
        # Budget of 1 attempt: the job fails terminally; rewrite the tape to
        # stop right after the requeue line instead.
        with WorkloadManager(
            runner, journal=journal, requeue_policy=FAST_REQUEUE
        ) as mgr:
            record = mgr.submit("alice", "A3526")
            mgr.wait(record.job_id, timeout=10)

        lines = JobJournal(path).events()
        first_requeue = next(i for i, l in enumerate(lines) if l["event"] == "requeue")
        truncated = lines[: first_requeue + 1]
        state = __import__(
            "repro.scheduler.journal", fromlist=["replay_events"]
        ).replay_events(truncated)
        replayed = state.jobs[record.job_id]
        assert replayed.state is JobState.QUEUED
        assert replayed.started_at is None and replayed.finished_at is None
