"""Tests for the JSONL journal and its crash-replay fold."""

from __future__ import annotations

import pytest

from repro.core.errors import SchedulerError
from repro.scheduler.job import JobRecord, JobSpec, JobState, derivation_signature
from repro.scheduler.journal import JobJournal, replay_events


def submit_line(journal: JobJournal, seq: int, user: str, cluster: str) -> JobRecord:
    spec = JobSpec.create(user, cluster)
    record = JobRecord(
        job_id=f"job-{seq:06d}-test",
        spec=spec,
        signature=derivation_signature(spec),
        seq=seq,
        submitted_at=float(seq),
    )
    journal.append("submit", job=record.as_record())
    return record


class TestJobJournal:
    def test_memory_journal_round_trips(self):
        journal = JobJournal(None)
        journal.append("rescue", signature="sig-x", nodes=["a"])
        assert [line["event"] for line in journal.events()] == ["rescue"]

    def test_file_journal_persists(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        submit_line(journal, 0, "alice", "A3526")
        # A second handle over the same file sees the same events.
        again = JobJournal(path)
        assert len(again.events()) == 1
        assert again.replay().fingerprint() == journal.replay().fingerprint()

    def test_missing_file_is_empty(self, tmp_path):
        journal = JobJournal(tmp_path / "nope.jsonl")
        assert journal.events() == []
        assert journal.replay().jobs == {}

    def test_unknown_event_rejected_at_append(self):
        with pytest.raises(SchedulerError):
            JobJournal(None).append("explode")


class TestReplay:
    def test_submission_order_preserved(self):
        journal = JobJournal(None)
        for seq, (user, cluster) in enumerate(
            [("alice", "A"), ("bob", "B"), ("alice", "C")]
        ):
            submit_line(journal, seq, user, cluster)
        state = journal.replay()
        assert [r.seq for r in state.jobs.values()] == [0, 1, 2]
        assert state.max_seq == 2
        assert len(state.queued_jobs()) == 3

    def test_terminal_jobs_not_requeued(self):
        journal = JobJournal(None)
        a = submit_line(journal, 0, "alice", "A")
        b = submit_line(journal, 1, "bob", "B")
        c = submit_line(journal, 2, "carol", "C")
        journal.append("start", job_id=a.job_id)
        journal.append("complete", job_id=a.job_id, cache_hit=False, cost=3.0)
        journal.append("start", job_id=b.job_id)
        journal.append("fail", job_id=b.job_id, error="boom")
        journal.append("cancel", job_id=c.job_id)
        state = journal.replay()
        assert state.jobs[a.job_id].state is JobState.COMPLETED
        assert state.jobs[b.job_id].state is JobState.FAILED
        assert state.jobs[b.job_id].error == "boom"
        assert state.jobs[c.job_id].state is JobState.CANCELLED
        assert state.queued_jobs() == []

    def test_running_at_crash_requeued(self):
        journal = JobJournal(None)
        a = submit_line(journal, 0, "alice", "A")
        journal.append("start", job_id=a.job_id)
        # ... crash: no terminal event ever lands.
        state = journal.replay()
        record = state.jobs[a.job_id]
        assert record.state is JobState.QUEUED
        assert record.started_at is None
        assert record.attempts == 1  # the interrupted attempt stays counted

    def test_usage_accrues_to_users(self):
        journal = JobJournal(None)
        a = submit_line(journal, 0, "alice", "A")
        b = submit_line(journal, 1, "alice", "B")
        journal.append("start", job_id=a.job_id)
        journal.append("complete", job_id=a.job_id, cost=2.5)
        journal.append("start", job_id=b.job_id)
        journal.append("complete", job_id=b.job_id, cost=1.5)
        assert journal.replay().usage == {"alice": 4.0}

    def test_rescue_set_and_cleared(self):
        journal = JobJournal(None)
        journal.append("rescue", signature="sig-x", nodes=["n1", "n2"])
        assert journal.replay().rescue == {"sig-x": {"n1", "n2"}}
        journal.append("rescue", signature="sig-x", nodes=[])
        assert journal.replay().rescue == {}

    def test_duplicate_submit_rejected(self):
        journal = JobJournal(None)
        a = submit_line(journal, 0, "alice", "A")
        journal.append("submit", job=a.as_record())
        with pytest.raises(SchedulerError):
            journal.replay()

    def test_event_for_unknown_job_rejected(self):
        with pytest.raises(SchedulerError):
            replay_events([{"ts": 0.0, "event": "start", "job_id": "ghost"}])

    def test_unknown_event_rejected(self):
        with pytest.raises(SchedulerError):
            replay_events([{"ts": 0.0, "event": "mystery"}])

    def test_fingerprint_is_replay_stable(self):
        journal = JobJournal(None)
        for seq in range(5):
            submit_line(journal, seq, f"user{seq % 2}", f"C{seq}")
        assert journal.replay().fingerprint() == journal.replay().fingerprint()
