"""Tests for the three morphology parameters and their building blocks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.morphology.background import estimate_background
from repro.morphology.measures import (
    asymmetry_index,
    average_surface_brightness,
    concentration_index,
    curve_of_growth_radii,
)
from repro.morphology.segmentation import central_source_mask, source_centroid
from repro.sky.profiles import pixel_integrated_sersic


def sersic_image(n=1.0, size=65, r_e=6.0, flux=1e4, noise=0.0, seed=0, psf_sigma=1.2):
    """A pixel-integrated, PSF-convolved Sersic test image.

    Both steps matter: pixel-centre sampling of a cuspy n=4 profile puts
    most of its flux into the singular central pixel, which no real image
    does.
    """
    from scipy import ndimage as ndi

    c = (size - 1) / 2.0
    img = pixel_integrated_sersic((size, size), (c, c), r_e, n, total_flux=flux)
    if psf_sigma > 0:
        img = ndi.gaussian_filter(img, psf_sigma, mode="constant")
    if noise > 0:
        img = img + np.random.default_rng(seed).normal(0, noise, img.shape)
    return img


class TestBackground:
    def test_flat_image(self):
        img = np.full((32, 32), 7.0)
        bg = estimate_background(img)
        assert bg.level == pytest.approx(7.0)
        assert bg.sigma == pytest.approx(0.0)

    def test_recovers_noisy_sky(self):
        rng = np.random.default_rng(3)
        img = rng.normal(5.0, 1.0, (64, 64))
        bg = estimate_background(img)
        assert bg.level == pytest.approx(5.0, abs=0.15)
        assert bg.sigma == pytest.approx(1.0, abs=0.2)

    def test_source_does_not_bias_border(self):
        img = np.random.default_rng(0).normal(5.0, 0.5, (64, 64))
        img[24:40, 24:40] += 100.0  # central source far from border
        bg = estimate_background(img)
        assert bg.level == pytest.approx(5.0, abs=0.2)

    def test_clips_border_outliers(self):
        img = np.random.default_rng(1).normal(5.0, 0.5, (64, 64))
        img[0, 0:6] = 500.0  # a bright star on the border
        assert estimate_background(img).level == pytest.approx(5.0, abs=0.2)

    def test_too_small_image(self):
        with pytest.raises(ValueError):
            estimate_background(np.zeros((1, 1)))

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            estimate_background(np.zeros(10))


class TestSegmentation:
    def test_detects_central_source(self):
        img = sersic_image(noise=1.0) + 5.0
        mask = central_source_mask(img)
        assert mask[32, 32]
        assert mask.sum() > 10

    def test_empty_image_gives_empty_mask(self):
        img = np.random.default_rng(0).normal(5.0, 1.0, (64, 64))
        mask = central_source_mask(img, threshold_sigma=6.0)
        assert not mask.any()

    def test_off_center_source_found(self):
        img = np.random.default_rng(0).normal(0.0, 0.1, (64, 64))
        img[40:44, 40:44] = 50.0
        mask = central_source_mask(img)
        assert mask[41, 41]

    def test_centroid(self):
        img = np.zeros((32, 32))
        img[10, 20] = 5.0
        mask = img > 0
        cy, cx = source_centroid(img, mask)
        assert (cy, cx) == (10.0, 20.0)

    def test_centroid_empty_mask(self):
        with pytest.raises(ValueError):
            source_centroid(np.ones((8, 8)), np.zeros((8, 8), dtype=bool))


class TestCurveOfGrowth:
    def test_fractions_ordered(self):
        img = sersic_image(n=1.0)
        r20, r50, r80 = curve_of_growth_radii(img, (32.0, 32.0), 30.0, (0.2, 0.5, 0.8))
        assert r20 < r50 < r80

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            curve_of_growth_radii(sersic_image(), (32.0, 32.0), 30.0, (1.5,))

    def test_zero_flux(self):
        with pytest.raises(ValueError):
            curve_of_growth_radii(np.zeros((33, 33)), (16.0, 16.0), 10.0)


class TestConcentration:
    def test_n4_more_concentrated_than_n1(self):
        c4 = concentration_index(sersic_image(n=4.0), (32.0, 32.0), 30.0)
        c1 = concentration_index(sersic_image(n=1.0), (32.0, 32.0), 30.0)
        assert c4 > c1 + 0.5

    def test_exponential_reference_value(self):
        # analytic C for a pure exponential disk is ~2.7; measurement on a
        # finite aperture comes in close
        c1 = concentration_index(sersic_image(n=1.0, size=129, r_e=8.0), (64.0, 64.0), 60.0)
        assert c1 == pytest.approx(2.7, abs=0.35)


class TestAsymmetry:
    def test_symmetric_image_near_zero(self):
        img = sersic_image(n=2.0)
        a = asymmetry_index(img, (32.0, 32.0), 20.0)
        assert a < 0.01

    def test_lopsided_image_positive(self):
        img = sersic_image(n=1.0)
        img[20:30, 40:52] += img.max() * 0.3  # a bright clump
        a = asymmetry_index(img, (32.0, 32.0), 25.0)
        assert a > 0.05

    def test_noise_correction_reduces_a(self):
        img = sersic_image(n=1.0, noise=0.5, seed=5)
        raw = asymmetry_index(img, (32.0, 32.0), 20.0, background_sigma=0.0)
        corrected = asymmetry_index(img, (32.0, 32.0), 20.0, background_sigma=0.5)
        assert corrected < raw

    def test_never_negative(self):
        img = sersic_image(n=2.0, noise=1.0, seed=9)
        a = asymmetry_index(img, (32.0, 32.0), 15.0, background_sigma=1.0)
        assert a >= 0.0

    def test_empty_aperture(self):
        with pytest.raises(ValueError):
            asymmetry_index(np.zeros((33, 33)), (16.0, 16.0), 8.0)

    @given(st.floats(1.0, 4.0), st.floats(3.0, 8.0))
    def test_clean_sersic_always_small(self, n, r_e):
        img = sersic_image(n=n, r_e=r_e)
        a = asymmetry_index(img, (32.0, 32.0), 22.0)
        assert 0.0 <= a < 0.05


class TestSurfaceBrightness:
    def test_magnitude_scale(self):
        img = sersic_image(flux=1e4)
        mu1 = average_surface_brightness(img, (32.0, 32.0), 15.0, 0.4, zero_point=25.0)
        img_bright = sersic_image(flux=1e5)
        mu2 = average_surface_brightness(img_bright, (32.0, 32.0), 15.0, 0.4, zero_point=25.0)
        assert mu1 - mu2 == pytest.approx(2.5, abs=0.01)  # 10x flux = 2.5 mag

    def test_zero_point_offset(self):
        img = sersic_image()
        mu0 = average_surface_brightness(img, (32.0, 32.0), 15.0, 0.4, zero_point=0.0)
        mu25 = average_surface_brightness(img, (32.0, 32.0), 15.0, 0.4, zero_point=25.0)
        assert mu25 - mu0 == pytest.approx(25.0)

    def test_bad_pixel_scale(self):
        with pytest.raises(ValueError):
            average_surface_brightness(sersic_image(), (32.0, 32.0), 10.0, 0.0)

    def test_negative_flux_rejected(self):
        with pytest.raises(ValueError):
            average_surface_brightness(-sersic_image(), (32.0, 32.0), 10.0, 0.4)
