"""Golden parity: the geometry-cached fast path vs the seed kernels.

The fast-path contract is numeric parity to <= 1e-9 with the preserved
seed implementations in :mod:`repro.morphology.reference` (in practice the
differences are at the 1e-15 level — only floating-point summation order
moves).  These tests pin that contract on rendered cutouts of all three
morphology classes, pin absolute golden values so *both* implementations
drifting together is also caught, and check the batch paths reproduce the
sequential results exactly.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import ndimage

from repro.fits.hdu import ImageHDU
from repro.morphology.geometry import CutoutGeometry
from repro.morphology.measures import (
    asymmetry_index,
    average_surface_brightness,
    concentration_index,
    curve_of_growth_radii,
)
from repro.morphology.petrosian import petrosian_radius, radial_profile
from repro.morphology.pipeline import GalmorphTask, galmorph, galmorph_batch
from repro.morphology.reference import (
    asymmetry_index_reference,
    average_surface_brightness_reference,
    concentration_index_reference,
    curve_of_growth_radii_reference,
    galmorph_reference,
    petrosian_radius_reference,
    radial_profile_reference,
)
from repro.sky.cluster import GalaxyRecord, MorphType
from repro.sky.galaxy import render_galaxy_image
from repro.sky.profiles import pixel_integrated_sersic

PARITY = 1e-9  # the contract; observed differences are ~1e-15

#: Fixed-seed §5-style cutouts: (record, rng seed) per morphology class.
GALAXIES = {
    "elliptical": (
        GalaxyRecord("e", 150.0, 2.0, 0.05, 17.0, MorphType.ELLIPTICAL, 4.0, 0.2, 0.0, 0.01, 0.05),
        1,
    ),
    "spiral": (
        GalaxyRecord("s", 150.0, 2.0, 0.06, 17.5, MorphType.SPIRAL, 1.2, 0.3, 40.0, 0.3, 0.1),
        2,
    ),
    "irregular": (
        GalaxyRecord("i", 150.0, 2.0, 0.07, 18.0, MorphType.IRREGULAR, 0.8, 0.4, 10.0, 0.5, 0.2),
        3,
    ),
}

#: Absolute golden values of the full pipeline (fast path == reference).
#: Tolerance 1e-6: loose enough for BLAS/platform variation, tight enough
#: to catch any semantic drift.
GOLDEN = {
    "elliptical": {
        "surface_brightness": -4.2543316474652295,
        "concentration": 3.565876903996154,
        "asymmetry": 0.007011759037096832,
        "petrosian_radius_arcsec": 6.371859628713825,
        "petrosian_radius_kpc": 4.3599206715280765,
    },
    "spiral": {
        "surface_brightness": -6.491653235212644,
        "concentration": 2.149732410945683,
        "asymmetry": 0.10045137480709077,
        "petrosian_radius_arcsec": 2.5645284501219283,
        "petrosian_radius_kpc": 2.0810080174796246,
    },
    "irregular": {
        "surface_brightness": -6.994674154243076,
        "concentration": 2.380188980954001,
        "asymmetry": 0.1051573166135404,
        "petrosian_radius_arcsec": 2.0799892765310073,
        "petrosian_radius_kpc": 1.9461648186813238,
    },
}


def _raw(name: str) -> np.ndarray:
    record, seed = GALAXIES[name]
    return np.asarray(
        render_galaxy_image(record, rng=np.random.default_rng(seed)), dtype=float
    )


def _cutout(name: str) -> np.ndarray:
    """Background-subtracted cutout, as the kernels see it inside galmorph."""
    img = _raw(name)
    return img - np.median(img)


def _hdu(name: str) -> ImageHDU:
    return ImageHDU(_raw(name))


@pytest.mark.parametrize("name", sorted(GALAXIES))
class TestKernelParity:
    """Fast kernels == seed kernels, per rendered morphology class."""

    def test_curve_of_growth(self, name):
        img = _cutout(name)
        center = (31.2, 32.4)
        fast = curve_of_growth_radii(img, center, 25.0)
        ref = curve_of_growth_radii_reference(img, center, 25.0)
        assert fast == pytest.approx(ref, abs=PARITY)

    def test_concentration(self, name):
        img = _cutout(name)
        center = (31.2, 32.4)
        fast = concentration_index(img, center, 25.0)
        ref = concentration_index_reference(img, center, 25.0)
        assert fast == pytest.approx(ref, abs=PARITY)

    @pytest.mark.parametrize("sigma", [0.0, 0.7])
    def test_asymmetry(self, name, sigma):
        img = _cutout(name)
        center = (31.2, 32.4)
        fast = asymmetry_index(img, center, 24.0, background_sigma=sigma)
        ref = asymmetry_index_reference(img, center, 24.0, background_sigma=sigma)
        assert fast == pytest.approx(ref, abs=PARITY)

    def test_asymmetry_fixed_center(self, name):
        img = _cutout(name)
        center = (31.2, 32.4)
        fast = asymmetry_index(img, center, 24.0, optimize_center=False)
        ref = asymmetry_index_reference(img, center, 24.0, optimize_center=False)
        assert fast == pytest.approx(ref, abs=PARITY)

    def test_surface_brightness(self, name):
        img = _cutout(name)
        center = (31.2, 32.4)
        fast = average_surface_brightness(img, center, 25.0, 0.4, zero_point=25.0)
        ref = average_surface_brightness_reference(img, center, 25.0, 0.4, zero_point=25.0)
        assert fast == pytest.approx(ref, abs=PARITY)

    def test_radial_profile(self, name):
        img = _cutout(name)
        center = (31.2, 32.4)
        fr, fm = radial_profile(img, center)
        rr, rm = radial_profile_reference(img, center)
        np.testing.assert_allclose(fr, rr, atol=PARITY)
        np.testing.assert_allclose(fm, rm, atol=PARITY)

    def test_petrosian(self, name):
        img = _cutout(name)
        center = (31.2, 32.4)
        fast = petrosian_radius(img, center)
        ref = petrosian_radius_reference(img, center)
        assert fast == pytest.approx(ref, abs=PARITY)


@pytest.mark.parametrize("name", sorted(GALAXIES))
class TestPipelineParity:
    """Full galmorph == seed pipeline, plus pinned absolute golden values."""

    def test_fast_matches_reference(self, name):
        record, _ = GALAXIES[name]
        fast = galmorph(_hdu(name), redshift=record.redshift, pix_scale=0.4 / 3600.0,
                        galaxy_id=name)
        ref = galmorph_reference(_hdu(name), redshift=record.redshift,
                                 pix_scale=0.4 / 3600.0, galaxy_id=name)
        assert fast.valid and ref.valid
        for field in ("surface_brightness", "concentration", "asymmetry",
                      "petrosian_radius_arcsec", "petrosian_radius_kpc"):
            assert getattr(fast, field) == pytest.approx(getattr(ref, field), abs=PARITY)

    def test_golden_values(self, name):
        record, _ = GALAXIES[name]
        result = galmorph(_hdu(name), redshift=record.redshift, pix_scale=0.4 / 3600.0,
                          galaxy_id=name)
        assert result.valid
        for field, expected in GOLDEN[name].items():
            assert getattr(result, field) == pytest.approx(expected, abs=1e-6), field


class TestBatchEquivalence:
    def _tasks(self) -> list[GalmorphTask]:
        return [
            GalmorphTask(image=_hdu(name), redshift=GALAXIES[name][0].redshift,
                         pix_scale=0.4 / 3600.0, galaxy_id=name)
            for name in sorted(GALAXIES)
        ]

    def test_batch_matches_sequential(self):
        """The stacked batch path reproduces the scalar path within the
        parity contract (not bitwise: batched reductions sum in a
        different order) and stays valid on every row."""
        tasks = self._tasks()
        sequential = [
            galmorph(t.image, redshift=t.redshift, pix_scale=t.pix_scale,
                     galaxy_id=t.galaxy_id)
            for t in tasks
        ]
        batched = galmorph_batch(tasks)
        assert [r.galaxy_id for r in batched] == [r.galaxy_id for r in sequential]
        assert [r.valid for r in batched] == [r.valid for r in sequential]
        for seq, bat in zip(sequential, batched):
            for field in ("surface_brightness", "concentration", "asymmetry",
                          "petrosian_radius_arcsec", "petrosian_radius_kpc"):
                assert getattr(bat, field) == pytest.approx(
                    getattr(seq, field), abs=PARITY
                ), field

    def test_batch_matches_reference(self):
        """The stacked batch path honours the golden contract directly."""
        tasks = self._tasks()
        batched = galmorph_batch(tasks)
        for task, bat in zip(tasks, batched):
            ref = galmorph_reference(task.image, redshift=task.redshift,
                                     pix_scale=task.pix_scale, galaxy_id=task.galaxy_id)
            assert bat.valid and ref.valid
            for field in ("surface_brightness", "concentration", "asymmetry",
                          "petrosian_radius_arcsec", "petrosian_radius_kpc"):
                assert getattr(bat, field) == pytest.approx(
                    getattr(ref, field), abs=PARITY
                ), field

    def test_process_pool_matches_sequential(self):
        """Pool chunks run the same per-row-independent stacked kernels, so
        pooled results are bit-identical to the sequential batch."""
        tasks = self._tasks()
        pooled = galmorph_batch(tasks, processes=2)
        assert pooled == galmorph_batch(tasks)

    def test_explicit_geometry_matches_shared(self):
        img = _cutout("spiral")
        geom = CutoutGeometry(img.shape)
        hdu = ImageHDU(img)
        with_geom = galmorph(hdu, redshift=0.06, pix_scale=0.4 / 3600.0,
                             galaxy_id="s", geometry=geom)
        without = galmorph(hdu, redshift=0.06, pix_scale=0.4 / 3600.0, galaxy_id="s")
        assert with_geom == without


class TestAsymmetrySemantics:
    def test_early_exit_zero_for_symmetric_noise_dominated(self):
        """A perfectly symmetric source with a large noise floor exits early
        at A = 0 — identical to what the full search clamps to."""
        img = pixel_integrated_sersic((65, 65), (32.0, 32.0), 6.0, 1.0, 1e4)
        img = ndimage.gaussian_filter(img, 1.2)
        center = (32.0, 32.0)
        fast = asymmetry_index(img, center, 28.0, background_sigma=50.0)
        ref = asymmetry_index_reference(img, center, 28.0, background_sigma=50.0)
        assert fast == 0.0
        assert ref == 0.0

    def test_early_exit_can_be_disabled(self):
        img = pixel_integrated_sersic((65, 65), (32.0, 32.0), 6.0, 1.0, 1e4)
        img = ndimage.gaussian_filter(img, 1.2)
        center = (32.0, 32.0)
        fast = asymmetry_index(img, center, 28.0, background_sigma=50.0, early_exit=False)
        ref = asymmetry_index_reference(img, center, 28.0, background_sigma=50.0)
        assert fast == pytest.approx(ref, abs=PARITY)

    def test_noise_floor_at_minimising_center(self):
        """The correction uses the minimising centre's denominator (the
        semantic fix) — both implementations agree on an asymmetric source
        whose minimising offset is not the input centre."""
        rng = np.random.default_rng(7)
        img = pixel_integrated_sersic((65, 65), (32.3, 31.6), 5.0, 1.5, 1e4)
        img += rng.normal(0.0, 0.5, img.shape)
        fast = asymmetry_index(img, (32.0, 32.0), 26.0, background_sigma=0.5)
        ref = asymmetry_index_reference(img, (32.0, 32.0), 26.0, background_sigma=0.5)
        assert fast == pytest.approx(ref, abs=PARITY)


class TestFailureHandling:
    """§4.3.1(4): bad images become valid=False rows, never exceptions."""

    def test_nan_pixels_invalid_row(self):
        img = np.full((64, 64), np.nan)
        result = galmorph(ImageHDU(img), redshift=0.05, pix_scale=0.4 / 3600.0,
                          galaxy_id="bad")
        assert not result.valid
        assert result.error

    def test_all_zero_image_invalid_row(self):
        result = galmorph(ImageHDU(np.zeros((64, 64))), redshift=0.05,
                          pix_scale=0.4 / 3600.0, galaxy_id="flat")
        assert not result.valid

    def test_negative_flux_image_invalid_row(self):
        rng = np.random.default_rng(0)
        img = rng.normal(-5.0, 0.1, (64, 64))
        img[30:34, 30:34] = 50.0  # a source, but surrounded by garbage
        result = galmorph(ImageHDU(img), redshift=0.05, pix_scale=0.4 / 3600.0,
                          galaxy_id="garbage")
        assert isinstance(result.valid, bool)  # never raises

    def test_batch_isolates_failures(self):
        tasks = [
            GalmorphTask(image=ImageHDU(np.full((64, 64), np.nan)), redshift=0.05,
                         pix_scale=0.4 / 3600.0, galaxy_id="bad"),
            GalmorphTask(image=_hdu("elliptical"), redshift=0.05,
                         pix_scale=0.4 / 3600.0, galaxy_id="good"),
        ]
        results = galmorph_batch(tasks)
        assert [r.valid for r in results] == [False, True]
