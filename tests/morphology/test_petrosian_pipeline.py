"""Tests for the Petrosian radius and the galMorph pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fits.hdu import ImageHDU
from repro.fits.header import Header
from repro.morphology.petrosian import petrosian_radius, radial_profile
from repro.morphology.pipeline import MorphologyResult, galmorph
from repro.sky.cluster import MorphType
from repro.sky.imaging import CutoutFactory
from repro.sky.profiles import pixel_integrated_sersic


def sersic_image(n=1.0, size=129, r_e=8.0, flux=1e5):
    c = (size - 1) / 2.0
    return pixel_integrated_sersic((size, size), (c, c), r_e, n, total_flux=flux)


class TestRadialProfile:
    def test_flat_image(self):
        radii, means = radial_profile(np.ones((33, 33)), (16.0, 16.0))
        assert np.allclose(means[: len(means) // 2], 1.0)

    def test_declining_for_sersic(self):
        img = sersic_image()
        _, means = radial_profile(img, (64.0, 64.0), max_radius=40.0)
        assert means[0] > means[10] > means[30]


class TestPetrosianRadius:
    def test_exponential_reference(self):
        # For an exponential disk, the eta=0.2 Petrosian radius solves
        # e^-u u^2 / (2 (1 - (1+u) e^-u)) = 0.2 at u ~ 3.66 scale lengths,
        # i.e. r_p ~ 2.18 r_e.
        r_e = 8.0
        img = sersic_image(n=1.0, r_e=r_e)
        r_p = petrosian_radius(img, (64.0, 64.0), eta=0.2)
        assert r_p / r_e == pytest.approx(2.18, abs=0.15)

    def test_smaller_for_concentrated_profiles(self):
        r1 = petrosian_radius(sersic_image(n=1.0), (64.0, 64.0))
        r4 = petrosian_radius(sersic_image(n=4.0), (64.0, 64.0))
        assert r4 < r1

    def test_bad_eta(self):
        with pytest.raises(ValueError):
            petrosian_radius(sersic_image(), (64.0, 64.0), eta=1.5)

    def test_flat_image_never_crosses(self):
        with pytest.raises(ValueError):
            petrosian_radius(np.ones((65, 65)), (32.0, 32.0))

    def test_scales_with_r_e(self):
        r_small = petrosian_radius(sersic_image(r_e=5.0), (64.0, 64.0))
        r_big = petrosian_radius(sersic_image(r_e=10.0), (64.0, 64.0))
        assert r_big / r_small == pytest.approx(2.0, rel=0.15)


class TestGalmorphPipeline:
    def _hdu(self, data, object_name="G-1"):
        header = Header()
        header.set("OBJECT", object_name)
        return ImageHDU(np.asarray(data, dtype=np.float32), header)

    def test_valid_measurement(self, small_cluster):
        factory = CutoutFactory(small_cluster)
        bright = min(factory.members(), key=lambda m: m.magnitude)
        result = galmorph(
            factory.render_cutout(bright.galaxy_id),
            redshift=bright.redshift,
            pix_scale=0.4 / 3600.0,
        )
        assert result.valid
        assert np.isfinite(result.concentration)
        assert np.isfinite(result.asymmetry)
        assert result.petrosian_radius_kpc > 0

    def test_empty_image_flagged_invalid(self):
        rng = np.random.default_rng(0)
        hdu = self._hdu(rng.normal(5, 1, (64, 64)))
        result = galmorph(hdu, redshift=0.05, pix_scale=1e-4)
        assert not result.valid
        assert "no significant central source" in result.error

    def test_no_data_flagged_invalid(self):
        result = galmorph(ImageHDU(None), redshift=0.05, pix_scale=1e-4)
        assert not result.valid

    def test_galaxy_id_from_header(self):
        rng = np.random.default_rng(0)
        hdu = self._hdu(rng.normal(5, 1, (64, 64)), object_name="NGP9_F323")
        assert galmorph(hdu, 0.05, 1e-4).galaxy_id == "NGP9_F323"

    def test_non_flat_cosmology_unsupported(self):
        hdu = self._hdu(np.zeros((16, 16)))
        with pytest.raises(NotImplementedError):
            galmorph(hdu, 0.05, 1e-4, flat=False)

    def test_never_raises_on_garbage_pixels(self):
        hdu = self._hdu(np.zeros((64, 64)))
        result = galmorph(hdu, 0.05, 1e-4)
        assert isinstance(result, MorphologyResult)
        assert not result.valid

    def test_type_separation_on_rendered_cutouts(self, small_cluster):
        factory = CutoutFactory(small_cluster)
        by_type: dict[MorphType, list[float]] = {}
        for member in factory.members():
            result = galmorph(
                factory.render_cutout(member.galaxy_id),
                redshift=member.redshift,
                pix_scale=0.4 / 3600.0,
            )
            if result.valid:
                by_type.setdefault(member.morph, []).append(result.concentration)
        if MorphType.ELLIPTICAL in by_type and MorphType.SPIRAL in by_type:
            assert np.mean(by_type[MorphType.ELLIPTICAL]) > np.mean(by_type[MorphType.SPIRAL])

    def test_as_row_converts_nan_to_none(self):
        result = MorphologyResult("g", valid=False)
        row = result.as_row()
        assert row["surface_brightness"] is None
        assert row["valid"] is False
