"""Measurement calibration: known inputs, recovered parameters.

These tests treat the morphology pipeline as an instrument and calibrate
it against images with *known* structural parameters across the S/N range
the campaign actually sees — the quantitative grounding behind the Figure 7
claims.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import ndimage

from repro.morphology.measures import asymmetry_index, concentration_index
from repro.morphology.petrosian import petrosian_radius
from repro.morphology.pipeline import galmorph
from repro.fits.hdu import ImageHDU
from repro.fits.header import Header
from repro.sky.profiles import pixel_integrated_sersic


def observed_sersic(n, r_e=6.0, flux=2e4, sky=5.0, noise=1.0, size=65, seed=0, psf=1.2):
    c = (size - 1) / 2.0
    img = pixel_integrated_sersic((size, size), (c, c), r_e, n, total_flux=flux)
    img = ndimage.gaussian_filter(img, psf, mode="constant")
    rng = np.random.default_rng(seed)
    return (img + sky + rng.normal(0, noise, img.shape)).astype(np.float32)


def measure(img, galaxy_id="cal"):
    header = Header()
    header.set("OBJECT", galaxy_id)
    return galmorph(ImageHDU(img, header), redshift=0.05, pix_scale=0.4 / 3600.0)


class TestConcentrationCalibration:
    @pytest.mark.parametrize("n,c_lo,c_hi", [(1.0, 2.1, 3.0), (2.5, 2.8, 3.8), (4.0, 3.1, 4.4)])
    def test_sersic_index_maps_to_concentration(self, n, c_lo, c_hi):
        result = measure(observed_sersic(n))
        assert result.valid
        assert c_lo < result.concentration < c_hi

    def test_separates_disks_from_spheroids(self):
        """Within the Petrosian-limited aperture the index separates n=1
        disks cleanly from n>=2 spheroids; above n~2 it saturates (the
        known behaviour of aperture-limited concentration measures)."""
        values = {n: measure(observed_sersic(n)).concentration for n in (1.0, 2.0, 3.0, 4.0)}
        assert values[2.0] > values[1.0] + 0.5
        for n in (2.0, 3.0, 4.0):
            assert values[n] > 3.0
            assert abs(values[n] - values[2.0]) < 0.2  # saturation plateau

    def test_stable_across_noise_realisations(self):
        values = [measure(observed_sersic(2.0, seed=s)).concentration for s in range(5)]
        assert np.std(values) < 0.15


class TestAsymmetryCalibration:
    def test_zero_for_clean_symmetric(self):
        result = measure(observed_sersic(1.0, noise=0.3))
        assert result.asymmetry < 0.03

    def test_recovers_injected_clump_flux(self):
        """A increases monotonically with the injected asymmetric flux."""
        measured = []
        for clump_fraction in (0.0, 0.1, 0.25, 0.5):
            img = observed_sersic(1.0, noise=0.3)
            if clump_fraction > 0:
                yy, xx = np.indices(img.shape, dtype=float)
                blob = np.exp(-((xx - 44) ** 2 + (yy - 36) ** 2) / (2 * 2.0**2))
                img = img + (clump_fraction * 2e4 / blob.sum() * blob).astype(np.float32)
            measured.append(measure(img).asymmetry)
        assert measured == sorted(measured)
        assert measured[-1] > 0.15

    def test_noise_correction_keeps_bias_small(self):
        """For a symmetric galaxy the noise-corrected A stays near zero even
        at low S/N (the correction removes the noise floor)."""
        low_snr = observed_sersic(1.0, flux=4e3, noise=2.0, seed=3)
        result = measure(low_snr)
        assert result.valid
        assert result.asymmetry < 0.12


class TestPetrosianCalibration:
    def test_radius_tracks_r_e(self):
        ratios = []
        for r_e in (4.0, 6.0, 8.0):
            img = observed_sersic(1.0, r_e=r_e, size=97) - 5.0
            r_p = petrosian_radius(img, (48.0, 48.0))
            ratios.append(r_p / r_e)
        # the exponential-disk ratio ~2.2, stable across sizes
        assert all(1.9 < r < 2.5 for r in ratios)
        assert np.std(ratios) < 0.15


class TestSnrLimits:
    def test_bright_end_always_valid(self):
        for seed in range(5):
            assert measure(observed_sersic(2.0, flux=5e4, seed=seed)).valid

    def test_faint_end_flagged_not_crashed(self):
        results = [measure(observed_sersic(2.0, flux=50.0, seed=s)) for s in range(5)]
        assert all(r.error or r.valid for r in results)
        assert any(not r.valid for r in results)

    def test_measured_values_degrade_gracefully(self):
        """Low-S/N measurements stay within a factor ~2 of the bright-end
        values rather than diverging."""
        bright = measure(observed_sersic(4.0, flux=1e5, seed=1))
        faint = measure(observed_sersic(4.0, flux=8e3, seed=1))
        assert bright.valid and faint.valid
        assert faint.concentration == pytest.approx(bright.concentration, rel=0.5)
