"""Stacked-kernel contract tests: parity, shape handling, shm lifecycle.

The stacked batch pipeline promises three things beyond raw speed:

1. numeric parity <= 1e-9 with the preserved seed kernels in
   :mod:`repro.morphology.reference` on *any* stackable cutout — square
   or not, even-sized or not;
2. batch-composition invariance — splitting a batch into chunks (what the
   shared-memory pool does) reproduces the whole-batch results bit for
   bit, and mixed-shape batches split into shape groups without any row
   contaminating another;
3. a leak-free shared-memory lifecycle — no segment outlives the batch
   call, whether the pool shuts down cleanly or a worker dies mid-chunk.

These tests pin all three.
"""

from __future__ import annotations

import multiprocessing
import os
from pathlib import Path

import numpy as np
import pytest

from repro.fits.hdu import ImageHDU
from repro.morphology import pipeline
from repro.morphology.pipeline import (
    GalmorphTask,
    galmorph_batch,
    galmorph_batch_shapes,
    galmorph_stacked,
)
from repro.morphology.reference import galmorph_reference
from repro.sky.cluster import GalaxyRecord, MorphType
from repro.sky.galaxy import render_galaxy_image

PARITY = 1e-9

FIELDS = (
    "surface_brightness",
    "concentration",
    "asymmetry",
    "petrosian_radius_arcsec",
    "petrosian_radius_kpc",
)

TYPES = [MorphType.ELLIPTICAL, MorphType.SPIRAL, MorphType.IRREGULAR, MorphType.LENTICULAR]


def _render(i: int) -> np.ndarray:
    galaxy = GalaxyRecord(
        f"g{i}", 150.0, 2.0, 0.05, 17.0, TYPES[i % 4], 2.5, 0.25, 30.0, 0.2, 0.1
    )
    return np.asarray(
        render_galaxy_image(galaxy, rng=np.random.default_rng(500 + i)), dtype=float
    )


def _task(data: np.ndarray, gid: str) -> GalmorphTask:
    return GalmorphTask(
        image=ImageHDU(np.array(data)),
        redshift=0.05,
        pix_scale=0.4 / 3600.0,
        galaxy_id=gid,
    )


def _assert_parity(tasks: list[GalmorphTask], results) -> None:
    """Every batch row matches the scalar seed reference to <= PARITY."""
    assert len(results) == len(tasks)
    for task, got in zip(tasks, results):
        ref = galmorph_reference(
            task.image,
            redshift=task.redshift,
            pix_scale=task.pix_scale,
            galaxy_id=task.galaxy_id,
        )
        assert got.valid == ref.valid, task.galaxy_id
        for field in FIELDS:
            a, b = getattr(got, field), getattr(ref, field)
            if np.isnan(a) and np.isnan(b):
                continue
            assert abs(a - b) <= PARITY, (task.galaxy_id, field, a, b)


class TestShapeParity:
    """Parity vs reference.py beyond the comfortable square/even case."""

    @pytest.mark.parametrize("shape", [(64, 48), (48, 64), (63, 57), (57, 63), (61, 61)])
    def test_non_square_and_odd_cutouts(self, shape):
        h, w = shape
        tasks = [_task(_render(i)[:h, :w], f"crop-{i}") for i in range(4)]
        _assert_parity(tasks, galmorph_batch(tasks, processes=0))

    def test_mixed_shape_batch_splits_into_groups(self):
        tasks = (
            [_task(_render(i), f"full-{i}") for i in range(3)]
            + [_task(_render(3 + i)[:, :48], f"wide-{i}") for i in range(2)]
            + [_task(_render(5 + i)[:63, :57], f"odd-{i}") for i in range(2)]
        )
        shapes = galmorph_batch_shapes(tasks)
        assert shapes == {(64, 64): 3, (64, 48): 2, (63, 57): 2}
        _assert_parity(tasks, galmorph_batch(tasks, processes=0))

    def test_mixed_shape_rows_match_single_shape_runs(self):
        """A row's result is identical whether its shape group rode alone
        or alongside other groups — no cross-group contamination."""
        full = [_task(_render(i), f"full-{i}") for i in range(2)]
        odd = [_task(_render(2 + i)[:63, :57], f"odd-{i}") for i in range(2)]
        mixed = galmorph_batch(full + odd, processes=0)
        alone = galmorph_batch(full, processes=0) + galmorph_batch(odd, processes=0)
        for got, want in zip(mixed, alone):
            assert got == want

    def test_single_row_batch(self):
        tasks = [_task(_render(0), "solo")]
        results = galmorph_batch(tasks, processes=0)
        _assert_parity(tasks, results)
        assert results[0].valid

    def test_nan_pixels_flag_only_their_row(self):
        data = _render(1)
        data[30:34, 30:34] = np.nan
        tasks = [_task(_render(0), "clean"), _task(data, "nan-row")]
        results = galmorph_batch(tasks, processes=0)
        assert results[0].valid
        assert not results[1].valid
        _assert_parity(tasks, results)

    def test_masked_border_pixels_match_reference(self):
        """Sentinel-masked (zeroed) pixels are data, not geometry: both
        paths must measure the same values on them."""
        data = _render(2)
        data[:2, :] = 0.0
        data[:, -2:] = 0.0
        tasks = [_task(data, "masked")]
        _assert_parity(tasks, galmorph_batch(tasks, processes=0))


class TestChunkInvariance:
    """The shared-memory pool property: chunking never changes results."""

    def _stack_inputs(self, n: int):
        stack = np.stack([_render(i) for i in range(n)])
        ids = [f"g{i}" for i in range(n)]
        z = np.full(n, 0.05)
        pix = np.full(n, 0.4 / 3600.0)
        zp = np.full(n, 25.0)
        ho = np.full(n, 70.0)
        om = np.full(n, 0.3)
        return stack, ids, z, pix, zp, ho, om

    def test_chunked_equals_whole_bitwise(self):
        stack, ids, z, pix, zp, ho, om = self._stack_inputs(8)
        whole = galmorph_stacked(stack, ids, z, pix, zp, ho, om)
        for split in (1, 3, 4, 7):
            parts = galmorph_stacked(
                stack[:split], ids[:split], z[:split], pix[:split],
                zp[:split], ho[:split], om[:split],
            ) + galmorph_stacked(
                stack[split:], ids[split:], z[split:], pix[split:],
                zp[split:], ho[split:], om[split:],
            )
            for got, want in zip(parts, whole):
                assert got == want, split


def _shm_segments() -> set[str]:
    shm_dir = Path("/dev/shm")
    if not shm_dir.is_dir():
        pytest.skip("no /dev/shm on this platform")
    return {p.name for p in shm_dir.iterdir() if p.name.startswith("psm_")}


class TestSharedMemoryLifecycle:
    """No segment outlives the batch call, clean or crashed."""

    def _tasks(self, n: int = 6) -> list[GalmorphTask]:
        return [_task(_render(i), f"g{i}") for i in range(n)]

    def test_no_leaked_segments_after_pool_shutdown(self):
        tasks = self._tasks()
        before = _shm_segments()
        pooled = galmorph_batch(tasks, processes=2)
        leaked = _shm_segments() - before
        assert leaked == set()
        local = galmorph_batch(tasks, processes=0)
        for got, want in zip(pooled, local):
            assert got == want

    def test_no_leaked_segments_after_worker_crash(self, monkeypatch):
        if multiprocessing.get_start_method() != "fork":
            pytest.skip("crash injection relies on fork inheriting the patch")

        def die(chunk):
            os._exit(3)

        monkeypatch.setattr(pipeline, "_stacked_chunk_body", die)
        tasks = self._tasks()
        before = _shm_segments()
        # The shm pool's workers all die; the parent must unlink every
        # segment it created and fall back to the pickled pool (whose
        # workers run the scalar path, untouched by the patch).
        results = galmorph_batch(tasks, processes=2)
        leaked = _shm_segments() - before
        assert leaked == set()
        _assert_parity(tasks, results)

    def test_chaos_recoverable_profile_leaks_no_segments(self):
        """End-to-end resilience acceptance: the chaos ``recoverable``
        profile recovers byte-identical output and the run leaves no
        shared-memory segment behind."""
        from repro.faults.chaos import run_chaos_campaign

        before = _shm_segments()
        report = run_chaos_campaign(profile="recoverable", clusters=["A3526"])
        assert report.recovered
        assert report.passed
        assert _shm_segments() - before == set()

    def test_worker_crash_counts_shm_fallback(self, monkeypatch):
        from repro import telemetry

        if multiprocessing.get_start_method() != "fork":
            pytest.skip("crash injection relies on fork inheriting the patch")

        def die(chunk):
            os._exit(3)

        monkeypatch.setattr(pipeline, "_stacked_chunk_body", die)
        telemetry.enable()
        try:
            galmorph_batch(self._tasks(4), processes=2)
            counter = telemetry.get_registry().get("galmorph_shm_fallback_total")
            assert counter is not None and counter.total() >= 1
        finally:
            telemetry.disable()
