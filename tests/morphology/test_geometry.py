"""Properties of the shared cutout-geometry cache.

The cache is the hot-path backbone of the morphology pipeline and is
shared across threads by :class:`repro.condor.local.LocalExecutor`, so its
contracts are safety-critical: every handed-out array is **read-only**,
repeated lookups hit the memo (identity, not just equality), the memo is
bounded, and concurrent mixed-key access from a thread pool never corrupts
a result.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.morphology.geometry import (
    CutoutGeometry,
    border_mask,
    index_grids,
    shared_geometry,
)

centers = st.tuples(
    st.floats(0.0, 63.0, allow_nan=False), st.floats(0.0, 63.0, allow_nan=False)
)


class TestValues:
    def test_index_grids_match_numpy(self):
        yy, xx = index_grids((5, 7))
        ryy, rxx = np.indices((5, 7), dtype=float)
        np.testing.assert_array_equal(yy, ryy)
        np.testing.assert_array_equal(xx, rxx)

    def test_border_mask_matches_manual(self):
        mask = border_mask((6, 8), 2)
        manual = np.zeros((6, 8), dtype=bool)
        manual[:2] = manual[-2:] = True
        manual[:, :2] = manual[:, -2:] = True
        np.testing.assert_array_equal(mask, manual)

    @given(center=centers, radius=st.floats(0.5, 40.0, allow_nan=False))
    def test_aperture_matches_inline_computation(self, center, radius):
        geom = CutoutGeometry((64, 64))
        yy, xx = np.indices((64, 64), dtype=float)
        expected = np.hypot(yy - center[0], xx - center[1]) <= radius
        np.testing.assert_array_equal(geom.aperture_mask(center, radius), expected)
        assert geom.aperture_npix(center, radius) == int(expected.sum())
        np.testing.assert_array_equal(
            geom.aperture_weights(center, radius), expected.ravel().astype(float)
        )

    @given(center=centers)
    def test_sorted_radii_is_a_permutation(self, center):
        geom = CutoutGeometry((32, 32))
        r_sorted, order = geom.sorted_radii(center)
        assert np.all(np.diff(r_sorted) >= 0.0)
        np.testing.assert_array_equal(np.sort(order), np.arange(32 * 32))
        np.testing.assert_allclose(geom.radius_map(center).ravel()[order], r_sorted)

    def test_radial_bin_counts_consistent(self):
        geom = CutoutGeometry((48, 48))
        flat_idx, nbins, counts = geom.radial_bin_index((23.5, 23.5), 1.0)
        assert counts.shape == (nbins,)
        assert counts.sum() == (flat_idx < nbins).sum()

    def test_rejects_non_2d_shape(self):
        with pytest.raises(ValueError):
            CutoutGeometry((4, 4, 4))


class TestReadOnly:
    """Every cached product refuses mutation — the sharing contract."""

    def test_all_products_readonly(self):
        geom = CutoutGeometry((16, 16))
        center = (7.5, 7.5)
        r_sorted, order = geom.sorted_radii(center)
        flat_idx, _, counts = geom.radial_bin_index(center, 1.0)
        arrays = [
            geom.yy, geom.xx,
            geom.radius_map(center),
            r_sorted, order,
            geom.aperture_mask(center, 5.0),
            geom.aperture_weights(center, 5.0),
            flat_idx, counts,
            border_mask((16, 16), 2),
        ]
        for arr in arrays:
            assert not arr.flags.writeable
            with pytest.raises(ValueError):
                arr[tuple(0 for _ in arr.shape)] = 1


class TestMemoisation:
    def test_repeat_lookups_return_same_object(self):
        geom = CutoutGeometry((16, 16))
        center = (7.5, 7.5)
        assert geom.radius_map(center) is geom.radius_map(center)
        assert geom.aperture_mask(center, 5.0) is geom.aperture_mask(center, 5.0)
        assert geom.sorted_radii(center)[0] is geom.sorted_radii(center)[0]

    def test_nearby_radii_share_a_mask(self):
        """Radii within the 1e-9 parity tolerance key to one mask."""
        geom = CutoutGeometry((16, 16))
        assert geom.aperture_mask((7.5, 7.5), 5.0) is geom.aperture_mask(
            (7.5, 7.5), 5.0 + 1e-12
        )

    def test_memo_is_bounded(self):
        geom = CutoutGeometry((8, 8), max_entries=4)
        for i in range(10):
            geom.radius_map((float(i), 0.0))
        assert len(geom._radius_maps) <= 4

    def test_shared_geometry_per_shape(self):
        assert shared_geometry((16, 16)) is shared_geometry((16, 16))
        assert shared_geometry((16, 16)) is not shared_geometry((16, 17))


class TestThreadSafety:
    def test_concurrent_mixed_key_access(self):
        """Hammer one instance from a thread pool with overlapping keys;
        every returned array must equal a freshly computed truth."""
        geom = CutoutGeometry((32, 32), max_entries=8)
        yy, xx = np.indices((32, 32), dtype=float)

        def worker(i: int) -> bool:
            center = (float(i % 5) + 0.5, float(i % 3) + 0.5)
            radius = 3.0 + (i % 4)
            mask = geom.aperture_mask(center, radius)
            expected = np.hypot(yy - center[0], xx - center[1]) <= radius
            r_sorted, order = geom.sorted_radii(center)
            return (
                bool(np.array_equal(mask, expected))
                and geom.aperture_npix(center, radius) == int(expected.sum())
                and bool(np.all(np.diff(r_sorted) >= 0.0))
                and not mask.flags.writeable
            )

        with ThreadPoolExecutor(max_workers=8) as pool:
            assert all(pool.map(worker, range(200)))
