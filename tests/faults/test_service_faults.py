"""Tests for fault application at the VO service boundary.

Exercises the shared ``pre_call_fault``/``mangle_payload``/``truncate_table``
helpers through a real cone-search service, including the cost semantics of
the "failed attempts cost money" contract: a timeout charges the full
transport timeout, a transient error one request latency.
"""

from __future__ import annotations

import pytest

from repro.core.errors import (
    PermanentServiceError,
    ServiceTimeoutError,
    TransientServiceError,
)
from repro.faults.plan import FaultPlan, ServiceFaultSpec
from repro.services.conesearch import SyntheticPhotometryCatalog
from repro.services.faulting import DAMAGE_KEEP_FRACTION, mangle_payload
from repro.services.protocol import ConeSearchRequest
from repro.services.transport import CostMeter, TransportModel


@pytest.fixture()
def request_for(small_cluster):
    return ConeSearchRequest(
        ra=small_cluster.center.ra,
        dec=small_cluster.center.dec,
        sr=1.1 * small_cluster.tidal_radius_deg,
    )


def service(small_cluster, plan: FaultPlan, meter: CostMeter | None = None):
    return SyntheticPhotometryCatalog(
        [small_cluster], meter=meter, faults=plan.injector()
    )


class TestInjectedServiceFaults:
    def test_timeout_charges_full_transport_timeout(self, small_cluster, request_for):
        plan = FaultPlan(
            services={"cone-query": ServiceFaultSpec(timeout_rate=1.0, max_faults=1)}
        )
        meter = CostMeter()
        svc = service(small_cluster, plan, meter)
        with pytest.raises(ServiceTimeoutError):
            svc.search(request_for)
        # Waiting for nothing costs the whole timeout window.
        assert meter.total("cone-query") == pytest.approx(TransportModel().timeout_s)
        # The fault budget is spent: the retry succeeds and charges normally.
        table = svc.search(request_for)
        assert len(table) == small_cluster.n_galaxies

    def test_transient_error_charges_one_request_latency(
        self, small_cluster, request_for
    ):
        plan = FaultPlan(
            services={"cone-query": ServiceFaultSpec(error_rate=1.0, max_faults=1)}
        )
        meter = CostMeter()
        svc = service(small_cluster, plan, meter)
        with pytest.raises(TransientServiceError):
            svc.search(request_for)
        assert meter.total("cone-query") == pytest.approx(
            TransportModel().sia_query.request_latency_s
        )

    def test_permanent_spec_raises_permanent_error(self, small_cluster, request_for):
        plan = FaultPlan(
            services={
                "cone-query": ServiceFaultSpec(error_rate=1.0, permanent=True)
            }
        )
        with pytest.raises(PermanentServiceError):
            service(small_cluster, plan).search(request_for)

    def test_partial_response_truncated_and_annotated(self, small_cluster, request_for):
        plan = FaultPlan(
            services={"cone-query": ServiceFaultSpec(partial_rate=1.0, max_faults=1)}
        )
        table = service(small_cluster, plan).search(request_for)
        full = small_cluster.n_galaxies
        assert len(table) == max(1, int(full * DAMAGE_KEEP_FRACTION))
        assert table.params["fault_partial"] == f"{len(table)}/{full}"

    def test_fault_free_service_untouched(self, small_cluster, request_for):
        table = service(small_cluster, FaultPlan()).search(request_for)
        assert len(table) == small_cluster.n_galaxies
        assert "fault_partial" not in table.params


class TestMangledPayloads:
    def test_truncation_breaks_fits_block_alignment(self):
        payload = b"SIMPLE" + b"\0" * (2880 * 4 - 6)
        assert len(payload) % 2880 == 0
        damaged = mangle_payload("cutout-fetch", payload)
        assert 0 < len(damaged) < len(payload)
        assert len(damaged) % 2880 != 0  # the detector the portal relies on

    def test_tiny_payload_keeps_at_least_one_byte(self):
        assert mangle_payload("cutout-fetch", b"x") == b"x"
