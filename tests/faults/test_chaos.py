"""Tests for the chaos campaign harness and the recovery invariant.

These are the slowest tests in the suite (each campaign runs a baseline
*and* a chaos analysis end to end), so they stick to the smallest
demonstration cluster.
"""

from __future__ import annotations

import json

import pytest

from repro.faults.chaos import ChaosReport, ClusterOutcome, run_chaos_campaign
from repro.faults.plan import FaultPlan


def outcome(**overrides) -> ClusterOutcome:
    base = dict(
        cluster="A3526",
        baseline_sha256="a" * 64,
        chaos_sha256="a" * 64,
        state="completed",
        attempts=1,
        requeues=0,
    )
    base.update(overrides)
    return ClusterOutcome(**base)


class TestReportSemantics:
    def test_recovered_requires_identical_completion(self):
        good = ChaosReport("p", 1, True, [outcome()])
        assert good.recovered and good.passed and good.exit_code() == 0

        mismatched = ChaosReport("p", 1, True, [outcome(chaos_sha256="b" * 64)])
        assert not mismatched.recovered and mismatched.exit_code() == 1

        failed = ChaosReport(
            "p", 1, True, [outcome(state="failed", chaos_sha256=None, error="boom")]
        )
        assert not failed.recovered and failed.exit_code() == 1

    def test_graceful_needs_terminal_states_with_errors(self):
        hygienic = ChaosReport(
            "p", 1, False,
            [outcome(state="failed", chaos_sha256=None, error="all pools down")],
        )
        assert hygienic.graceful and hygienic.passed
        assert hygienic.exit_code() == 1  # degradation is never a silent success

        wedged = ChaosReport("p", 1, False, [outcome(state="running")])
        assert not wedged.graceful
        silent = ChaosReport(
            "p", 1, False, [outcome(state="failed", chaos_sha256=None, error="")]
        )
        assert not silent.graceful

    def test_as_dict_is_json_ready_and_sorted(self):
        report = ChaosReport(
            "p", 1, True, [outcome()], injected={"b/x": 1, "a/y": 2}
        )
        payload = json.loads(json.dumps(report.as_dict()))
        assert list(payload["injected_faults"]) == ["a/y", "b/x"]
        assert payload["total_injected"] == 3
        assert payload["clusters"][0]["identical"] is True

    def test_summary_mentions_the_invariant(self):
        held = ChaosReport("p", 1, True, [outcome()])
        assert "HELD" in held.summary()
        violated = ChaosReport("p", 1, True, [outcome(chaos_sha256="b" * 64)])
        assert "VIOLATED" in violated.summary()


@pytest.mark.slow
class TestCampaigns:
    def test_recoverable_profile_recovers_byte_identical(self):
        report = run_chaos_campaign(profile="recoverable", clusters=["A3526"])
        assert report.recovered, report.summary()
        assert report.exit_code() == 0
        # The chaos run actually hurt: faults were injected, the stale
        # replica was manufactured, and the uwisc outage tripped a breaker.
        assert report.outcomes[0].requeues >= 1
        assert sum(report.injected.values()) > 0
        assert report.stale_replicas_created >= 1
        assert report.breaker_states.get("uwisc") == "open"

    def test_degraded_archives_profile_degrades_gracefully(self):
        report = run_chaos_campaign(profile="degraded-archives", clusters=["A3526"])
        assert not report.recoverable
        assert report.graceful and report.passed
        assert report.exit_code() == 1
        # Output exists but is annotated (or the cluster failed loudly).
        out = report.outcomes[0]
        assert out.state in ("completed", "failed")
        if out.state == "completed":
            assert out.degraded and not out.identical

    def test_hand_crafted_empty_plan_is_trivially_recoverable(self):
        report = run_chaos_campaign(
            profile="custom", clusters=["A3526"], plan=FaultPlan()
        )
        assert report.recovered
        assert report.injected == {}
        assert report.outcomes[0].attempts == 1

    def test_unknown_profile_raises_value_error(self):
        with pytest.raises(ValueError, match="unknown fault profile"):
            run_chaos_campaign(profile="nope", clusters=["A3526"])
