"""Tests for the ``repro chaos`` CLI verb and its exit-code contract."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


class TestChaosCli:
    def test_unknown_profile_exits_2(self, capsys):
        assert main(["chaos", "--profile", "nope", "--cluster", "A3526"]) == 2
        err = capsys.readouterr().err
        assert "unknown fault profile" in err
        assert "recoverable" in err  # lists the valid names

    @pytest.mark.slow
    def test_recoverable_campaign_exits_0_with_json(self, capsys):
        code = main(["chaos", "--cluster", "A3526", "--json"])
        out = capsys.readouterr().out
        payload = json.loads(out)
        assert code == 0
        assert payload["recovered"] is True
        assert payload["profile"] == "recoverable"
        assert payload["clusters"][0]["identical"] is True

    @pytest.mark.slow
    def test_recoverable_campaign_summary_reports_invariant(self, capsys):
        code = main(["chaos", "--cluster", "A3526"])
        out = capsys.readouterr().out
        assert code == 0
        assert "recovery invariant: HELD" in out

    @pytest.mark.slow
    def test_degraded_campaign_exits_1(self, capsys):
        code = main(["chaos", "--profile", "degraded-archives", "--cluster", "A3526"])
        out = capsys.readouterr().out
        assert code == 1
        assert "degradation hygiene" in out
