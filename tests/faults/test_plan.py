"""Tests for fault plans, spec validation and injector determinism."""

from __future__ import annotations

import pytest

from repro.faults.plan import (
    SERVICE_ACTIONS,
    FaultInjector,
    FaultPlan,
    RlsFaultSpec,
    ServiceFaultSpec,
    SiteFaultSpec,
)


class TestSpecValidation:
    def test_rates_must_sum_within_unit_interval(self):
        with pytest.raises(ValueError, match="sum"):
            ServiceFaultSpec(timeout_rate=0.6, error_rate=0.6)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            ServiceFaultSpec(timeout_rate=-0.1, error_rate=0.5)

    def test_negative_max_faults_rejected(self):
        with pytest.raises(ValueError, match="max_faults"):
            ServiceFaultSpec(timeout_rate=0.1, max_faults=-1)

    def test_site_flakiness_bounds(self):
        with pytest.raises(ValueError, match="flakiness"):
            SiteFaultSpec(flakiness=1.5)

    def test_site_outage_window_ordering(self):
        with pytest.raises(ValueError, match="ends before it starts"):
            SiteFaultSpec(outages=((10.0, 5.0),))

    def test_rls_rate_bounds(self):
        with pytest.raises(ValueError, match="lookup_timeout_rate"):
            RlsFaultSpec(lookup_timeout_rate=2.0)

    def test_unknown_service_stream_rejected(self):
        with pytest.raises(ValueError, match="unknown service fault streams"):
            FaultPlan(services={"warp-drive": ServiceFaultSpec(timeout_rate=0.1)})

    def test_valid_plan_compiles(self):
        plan = FaultPlan(services={"cone-query": ServiceFaultSpec(timeout_rate=0.5)})
        assert isinstance(plan.injector(), FaultInjector)


def _actions(injector: FaultInjector, stream: str, n: int) -> list[str]:
    return [injector.service_action(stream) for _ in range(n)]


class TestServiceActionDeterminism:
    PLAN = FaultPlan(
        seed=99,
        services={
            "cone-query": ServiceFaultSpec(timeout_rate=0.3, malformed_rate=0.2),
            "sia-query": ServiceFaultSpec(error_rate=0.4),
        },
    )

    def test_two_injectors_same_plan_agree(self):
        a, b = self.PLAN.injector(), self.PLAN.injector()
        assert _actions(a, "cone-query", 50) == _actions(b, "cone-query", 50)
        assert _actions(a, "sia-query", 50) == _actions(b, "sia-query", 50)

    def test_streams_are_independent(self):
        # Interleaving calls across streams must not perturb either schedule.
        a, b = self.PLAN.injector(), self.PLAN.injector()
        serial = _actions(a, "cone-query", 30)
        interleaved = []
        for _ in range(30):
            interleaved.append(b.service_action("cone-query"))
            b.service_action("sia-query")
        assert serial == interleaved

    def test_actions_are_legal(self):
        inj = self.PLAN.injector()
        assert set(_actions(inj, "cone-query", 200)) <= set(SERVICE_ACTIONS)

    def test_different_seeds_differ(self):
        other = FaultPlan(
            seed=100,
            services={"cone-query": ServiceFaultSpec(timeout_rate=0.3, malformed_rate=0.2)},
        )
        assert _actions(self.PLAN.injector(), "cone-query", 100) != _actions(
            other.injector(), "cone-query", 100
        )

    def test_unconfigured_stream_is_always_ok(self):
        inj = self.PLAN.injector()
        assert _actions(inj, "cutout-fetch", 20) == ["ok"] * 20
        assert inj.total_injected() == 0  # no bookkeeping for unconfigured streams


class TestFaultBudgets:
    def test_max_faults_caps_stream(self):
        plan = FaultPlan(
            services={"cone-query": ServiceFaultSpec(timeout_rate=1.0, max_faults=2)}
        )
        inj = plan.injector()
        fates = _actions(inj, "cone-query", 10)
        assert fates[:2] == ["timeout", "timeout"]
        assert fates[2:] == ["ok"] * 8
        assert inj.injected() == {"cone-query/timeout": 2}

    def test_permanent_flag_reported(self):
        plan = FaultPlan(
            services={
                "xray-query": ServiceFaultSpec(error_rate=1.0, permanent=True),
                "cone-query": ServiceFaultSpec(error_rate=1.0),
            }
        )
        inj = plan.injector()
        assert inj.service_fault_is_permanent("xray-query")
        assert not inj.service_fault_is_permanent("cone-query")
        assert not inj.service_fault_is_permanent("cutout-fetch")

    def test_rls_timeout_budget(self):
        plan = FaultPlan(rls=RlsFaultSpec(lookup_timeout_rate=1.0, max_timeouts=3))
        inj = plan.injector()
        fates = [inj.rls_lookup_times_out() for _ in range(10)]
        assert fates.count(True) == 3
        assert fates[:3] == [True, True, True]
        assert inj.injected() == {"rls/lookup-timeout": 3}


class TestSiteDraws:
    PLAN = FaultPlan(
        seed=7,
        sites={
            "isi": SiteFaultSpec(flakiness=0.4, stage_in_failure_rate=0.4),
            "fnal": SiteFaultSpec(outage_attempts=2, outages=((100.0, 200.0),)),
        },
    )

    def test_identity_keyed_draws_are_order_independent(self):
        # The same (site, node, attempt) key must yield the same verdict no
        # matter how many other draws happened first — the thread-pool
        # determinism contract.
        a, b = self.PLAN.injector(), self.PLAN.injector()
        keys = [("isi", f"n{i}", k) for i in range(10) for k in (1, 2)]
        forward = [a.site_attempt_fails(*key) for key in keys]
        backward = [b.site_attempt_fails(*key) for key in reversed(keys)]
        assert forward == list(reversed(backward))
        assert any(forward) and not all(forward)  # 40% flake: mixed verdicts

    def test_outage_attempts_fail_early_attempts_only(self):
        inj = self.PLAN.injector()
        assert inj.site_attempt_fails("fnal", "j0", 1)
        assert inj.site_attempt_fails("fnal", "j0", 2)
        assert not inj.site_attempt_fails("fnal", "j0", 3)

    def test_outage_window_needs_sim_clock(self):
        inj = self.PLAN.injector()
        assert inj.site_attempt_fails("fnal", "j0", 3, now=150.0)
        assert not inj.site_attempt_fails("fnal", "j0", 3, now=250.0)
        # Without a clock the window is invisible (thread-pool executor).
        assert not inj.site_attempt_fails("fnal", "j0", 3, now=None)

    def test_unknown_site_never_fails(self):
        inj = self.PLAN.injector()
        assert not inj.site_attempt_fails("ufo", "j0", 1)
        assert not inj.transfer_fails("ufo", "j0", 1)

    def test_transfer_draws_deterministic(self):
        a, b = self.PLAN.injector(), self.PLAN.injector()
        keys = [("isi", f"t{i}", 1) for i in range(20)]
        assert [a.transfer_fails(*k) for k in keys] == [
            b.transfer_fails(*k) for k in keys
        ]

    def test_injected_snapshot_labels(self):
        inj = self.PLAN.injector()
        inj.site_attempt_fails("fnal", "j0", 1)
        snapshot = inj.injected()
        assert snapshot == {"site:fnal/outage": 1}
