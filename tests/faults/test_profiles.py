"""Tests for the named chaos profiles."""

from __future__ import annotations

import pytest

from repro.faults.profiles import (
    CANONICAL_RECOVERABLE_PROFILE,
    available_profiles,
    get_profile,
)


class TestProfileRegistry:
    def test_available_profiles_sorted(self):
        names = available_profiles()
        assert names == tuple(sorted(names))
        assert CANONICAL_RECOVERABLE_PROFILE in names

    def test_unknown_profile_lists_alternatives(self):
        with pytest.raises(ValueError) as excinfo:
            get_profile("nope")
        message = str(excinfo.value)
        for name in available_profiles():
            assert name in message

    def test_seed_threads_through(self):
        assert get_profile("recoverable", seed=5).seed == 5
        assert get_profile("degraded-archives", seed=6).seed == 6


class TestProfileClaims:
    def test_canonical_profile_is_recoverable_by_construction(self):
        plan = get_profile(CANONICAL_RECOVERABLE_PROFILE)
        assert plan.recoverable
        # max_faults bounded below the 3-attempt retry ladder on every stream.
        for stream, spec in plan.services.items():
            assert spec.max_faults is not None and spec.max_faults <= 2, stream
            assert not spec.permanent, stream
        # The stale-replica fault and RLS hiccups are bounded too.
        assert plan.rls.max_timeouts is not None
        assert plan.rls.stale_lfns

    def test_degraded_archives_is_unrecoverable_and_permanent(self):
        plan = get_profile("degraded-archives")
        assert not plan.recoverable
        assert plan.services["xray-query"].permanent

    def test_grid_down_covers_every_pool(self):
        plan = get_profile("grid-down")
        assert not plan.recoverable
        assert set(plan.sites) == {"isi", "uwisc", "fnal"}
        for spec in plan.sites.values():
            assert spec.outage_attempts >= 99

    def test_profiles_are_deterministic_objects(self):
        # Frozen dataclasses at the same seed compare equal — the CI
        # byte-identity check leans on this.
        assert get_profile("recoverable", 11) == get_profile("recoverable", 11)
