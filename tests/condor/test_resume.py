"""Tests for rescue-DAG resume in DAGMan and both executors."""

from __future__ import annotations

import pytest

from repro.condor.dagman import DagmanState, NodeStatus
from repro.condor.local import ExecutableRegistry, LocalExecutor
from repro.condor.pool import CondorPool, GridTopology
from repro.condor.rescue import completed_nodes
from repro.condor.simulator import GridSimulator, SimulationOptions
from repro.core.errors import ExecutionError
from repro.rls.rls import ReplicaLocationService
from repro.rls.site import StorageSite
from repro.workflow.abstract import AbstractJob
from repro.workflow.concrete import ComputeNode, ConcreteWorkflow
from repro.workflow.dag import DAG


def chain_dag(n=4) -> DAG:
    dag: DAG[None] = DAG()
    for i in range(n):
        dag.add_node(f"n{i}", None)
    for i in range(n - 1):
        dag.add_edge(f"n{i}", f"n{i+1}")
    return dag


class TestDagmanResume:
    def test_completed_nodes_skipped(self):
        state = DagmanState(chain_dag(), completed={"n0", "n1"})
        assert state.status["n0"] is NodeStatus.DONE
        assert state.status["n2"] is NodeStatus.READY  # released by resume
        assert state.ready_nodes() == ["n2"]

    def test_all_completed_is_complete(self):
        state = DagmanState(chain_dag(2), completed={"n0", "n1"})
        assert state.is_complete() and state.succeeded()

    def test_unknown_completed_rejected(self):
        with pytest.raises(ExecutionError):
            DagmanState(chain_dag(), completed={"ghost"})

    def test_partial_parents(self):
        dag: DAG[None] = DAG()
        for name in "abc":
            dag.add_node(name, None)
        dag.add_edge("a", "c")
        dag.add_edge("b", "c")
        state = DagmanState(dag, completed={"a"})
        assert state.status["c"] is NodeStatus.PENDING
        state.mark_running("b")
        assert state.mark_success("b") == ["c"]


def serial_compute_workflow(n=4) -> ConcreteWorkflow:
    cw = ConcreteWorkflow()
    prev = None
    for i in range(n):
        node = ComputeNode(f"j{i}", AbstractJob(f"d{i}", "galMorph", (), (f"o{i}",)), "isi", "/bin/x")
        cw.add(node)
        if prev:
            cw.link(prev, node.node_id)
        prev = node.node_id
    return cw


class TestSimulatorResume:
    def test_failed_run_then_resume(self):
        cw = serial_compute_workflow(4)
        topo = GridTopology()
        topo.add_pool(CondorPool("isi", slots=2))
        crash = GridSimulator(
            topo, SimulationOptions(runtime_jitter=0.0, forced_failures={"j2": 99}, max_retries=0)
        )
        report = crash.execute(cw)
        assert not report.succeeded
        done = completed_nodes(report)
        assert done == {"j0", "j1"}

        # fix the problem and resubmit the rescue DAG
        healthy = GridSimulator(topo, SimulationOptions(runtime_jitter=0.0))
        resumed = healthy.execute(cw, completed=done)
        assert resumed.succeeded
        # only the remaining two jobs ran
        assert {r.node_id for r in resumed.runs} == {"j2", "j3"}
        assert resumed.makespan == pytest.approx(2 * 12.0, rel=1e-6)


class TestLocalExecutorResume:
    def test_resume_skips_done_work(self):
        sites = {"isi": StorageSite("isi")}
        rls = ReplicaLocationService()
        rls.add_site("isi")
        registry = ExecutableRegistry()
        calls: list[str] = []

        def body(job, inputs):
            calls.append(job.job_id)
            return {job.outputs[0]: b"x"}

        registry.register("galMorph", body)
        cw = serial_compute_workflow(3)
        executor = LocalExecutor(sites, registry, rls)
        report = executor.execute(cw, completed={"j0"})
        assert report.succeeded
        assert calls == ["d1", "d2"]
