"""Tests for ClassAd expressions and matchmaking."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.condor.classads import (
    ClassAd,
    ClassAdError,
    Matchmaker,
    evaluate,
    parse_expression,
)


def ev(expr: str, own=None, other=None):
    return evaluate(parse_expression(expr), own or {}, other or {})


class TestExpressions:
    def test_literals(self):
        assert ev("42") == 42
        assert ev("3.5") == 3.5
        assert ev('"x86"') == "x86"
        assert ev("TRUE") is True
        assert ev("false") is False

    def test_arithmetic_precedence(self):
        assert ev("2 + 3 * 4") == 14
        assert ev("(2 + 3) * 4") == 20
        assert ev("10 / 4") == 2.5
        assert ev("-3 + 5") == 2

    def test_comparisons(self):
        assert ev("2 < 3") is True
        assert ev('"a" == "a"') is True
        assert ev("5 >= 6") is False
        assert ev("1 != 2") is True

    def test_boolean_logic(self):
        assert ev("true && false") is False
        assert ev("true || false") is True
        assert ev("!false") is True
        assert ev("1 < 2 && 3 < 4") is True

    def test_attribute_references(self):
        own = {"Memory": 2048, "Arch": "x86"}
        other = {"RequestMemory": 512}
        assert ev("Memory >= other.RequestMemory", own, other) is True
        assert ev('Arch == "x86"', own) is True
        assert ev("my.Memory > 1000", own) is True

    def test_undefined_semantics(self):
        assert ev("Missing > 5") is False
        assert ev("UNDEFINED == 1") is False
        assert ev("!Missing") is False

    @pytest.mark.parametrize("bad", ["2 +", "&& true", "(1", "1 @ 2", '"unterminated'])
    def test_syntax_errors(self, bad):
        with pytest.raises(ClassAdError):
            parse_expression(bad)

    def test_eval_errors(self):
        with pytest.raises(ClassAdError):
            ev('1 + "x"')
        with pytest.raises(ClassAdError):
            ev("1 / 0")
        with pytest.raises(ClassAdError):
            ev('2 < "a"')

    @given(st.integers(-100, 100), st.integers(-100, 100))
    def test_comparison_property(self, a, b):
        assert ev(f"{a} < {b}") == (a < b)
        assert ev(f"{a} + {b}") == a + b


class TestClassAd:
    def job_ad(self, memory=512) -> ClassAd:
        return ClassAd(
            attributes={"RequestMemory": memory, "Owner": "nvo"},
            requirements='other.Arch == "x86" && other.Memory >= RequestMemory',
            rank="other.Mips",
        )

    def machine_ad(self, memory=2048, mips=100, arch="x86") -> ClassAd:
        return ClassAd(
            attributes={"Memory": memory, "Mips": mips, "Arch": arch},
            requirements='other.Owner != "intruder"',
            rank="0",
        )

    def test_mutual_acceptance(self):
        assert self.job_ad().accepts(self.machine_ad())
        assert self.machine_ad().accepts(self.job_ad())

    def test_requirement_rejection(self):
        assert not self.job_ad(memory=4096).accepts(self.machine_ad(memory=2048))
        assert not self.job_ad().accepts(self.machine_ad(arch="sparc"))

    def test_rank(self):
        assert self.job_ad().rank_of(self.machine_ad(mips=250)) == 250.0

    def test_non_numeric_rank_rejected(self):
        ad = ClassAd(rank='"fast"')
        with pytest.raises(ClassAdError):
            ad.rank_of(ClassAd())


class TestMatchmaker:
    def test_best_rank_wins(self):
        job = ClassAd(
            attributes={"RequestMemory": 256},
            requirements="other.Memory >= RequestMemory",
            rank="other.Mips",
        )
        slow = ClassAd(attributes={"Memory": 1024, "Mips": 50, "name": "slow"})
        fast = ClassAd(attributes={"Memory": 1024, "Mips": 300, "name": "fast"})
        match = Matchmaker().match(job, [slow, fast])
        assert match is fast

    def test_infeasible_returns_none(self):
        job = ClassAd(requirements="other.Memory >= 9999")
        assert Matchmaker().match(job, [ClassAd(attributes={"Memory": 10})]) is None

    def test_machine_requirements_respected(self):
        job = ClassAd(attributes={"Owner": "intruder"})
        machine = ClassAd(
            attributes={"Memory": 10_000},
            requirements='other.Owner != "intruder"',
        )
        assert Matchmaker().match(job, [machine]) is None

    def test_match_all_claims_machines(self):
        jobs = [ClassAd(rank="other.Mips") for _ in range(3)]
        machines = [
            ClassAd(attributes={"Mips": 300}),
            ClassAd(attributes={"Mips": 200}),
        ]
        pairs = Matchmaker().match_all(jobs, machines)
        matched = [machine for _, machine in pairs if machine is not None]
        assert len(matched) == 2
        assert matched[0].attributes["Mips"] == 300
        assert matched[1].attributes["Mips"] == 200
        assert pairs[2][1] is None  # no machine left

    def test_machine_rank_breaks_ties(self):
        job = ClassAd()
        eager = ClassAd(attributes={"name": "eager"}, rank="10")
        neutral = ClassAd(attributes={"name": "neutral"}, rank="0")
        assert Matchmaker().match(job, [neutral, eager]) is eager
