"""Tests for the real local executor and GRAM shim."""

from __future__ import annotations

import pytest

from repro.condor.gram import GramGateway, GridCredential
from repro.condor.local import ExecutableRegistry, LocalExecutor
from repro.core.errors import ExecutionError
from repro.core.provenance import ProvenanceStore
from repro.rls.rls import ReplicaLocationService
from repro.rls.site import StorageSite
from repro.workflow.abstract import AbstractJob
from repro.workflow.concrete import (
    ComputeNode,
    ConcreteWorkflow,
    RegistrationNode,
    TransferKind,
    TransferNode,
)


def environment():
    sites = {name: StorageSite(name) for name in ("A", "B", "U")}
    rls = ReplicaLocationService()
    for name in sites:
        rls.add_site(name)
    registry = ExecutableRegistry()

    def double(job: AbstractJob, inputs: dict[str, bytes]) -> dict[str, bytes]:
        (content,) = inputs.values()
        return {job.outputs[0]: content * 2}

    registry.register("double", double)
    return sites, rls, registry


def figure4_workflow(sites) -> ConcreteWorkflow:
    """move b A->B; run double@B; move out B->U; register out@U."""
    cw = ConcreteWorkflow()
    cw.add(
        TransferNode(
            "x1", "b", TransferKind.STAGE_IN, "A", sites["A"].pfn_for("b"), "B", sites["B"].pfn_for("b")
        )
    )
    cw.add(
        ComputeNode("j1", AbstractJob("d2", "double", ("b",), ("c",)), "B", "/bin/double")
    )
    cw.add(
        TransferNode(
            "x2", "c", TransferKind.STAGE_OUT, "B", sites["B"].pfn_for("c"), "U", sites["U"].pfn_for("c")
        )
    )
    cw.add(RegistrationNode("r1", "c", sites["U"].pfn_for("c"), "U"))
    cw.link("x1", "j1")
    cw.link("j1", "x2")
    cw.link("x2", "r1")
    return cw


class TestRegistry:
    def test_duplicate_rejected(self):
        registry = ExecutableRegistry()
        registry.register("t", lambda j, i: {})
        with pytest.raises(ValueError):
            registry.register("t", lambda j, i: {})

    def test_missing_raises(self):
        with pytest.raises(ExecutionError):
            ExecutableRegistry().get("nope")


class TestLocalExecution:
    def test_figure4_end_to_end(self):
        sites, rls, registry = environment()
        sites["A"].put(sites["A"].pfn_for("b"), b"xy")
        executor = LocalExecutor(sites, registry, rls)
        report = executor.execute(figure4_workflow(sites))
        assert report.succeeded
        assert sites["U"].get(sites["U"].pfn_for("c")) == b"xyxy"
        assert [r.site for r in rls.lookup("c")] == ["U"]
        assert report.transfer_counts == {"stage-in": 1, "stage-out": 1}
        assert report.bytes_moved == 2 + 4

    def test_provenance_recorded(self):
        sites, rls, registry = environment()
        sites["A"].put(sites["A"].pfn_for("b"), b"xy")
        provenance = ProvenanceStore()
        executor = LocalExecutor(sites, registry, rls, provenance=provenance)
        executor.execute(figure4_workflow(sites))
        record = provenance.producer("c")
        assert record is not None
        assert record.transformation == "double"
        assert record.site == "B"
        assert record.success

    def test_missing_input_fails_node_not_run(self):
        sites, rls, registry = environment()
        # 'b' never staged: transfer fails (source file absent)
        executor = LocalExecutor(sites, registry, rls, max_retries=0)
        report = executor.execute(figure4_workflow(sites))
        assert not report.succeeded
        assert "x1" in report.failed_nodes
        assert "j1" in report.unrunnable_nodes

    def test_input_via_rls_replica_at_site(self):
        """A compute node whose input was never staged (local replica) reads
        it through the RLS mapping — the skipped-stage-in path."""
        sites, rls, registry = environment()
        odd_pfn = "gsiftp://B.grid/other/b"
        sites["B"].put(odd_pfn, b"z")
        rls.register("b", odd_pfn, "B")
        cw = ConcreteWorkflow()
        cw.add(ComputeNode("j1", AbstractJob("d", "double", ("b",), ("c",)), "B", "/bin/d"))
        report = LocalExecutor(sites, registry, rls).execute(cw)
        assert report.succeeded
        assert sites["B"].get(sites["B"].pfn_for("c")) == b"zz"

    def test_executable_must_produce_declared_outputs(self):
        sites, rls, registry = environment()

        def bad(job, inputs):
            return {}

        registry.register("bad", bad)
        cw = ConcreteWorkflow()
        cw.add(ComputeNode("j1", AbstractJob("d", "bad", (), ("c",)), "B", "/bin/bad"))
        report = LocalExecutor(sites, registry, rls, max_retries=0).execute(cw)
        assert not report.succeeded

    def test_retries_transient_failure(self):
        sites, rls, registry = environment()
        attempts = {"n": 0}

        def flaky(job, inputs):
            attempts["n"] += 1
            if attempts["n"] < 2:
                raise RuntimeError("transient")
            return {job.outputs[0]: b"ok"}

        registry.register("flaky", flaky)
        cw = ConcreteWorkflow()
        cw.add(ComputeNode("j1", AbstractJob("d", "flaky", (), ("c",)), "B", "/bin/f"))
        report = LocalExecutor(sites, registry, rls, max_retries=2).execute(cw)
        assert report.succeeded
        assert report.retries == 1

    def test_parallel_independent_jobs(self):
        sites, rls, registry = environment()
        for i in range(6):
            sites["A"].put(sites["A"].pfn_for(f"in{i}"), b"d")
            rls.register(f"in{i}", sites["A"].pfn_for(f"in{i}"), "A")
        cw = ConcreteWorkflow()
        for i in range(6):
            cw.add(
                TransferNode(
                    f"x{i}", f"in{i}", TransferKind.STAGE_IN,
                    "A", sites["A"].pfn_for(f"in{i}"), "B", sites["B"].pfn_for(f"in{i}"),
                )
            )
            cw.add(
                ComputeNode(
                    f"j{i}", AbstractJob(f"d{i}", "double", (f"in{i}",), (f"o{i}",)), "B", "/bin/d"
                )
            )
            cw.link(f"x{i}", f"j{i}")
        report = LocalExecutor(sites, registry, rls, max_workers=4).execute(cw)
        assert report.succeeded
        assert len(report.compute_runs) == 6


class TestGram:
    def test_credential_lifetime(self):
        cred = GridCredential("portal-user", issued_at=100.0, lifetime_s=10.0)
        assert cred.is_valid(105.0)
        assert not cred.is_valid(111.0)
        assert not cred.is_valid(99.0)

    def test_gateway_counts_submissions(self):
        gateway = GramGateway()
        cred = GridCredential("svc", issued_at=0.0)
        gateway.submit("isi", cred, now=1.0)
        gateway.submit("isi", cred, now=2.0)
        gateway.submit("fnal", cred, now=3.0)
        assert gateway.submissions == {"isi": 2, "fnal": 1}
        assert gateway.total_submissions() == 3

    def test_expired_proxy_rejected(self):
        gateway = GramGateway()
        cred = GridCredential("svc", issued_at=0.0, lifetime_s=1.0)
        with pytest.raises(ExecutionError):
            gateway.submit("isi", cred, now=2.0)

    def test_executor_uses_gateway(self):
        sites, rls, registry = environment()
        sites["A"].put(sites["A"].pfn_for("b"), b"x")
        gateway = GramGateway()
        import time

        cred = GridCredential("svc", issued_at=time.time() - 10)
        executor = LocalExecutor(sites, registry, rls, gram=gateway, credential=cred)
        executor.execute(figure4_workflow(sites))
        assert gateway.submissions.get("B") == 1
