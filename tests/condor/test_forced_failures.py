"""Tests for forced-failure validation and runtime overrides.

``forced_failures`` is the fault-injection knob shared by the simulator
and the real local executor.  A typo'd node id must fail loudly at
execution start (a silently ignored id makes a chaos test vacuously
pass), and an execute-time override must merge over the configured map.
"""

from __future__ import annotations

import pytest

from repro.condor.local import ExecutableRegistry, LocalExecutor
from repro.condor.pool import CondorPool, GridTopology
from repro.condor.simulator import (
    GridSimulator,
    SimulationOptions,
    merge_forced_failures,
)
from repro.core.errors import ExecutionError
from repro.rls.rls import ReplicaLocationService
from repro.rls.site import StorageSite
from repro.workflow.abstract import AbstractJob
from repro.workflow.concrete import ComputeNode, ConcreteWorkflow


def topo(slots=2) -> GridTopology:
    t = GridTopology()
    t.add_pool(CondorPool("isi", slots=slots, speed=1.0))
    return t


def workflow(n=2) -> ConcreteWorkflow:
    cw = ConcreteWorkflow()
    prev = None
    for i in range(n):
        node = ComputeNode(
            f"j{i}",
            AbstractJob(f"d{i}", "galMorph", (), (f"o{i}",)),
            "isi",
            "/bin/x",
        )
        cw.add(node)
        if prev:
            cw.link(prev, node.node_id)
        prev = node.node_id
    return cw


class TestMergeForcedFailures:
    def test_plain_merge(self):
        merged = merge_forced_failures(workflow(), {"j0": 1}, {"j1": 2})
        assert merged == {"j0": 1, "j1": 2}

    def test_override_wins(self):
        merged = merge_forced_failures(workflow(), {"j0": 1}, {"j0": 5})
        assert merged == {"j0": 5}

    def test_empty_maps_ok(self):
        assert merge_forced_failures(workflow(), {}) == {}

    def test_unknown_ids_listed(self):
        with pytest.raises(ExecutionError) as excinfo:
            merge_forced_failures(workflow(), {"jX": 1}, {"ghost": 2})
        message = str(excinfo.value)
        assert "ghost" in message and "jX" in message


class TestSimulatorValidation:
    def test_configured_unknown_node_rejected_at_startup(self):
        sim = GridSimulator(topo(), SimulationOptions(forced_failures={"nope": 1}))
        with pytest.raises(ExecutionError, match="nope"):
            sim.execute(workflow())

    def test_runtime_override_validated_and_applied(self):
        sim = GridSimulator(topo(), SimulationOptions(runtime_jitter=0.0, max_retries=2))
        with pytest.raises(ExecutionError, match="ghost"):
            sim.execute(workflow(), forced_failures={"ghost": 1})
        report = sim.execute(workflow(), forced_failures={"j0": 1})
        assert report.succeeded and report.retries == 1

    def test_override_beats_configured_count(self):
        sim = GridSimulator(
            topo(),
            SimulationOptions(
                runtime_jitter=0.0, forced_failures={"j0": 99}, max_retries=2
            ),
        )
        # Overriding j0 down to a single failure lets the retry recover it.
        report = sim.execute(workflow(), forced_failures={"j0": 1})
        assert report.succeeded


def local_executor(**kwargs) -> tuple[LocalExecutor, ConcreteWorkflow]:
    sites = {"isi": StorageSite("isi")}
    rls = ReplicaLocationService()
    rls.add_site("isi")
    registry = ExecutableRegistry()
    registry.register("galMorph", lambda job, inputs: {job.outputs[0]: b"out"})
    return LocalExecutor(sites, registry, rls, **kwargs), workflow()


class TestLocalExecutorFailures:
    def test_configured_unknown_node_rejected(self):
        executor, cw = local_executor(forced_failures={"bogus": 1})
        with pytest.raises(ExecutionError, match="bogus"):
            executor.execute(cw)

    def test_runtime_override_unknown_node_rejected(self):
        executor, cw = local_executor()
        with pytest.raises(ExecutionError, match="ghost"):
            executor.execute(cw, forced_failures={"ghost": 1})

    def test_forced_failure_retried_then_recovers(self):
        executor, cw = local_executor(max_retries=2)
        report = executor.execute(cw, forced_failures={"j0": 1})
        assert report.succeeded
        assert report.retries == 1

    def test_forced_failure_exhausts_retries(self):
        executor, cw = local_executor(max_retries=1)
        report = executor.execute(cw, forced_failures={"j0": 99})
        assert not report.succeeded
        assert report.failed_nodes == ("j0",)
        assert report.unrunnable_nodes == ("j1",)


class TestCascadingRescue:
    """Two sequential failures: the second rescue bank must supersede the
    first, and a resume from it must converge on the golden output."""

    def build(self):
        site = StorageSite("isi")
        rls = ReplicaLocationService()
        rls.add_site("isi")
        registry = ExecutableRegistry()
        registry.register(
            "galMorph", lambda job, inputs: {job.outputs[0]: f"row:{job.job_id}".encode()}
        )
        return LocalExecutor({"isi": site}, registry, rls, max_retries=0), site

    def golden(self, n=4) -> dict[str, bytes]:
        executor, site = self.build()
        report = executor.execute(workflow(n))
        assert report.succeeded
        return dict(site._content)  # noqa: SLF001 - test introspection

    def test_second_rescue_bank_resumes_to_golden_output(self):
        from repro.condor.rescue import completed_nodes

        golden = self.golden(4)
        executor, site = self.build()

        # First crash: j2 dies, bank holds {j0, j1}.
        first = executor.execute(workflow(4), forced_failures={"j2": 99})
        assert not first.succeeded
        bank1 = completed_nodes(first)
        assert bank1 == {"j0", "j1"}

        # Second crash on the same workflow: resume from bank1, j3 dies.
        # The new bank includes everything bank1 had *plus* j2.
        second = executor.execute(
            workflow(4), completed=bank1, forced_failures={"j3": 99}
        )
        assert not second.succeeded
        bank2 = completed_nodes(second) | bank1
        assert bank2 == {"j0", "j1", "j2"}

        # Third run resumes from the cascaded bank and only runs j3.
        final = executor.execute(workflow(4), completed=bank2)
        assert final.succeeded
        assert {r.node_id for r in final.runs} == {"j3"}
        assert dict(site._content) == golden  # noqa: SLF001
