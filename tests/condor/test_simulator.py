"""Tests for the discrete-event Grid simulator."""

from __future__ import annotations

import pytest

from repro.condor.pool import CondorPool, GridTopology
from repro.condor.rescue import completed_nodes, rescue_dag_text
from repro.condor.simulator import GridSimulator, SimulationOptions
from repro.workflow.abstract import AbstractJob
from repro.workflow.concrete import (
    ComputeNode,
    ConcreteWorkflow,
    RegistrationNode,
    TransferKind,
    TransferNode,
)


def topo(slots=2, failure_rate=0.0) -> GridTopology:
    t = GridTopology()
    t.add_pool(CondorPool("isi", slots=slots, speed=1.0, failure_rate=failure_rate))
    t.add_pool(CondorPool("fnal", slots=slots, speed=2.0, failure_rate=failure_rate))
    return t


def compute(node_id, site="isi", transformation="galMorph", inputs=(), outputs=None):
    outputs = outputs if outputs is not None else (f"{node_id}.out",)
    return ComputeNode(
        node_id=node_id,
        job=AbstractJob(node_id, transformation, tuple(inputs), tuple(outputs)),
        site=site,
        executable="/bin/x",
    )


def serial_workflow(n=3, site="isi") -> ConcreteWorkflow:
    cw = ConcreteWorkflow()
    prev = None
    for i in range(n):
        node = compute(f"j{i}", site=site)
        cw.add(node)
        if prev:
            cw.link(prev, node.node_id)
        prev = node.node_id
    return cw


class TestPoolValidation:
    def test_bad_pool_params(self):
        with pytest.raises(ValueError):
            CondorPool("x", slots=0)
        with pytest.raises(ValueError):
            CondorPool("x", speed=0)
        with pytest.raises(ValueError):
            CondorPool("x", failure_rate=1.0)

    def test_duplicate_pool(self):
        t = topo()
        with pytest.raises(ValueError):
            t.add_pool(CondorPool("isi"))

    def test_transfer_time_model(self):
        t = topo()
        assert t.transfer_time("isi", "isi", 10**9) == 0.0
        time = t.transfer_time("isi", "fnal", 10 * 1024 * 1024)
        assert time == pytest.approx(t.default_latency_s + 1.0, rel=0.01)

    def test_bandwidth_override_symmetric(self):
        t = topo()
        t.bandwidth_overrides[("isi", "fnal")] = 1024.0
        assert t.bandwidth("fnal", "isi") == 1024.0

    def test_default_demo_pools(self):
        demo = GridTopology.default_demo()
        assert set(demo.pools) == {"isi", "uwisc", "fnal"}


class TestExecution:
    def test_serial_chain_runs_in_order(self):
        sim = GridSimulator(topo(), SimulationOptions(runtime_jitter=0.0))
        report = sim.execute(serial_workflow(3))
        assert report.succeeded
        runs = {r.node_id: r for r in report.runs}
        assert runs["j0"].end <= runs["j1"].start + 1e-9
        assert runs["j1"].end <= runs["j2"].start + 1e-9
        assert report.makespan == pytest.approx(3 * 12.0, rel=1e-6)

    def test_slots_limit_parallelism(self):
        cw = ConcreteWorkflow()
        for i in range(4):
            cw.add(compute(f"j{i}", site="isi"))
        # 2 slots, 4 independent 12s jobs -> 24s
        sim = GridSimulator(topo(slots=2), SimulationOptions(runtime_jitter=0.0))
        report = sim.execute(cw)
        assert report.makespan == pytest.approx(24.0, rel=1e-6)

    def test_faster_pool_shorter_runtime(self):
        slow = GridSimulator(topo(), SimulationOptions(runtime_jitter=0.0)).execute(
            serial_workflow(1, site="isi")
        )
        fast = GridSimulator(topo(), SimulationOptions(runtime_jitter=0.0)).execute(
            serial_workflow(1, site="fnal")
        )
        assert fast.makespan == pytest.approx(slow.makespan / 2)

    def test_transfer_timing_and_accounting(self):
        cw = ConcreteWorkflow()
        cw.add(
            TransferNode(
                "x1", "b", TransferKind.STAGE_IN, "isi", "p1", "fnal", "p2", size_bytes=10 * 1024 * 1024
            )
        )
        sim = GridSimulator(topo(), SimulationOptions(runtime_jitter=0.0))
        report = sim.execute(cw)
        assert report.succeeded
        assert report.transfer_counts == {"stage-in": 1}
        assert report.bytes_moved == 10 * 1024 * 1024
        assert report.makespan == pytest.approx(0.2 + 1.0, rel=0.01)

    def test_registration_fast(self):
        cw = ConcreteWorkflow()
        cw.add(RegistrationNode("r1", "c", "pfn", "isi"))
        report = GridSimulator(topo()).execute(cw)
        assert report.succeeded
        assert report.makespan < 0.1

    def test_deterministic_given_seed(self):
        a = GridSimulator(topo(), SimulationOptions(seed=9)).execute(serial_workflow(5))
        b = GridSimulator(topo(), SimulationOptions(seed=9)).execute(serial_workflow(5))
        assert a.makespan == b.makespan

    def test_compute_on_non_pool_site_allowed(self):
        cw = ConcreteWorkflow()
        cw.add(compute("j0", site="storage-only"))
        report = GridSimulator(topo(), SimulationOptions(runtime_jitter=0.0)).execute(cw)
        assert report.succeeded


class TestFailureInjection:
    def test_forced_failure_retried(self):
        sim = GridSimulator(
            topo(),
            SimulationOptions(runtime_jitter=0.0, forced_failures={"j0": 1}, max_retries=2),
        )
        report = sim.execute(serial_workflow(2))
        assert report.succeeded
        assert report.retries == 1

    def test_forced_failure_exhausts_retries(self):
        sim = GridSimulator(
            topo(),
            SimulationOptions(runtime_jitter=0.0, forced_failures={"j0": 10}, max_retries=2),
        )
        report = sim.execute(serial_workflow(3))
        assert not report.succeeded
        assert report.failed_nodes == ("j0",)
        assert set(report.unrunnable_nodes) == {"j1", "j2"}

    def test_random_failures_mostly_recovered(self):
        cw = ConcreteWorkflow()
        for i in range(30):
            cw.add(compute(f"j{i}", site="isi"))
        sim = GridSimulator(topo(slots=8, failure_rate=0.2), SimulationOptions(max_retries=5))
        report = sim.execute(cw)
        assert report.succeeded
        assert report.retries > 0

    def test_rescue_dag_marks_done(self):
        cw = serial_workflow(3)
        sim = GridSimulator(
            topo(), SimulationOptions(forced_failures={"j1": 10}, max_retries=0)
        )
        report = sim.execute(cw)
        text = rescue_dag_text(cw, report)
        assert "JOB j0 j0.sub DONE" in text
        assert "JOB j1 j1.sub\n" in text or text.endswith("JOB j1 j1.sub")
        assert completed_nodes(report) == {"j0"}

    def test_jobs_per_site(self):
        cw = ConcreteWorkflow()
        cw.add(compute("a", site="isi"))
        cw.add(compute("b", site="fnal"))
        report = GridSimulator(topo()).execute(cw)
        assert report.jobs_per_site() == {"isi": 1, "fnal": 1}
