"""Tests for stage-in replica failover in the local executor.

The planned source PFN of a transfer can vanish between planning and
execution (a stale RLS entry).  The executor must unregister the stale
mapping, walk the surviving replicas and serve the first one that
verifies — and only fail when *no* replica holds the bytes.
"""

from __future__ import annotations

import pytest

from repro.condor.local import ExecutableRegistry, LocalExecutor
from repro.rls.rls import ReplicaLocationService
from repro.rls.site import StorageSite
from repro.workflow.concrete import ConcreteWorkflow, TransferKind, TransferNode

PAYLOAD = b"SIMPLE  =" + b"\0" * 2871  # one well-formed FITS block


def environment(replicas: int = 2):
    """Two storage sites holding the same LFN + an RLS that knows both."""
    sites = {name: StorageSite(name) for name in ("isi", "fnal", "uwisc")}
    rls = ReplicaLocationService()
    for name in sites:
        rls.add_site(name)
    holders = ["isi", "fnal"][:replicas]
    for name in holders:
        pfn = sites[name].pfn_for("galaxy.fit")
        sites[name].put(pfn, PAYLOAD)
        rls.register("galaxy.fit", pfn, name)
    executor = LocalExecutor(sites, ExecutableRegistry(), rls)
    return executor, sites, rls


def stage_in(source_site: str, source_pfn: str) -> ConcreteWorkflow:
    cw = ConcreteWorkflow()
    cw.add(
        TransferNode(
            node_id="t0",
            lfn="galaxy.fit",
            kind=TransferKind.STAGE_IN,
            source_site=source_site,
            source_pfn=source_pfn,
            dest_site="uwisc",
            dest_pfn="gsiftp://uwisc.grid/data/galaxy.fit",
        )
    )
    return cw


class TestReplicaFailover:
    def test_stale_source_served_from_surviving_replica(self):
        executor, sites, rls = environment(replicas=2)
        stale_pfn = sites["isi"].pfn_for("galaxy.fit")
        sites["isi"].delete(stale_pfn)  # catalog still claims isi has it

        report = executor.execute(stage_in("isi", stale_pfn))
        assert report.succeeded
        assert sites["uwisc"].get("gsiftp://uwisc.grid/data/galaxy.fit") == PAYLOAD
        # The stale mapping was invalidated so no later plan trips over it.
        assert [r.site for r in rls.lookup("galaxy.fit")] == ["fnal"]

    def test_failover_counts_telemetry_and_event(self, enabled_telemetry):
        executor, sites, rls = environment(replicas=2)
        stale_pfn = sites["isi"].pfn_for("galaxy.fit")
        sites["isi"].delete(stale_pfn)
        assert executor.execute(stage_in("isi", stale_pfn)).succeeded

        registry = enabled_telemetry.get_registry()
        failovers = registry.get("resilience_replica_failovers_total")
        assert failovers is not None and failovers.total() == 1.0
        invalidations = registry.get("rls_stale_invalidations_total")
        assert invalidations is not None and invalidations.value(site="isi") == 1.0

    def test_no_live_replica_fails_the_node(self):
        executor, sites, rls = environment(replicas=2)
        for name in ("isi", "fnal"):
            sites[name].delete(sites[name].pfn_for("galaxy.fit"))

        report = executor.execute(
            stage_in("isi", sites["isi"].pfn_for("galaxy.fit"))
        )
        assert not report.succeeded
        assert report.failed_nodes == ("t0",)
        # Both stale mappings were dropped along the way.
        assert rls.lookup("galaxy.fit") == []

    def test_healthy_source_needs_no_failover(self, enabled_telemetry):
        executor, sites, _ = environment(replicas=2)
        report = executor.execute(stage_in("isi", sites["isi"].pfn_for("galaxy.fit")))
        assert report.succeeded
        assert enabled_telemetry.get_registry().get(
            "resilience_replica_failovers_total"
        ) is None
