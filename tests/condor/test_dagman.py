"""Tests for DAGMan scheduling state."""

from __future__ import annotations

import pytest

from repro.condor.dagman import DagmanState, NodeStatus
from repro.core.errors import ExecutionError
from repro.workflow.dag import DAG


def diamond() -> DAG:
    dag: DAG[None] = DAG()
    for name in "abcd":
        dag.add_node(name, None)
    dag.add_edge("a", "b")
    dag.add_edge("a", "c")
    dag.add_edge("b", "d")
    dag.add_edge("c", "d")
    return dag


class TestRelease:
    def test_initial_ready_is_roots(self):
        state = DagmanState(diamond())
        assert state.ready_nodes() == ["a"]

    def test_children_released_after_all_parents(self):
        state = DagmanState(diamond())
        state.mark_running("a")
        released = state.mark_success("a")
        assert set(released) == {"b", "c"}
        state.mark_running("b")
        assert state.mark_success("b") == []  # d still waits on c
        state.mark_running("c")
        assert state.mark_success("c") == ["d"]

    def test_complete_and_succeeded(self):
        state = DagmanState(diamond())
        for node in ("a", "b", "c", "d"):
            state.mark_running(node)
            state.mark_success(node)
        assert state.is_complete()
        assert state.succeeded()
        assert state.counts() == {"done": 4}


class TestFailureSemantics:
    def test_retry_then_fail(self):
        state = DagmanState(diamond(), max_retries=1)
        state.mark_running("a")
        assert state.mark_failure("a") is True  # retry 1
        assert state.status["a"] is NodeStatus.READY
        state.mark_running("a")
        assert state.mark_failure("a") is False  # exhausted
        assert state.status["a"] is NodeStatus.FAILED

    def test_descendants_unrunnable(self):
        state = DagmanState(diamond(), max_retries=0)
        state.mark_running("a")
        state.mark_failure("a")
        for node in "bcd":
            assert state.status[node] is NodeStatus.UNRUNNABLE
        assert state.is_complete()
        assert not state.succeeded()
        assert state.failed_nodes() == ["a"]

    def test_partial_failure_leaves_independent_branch(self):
        state = DagmanState(diamond(), max_retries=0)
        state.mark_running("a")
        state.mark_success("a")
        state.mark_running("b")
        state.mark_failure("b")
        # c is untouched, d unrunnable
        assert state.status["c"] is NodeStatus.READY
        assert state.status["d"] is NodeStatus.UNRUNNABLE


class TestTransitionGuards:
    def test_cannot_start_pending(self):
        state = DagmanState(diamond())
        with pytest.raises(ExecutionError):
            state.mark_running("d")

    def test_cannot_complete_unstarted(self):
        state = DagmanState(diamond())
        with pytest.raises(ExecutionError):
            state.mark_success("a")

    def test_cannot_fail_unstarted(self):
        state = DagmanState(diamond())
        with pytest.raises(ExecutionError):
            state.mark_failure("a")

    def test_attempts_counted(self):
        state = DagmanState(diamond(), max_retries=2)
        state.mark_running("a")
        state.mark_failure("a")
        state.mark_running("a")
        assert state.attempts["a"] == 2
