"""Tests for execution-report aggregation."""

from __future__ import annotations

from repro.condor.report import ExecutionReport, NodeRun
from repro.workflow.concrete import TransferKind


def run(node_id, kind="compute", site="isi", success=True, start=0.0, end=1.0):
    return NodeRun(
        node_id=node_id, kind=kind, site=site, start=start, end=end, attempts=1, success=success
    )


class TestExecutionReport:
    def test_typed_views(self):
        report = ExecutionReport(
            runs=[run("j1"), run("x1", kind="transfer"), run("r1", kind="registration")]
        )
        assert [r.node_id for r in report.compute_runs] == ["j1"]
        assert [r.node_id for r in report.transfer_runs] == ["x1"]

    def test_transfer_kind_counts(self):
        report = ExecutionReport(transfer_counts={"stage-in": 3, "stage-out": 1})
        assert report.transfers_of_kind(TransferKind.STAGE_IN) == 3
        assert report.transfers_of_kind(TransferKind.INTER_SITE) == 0

    def test_jobs_per_site_counts_successes_only(self):
        report = ExecutionReport(
            runs=[run("a", site="isi"), run("b", site="isi"), run("c", site="fnal", success=False)]
        )
        assert report.jobs_per_site() == {"isi": 2}

    def test_duration(self):
        assert run("a", start=2.0, end=5.5).duration == 3.5

    def test_summary_states_outcome(self):
        ok = ExecutionReport(succeeded=True, makespan=12.0)
        assert ok.summary().startswith("OK")
        bad = ExecutionReport(succeeded=False, failed_nodes=("j1", "j2"))
        assert "FAILED(2)" in bad.summary()
