"""Tests for the MDS monitoring service and the MyProxy repository."""

from __future__ import annotations

import pytest

from repro.condor.gram import GramGateway
from repro.condor.mds import MdsSiteSelector, MonitoringService, ResourceRecord
from repro.condor.myproxy import MyProxyServer
from repro.condor.pool import CondorPool, GridTopology
from repro.core.errors import ExecutionError, PlanningError


def record(site, total=10, busy=0, speed=1.0, ts=0.0) -> ResourceRecord:
    return ResourceRecord(site, total, busy, speed, ts)


class TestMonitoringService:
    def test_publish_query(self):
        mds = MonitoringService()
        mds.publish(record("isi", busy=3))
        assert mds.query("isi").free_slots == 7
        with pytest.raises(KeyError):
            mds.query("ghost")

    def test_newest_record_wins(self):
        mds = MonitoringService()
        mds.publish(record("isi", busy=3, ts=10.0))
        mds.publish(record("isi", busy=9, ts=5.0))  # stale: ignored
        assert mds.query("isi").busy_slots == 3
        mds.publish(record("isi", busy=9, ts=11.0))
        assert mds.query("isi").busy_slots == 9

    def test_from_topology(self):
        mds = MonitoringService.from_topology(GridTopology.default_demo())
        assert set(mds.sites()) == {"isi", "uwisc", "fnal"}
        assert all(r.busy_slots == 0 for r in mds.query_all())

    def test_query_count(self):
        mds = MonitoringService()
        mds.publish(record("isi"))
        mds.query("isi")
        mds.query_all()
        assert mds.query_count == 2


class TestMdsSiteSelector:
    def test_prefers_free_capacity(self):
        mds = MonitoringService()
        mds.publish(record("busy", total=10, busy=9))
        mds.publish(record("idle", total=10, busy=0))
        selector = MdsSiteSelector(mds)
        assert selector.choose("j1", ["busy", "idle"]) == "idle"

    def test_speed_weighting(self):
        mds = MonitoringService()
        mds.publish(record("slow", total=4, speed=0.5))
        mds.publish(record("fast", total=4, speed=2.0))
        assert MdsSiteSelector(mds).choose("j", ["slow", "fast"]) == "fast"

    def test_pending_spreads_assignments(self):
        mds = MonitoringService()
        mds.publish(record("a", total=2))
        mds.publish(record("b", total=2))
        selector = MdsSiteSelector(mds)
        chosen = [selector.choose(f"j{i}", ["a", "b"]) for i in range(4)]
        assert chosen.count("a") == 2 and chosen.count("b") == 2

    def test_unmonitored_candidates_rejected(self):
        selector = MdsSiteSelector(MonitoringService())
        with pytest.raises(PlanningError):
            selector.choose("j", ["ghost"])

    def test_simulator_publishes_load(self):
        """The GridSimulator feeds the MDS while running."""
        from repro.condor.simulator import GridSimulator, SimulationOptions
        from repro.workflow.abstract import AbstractJob
        from repro.workflow.concrete import ComputeNode, ConcreteWorkflow

        topo = GridTopology()
        topo.add_pool(CondorPool("isi", slots=2))
        mds = MonitoringService.from_topology(topo)
        cw = ConcreteWorkflow()
        for i in range(3):
            cw.add(
                ComputeNode(f"j{i}", AbstractJob(f"d{i}", "t", (), (f"o{i}",)), "isi", "/bin/t")
            )
        sim = GridSimulator(topo, SimulationOptions(runtime_jitter=0.0), mds=mds)
        report = sim.execute(cw)
        assert report.succeeded
        # final state: everything drained
        assert mds.query("isi").busy_slots == 0
        assert mds.query("isi").timestamp > 0


class TestMyProxy:
    def test_store_retrieve(self):
        server = MyProxyServer()
        server.store("ewa", "s3cret", now=0.0)
        proxy = server.retrieve("ewa", "s3cret", now=100.0)
        assert proxy.subject == "ewa"
        assert proxy.is_valid(100.0 + 3600)
        assert server.delegations == 1

    def test_wrong_passphrase(self):
        server = MyProxyServer()
        server.store("ewa", "s3cret", now=0.0)
        with pytest.raises(ExecutionError):
            server.retrieve("ewa", "wrong", now=1.0)

    def test_unknown_subject(self):
        with pytest.raises(ExecutionError):
            MyProxyServer().retrieve("ghost", "x", now=0.0)

    def test_empty_passphrase_rejected(self):
        with pytest.raises(ExecutionError):
            MyProxyServer().store("ewa", "", now=0.0)

    def test_expired_stored_credential(self):
        server = MyProxyServer()
        server.store("ewa", "s3cret", now=0.0, lifetime_s=100.0)
        with pytest.raises(ExecutionError):
            server.retrieve("ewa", "s3cret", now=200.0)

    def test_proxy_never_outlives_stored(self):
        server = MyProxyServer()
        server.store("ewa", "s3cret", now=0.0, lifetime_s=1000.0)
        proxy = server.retrieve("ewa", "s3cret", now=900.0, proxy_lifetime_s=10_000.0)
        assert proxy.lifetime_s == pytest.approx(100.0)

    def test_destroy(self):
        server = MyProxyServer()
        server.store("ewa", "s3cret", now=0.0)
        server.destroy("ewa")
        assert not server.holds("ewa")
        with pytest.raises(ExecutionError):
            server.destroy("ewa")

    def test_delegated_proxy_works_with_gram(self):
        server = MyProxyServer()
        server.store("portal-user", "pw", now=0.0)
        proxy = server.retrieve("portal-user", "pw", now=10.0)
        gateway = GramGateway()
        gateway.submit("isi", proxy, now=20.0)
        assert gateway.total_submissions() == 1
        # ... and expires like any proxy
        with pytest.raises(ExecutionError):
            gateway.submit("isi", proxy, now=10.0 + proxy.lifetime_s + 1)
