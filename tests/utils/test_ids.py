"""Tests for identifier helpers."""

from __future__ import annotations

import re
import threading

import numpy as np

from repro.utils.ids import new_request_id, sequential_namer


class TestNewRequestId:
    def test_format(self):
        rid = new_request_id()
        assert re.match(r"^req-\d{6}-[0-9a-z]{6}$", rid)

    def test_custom_prefix(self):
        assert new_request_id(prefix="job").startswith("job-")

    def test_unique_across_calls(self):
        ids = {new_request_id() for _ in range(200)}
        assert len(ids) == 200

    def test_rng_suffix_used(self):
        rng = np.random.default_rng(0)
        rid = new_request_id(rng=rng)
        assert re.match(r"^req-\d{6}-[a-z0-9]{6}$", rid)

    def test_unique_under_threads(self):
        out: list[str] = []
        lock = threading.Lock()

        def mint():
            for _ in range(50):
                rid = new_request_id()
                with lock:
                    out.append(rid)

        threads = [threading.Thread(target=mint) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(out)) == len(out)


class TestSequentialNamer:
    def test_sequence(self):
        namer = sequential_namer("xfer")
        assert namer() == "xfer-0001"
        assert namer() == "xfer-0002"

    def test_custom_start_and_width(self):
        namer = sequential_namer("n", start=9, width=2)
        assert namer() == "n-09"
        assert namer() == "n-10"

    def test_independent_namers(self):
        a, b = sequential_namer("a"), sequential_namer("b")
        a()
        assert b() == "b-0001"
