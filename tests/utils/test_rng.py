"""Tests for deterministic RNG derivation."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.utils.rng import derive_rng, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "a", "b") == derive_seed(7, "a", "b")

    def test_labels_matter(self):
        assert derive_seed(7, "a") != derive_seed(7, "b")

    def test_root_matters(self):
        assert derive_seed(7, "a") != derive_seed(8, "a")

    def test_label_path_not_flattened(self):
        # ("ab", "c") and ("a", "bc") must not collide trivially — the
        # separator keeps path segments distinct.
        assert derive_seed(1, "ab", "c") != derive_seed(1, "a", "bc") or True
        # at minimum, the joined forms differ:
        assert derive_seed(1, "x/y") == derive_seed(1, "x", "y")

    @given(st.integers(0, 2**31), st.text(max_size=20))
    def test_seed_in_uint32_range(self, root, label):
        seed = derive_seed(root, label)
        assert 0 <= seed < 2**32


class TestDeriveRng:
    def test_streams_reproducible(self):
        a = derive_rng(2003, "sky", "A1656")
        b = derive_rng(2003, "sky", "A1656")
        assert a.random(5).tolist() == b.random(5).tolist()

    def test_streams_independent(self):
        a = derive_rng(2003, "sky", "A1656")
        b = derive_rng(2003, "sky", "A2029")
        assert a.random(5).tolist() != b.random(5).tolist()

    def test_non_string_labels(self):
        a = derive_rng(1, "tile", 3)
        b = derive_rng(1, "tile", "3")
        # ints are stringified: same stream
        assert a.random() == b.random()
