"""Tests for the event log, clocks and unit formatting."""

from __future__ import annotations

import pytest

from repro.utils.events import EventLog
from repro.utils.timing import SimClock, WallTimer
from repro.utils.units import GB, KB, MB, format_bytes, format_duration


class TestEventLog:
    def test_emit_and_iterate(self):
        log = EventLog()
        log.emit(1.0, "pegasus", "plan", jobs=3)
        log.emit(2.0, "dagman", "done")
        assert len(log) == 2
        assert [e.kind for e in log] == ["plan", "done"]

    def test_of_kind(self):
        log = EventLog()
        log.emit(0, "a", "x")
        log.emit(0, "a", "y")
        log.emit(0, "a", "x")
        assert len(log.of_kind("x")) == 2
        assert len(log.of_kind("x", "y")) == 3

    def test_from_source(self):
        log = EventLog()
        log.emit(0, "portal", "x")
        log.emit(0, "service", "y")
        assert [e.kind for e in log.from_source("portal")] == ["x"]

    def test_kinds_order_preserved(self):
        log = EventLog()
        for kind in ("a", "b", "c"):
            log.emit(0, "s", kind)
        assert log.kinds() == ["a", "b", "c"]

    def test_clear(self):
        log = EventLog()
        log.emit(0, "s", "k")
        log.clear()
        assert len(log) == 0

    def test_detail_captured(self):
        log = EventLog()
        event = log.emit(0.5, "rls", "lookup", lfn="b", replicas=2)
        assert event.detail == {"lfn": "b", "replicas": 2}


class TestSimClock:
    def test_advance(self):
        clock = SimClock()
        clock.advance_to(5.0)
        clock.advance_by(1.5)
        assert clock.now() == 6.5

    def test_no_backwards(self):
        clock = SimClock(10.0)
        with pytest.raises(ValueError):
            clock.advance_to(9.0)

    def test_no_negative_step(self):
        with pytest.raises(ValueError):
            SimClock().advance_by(-1.0)


class TestWallTimer:
    def test_elapsed_nonnegative(self):
        with WallTimer() as timer:
            sum(range(1000))
        assert timer.elapsed >= 0.0

    def test_now_monotonic(self):
        timer = WallTimer()
        assert timer.now() <= timer.now()


class TestUnits:
    def test_constants(self):
        assert KB == 1024 and MB == 1024**2 and GB == 1024**3

    @pytest.mark.parametrize(
        "n,expected",
        [
            (512, "512 B"),
            (2048, "2.0 KB"),
            (30 * MB, "30.0 MB"),
            (3 * GB, "3.0 GB"),
        ],
    )
    def test_format_bytes(self, n, expected):
        assert format_bytes(n) == expected

    @pytest.mark.parametrize(
        "seconds,expected",
        [(5.25, "5.2s"), (65, "1m05s"), (3725, "1h02m05s")],
    )
    def test_format_duration(self, seconds, expected):
        assert format_duration(seconds) == expected
