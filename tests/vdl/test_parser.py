"""Tests for the VDL parser/serializer, including the paper's own example."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import VDLSyntaxError
from repro.vdl.ast import ArgDirection, Derivation, FileBinding, TransformationDecl
from repro.vdl.parser import parse_vdl, serialize_vdl

#: The example from §3.2 of the paper, verbatim in structure.
PAPER_EXAMPLE = """
TR galMorph( in redshift, in pixScale, in zeroPoint, in Ho, in om,
             in flat, in image, out galMorph ) { }

DV d1->galMorph( redshift="0.027886",
                 image=@{in:"NGP9_F323-0927589.fit"},
                 pixScale="2.831933107035062E-4",
                 zeroPoint="0", Ho="100", om="0.3", flat="1",
                 galMorph=@{out:"NGP9_F323-0927589.txt"} );
"""


class TestPaperExample:
    def test_parses(self):
        trs, dvs = parse_vdl(PAPER_EXAMPLE)
        assert len(trs) == 1 and len(dvs) == 1
        tr = trs[0]
        assert tr.name == "galMorph"
        assert list(tr.args) == [
            "redshift", "pixScale", "zeroPoint", "Ho", "om", "flat", "image", "galMorph",
        ]
        assert tr.args["image"] is ArgDirection.IN
        assert tr.args["galMorph"] is ArgDirection.OUT

    def test_derivation_bindings(self):
        _, (dv,) = parse_vdl(PAPER_EXAMPLE)
        assert dv.name == "d1"
        assert dv.transformation == "galMorph"
        assert dv.scalar_parameters()["pixScale"] == "2.831933107035062E-4"
        assert dv.input_files() == ("NGP9_F323-0927589.fit",)
        assert dv.output_files() == ("NGP9_F323-0927589.txt",)


class TestSyntaxErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "XX foo( in a, out b ) { }",  # unknown keyword
            "TR t( inout a, out b ) { }",  # bad direction
            "TR t( in a out b ) { }",  # missing comma is tolerated? no: 'out' treated as arg name
            'DV d->t( a=@{sideways:"f"} );',  # bad binding direction
            'DV d->t( a="x" ',  # truncated
            "TR t( in a, in a, out b ) { }",  # duplicate arg
            'DV d->t( a="1", a="2" );',  # duplicate binding
        ],
    )
    def test_rejected(self, text):
        with pytest.raises(VDLSyntaxError):
            parse_vdl(text)

    def test_unexpected_character(self):
        with pytest.raises(VDLSyntaxError) as err:
            parse_vdl("TR t( in a, out b ) { } %%%")
        assert "line" in str(err.value)

    def test_tr_requires_output(self):
        with pytest.raises(VDLSyntaxError):
            parse_vdl("TR t( in a ) { }")


class TestComments:
    def test_hash_and_slash_comments(self):
        text = """
        # a hash comment
        TR t( in a, out b ) { } // trailing
        // full line
        DV d->t( a=@{in:"x"}, b=@{out:"y"} );
        """
        trs, dvs = parse_vdl(text)
        assert len(trs) == 1 and len(dvs) == 1


class TestListBindings:
    def test_multi_file_binding(self):
        text = 'TR c( in xs, out y ) { }\nDV d->c( xs=@{in:"a","b","c"}, y=@{out:"z"} );'
        _, (dv,) = parse_vdl(text)
        assert dv.input_files() == ("a", "b", "c")

    def test_single_lfn_property(self):
        binding = FileBinding(ArgDirection.IN, ("a",))
        assert binding.lfn == "a"
        multi = FileBinding(ArgDirection.IN, ("a", "b"))
        with pytest.raises(VDLSyntaxError):
            _ = multi.lfn

    def test_string_normalised_to_tuple(self):
        assert FileBinding(ArgDirection.OUT, "f.txt").lfns == ("f.txt",)


names = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True)
lfns = st.from_regex(r"[A-Za-z0-9_.\-]{1,20}", fullmatch=True)


@st.composite
def documents(draw):
    n_args = draw(st.integers(1, 5))
    arg_names = draw(st.lists(names, min_size=n_args, max_size=n_args, unique=True))
    directions = [draw(st.sampled_from(list(ArgDirection))) for _ in arg_names]
    directions[-1] = ArgDirection.OUT  # ensure at least one output
    tr = TransformationDecl(
        name=draw(names), args=dict(zip(arg_names, directions)), body=""
    )
    bindings: dict[str, object] = {}
    for arg, direction in tr.args.items():
        if direction is ArgDirection.IN and draw(st.booleans()):
            bindings[arg] = draw(st.text(
                alphabet=st.characters(min_codepoint=32, max_codepoint=126),
                max_size=15,
            ))
        else:
            n_files = draw(st.integers(1, 3))
            bindings[arg] = FileBinding(
                direction, tuple(draw(st.lists(lfns, min_size=n_files, max_size=n_files)))
            )
    dv = Derivation(name=draw(names), transformation=tr.name, bindings=bindings)
    return [tr], [dv]


class TestRoundTrip:
    @given(documents())
    def test_property_roundtrip(self, doc):
        trs, dvs = doc
        text = serialize_vdl(trs, dvs)
        trs2, dvs2 = parse_vdl(text)
        assert trs2 == trs
        assert dvs2 == dvs

    def test_paper_example_roundtrip(self):
        trs, dvs = parse_vdl(PAPER_EXAMPLE)
        trs2, dvs2 = parse_vdl(serialize_vdl(trs, dvs))
        assert (trs2, dvs2) == (trs, dvs)
