"""Tests for Chimera metadata annotations and metadata-driven requests."""

from __future__ import annotations

import pytest

from repro.core import VirtualDataSystem
from repro.core.errors import ExecutionError
from repro.pegasus.options import PlannerOptions
from repro.vdl.catalog import VirtualDataCatalog

VDL = """
TR measure( in image, out result ) { }
DV m1->measure( image=@{in:"g1.fit"}, result=@{out:"g1.txt"} );
DV m2->measure( image=@{in:"g2.fit"}, result=@{out:"g2.txt"} );
DV m3->measure( image=@{in:"g3.fit"}, result=@{out:"g3.txt"} );
"""


class TestAnnotations:
    def make(self) -> VirtualDataCatalog:
        catalog = VirtualDataCatalog()
        catalog.define(VDL)
        catalog.annotate("m1", cluster="A1656", band="r")
        catalog.annotate("m2", cluster="A1656", band="g")
        catalog.annotate("m3", cluster="A2029", band="r")
        return catalog

    def test_annotate_unknown(self):
        with pytest.raises(KeyError):
            VirtualDataCatalog().annotate("ghost", x="1")

    def test_annotations_readable(self):
        catalog = self.make()
        assert catalog.annotations_of("m1") == {"cluster": "A1656", "band": "r"}
        with pytest.raises(KeyError):
            catalog.annotations_of("ghost")

    def test_annotations_merge(self):
        catalog = self.make()
        catalog.annotate("m1", quality="good")
        assert catalog.annotations_of("m1")["quality"] == "good"
        assert catalog.annotations_of("m1")["cluster"] == "A1656"

    def test_find_by_one_key(self):
        catalog = self.make()
        assert {d.name for d in catalog.find_derivations(cluster="A1656")} == {"m1", "m2"}

    def test_find_conjunctive(self):
        catalog = self.make()
        assert [d.name for d in catalog.find_derivations(cluster="A1656", band="r")] == ["m1"]

    def test_find_no_match(self):
        assert self.make().find_derivations(cluster="A9999") == []

    def test_unannotated_never_match(self):
        catalog = VirtualDataCatalog()
        catalog.define(VDL)
        assert catalog.find_derivations(cluster="A1656") == []

    def test_outputs_by_metadata(self):
        catalog = self.make()
        assert sorted(catalog.find_outputs_by_metadata(cluster="A1656")) == ["g1.txt", "g2.txt"]

    def test_values_stringified(self):
        catalog = self.make()
        catalog.annotate("m3", depth=5)
        assert catalog.find_derivations(depth=5) and catalog.find_derivations(depth="5")


class TestMaterializeByMetadata:
    def test_end_to_end(self):
        vds = VirtualDataSystem(
            planner_options=PlannerOptions(output_site="store", site_selection="round-robin")
        )
        vds.add_storage_site("store")
        vds.define(VDL)
        for i in (1, 2, 3):
            vds.publish(f"g{i}.fit", b"IMG%d" % i, "store")
        vds.vdc.annotate("m1", cluster="A1656")
        vds.vdc.annotate("m2", cluster="A1656")
        vds.vdc.annotate("m3", cluster="A2029")
        vds.registry.register("measure", lambda job, inputs: {job.outputs[0]: b"M:" + next(iter(inputs.values()))})
        for pool in vds.topology.pools:
            vds.tc.install("measure", pool, "/bin/measure")

        plan, report = vds.materialize_by_metadata(cluster="A1656")
        assert report.succeeded
        assert len(plan.reduced) == 2  # only A1656's derivations ran
        assert vds.retrieve("g1.txt") == b"M:IMG1"
        assert not vds.rls.exists("g3.txt")

    def test_no_match_raises(self):
        vds = VirtualDataSystem()
        with pytest.raises(ExecutionError):
            vds.materialize_by_metadata(cluster="nowhere")

    def test_service_annotates_generated_derivations(self, tiny_cluster):
        from repro.portal.demo import build_demo_environment

        env = build_demo_environment(clusters=[tiny_cluster], seed_virtual_data_reuse=False)
        env.portal.run_analysis(tiny_cluster.name)
        matches = env.vds.vdc.find_derivations(cluster=tiny_cluster.name, kind="morphology")
        assert len(matches) == tiny_cluster.n_galaxies
        catalogs = env.vds.vdc.find_derivations(cluster=tiny_cluster.name, kind="catalog")
        assert len(catalogs) == 1
        outputs = env.vds.vdc.find_outputs_by_metadata(cluster=tiny_cluster.name, kind="catalog")
        assert outputs == [f"{tiny_cluster.name}-morphology.vot"]
