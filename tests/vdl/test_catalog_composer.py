"""Tests for the Virtual Data Catalog and abstract-workflow composition."""

from __future__ import annotations

import pytest

from repro.core.errors import VDLSyntaxError, WorkflowError
from repro.vdl.catalog import VirtualDataCatalog
from repro.vdl.composer import compose_workflow

CHAIN = """
TR t1( in x, out y ) { }
TR t2( in x, out y ) { }
DV d1->t1( x=@{in:"a"}, y=@{out:"b"} );
DV d2->t2( x=@{in:"b"}, y=@{out:"c"} );
"""

DIAMOND = """
TR make( in x, out y ) { }
TR join( in l, in r, out y ) { }
DV left->make( x=@{in:"src"}, y=@{out:"L"} );
DV right->make( x=@{in:"src"}, y=@{out:"R"} );
DV merge->join( l=@{in:"L"}, r=@{in:"R"}, y=@{out:"final"} );
"""


class TestCatalog:
    def test_define_counts(self):
        catalog = VirtualDataCatalog()
        assert catalog.define(CHAIN) == (2, 2)
        assert len(catalog) == 2

    def test_producer_lookup(self):
        catalog = VirtualDataCatalog()
        catalog.define(CHAIN)
        assert catalog.producer_of("b").name == "d1"
        assert catalog.producer_of("a") is None

    def test_duplicate_transformation(self):
        catalog = VirtualDataCatalog()
        catalog.define(CHAIN)
        with pytest.raises(VDLSyntaxError):
            catalog.define("TR t1( in p, out q ) { }")

    def test_duplicate_derivation_name(self):
        catalog = VirtualDataCatalog()
        catalog.define(CHAIN)
        with pytest.raises(VDLSyntaxError):
            catalog.define('DV d1->t1( x=@{in:"p"}, y=@{out:"q"} );')

    def test_conflicting_producer(self):
        catalog = VirtualDataCatalog()
        catalog.define(CHAIN)
        with pytest.raises(VDLSyntaxError):
            catalog.define('DV d3->t1( x=@{in:"z"}, y=@{out:"b"} );')

    def test_unknown_transformation(self):
        catalog = VirtualDataCatalog()
        with pytest.raises(VDLSyntaxError):
            catalog.define('DV d->missing( x=@{in:"a"}, y=@{out:"b"} );')

    def test_derivation_validated_against_tr(self):
        catalog = VirtualDataCatalog()
        catalog.define("TR t( in a, out b ) { }")
        with pytest.raises(VDLSyntaxError):
            catalog.define('DV d->t( a=@{in:"x"} );')  # missing binding for b
        with pytest.raises(VDLSyntaxError):
            catalog.define('DV d->t( a=@{in:"x"}, b=@{out:"y"}, c="z" );')  # unknown
        with pytest.raises(VDLSyntaxError):
            catalog.define('DV d->t( a=@{out:"x"}, b=@{out:"y"} );')  # direction flip
        with pytest.raises(VDLSyntaxError):
            catalog.define('DV d->t( a=@{in:"x"}, b="scalar" );')  # scalar output

    def test_unknown_lookups_raise(self):
        catalog = VirtualDataCatalog()
        with pytest.raises(KeyError):
            catalog.transformation("nope")
        with pytest.raises(KeyError):
            catalog.derivation("nope")


class TestComposer:
    def test_figure1_chain(self):
        catalog = VirtualDataCatalog()
        catalog.define(CHAIN)
        workflow = compose_workflow(catalog, ["c"])
        assert {j.job_id for j in workflow.jobs()} == {"d1", "d2"}
        assert workflow.dag.edges() == [("d1", "d2")]
        assert workflow.required_inputs() == {"a"}
        assert workflow.final_products() == {"c"}

    def test_intermediate_request_stops_chain(self):
        catalog = VirtualDataCatalog()
        catalog.define(CHAIN)
        workflow = compose_workflow(catalog, ["b"])
        assert {j.job_id for j in workflow.jobs()} == {"d1"}

    def test_diamond(self):
        catalog = VirtualDataCatalog()
        catalog.define(DIAMOND)
        workflow = compose_workflow(catalog, ["final"])
        assert len(workflow) == 3
        assert set(workflow.dag.parents("merge")) == {"left", "right"}
        assert workflow.required_inputs() == {"src"}

    def test_multiple_requests_merge(self):
        catalog = VirtualDataCatalog()
        catalog.define(DIAMOND)
        workflow = compose_workflow(catalog, ["L", "R"])
        assert {j.job_id for j in workflow.jobs()} == {"left", "right"}

    def test_unknown_request_rejected(self):
        catalog = VirtualDataCatalog()
        catalog.define(CHAIN)
        with pytest.raises(WorkflowError):
            compose_workflow(catalog, ["nope"])

    def test_raw_input_request_rejected(self):
        catalog = VirtualDataCatalog()
        catalog.define(CHAIN)
        with pytest.raises(WorkflowError):
            compose_workflow(catalog, ["a"])  # raw data, not derivable

    def test_empty_request_rejected(self):
        with pytest.raises(WorkflowError):
            compose_workflow(VirtualDataCatalog(), [])

    def test_parameters_carried_to_jobs(self):
        catalog = VirtualDataCatalog()
        catalog.define(
            'TR t( in p, in x, out y ) { }\n'
            'DV d->t( p="0.5", x=@{in:"a"}, y=@{out:"b"} );'
        )
        workflow = compose_workflow(catalog, ["b"])
        assert workflow.job("d").parameters == {"p": "0.5"}

    def test_fan_in_list_binding(self):
        catalog = VirtualDataCatalog()
        catalog.define(
            "TR make( in x, out y ) { }\n"
            "TR cat( in xs, out y ) { }\n"
            'DV m1->make( x=@{in:"s1"}, y=@{out:"r1"} );\n'
            'DV m2->make( x=@{in:"s2"}, y=@{out:"r2"} );\n'
            'DV c->cat( xs=@{in:"r1","r2"}, y=@{out:"all"} );'
        )
        workflow = compose_workflow(catalog, ["all"])
        assert len(workflow) == 3
        assert set(workflow.dag.parents("c")) == {"m1", "m2"}
