"""Tests for multi-band rendering: the §4.2 'different frequency bands
could yield different results' extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.morphology.pipeline import galmorph
from repro.sky.cluster import GalaxyRecord, MorphType
from repro.sky.galaxy import BAND_FLUX_FACTORS, render_galaxy_image
from repro.sky.imaging import CutoutFactory
from repro.utils.rng import derive_rng


def galaxy(morph=MorphType.SPIRAL, asym=0.3) -> GalaxyRecord:
    return GalaxyRecord(
        "B-0001", 150.0, 2.0, 0.05, 17.0, morph, 3.5, 0.2, 40.0, asym, 0.1
    )


def render(morph, band, asym=0.3):
    return render_galaxy_image(
        galaxy(morph, asym),
        band=band,
        rng=derive_rng(1, "structure"),
        noise_rng=derive_rng(1, "noise", band),
        sky_level=0.0,
        noise_sigma=0.0,
    )


class TestBandRendering:
    def test_unknown_band(self):
        with pytest.raises(ValueError):
            render_galaxy_image(galaxy(), band="z")

    def test_band_factors_cover_all_types(self):
        for band, factors in BAND_FLUX_FACTORS.items():
            assert set(factors) == set(MorphType), band

    def test_elliptical_red_sequence(self):
        """Ellipticals are much fainter in g than in i."""
        g = render(MorphType.ELLIPTICAL, "g", asym=0.0).sum()
        i = render(MorphType.ELLIPTICAL, "i", asym=0.0).sum()
        assert i / g > 1.8

    def test_spiral_nearly_flat_spectrum(self):
        g = render(MorphType.SPIRAL, "g").sum()
        i = render(MorphType.SPIRAL, "i").sum()
        assert 0.5 < i / g < 1.5

    def test_knot_positions_identical_across_bands(self):
        """Star-forming knots are physical structures: same places in g and
        i, only their brightness changes."""
        g = render(MorphType.SPIRAL, "g")
        i = render(MorphType.SPIRAL, "i")
        # the knots dominate the residual against a 180-deg rotation;
        # normalised residual maps should correlate strongly across bands
        res_g = g - g[::-1, ::-1]
        res_i = i - i[::-1, ::-1]
        corr = np.corrcoef(res_g.ravel(), res_i.ravel())[0, 1]
        assert corr > 0.9

    def test_measured_asymmetry_higher_in_blue(self):
        """The science payoff: A(g) > A(i) for star-forming galaxies."""
        from repro.catalog.coords import SkyPosition
        from repro.sky.cluster import ClusterModel

        cluster = ClusterModel(
            name="BANDS",
            center=SkyPosition(10.0, 0.0),
            redshift=0.04,
            n_galaxies=40,
            seed=5,
        )
        asym_by_band = {}
        for band in ("g", "i"):
            factory = CutoutFactory(cluster, band=band)
            values = []
            for member in factory.members():
                if member.morph not in (MorphType.SPIRAL, MorphType.IRREGULAR):
                    continue
                result = galmorph(
                    factory.render_cutout(member.galaxy_id),
                    redshift=member.redshift,
                    pix_scale=0.4 / 3600.0,
                )
                if result.valid:
                    values.append(result.asymmetry)
            asym_by_band[band] = np.mean(values)
        assert asym_by_band["g"] > asym_by_band["i"] * 1.2

    def test_cutout_header_records_band(self):
        from repro.catalog.coords import SkyPosition
        from repro.sky.cluster import ClusterModel

        cluster = ClusterModel(
            name="BANDH", center=SkyPosition(1.0, 1.0), redshift=0.03, n_galaxies=3, seed=2
        )
        factory = CutoutFactory(cluster, band="g")
        hdu = factory.render_cutout("BANDH-0000")
        assert hdu.header["BAND"] == "g"

    def test_r_band_is_reference(self):
        assert all(f == 1.0 for f in BAND_FLUX_FACTORS["r"].values())
