"""Tests for the cluster model and its Dressler-style morphology mixing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.catalog.coords import SkyPosition
from repro.sky.cluster import ClusterModel, MorphType


def make_cluster(n=200, **kwargs) -> ClusterModel:
    defaults = dict(
        name="T", center=SkyPosition(150.0, 2.0), redshift=0.05, n_galaxies=n, seed=11
    )
    defaults.update(kwargs)
    return ClusterModel(**defaults)


class TestValidation:
    def test_needs_galaxies(self):
        with pytest.raises(ValueError):
            make_cluster(n=0)

    def test_radius_ordering(self):
        with pytest.raises(ValueError):
            make_cluster(core_radius_deg=0.5, tidal_radius_deg=0.4)

    def test_fraction_ordering(self):
        with pytest.raises(ValueError):
            make_cluster(elliptical_core_fraction=0.2, elliptical_field_fraction=0.5)


class TestMemberGeneration:
    def test_reproducible(self):
        assert make_cluster().generate_members() == make_cluster().generate_members()

    def test_seed_changes_members(self):
        a = make_cluster(seed=1).generate_members()
        b = make_cluster(seed=2).generate_members()
        assert a != b

    def test_count_and_ids_unique(self):
        members = make_cluster(n=150).generate_members()
        assert len(members) == 150
        assert len({m.galaxy_id for m in members}) == 150

    def test_radii_within_tidal(self):
        cluster = make_cluster()
        members = cluster.generate_members()
        assert all(0 <= m.radius_deg <= cluster.tidal_radius_deg * 1.001 for m in members)

    def test_positions_match_radii(self):
        cluster = make_cluster(n=50)
        for m in cluster.generate_members():
            sep = cluster.center.separation_deg(SkyPosition(m.ra, m.dec))
            assert sep == pytest.approx(m.radius_deg, rel=0.02, abs=1e-5)

    def test_king_profile_centrally_concentrated(self):
        cluster = make_cluster(n=2000)
        radii = np.array([m.radius_deg for m in cluster.generate_members()])
        rc, rt = cluster.core_radius_deg, cluster.tidal_radius_deg
        # surface density in an inner annulus >> outer annulus
        inner = ((radii < 2 * rc)).sum() / (np.pi * (2 * rc) ** 2)
        outer = ((radii > rt / 2)).sum() / (np.pi * (rt**2 - (rt / 2) ** 2))
        assert inner > 5 * outer

    def test_redshift_scatter(self):
        cluster = make_cluster(n=500, velocity_dispersion_kms=1000.0)
        dz = np.array([m.redshift for m in cluster.generate_members()]) - cluster.redshift
        sigma_z = 1000.0 / 299_792.458
        assert np.std(dz) == pytest.approx(sigma_z, rel=0.15)

    def test_all_types_present_in_large_cluster(self):
        types = {m.morph for m in make_cluster(n=1000).generate_members()}
        assert types == set(MorphType)


class TestDresslerMixing:
    def test_probability_bounds(self):
        cluster = make_cluster()
        r = np.linspace(0, cluster.tidal_radius_deg, 50)
        p = cluster.elliptical_probability(r)
        assert p[0] == pytest.approx(cluster.elliptical_core_fraction, abs=1e-6)
        assert p[-1] == pytest.approx(cluster.elliptical_field_fraction, abs=1e-6)
        assert ((p >= 0) & (p <= 1)).all()

    def test_probability_monotone_decreasing(self):
        cluster = make_cluster()
        r = np.linspace(0, cluster.tidal_radius_deg, 50)
        assert (np.diff(cluster.elliptical_probability(r)) <= 1e-12).all()

    def test_generated_morphology_follows_radius(self):
        cluster = make_cluster(n=2000)
        members = cluster.generate_members()
        early = np.array([m.morph in (MorphType.ELLIPTICAL, MorphType.LENTICULAR) for m in members])
        radii = np.array([m.radius_deg for m in members])
        median = np.median(radii)
        inner_frac = early[radii < median].mean()
        outer_frac = early[radii >= median].mean()
        assert inner_frac > outer_frac + 0.1

    def test_asymmetry_by_type(self):
        members = make_cluster(n=1000).generate_members()
        mean_asym = {
            t: np.mean([m.asymmetry_true for m in members if m.morph == t])
            for t in MorphType
            if any(m.morph == t for m in members)
        }
        assert mean_asym[MorphType.SPIRAL] > mean_asym[MorphType.ELLIPTICAL]
        assert mean_asym[MorphType.IRREGULAR] > mean_asym[MorphType.LENTICULAR]


class TestSubclusterInjection:
    def test_zero_fraction_is_identity(self):
        import dataclasses

        base = make_cluster(n=100)
        with_zero = dataclasses.replace(base, subcluster_fraction=0.0)
        assert base.generate_members() == with_zero.generate_members()

    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            make_cluster(subcluster_fraction=0.6)

    def test_subclump_members_relocated(self):
        import dataclasses

        base = make_cluster(n=100)
        merging = dataclasses.replace(
            base, subcluster_fraction=0.25, subcluster_offset_deg=0.3
        )
        base_members = base.generate_members()
        merged_members = merging.generate_members()
        moved = [
            (a, b) for a, b in zip(base_members, merged_members) if a.ra != b.ra
        ]
        assert len(moved) == 25
        # relocated members cluster near the subclump offset radius
        radii = np.array([b.radius_deg for _, b in moved])
        assert abs(np.median(radii) - 0.3) < 0.1
        # and carry a bulk velocity offset
        dz = np.array([b.redshift - a.redshift for a, b in moved])
        expected_dz = merging.subcluster_velocity_kms / 299_792.458
        np.testing.assert_allclose(dz, expected_dz, rtol=1e-9)

    def test_untouched_members_identical(self):
        import dataclasses

        base = make_cluster(n=60)
        merging = dataclasses.replace(base, subcluster_fraction=0.2)
        same = [
            a == b for a, b in zip(base.generate_members(), merging.generate_members())
        ]
        assert sum(same) == 48
