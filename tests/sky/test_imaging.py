"""Tests for galaxy rendering, cutouts, mosaics and X-ray maps."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fits.wcs import TanWCS
from repro.sky.cluster import GalaxyRecord, MorphType
from repro.sky.galaxy import render_galaxy_image
from repro.sky.imaging import CutoutFactory, render_field_mosaic
from repro.sky.registry_data import DEMONSTRATION_CLUSTERS, campaign_expectations, demonstration_cluster
from repro.sky.xray import beta_model, render_xray_map


def make_galaxy(morph=MorphType.ELLIPTICAL, asym=0.0, mag=17.0) -> GalaxyRecord:
    return GalaxyRecord(
        galaxy_id="G-0001",
        ra=150.0,
        dec=2.0,
        redshift=0.05,
        magnitude=mag,
        morph=morph,
        r_e_arcsec=3.0,
        ellipticity=0.2,
        position_angle_deg=30.0,
        asymmetry_true=asym,
        radius_deg=0.1,
    )


class TestRenderGalaxy:
    def test_shape_and_dtype(self):
        img = render_galaxy_image(make_galaxy(), size=48)
        assert img.shape == (48, 48)
        assert img.dtype == np.float32

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            render_galaxy_image(make_galaxy(), size=4)

    def test_centrally_peaked(self):
        img = render_galaxy_image(make_galaxy(), size=64, noise_sigma=0.0)
        c = 31
        assert img[c, c] > img[5, 5]

    def test_flux_scales_with_magnitude(self):
        bright = render_galaxy_image(make_galaxy(mag=16.0), noise_sigma=0.0, sky_level=0.0).sum()
        faint = render_galaxy_image(make_galaxy(mag=18.5), noise_sigma=0.0, sky_level=0.0).sum()
        assert bright > 5 * faint

    def test_elliptical_more_concentrated_than_spiral(self):
        e = render_galaxy_image(make_galaxy(MorphType.ELLIPTICAL), noise_sigma=0.0, sky_level=0.0)
        s = render_galaxy_image(make_galaxy(MorphType.SPIRAL), noise_sigma=0.0, sky_level=0.0)
        c = e.shape[0] // 2
        central_fraction_e = e[c - 2 : c + 3, c - 2 : c + 3].sum() / e.sum()
        central_fraction_s = s[c - 2 : c + 3, c - 2 : c + 3].sum() / s.sum()
        assert central_fraction_e > central_fraction_s

    def test_asymmetric_galaxy_breaks_rotation_symmetry(self):
        sym = render_galaxy_image(make_galaxy(asym=0.0), noise_sigma=0.0, sky_level=0.0)
        asym = render_galaxy_image(
            make_galaxy(MorphType.SPIRAL, asym=0.4), noise_sigma=0.0, sky_level=0.0
        )

        def rot_residual(img):
            return np.abs(img - img[::-1, ::-1]).sum() / (2 * np.abs(img).sum())

        assert rot_residual(asym) > rot_residual(sym) + 0.02

    def test_deterministic_given_rng(self):
        from repro.utils.rng import derive_rng

        a = render_galaxy_image(make_galaxy(), rng=derive_rng(1, "x"))
        b = render_galaxy_image(make_galaxy(), rng=derive_rng(1, "x"))
        np.testing.assert_array_equal(a, b)


class TestCutoutFactory:
    def test_members_match_cluster(self, small_cluster):
        factory = CutoutFactory(small_cluster)
        assert len(factory.members()) == small_cluster.n_galaxies

    def test_unknown_galaxy(self, small_cluster):
        with pytest.raises(KeyError):
            CutoutFactory(small_cluster).member("nope")

    def test_cutout_metadata(self, small_cluster):
        factory = CutoutFactory(small_cluster, size=48)
        member = factory.members()[0]
        hdu = factory.render_cutout(member.galaxy_id)
        assert hdu.data.shape == (48, 48)
        assert hdu.header["OBJECT"] == member.galaxy_id
        assert hdu.header["CLUSTER"] == small_cluster.name

    def test_cutout_wcs_centered_on_galaxy(self, small_cluster):
        factory = CutoutFactory(small_cluster, size=64)
        member = factory.members()[3]
        hdu = factory.render_cutout(member.galaxy_id)
        wcs = TanWCS.from_header(hdu.header)
        ra, dec = wcs.pixel_to_sky(32.5, 32.5)
        assert float(ra) == pytest.approx(member.ra, abs=1e-9)
        assert float(dec) == pytest.approx(member.dec, abs=1e-9)

    def test_cutouts_byte_stable(self, small_cluster):
        a = CutoutFactory(small_cluster).render_cutout(f"{small_cluster.name}-0000")
        b = CutoutFactory(small_cluster).render_cutout(f"{small_cluster.name}-0000")
        np.testing.assert_array_equal(a.data, b.data)


class TestMosaicAndXray:
    def test_mosaic_shape_and_wcs(self, small_cluster):
        hdu = render_field_mosaic(small_cluster, size=128)
        assert hdu.data.shape == (128, 128)
        wcs = TanWCS.from_header(hdu.header)
        ra, dec = wcs.pixel_to_sky(64.5, 64.5)
        assert float(ra) == pytest.approx(small_cluster.center.ra, abs=1e-9)

    def test_mosaic_contains_sources(self, small_cluster):
        hdu = render_field_mosaic(small_cluster, size=128)
        # source pixels well above the 5-count sky
        assert hdu.data.max() > 20

    def test_beta_model_decreasing(self):
        r = np.linspace(0, 10, 50)
        s = beta_model(r, 10.0, 1.0)
        assert (np.diff(s) < 0).all()

    def test_beta_model_bad_core(self):
        with pytest.raises(ValueError):
            beta_model(np.array([1.0]), 1.0, 0.0)

    def test_xray_map_peaked_at_center(self, small_cluster):
        hdu = render_xray_map(small_cluster, size=64)
        c = 31
        center_mean = hdu.data[c - 4 : c + 5, c - 4 : c + 5].mean()
        corner_mean = hdu.data[:8, :8].mean()
        assert center_mean > 3 * corner_mean


class TestDemonstrationRegistry:
    def test_eight_clusters(self):
        assert len(DEMONSTRATION_CLUSTERS) == 8

    def test_galaxy_range_matches_paper(self):
        counts = sorted(c.n_galaxies for c in DEMONSTRATION_CLUSTERS)
        assert counts[0] == 37 and counts[-1] == 561

    def test_campaign_expectations(self):
        expected = campaign_expectations()
        assert expected["compute_jobs"] == 1152
        assert expected["images"] == 1525
        assert expected["transfers"] == 2295

    def test_lookup(self):
        assert demonstration_cluster("A1656").n_galaxies == 561
        with pytest.raises(KeyError):
            demonstration_cluster("A0000")
