"""Tests for Sersic profile math."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from scipy import integrate

from repro.sky.profiles import half_light_fraction, sersic_b, sersic_profile


class TestSersicB:
    def test_n4_reference(self):
        # de Vaucouleurs: b ~ 7.669
        assert sersic_b(4.0) == pytest.approx(7.669, abs=0.01)

    def test_n1_reference(self):
        # exponential: b ~ 1.678
        assert sersic_b(1.0) == pytest.approx(1.678, abs=0.01)

    def test_positive_index_required(self):
        with pytest.raises(ValueError):
            sersic_b(0.0)

    @given(st.floats(0.5, 8.0))
    def test_monotonic(self, n):
        assert sersic_b(n + 0.1) > sersic_b(n)


class TestSersicProfile:
    def test_positive_everywhere(self):
        r = np.linspace(0, 50, 100)
        assert (sersic_profile(r, r_e=5.0, n=2.0) > 0).all()

    def test_decreasing(self):
        r = np.linspace(0.1, 30, 50)
        profile = sersic_profile(r, r_e=5.0, n=4.0)
        assert (np.diff(profile) < 0).all()

    def test_bad_r_e(self):
        with pytest.raises(ValueError):
            sersic_profile(np.array([1.0]), r_e=0.0, n=1.0)

    @pytest.mark.parametrize("n", [0.8, 1.0, 2.5, 4.0])
    def test_total_flux_normalisation(self, n):
        # numerically integrate 2 pi r I(r) dr out to many r_e
        r_e, flux = 4.0, 123.0
        r = np.linspace(1e-6, 60 * r_e, 200_001)
        integrand = 2 * np.pi * r * sersic_profile(r, r_e, n, total_flux=flux)
        total = integrate.simpson(integrand, x=r)
        assert total == pytest.approx(flux, rel=2e-2)

    @pytest.mark.parametrize("n", [1.0, 4.0])
    def test_half_light_radius(self, n):
        # half the flux inside r_e, by definition of b_n
        assert half_light_fraction(1.0 * 4.0, 4.0, n) == pytest.approx(0.5, abs=5e-3)

    def test_half_light_fraction_monotone(self):
        fr = [half_light_fraction(r, 4.0, 2.0) for r in (1.0, 4.0, 12.0)]
        assert fr[0] < fr[1] < fr[2] <= 1.0
