"""Tests for WCS reprojection and DS9 region export."""

from __future__ import annotations

import numpy as np
import pytest

from repro.catalog.regions import (
    CircleRegion,
    catalog_to_regions,
    color_for_value,
    parse_region_file,
    write_region_file,
)
from repro.fits.hdu import ImageHDU
from repro.fits.header import Header
from repro.fits.wcs import TanWCS
from repro.sky.imaging import render_field_mosaic
from repro.sky.reproject import overlay_rgb_weights, reproject_tan
from repro.sky.xray import render_xray_map
from repro.votable.model import Field, VOTable


def hdu_with_wcs(data, ra=150.0, dec=2.0, scale=1e-3):
    header = Header()
    header.set("OBJECT", "test")
    TanWCS(ra, dec, (data.shape[1] + 1) / 2, (data.shape[0] + 1) / 2, -scale, scale).to_header(header)
    return ImageHDU(np.asarray(data, dtype=np.float32), header)


class TestReproject:
    def test_identity_reprojection(self):
        data = np.random.default_rng(0).normal(10, 1, (32, 32))
        hdu = hdu_with_wcs(data)
        wcs = TanWCS.from_header(hdu.header)
        out = reproject_tan(hdu, wcs, (32, 32), order=1)
        np.testing.assert_allclose(out.data, data, rtol=1e-5)

    def test_point_source_lands_at_right_sky_position(self):
        # a delta function in the source frame must appear at the same sky
        # coordinates in a shifted, rescaled target frame
        data = np.zeros((64, 64), dtype=np.float32)
        data[40, 24] = 100.0
        source = hdu_with_wcs(data, scale=1e-3)
        source_wcs = TanWCS.from_header(source.header)
        ra_pt, dec_pt = source_wcs.pixel_to_sky(25.0, 41.0)  # 1-based

        target_wcs = TanWCS(float(ra_pt), float(dec_pt), 16.5, 16.5, -5e-4, 5e-4)
        out = reproject_tan(source, target_wcs, (32, 32), order=1)
        peak = np.unravel_index(np.argmax(out.data), out.data.shape)
        # target centre pixel (0-based ~ (15.5, 15.5))
        assert abs(peak[0] - 15.5) <= 1.0 and abs(peak[1] - 15.5) <= 1.0

    def test_out_of_frame_filled(self):
        data = np.ones((16, 16))
        source = hdu_with_wcs(data, ra=150.0)
        far_wcs = TanWCS(151.0, 2.0, 8.5, 8.5, -1e-3, 1e-3)  # a degree away
        out = reproject_tan(source, far_wcs, (16, 16), fill_value=-1.0)
        assert (out.data == -1.0).all()

    def test_target_carries_wcs_and_metadata(self):
        source = hdu_with_wcs(np.ones((8, 8)))
        wcs = TanWCS(150.0, 2.0, 4.5, 4.5, -2e-3, 2e-3)
        out = reproject_tan(source, wcs, (8, 8))
        assert TanWCS.from_header(out.header) == wcs
        assert out.header["OBJECT"] == "test"

    def test_validation(self):
        with pytest.raises(ValueError):
            reproject_tan(ImageHDU(None), TanWCS(0, 0, 1, 1, -1e-3, 1e-3), (8, 8))
        with pytest.raises(ValueError):
            reproject_tan(hdu_with_wcs(np.ones((8, 8))), TanWCS(0, 0, 1, 1, -1e-3, 1e-3), (8, 8), order=7)

    def test_xray_onto_optical_grid(self, tiny_cluster):
        optical = render_field_mosaic(tiny_cluster, size=64)
        xray = render_xray_map(tiny_cluster, size=32)
        target_wcs = TanWCS.from_header(optical.header)
        resampled = reproject_tan(xray, target_wcs, optical.data.shape)
        assert resampled.data.shape == optical.data.shape
        # x-ray emission is centrally peaked on the shared grid too
        c = optical.data.shape[0] // 2
        assert resampled.data[c - 4 : c + 4, c - 4 : c + 4].mean() > resampled.data[:6, :6].mean()

    def test_rgb_weights(self, tiny_cluster):
        optical = render_field_mosaic(tiny_cluster, size=48)
        xray = render_xray_map(tiny_cluster, size=24)
        resampled = reproject_tan(xray, TanWCS.from_header(optical.header), optical.data.shape)
        red, blue = overlay_rgb_weights(optical, resampled)
        assert red.shape == blue.shape == optical.data.shape
        assert 0.0 <= red.min() and red.max() <= 1.0

    def test_rgb_weights_shape_mismatch(self, tiny_cluster):
        optical = render_field_mosaic(tiny_cluster, size=48)
        xray = render_xray_map(tiny_cluster, size=24)
        with pytest.raises(ValueError):
            overlay_rgb_weights(optical, xray)


class TestRegions:
    def test_roundtrip(self):
        regions = [
            CircleRegion(150.123456, 2.2, 4.0, color="blue", label="G-1"),
            CircleRegion(150.2, -2.3, 2.0),
        ]
        text = write_region_file(regions, comment="test layer")
        back = parse_region_file(text)
        assert len(back) == 2
        assert back[0].color == "blue" and back[0].label == "G-1"
        assert back[0].ra == pytest.approx(150.123456)
        assert back[1].color == "green"

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_region_file("fk5\nbox(1,2,3,4)")

    def test_frame_required(self):
        with pytest.raises(ValueError):
            parse_region_file('circle(1.0,2.0,3.0")')

    def test_color_ramp(self):
        assert color_for_value(0.0, 0.0, 1.0) == "orange"
        assert color_for_value(1.0, 0.0, 1.0) == "blue"
        assert color_for_value(-5.0, 0.0, 1.0) == "orange"  # clipped
        assert color_for_value(0.5, 0.5, 0.5) == "orange"  # degenerate range

    def test_catalog_to_regions(self):
        table = VOTable(
            [
                Field("id", "char"),
                Field("ra", "double"),
                Field("dec", "double"),
                Field("valid", "boolean"),
                Field("asymmetry", "double"),
            ]
        )
        table.append(["g1", 150.0, 2.0, True, 0.01])
        table.append(["g2", 150.1, 2.1, True, 0.40])
        table.append(["g3", 150.2, 2.2, False, None])
        regions = catalog_to_regions(table)
        assert len(regions) == 3
        assert regions[0].color == "orange"  # most symmetric
        assert regions[1].color == "blue"  # most asymmetric
        assert regions[2].color == "red" and "invalid" in regions[2].label
        # and the whole layer round-trips through the file format
        assert len(parse_region_file(write_region_file(regions))) == 3
