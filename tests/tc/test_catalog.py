"""Tests for the Transformation Catalog."""

from __future__ import annotations

import pytest

from repro.tc.catalog import TCEntry, TransformationCatalog


class TestTCEntry:
    def test_requires_fields(self):
        with pytest.raises(ValueError):
            TCEntry("", "isi", "/bin/x")
        with pytest.raises(ValueError):
            TCEntry("t", "", "/bin/x")
        with pytest.raises(ValueError):
            TCEntry("t", "isi", "")


class TestTransformationCatalog:
    def make(self) -> TransformationCatalog:
        tc = TransformationCatalog()
        tc.install("galMorph", "isi", "/usr/bin/galmorph", version="1.0")
        tc.install("galMorph", "fnal", "/opt/vds/galmorph")
        tc.install("concatVOTable", "isi", "/usr/bin/concat")
        return tc

    def test_query_all_sites(self):
        tc = self.make()
        entries = tc.query("galMorph")
        assert {e.site for e in entries} == {"isi", "fnal"}

    def test_query_one_site(self):
        tc = self.make()
        entries = tc.query("galMorph", site="isi")
        assert len(entries) == 1
        assert entries[0].path == "/usr/bin/galmorph"

    def test_annotations_kept(self):
        tc = self.make()
        assert tc.query("galMorph", site="isi")[0].annotations == {"version": "1.0"}

    def test_unknown_transformation_empty(self):
        assert self.make().query("nope") == []

    def test_sites_providing_sorted(self):
        assert self.make().sites_providing("galMorph") == ["fnal", "isi"]

    def test_contains(self):
        tc = self.make()
        assert "galMorph" in tc
        assert "nope" not in tc

    def test_duplicate_rejected(self):
        tc = self.make()
        with pytest.raises(ValueError):
            tc.install("galMorph", "isi", "/usr/bin/galmorph")

    def test_same_site_different_path_allowed(self):
        tc = self.make()
        tc.install("galMorph", "isi", "/usr/bin/galmorph-v2")
        assert len(tc.query("galMorph", site="isi")) == 2

    def test_query_count(self):
        tc = self.make()
        before = tc.query_count
        tc.query("galMorph")
        assert tc.query_count == before + 1

    def test_transformations_listed(self):
        assert set(self.make().transformations()) == {"galMorph", "concatVOTable"}
