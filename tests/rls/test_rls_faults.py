"""Tests for RLS fault injection, retry absorption and stale invalidation."""

from __future__ import annotations

import pytest

from repro.core.errors import ServiceTimeoutError
from repro.faults.plan import FaultPlan, RlsFaultSpec
from repro.resilience.retry import RetryPolicy
from repro.rls.rls import Replica, ReplicaLocationService


def seeded_rls(plan: FaultPlan | None = None, attempts: int = 3) -> ReplicaLocationService:
    rls = ReplicaLocationService(
        faults=plan.injector() if plan is not None else None,
        retry_policy=RetryPolicy(
            max_attempts=attempts, base_delay_s=0.01, jitter=0.0, seed=1
        ),
    )
    rls.add_site("isi")
    rls.add_site("fnal")
    rls.register("galaxy.fit", "gsiftp://isi.grid/data/galaxy.fit", "isi")
    rls.register("galaxy.fit", "gsiftp://fnal.grid/data/galaxy.fit", "fnal")
    return rls


class TestInjectedLookupTimeouts:
    def test_bounded_timeouts_absorbed_by_retry(self):
        plan = FaultPlan(rls=RlsFaultSpec(lookup_timeout_rate=1.0, max_timeouts=2))
        rls = seeded_rls(plan)
        replicas = rls.lookup("galaxy.fit")  # two injected timeouts, third attempt wins
        assert [r.site for r in replicas] == ["fnal", "isi"]
        assert rls.faults.injected() == {"rls/lookup-timeout": 2}

    def test_unbounded_timeouts_exhaust_the_ladder(self):
        plan = FaultPlan(rls=RlsFaultSpec(lookup_timeout_rate=1.0))
        rls = seeded_rls(plan)
        with pytest.raises(ServiceTimeoutError):
            rls.lookup("galaxy.fit")

    def test_exists_shares_the_guard(self):
        plan = FaultPlan(rls=RlsFaultSpec(lookup_timeout_rate=1.0, max_timeouts=1))
        rls = seeded_rls(plan)
        assert rls.exists("galaxy.fit")
        assert not rls.exists("missing.fit")

    def test_fault_free_rls_pays_no_wrapper(self):
        rls = seeded_rls(None)
        before = rls.query_count
        rls.lookup("galaxy.fit")
        assert rls.query_count == before + 1


class TestStaleInvalidation:
    def test_invalidate_removes_single_replica(self):
        rls = seeded_rls(None)
        rls.invalidate_stale(
            Replica(lfn="galaxy.fit", pfn="gsiftp://isi.grid/data/galaxy.fit", site="isi")
        )
        assert [r.site for r in rls.lookup("galaxy.fit")] == ["fnal"]

    def test_invalidate_is_idempotent(self):
        rls = seeded_rls(None)
        stale = Replica(
            lfn="galaxy.fit", pfn="gsiftp://isi.grid/data/galaxy.fit", site="isi"
        )
        rls.invalidate_stale(stale)
        rls.invalidate_stale(stale)  # another worker got there first: no raise
        assert rls.exists("galaxy.fit")

    def test_last_replica_removes_index_entry(self):
        rls = seeded_rls(None)
        for site in ("isi", "fnal"):
            rls.invalidate_stale(
                Replica(
                    lfn="galaxy.fit",
                    pfn=f"gsiftp://{site}.grid/data/galaxy.fit",
                    site=site,
                )
            )
        assert not rls.exists("galaxy.fit")
        assert rls.lookup("galaxy.fit") == []
