"""Tests for the Replica Location Service and storage sites."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import TransportError
from repro.rls.rls import LocalReplicaCatalog, Replica, ReplicaLocationService
from repro.rls.site import StorageSite


class TestLocalReplicaCatalog:
    def test_register_lookup(self):
        lrc = LocalReplicaCatalog("isi")
        lrc.register("b", "gsiftp://isi/data/b")
        assert lrc.lookup("b") == ["gsiftp://isi/data/b"]
        assert lrc.lookup("missing") == []

    def test_multiple_pfns_sorted(self):
        lrc = LocalReplicaCatalog("isi")
        lrc.register("b", "gsiftp://isi/z")
        lrc.register("b", "gsiftp://isi/a")
        assert lrc.lookup("b") == ["gsiftp://isi/a", "gsiftp://isi/z"]

    def test_unregister(self):
        lrc = LocalReplicaCatalog("isi")
        lrc.register("b", "p1")
        lrc.register("b", "p2")
        lrc.unregister("b", "p1")
        assert lrc.lookup("b") == ["p2"]
        lrc.unregister("b")
        assert len(lrc) == 0
        with pytest.raises(KeyError):
            lrc.unregister("b")


class TestReplicaLocationService:
    def make(self) -> ReplicaLocationService:
        rls = ReplicaLocationService()
        for site in ("isi", "uwisc", "fnal"):
            rls.add_site(site)
        return rls

    def test_register_and_lookup_across_sites(self):
        rls = self.make()
        rls.register("b", "gsiftp://isi/b", "isi")
        rls.register("b", "gsiftp://fnal/b", "fnal")
        replicas = rls.lookup("b")
        assert len(replicas) == 2
        assert {r.site for r in replicas} == {"isi", "fnal"}
        assert all(isinstance(r, Replica) for r in replicas)

    def test_exists(self):
        rls = self.make()
        assert not rls.exists("x")
        rls.register("x", "p", "isi")
        assert rls.exists("x")

    def test_unknown_site_rejected(self):
        rls = self.make()
        with pytest.raises(KeyError):
            rls.register("x", "p", "nowhere")

    def test_duplicate_site_rejected(self):
        rls = self.make()
        with pytest.raises(ValueError):
            rls.add_site("isi")

    def test_unregister_cleans_index(self):
        rls = self.make()
        rls.register("x", "p", "isi")
        rls.unregister("x", "isi")
        assert not rls.exists("x")
        assert rls.lookup("x") == []

    def test_unregister_partial_keeps_index(self):
        rls = self.make()
        rls.register("x", "p1", "isi")
        rls.register("x", "p2", "fnal")
        rls.unregister("x", "isi")
        assert rls.exists("x")
        assert [r.site for r in rls.lookup("x")] == ["fnal"]

    def test_lookup_many(self):
        rls = self.make()
        rls.register("a", "p", "isi")
        out = rls.lookup_many(["a", "b"])
        assert len(out["a"]) == 1 and out["b"] == []

    def test_query_count_tracked(self):
        rls = self.make()
        before = rls.query_count
        rls.exists("a")
        rls.lookup("a")
        assert rls.query_count == before + 2

    @given(st.lists(st.tuples(st.sampled_from(["a", "b", "c"]), st.sampled_from(["isi", "uwisc"])), max_size=20))
    def test_index_consistent_with_catalogs(self, ops):
        rls = self.make()
        for lfn, site in ops:
            rls.register(lfn, f"gsiftp://{site}/{lfn}", site)
        for lfn in ("a", "b", "c"):
            replicas = rls.lookup(lfn)
            assert rls.exists(lfn) == bool(replicas)
            # every reported replica is really in that site's catalog
            for r in replicas:
                assert r.pfn == f"gsiftp://{r.site}/{lfn}"


class TestStorageSite:
    def test_put_get(self):
        site = StorageSite("isi")
        pfn = site.pfn_for("b")
        site.put(pfn, b"hello")
        assert site.get(pfn) == b"hello"
        assert site.size(pfn) == 5
        assert site.exists(pfn)

    def test_pfn_scheme(self):
        assert StorageSite("isi").pfn_for("x") == "gsiftp://isi.grid/data/x"
        assert StorageSite("s", "http://cache").pfn_for("x") == "http://cache/data/x"

    def test_size_only_files(self):
        site = StorageSite("isi")
        site.put_size("p", 1000)
        assert site.size("p") == 1000
        with pytest.raises(TransportError):
            site.get("p")

    def test_negative_size(self):
        with pytest.raises(ValueError):
            StorageSite("isi").put_size("p", -1)

    def test_missing_file(self):
        site = StorageSite("isi")
        with pytest.raises(TransportError):
            site.get("nope")
        with pytest.raises(TransportError):
            site.size("nope")
        with pytest.raises(TransportError):
            site.delete("nope")

    def test_delete(self):
        site = StorageSite("isi")
        site.put("p", b"x")
        site.delete("p")
        assert not site.exists("p")

    def test_totals(self):
        site = StorageSite("isi")
        site.put("a", b"12345")
        site.put_size("b", 10)
        assert site.total_bytes() == 15
        assert sorted(site.files()) == ["a", "b"]

    def test_requires_name(self):
        with pytest.raises(ValueError):
            StorageSite("")
