"""Tests for the BINARY VOTable serialisation."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.votable.binary import parse_votable_binary, write_votable_binary
from repro.votable.model import Field, VOTable
from repro.votable.writer import write_votable

names = st.from_regex(r"[a-zA-Z][a-zA-Z0-9_]{0,8}", fullmatch=True)
cell_text = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=1,
    max_size=12,
)


@st.composite
def tables(draw):
    n_fields = draw(st.integers(1, 5))
    field_names = draw(st.lists(names, min_size=n_fields, max_size=n_fields, unique=True))
    datatypes = draw(
        st.lists(
            st.sampled_from(["char", "int", "double", "boolean", "long", "float", "short"]),
            min_size=n_fields,
            max_size=n_fields,
        )
    )
    fields = [Field(n, d) for n, d in zip(field_names, datatypes)]
    table = VOTable(fields, name=draw(names))
    for _ in range(draw(st.integers(0, 8))):
        row = []
        for f in fields:
            if draw(st.booleans()) and f.datatype != "char":
                row.append(None)
            elif f.datatype == "char":
                row.append(draw(cell_text))
            elif f.datatype == "boolean":
                row.append(draw(st.booleans()))
            elif f.datatype in ("short",):
                row.append(draw(st.integers(-30000, 30000)))
            elif f.datatype == "int":
                row.append(draw(st.integers(-(2**31) + 1, 2**31 - 1)))
            elif f.datatype == "long":
                row.append(draw(st.integers(-(2**62), 2**62)))
            elif f.datatype == "float":
                row.append(draw(st.floats(-1e5, 1e5, width=32)))
            else:
                row.append(draw(st.floats(-1e12, 1e12, allow_nan=False, allow_infinity=False)))
        table.append(row)
    return table


class TestBinaryRoundTrip:
    @given(tables())
    def test_property_roundtrip(self, table):
        assert parse_votable_binary(write_votable_binary(table)) == table

    def test_params_and_metadata(self):
        t = VOTable(
            [Field("ra", "double", unit="deg", ucd="pos.eq.ra")],
            name="gals",
            description="binary round trip",
            params={"REQUEST": "r-1"},
        )
        t.append([150.25])
        back = parse_votable_binary(write_votable_binary(t))
        assert back == t
        assert back.field("ra").unit == "deg"

    def test_null_handling(self):
        t = VOTable(
            [Field("x", "int"), Field("y", "double"), Field("ok", "boolean")]
        )
        t.append([None, None, None])
        t.append([7, 1.5, True])
        back = parse_votable_binary(write_votable_binary(t))
        assert back.row(0) == {"x": None, "y": None, "ok": None}
        assert back.row(1) == {"x": 7, "y": 1.5, "ok": True}

    def test_bytes_input(self):
        t = VOTable([Field("a", "int")])
        t.append([1])
        assert parse_votable_binary(write_votable_binary(t).encode()) == t

    def test_rejects_non_votable(self):
        with pytest.raises(ValueError):
            parse_votable_binary("<HTML/>")

    def test_rejects_tabledata_document(self):
        t = VOTable([Field("a", "int")])
        t.append([1])
        with pytest.raises(ValueError):
            parse_votable_binary(write_votable(t))  # no STREAM element


class TestBinaryEfficiency:
    def test_smaller_than_tabledata_for_numeric_bulk(self):
        t = VOTable(
            [Field("ra", "double"), Field("dec", "double"), Field("asym", "double")]
        )
        for i in range(500):
            t.append([150.0 + i * 1e-4, 2.0 - i * 1e-4, 0.001 * i])
        tabledata = write_votable(t)
        binary = write_votable_binary(t)
        assert len(binary) < len(tabledata) / 2
        assert parse_votable_binary(binary) == t
