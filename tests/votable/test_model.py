"""Tests for the VOTable in-memory model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.votable.model import Field, VOTable


def galaxy_table() -> VOTable:
    t = VOTable(
        [
            Field("id", "char", ucd="meta.id"),
            Field("ra", "double", unit="deg"),
            Field("mag", "float"),
            Field("count", "int"),
            Field("ok", "boolean"),
        ],
        name="gals",
    )
    t.append(["g1", 150.0, 17.5, 3, True])
    t.append(["g2", 151.0, 18.5, 4, False])
    return t


class TestField:
    def test_unknown_datatype(self):
        with pytest.raises(ValueError):
            Field("x", "complex")

    def test_empty_name(self):
        with pytest.raises(ValueError):
            Field("", "int")

    def test_char_defaults_variable_arraysize(self):
        assert Field("s", "char").arraysize == "*"

    def test_cast(self):
        assert Field("x", "int").cast("7") == 7
        assert Field("x", "double").cast("1.5") == 1.5
        assert Field("x", "char").cast(3) == "3"
        assert Field("x", "int").cast(None) is None


class TestVOTable:
    def test_duplicate_field_names_rejected(self):
        with pytest.raises(ValueError):
            VOTable([Field("a", "int"), Field("a", "int")])

    def test_append_positional_and_dict(self):
        t = galaxy_table()
        t.append({"id": "g3", "ra": 152.0})
        assert len(t) == 3
        assert t.row(2)["mag"] is None

    def test_append_wrong_arity(self):
        with pytest.raises(ValueError):
            galaxy_table().append(["only-one"])

    def test_append_unknown_dict_key(self):
        with pytest.raises(KeyError):
            galaxy_table().append({"nope": 1})

    def test_iteration_yields_dicts(self):
        rows = list(galaxy_table())
        assert rows[0]["id"] == "g1"
        assert rows[1]["ok"] is False

    def test_column_extraction(self):
        t = galaxy_table()
        np.testing.assert_allclose(t["ra"], [150.0, 151.0])
        assert t.column("count").dtype == np.int32

    def test_float_column_nulls_become_nan(self):
        t = galaxy_table()
        t.append({"id": "g3", "ra": 1.0})
        col = t.column("mag")
        assert np.isnan(col[-1])

    def test_int_column_nulls_raise(self):
        t = galaxy_table()
        t.append({"id": "g3", "ra": 1.0})
        with pytest.raises(ValueError):
            t.column("count")

    def test_values_cast_on_append(self):
        t = galaxy_table()
        t.append(["g3", "152.5", "19.0", "5", True])
        assert t.row(2)["ra"] == 152.5
        assert t.row(2)["count"] == 5

    def test_copy_structure(self):
        t = galaxy_table()
        empty = t.copy_structure("fresh")
        assert len(empty) == 0
        assert empty.fields == t.fields
        assert empty.name == "fresh"

    def test_equality(self):
        assert galaxy_table() == galaxy_table()
        other = galaxy_table()
        other.append({"id": "g3"})
        assert galaxy_table() != other

    def test_field_lookup(self):
        t = galaxy_table()
        assert t.field("ra").unit == "deg"
        with pytest.raises(KeyError):
            t.field("nope")
