"""The incremental VOTable writer: chunking, identity, well-formedness."""

from __future__ import annotations

import math
import xml.etree.ElementTree as ET

import pytest

from repro.votable.model import Field, VOTable
from repro.votable.parser import parse_votable
from repro.votable.writer import DEFAULT_ROWS_PER_CHUNK, iter_votable, write_votable


def sample_table(rows: int = 10) -> VOTable:
    table = VOTable(
        [
            Field("id", "char", ucd="meta.id"),
            Field("flux", "double", unit="mJy"),
            Field("n", "int"),
        ],
        name="sample",
        params={"survey": "dss"},
    )
    for i in range(rows):
        table.append({"id": f"obj<{i}>&'\"", "flux": 0.25 * i, "n": i})
    return table


class TestChunking:
    @pytest.mark.parametrize("rows_per_chunk", [1, 3, 7, DEFAULT_ROWS_PER_CHUNK])
    def test_joined_chunks_equal_write_votable(self, rows_per_chunk):
        table = sample_table(20)
        for namespaced in (True, False):
            streamed = "".join(
                iter_votable(
                    table, namespaced=namespaced, rows_per_chunk=rows_per_chunk
                )
            )
            assert streamed == write_votable(table, namespaced=namespaced)

    def test_chunk_count_is_header_rows_footer(self):
        table = sample_table(20)
        chunks = list(iter_votable(table, rows_per_chunk=7))
        assert len(chunks) == 2 + math.ceil(20 / 7)

    def test_empty_table_is_two_chunks(self):
        table = sample_table(0)
        chunks = list(iter_votable(table))
        assert len(chunks) == 2
        assert "".join(chunks) == write_votable(table)

    def test_rows_never_split_across_chunks(self):
        table = sample_table(10)
        for chunk in list(iter_votable(table, rows_per_chunk=3))[1:-1]:
            assert chunk.count("<TR>") == chunk.count("</TR>")

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            next(iter_votable(sample_table(1), rows_per_chunk=0))


class TestWellFormedness:
    @pytest.mark.parametrize("rows", [0, 1, 17])
    def test_streamed_output_is_parseable_xml(self, rows):
        streamed = "".join(iter_votable(sample_table(rows)))
        root = ET.fromstring(streamed)
        assert root.tag.endswith("VOTABLE")

    def test_streamed_output_roundtrips_through_parser(self):
        table = sample_table(17)
        parsed = parse_votable("".join(iter_votable(table)))
        assert [f.name for f in parsed.fields] == [f.name for f in table.fields]
        assert len(parsed) == len(table)
        assert parsed.rows()[3][0] == table.rows()[3][0]

    def test_escape_heavy_cells_survive(self):
        table = VOTable([Field("s", "char")], name="esc")
        nasty = 'a&b<c>d"e\tf'
        table.append({"s": nasty})
        parsed = parse_votable("".join(iter_votable(table)))
        assert parsed.rows()[0][0] == nasty

    def test_null_cells_render_as_empty_td(self):
        table = VOTable([Field("x", "double")], name="nulls")
        table.append({"x": None})
        body = "".join(iter_votable(table))
        assert "<TD />" in body
