"""Property-based tests for the VOTable operations."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.votable.model import Field, VOTable
from repro.votable.ops import inner_join, left_join, select_rows, vstack

keys = st.text(alphabet="abcdefg", min_size=1, max_size=2)


@st.composite
def keyed_tables(draw):
    """Two tables sharing a 'k' key column, arbitrary key multiplicity."""
    left = VOTable([Field("k", "char"), Field("a", "int")])
    right = VOTable([Field("k", "char"), Field("b", "int")])
    for i, key in enumerate(draw(st.lists(keys, max_size=10))):
        left.append([key, i])
    for i, key in enumerate(draw(st.lists(keys, max_size=10))):
        right.append([key, i * 10])
    return left, right


class TestJoinProperties:
    @given(keyed_tables())
    def test_inner_join_cardinality(self, tables):
        """|A join B| equals the sum over keys of count_A(k) * count_B(k)."""
        left, right = tables
        left_counts: dict[str, int] = {}
        right_counts: dict[str, int] = {}
        for row in left:
            left_counts[row["k"]] = left_counts.get(row["k"], 0) + 1
        for row in right:
            right_counts[row["k"]] = right_counts.get(row["k"], 0) + 1
        expected = sum(n * right_counts.get(k, 0) for k, n in left_counts.items())
        assert len(inner_join(left, right, on="k")) == expected

    @given(keyed_tables())
    def test_left_join_never_loses_left_rows(self, tables):
        left, right = tables
        joined = left_join(left, right, on="k")
        assert len(joined) >= len(left) or len(left) == 0
        # with unique right keys it is exactly the left count
        right_keys = [row["k"] for row in right]
        if len(set(right_keys)) == len(right_keys):
            assert len(joined) == len(left)

    @given(keyed_tables())
    def test_inner_subset_of_left_join(self, tables):
        left, right = tables
        inner = inner_join(left, right, on="k")
        outer = left_join(left, right, on="k")
        assert len(inner) <= len(outer)

    @given(keyed_tables())
    def test_join_commutes_on_key_sets(self, tables):
        """The key multiset of A join B equals that of B join A."""
        left, right = tables
        ab = sorted(row["k"] for row in inner_join(left, right, on="k"))
        ba = sorted(row["k"] for row in inner_join(right, left, on="k"))
        assert ab == ba


class TestSelectStackProperties:
    @given(keyed_tables())
    def test_select_partition(self, tables):
        """A predicate and its negation partition the table exactly."""
        left, _ = tables
        yes = select_rows(left, lambda r: r["a"] % 2 == 0)
        no = select_rows(left, lambda r: r["a"] % 2 != 0)
        assert len(yes) + len(no) == len(left)

    @given(keyed_tables())
    def test_vstack_length_additive(self, tables):
        left, _ = tables
        assert len(vstack([left, left, left])) == 3 * len(left)

    @given(keyed_tables())
    def test_vstack_preserves_rows(self, tables):
        left, _ = tables
        stacked = vstack([left, left])
        assert stacked.rows()[: len(left)] == left.rows()
        assert stacked.rows()[len(left) :] == left.rows()
