"""Tests for the VOTable operations (the general-purpose table services)."""

from __future__ import annotations

import pytest

from repro.votable.model import Field, VOTable
from repro.votable.ops import add_column, inner_join, left_join, select_rows, vstack


def left_table() -> VOTable:
    t = VOTable([Field("id", "char"), Field("ra", "double")], name="left")
    t.extend([["g1", 150.0], ["g2", 151.0], ["g3", 152.0]])
    return t


def right_table() -> VOTable:
    t = VOTable([Field("id", "char"), Field("asym", "double"), Field("ra", "double")])
    t.extend([["g1", 0.05, 150.0], ["g3", 0.31, 152.0]])
    return t


class TestJoin:
    def test_inner_join_matches_only(self):
        joined = inner_join(left_table(), right_table(), on="id")
        assert [r["id"] for r in joined] == ["g1", "g3"]
        assert joined.row(1)["asym"] == 0.31

    def test_collision_suffix(self):
        joined = inner_join(left_table(), right_table(), on="id")
        assert "ra_2" in joined.field_names()

    def test_left_join_nulls(self):
        joined = left_join(left_table(), right_table(), on="id")
        assert len(joined) == 3
        assert joined.row(1)["asym"] is None

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            inner_join(left_table(), right_table(), on="nope")

    def test_duplicate_keys_cross_product(self):
        left = VOTable([Field("k", "int"), Field("a", "char")])
        left.extend([[1, "x"], [1, "y"]])
        right = VOTable([Field("k", "int"), Field("b", "char")])
        right.extend([[1, "p"], [1, "q"]])
        joined = inner_join(left, right, on="k")
        assert len(joined) == 4

    def test_join_preserves_left_name_and_params(self):
        left = left_table()
        left.params["SRC"] = "portal"
        joined = inner_join(left, right_table(), on="id")
        assert joined.name == "left"
        assert joined.params["SRC"] == "portal"


class TestSelectRows:
    def test_predicate(self):
        kept = select_rows(left_table(), lambda r: r["ra"] > 150.5)
        assert [r["id"] for r in kept] == ["g2", "g3"]

    def test_empty_result_keeps_structure(self):
        kept = select_rows(left_table(), lambda r: False)
        assert len(kept) == 0
        assert kept.fields == left_table().fields


class TestAddColumn:
    def test_append_values(self):
        out = add_column(left_table(), Field("flag", "boolean"), [True, False, True])
        assert out.row(2)["flag"] is True
        assert len(out.fields) == 3

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            add_column(left_table(), Field("flag", "boolean"), [True])

    def test_original_untouched(self):
        t = left_table()
        add_column(t, Field("x", "int"), [1, 2, 3])
        assert "x" not in t.field_names()


class TestVstack:
    def test_concatenates(self):
        stacked = vstack([left_table(), left_table()])
        assert len(stacked) == 6

    def test_field_mismatch(self):
        with pytest.raises(ValueError):
            vstack([left_table(), right_table()])

    def test_empty_list(self):
        with pytest.raises(ValueError):
            vstack([])
