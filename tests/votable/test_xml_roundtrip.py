"""VOTable XML serialisation: round-trips, dialects, Mirage export."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.votable.model import Field, VOTable
from repro.votable.parser import parse_votable
from repro.votable.writer import to_mirage_format, write_votable

names = st.from_regex(r"[a-zA-Z][a-zA-Z0-9_]{0,10}", fullmatch=True)
cell_text = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126, exclude_characters="<>&'\""),
    min_size=1,
    max_size=12,
)


@st.composite
def votables(draw):
    n_fields = draw(st.integers(1, 5))
    field_names = draw(
        st.lists(names, min_size=n_fields, max_size=n_fields, unique=True)
    )
    datatypes = draw(
        st.lists(
            st.sampled_from(["char", "int", "double", "boolean", "long", "float", "short"]),
            min_size=n_fields,
            max_size=n_fields,
        )
    )
    fields = [Field(n, d) for n, d in zip(field_names, datatypes)]
    table = VOTable(fields, name=draw(names))
    for _ in range(draw(st.integers(0, 6))):
        row = []
        for f in fields:
            if draw(st.booleans()) and f.datatype != "char":
                row.append(None)
            elif f.datatype == "char":
                row.append(draw(cell_text))
            elif f.datatype == "boolean":
                row.append(draw(st.booleans()))
            elif f.datatype in ("short", "int"):
                row.append(draw(st.integers(-30000, 30000)))
            elif f.datatype == "long":
                row.append(draw(st.integers(-(2**40), 2**40)))
            elif f.datatype == "float":
                row.append(draw(st.floats(-1e5, 1e5, width=32)))
            else:
                row.append(draw(st.floats(-1e12, 1e12, allow_nan=False, allow_infinity=False)))
        table.append(row)
    return table


class TestRoundTrip:
    @given(votables())
    def test_property_roundtrip(self, table):
        assert parse_votable(write_votable(table)) == table

    @given(votables())
    def test_bare_dialect_roundtrip(self, table):
        assert parse_votable(write_votable(table, namespaced=False)) == table

    def test_params_roundtrip(self):
        t = VOTable([Field("a", "int")], params={"REQUEST_ID": "req-1"})
        t.append([1])
        assert parse_votable(write_votable(t)).params == {"REQUEST_ID": "req-1"}

    def test_description_roundtrip(self):
        t = VOTable([Field("a", "int")], description="galaxies of A1656")
        assert parse_votable(write_votable(t)).description == "galaxies of A1656"

    def test_bytes_input(self):
        t = VOTable([Field("a", "int")])
        t.append([5])
        assert parse_votable(write_votable(t).encode("utf-8")) == t


class TestParserErrors:
    def test_not_votable(self):
        with pytest.raises(ValueError):
            parse_votable("<HTML></HTML>")

    def test_no_table(self):
        with pytest.raises(ValueError):
            parse_votable("<VOTABLE><RESOURCE/></VOTABLE>")

    def test_bad_boolean_cell(self):
        doc = (
            "<VOTABLE><RESOURCE><TABLE>"
            "<FIELD name='x' datatype='boolean'/>"
            "<DATA><TABLEDATA><TR><TD>maybe</TD></TR></TABLEDATA></DATA>"
            "</TABLE></RESOURCE></VOTABLE>"
        )
        with pytest.raises(ValueError):
            parse_votable(doc)

    def test_boolean_spellings(self):
        doc = (
            "<VOTABLE><RESOURCE><TABLE>"
            "<FIELD name='x' datatype='boolean'/>"
            "<DATA><TABLEDATA>"
            "<TR><TD>T</TD></TR><TR><TD>false</TD></TR><TR><TD>1</TD></TR>"
            "</TABLEDATA></DATA>"
            "</TABLE></RESOURCE></VOTABLE>"
        )
        t = parse_votable(doc)
        assert [r["x"] for r in t] == [True, False, True]


class TestMirageExport:
    def test_format_line(self):
        t = VOTable([Field("ra", "double"), Field("id", "char")])
        t.append([1.5, "g1"])
        text = to_mirage_format(t)
        lines = text.splitlines()
        assert lines[0] == "format ra id"
        assert lines[1] == '1.5 "g1"'

    def test_null_and_boolean_cells(self):
        t = VOTable([Field("x", "double"), Field("ok", "boolean")])
        t.append([None, True])
        assert to_mirage_format(t).splitlines()[1] == "- 1"
