"""Tests for the ``repro top`` dashboard: pure rendering + live polling."""

from __future__ import annotations

import asyncio
import io
import time

from repro.serve.top import CLEAR, render_dashboard, run_top
from tests.serve.conftest import run_with_server

REQUESTS_SNAP = {
    "uptime_s": 12.5,
    "requests": {"rate_1s": 3.0, "1s": 3.0, "10s": 2.5, "60s": 2.0, "total": 150},
    "errors": {"1s": 0.0, "10s": 0.1, "60s": 0.05, "total": 3},
    "latency": {"p50": 0.012, "p95": 0.045, "p99": 0.102, "window_s": 60.0},
    "shed_totals": {"tenant-gate": 4.0, "queue-full": 0.0},
    "tenants": {"alice": 1.5, "bob": 1.0},
    "routes": {"cone": 2.0, "health": 0.5},
    "flight": {"open": 1, "completed": 42, "errors": 2},
}
SLO_SNAP = {
    "state": "warn",
    "objectives": [
        {
            "objective": "availability",
            "state": "ok",
            "burn_short": 0.0,
            "burn_long": 0.1,
            "budget_remaining": 0.98,
        },
        {
            "objective": "latency",
            "state": "warn",
            "burn_short": 7.0,
            "burn_long": 6.5,
            "budget_remaining": 0.42,
        },
    ],
}
HEALTH_SNAP = {
    "status": "degraded",
    "queued": 4,
    "running": 2,
    "inflight": 3,
    "sites": {"siteA": "up", "siteB": "degraded"},
}


class TestRenderDashboard:
    def test_renders_all_sections(self):
        frame = render_dashboard(
            REQUESTS_SNAP, SLO_SNAP, HEALTH_SNAP, url="http://x:1"
        )
        assert "repro top — http://x:1" in frame
        assert "up 12s" in frame or "up 13s" in frame
        assert "total 150" in frame
        assert "p99" in frame and "102.0 ms" in frame
        assert "queued 4" in frame and "running 2" in frame and "inflight 3" in frame
        assert "availability" in frame and "latency" in frame
        assert "WARN" in frame  # the latency objective is warning
        assert "budget  42.0%" in frame
        assert "tenant-gate 4" in frame
        assert "queue-full" not in frame  # zero-count sheds are hidden
        assert "alice 1.5" in frame and "bob 1.0" in frame
        assert "siteA up" in frame and "siteB degraded" in frame
        assert "open 1" in frame and "completed 42" in frame

    def test_deterministic_given_fixed_clock(self):
        clock = lambda: time.localtime(0)  # noqa: E731
        one = render_dashboard(REQUESTS_SNAP, SLO_SNAP, HEALTH_SNAP, clock=clock)
        two = render_dashboard(REQUESTS_SNAP, SLO_SNAP, HEALTH_SNAP, clock=clock)
        assert one == two

    def test_empty_payloads_do_not_crash(self):
        frame = render_dashboard({}, {}, {})
        assert "repro top" in frame
        assert "(idle)" in frame
        assert "total 0" in frame


class TestRunTopLive:
    def test_polls_a_live_observable_stack(self):
        async def scenario(stack, host, port):
            buffer = io.StringIO()
            loop = asyncio.get_running_loop()
            # urllib is synchronous: run it off-loop so the server can answer.
            code = await loop.run_in_executor(
                None,
                lambda: run_top(
                    f"http://{host}:{port}",
                    iterations=1,
                    stream=buffer,
                    clear=False,
                ),
            )
            return code, buffer.getvalue()

        code, frame = run_with_server(scenario, observability=True)
        assert code == 0
        assert CLEAR not in frame  # clear=False leaves the frame greppable
        assert "requests" in frame and "slo" in frame and "flight" in frame

    def test_exit_code_2_when_plane_disabled(self):
        async def scenario(stack, host, port):
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(
                None,
                lambda: run_top(
                    f"http://{host}:{port}", iterations=1, stream=io.StringIO()
                ),
            )

        assert run_with_server(scenario) == 2

    def test_exit_code_1_when_unreachable(self):
        assert run_top("http://127.0.0.1:9", iterations=1, stream=io.StringIO()) == 1
