"""End-to-end tests of the live observability plane over real HTTP.

The request-id echo is a *protocol* contract (held in every plane
configuration); the trace header, ``/debug`` surface, access log, flight
recorder and SLO payloads are the plane's own surface and only appear
when the stack was built with ``observability=True``.
"""

from __future__ import annotations

import json
import re

import pytest

from repro import telemetry
from repro.serve.app import TenantGate
from repro.serve.loadgen import http_request
from tests.serve.conftest import TINY_DEC, TINY_NAME, TINY_RA, run_with_server

MINTED_ID = re.compile(r"^r-[0-9a-f]{12}$")


async def _get(host, port, target, *, headers=(), method="GET", body=b""):
    return await http_request(host, port, method, target, headers=headers, body=body)


# -- the X-Request-Id echo contract -------------------------------------------
@pytest.mark.parametrize("observability", [True, None, False])
def test_request_id_echoed_in_every_plane_configuration(observability):
    async def scenario(stack, host, port):
        status, headers, _ = await _get(
            host, port, "/health", headers=[("X-Request-Id", "client-id-42")]
        )
        return status, headers

    status, headers = run_with_server(scenario, observability=observability)
    assert status == 200
    assert headers["x-request-id"] == "client-id-42"


def test_request_id_minted_when_client_sends_none():
    async def scenario(stack, host, port):
        _, headers, _ = await _get(host, port, "/health")
        return headers

    headers = run_with_server(scenario)
    assert MINTED_ID.match(headers["x-request-id"])


def test_malformed_request_id_is_replaced_not_echoed():
    async def scenario(stack, host, port):
        _, headers, _ = await _get(
            host, port, "/health", headers=[("X-Request-Id", "bad id<script>")]
        )
        return headers

    headers = run_with_server(scenario)
    assert headers["x-request-id"] != "bad id<script>"
    assert MINTED_ID.match(headers["x-request-id"])


def test_request_id_echoed_on_shed_and_error_statuses():
    async def scenario(stack, host, port):
        # Fill the gate so the next request is shed with 429 tenant-gate.
        stack.app.gate = TenantGate(per_tenant=1, total=1)
        assert stack.app.gate.try_enter("filler")
        shed_status, shed_headers, _ = await _get(
            host, port, "/queue", headers=[("X-Request-Id", "shed-1")]
        )
        stack.app.gate.leave("filler")
        missing_status, missing_headers, _ = await _get(
            host, port, "/no/such/route", headers=[("X-Request-Id", "lost-1")]
        )
        return shed_status, shed_headers, missing_status, missing_headers

    shed_status, shed_headers, missing_status, missing_headers = run_with_server(
        scenario
    )
    assert shed_status == 429
    assert shed_headers["x-request-id"] == "shed-1"
    assert "retry-after" in shed_headers
    assert missing_status == 404
    assert missing_headers["x-request-id"] == "lost-1"


# -- trace headers -------------------------------------------------------------
def test_trace_id_header_only_when_plane_enabled():
    async def scenario(stack, host, port):
        _, headers, _ = await _get(host, port, "/health")
        return headers

    enabled = run_with_server(scenario, observability=True)
    assert enabled["x-trace-id"]
    disabled = run_with_server(scenario)  # default: plane wired but off
    assert "x-trace-id" not in disabled


def test_supplied_trace_context_is_adopted():
    async def scenario(stack, host, port):
        _, headers, _ = await _get(
            host,
            port,
            "/health",
            headers=[("X-Trace-Context", "trace-abc123/span-007")],
        )
        return headers

    headers = run_with_server(scenario, observability=True)
    assert headers["x-trace-id"] == "trace-abc123"


# -- the tentpole: one trace across the HTTP boundary --------------------------
def test_single_trace_covers_submit_through_execution():
    async def scenario(stack, host, port):
        body = json.dumps(
            {"user": "alice", "cluster": TINY_NAME, "options": {}}
        ).encode()
        status, headers, payload = await _get(
            host,
            port,
            "/jobs",
            method="POST",
            body=body,
            headers=[("Content-Type", "application/json")],
        )
        assert status == 202
        trace_id = headers["x-trace-id"]
        job = json.loads(payload)
        # Wait for the job to finish so the executor-side spans land.
        status, _, payload = await _get(
            host, port, f"/jobs/{job['job_id']}?wait=15"
        )
        assert status == 200
        assert json.loads(payload)["state"] == "completed"
        status, _, payload = await _get(host, port, f"/debug/trace/{trace_id}")
        assert status == 200
        return trace_id, json.loads(payload)

    trace_id, entry = run_with_server(scenario, observability=True)
    assert entry["trace"] == trace_id
    names = {span["name"] for span in entry["spans"]}
    assert {
        "serve.request",
        "scheduler.admission",
        "scheduler.journal",
        "scheduler.job",
    } <= names
    assert all(span["trace"] == trace_id for span in entry["spans"])


def test_trace_endpoint_404s_for_unknown_trace():
    async def scenario(stack, host, port):
        status, _, _ = await _get(host, port, "/debug/trace/never-happened")
        return status

    assert run_with_server(scenario, observability=True) == 404


# -- access log ----------------------------------------------------------------
def test_access_log_file_gets_one_line_per_request(tmp_path):
    log_path = tmp_path / "access.jsonl"

    async def scenario(stack, host, port):
        for _ in range(3):
            await _get(host, port, "/health")
        return stack.plane.access_count()

    count = run_with_server(
        scenario, observability=True, access_log_path=str(log_path)
    )
    assert count == 3
    lines = [json.loads(l) for l in log_path.read_text().splitlines() if l]
    assert len(lines) == 3
    for line in lines:
        assert line["method"] == "GET"
        assert line["path"] == "/health"
        assert line["status"] == 200
        assert line["trace"] and line["request_id"]
        assert line["dur_ms"] >= 0.0


# -- /debug surface -------------------------------------------------------------
def test_debug_requests_snapshot_shape():
    async def scenario(stack, host, port):
        await _get(host, port, f"/cone?RA={TINY_RA}&DEC={TINY_DEC}&SR=0.1")
        await _get(host, port, "/health")
        _, _, payload = await _get(host, port, "/debug/requests")
        return json.loads(payload)

    snap = run_with_server(scenario, observability=True)
    assert snap["requests"]["total"] >= 2
    assert snap["errors"]["total"] == 0
    assert set(snap["latency"]) == {"p50", "p95", "p99", "window_s"}
    assert "cone" in snap["routes"]
    assert snap["access_log_count"] >= 2
    # The snapshot is rendered before its own request is accounted, so the
    # newest entry in the tail is the request *before* the debug call.
    assert snap["recent"][-1]["route"] == "health"
    assert snap["flight"]["open"] >= 0


def test_debug_slo_snapshot_shape():
    async def scenario(stack, host, port):
        await _get(host, port, "/health")
        _, _, payload = await _get(host, port, "/debug/slo")
        return json.loads(payload)

    snap = run_with_server(scenario, observability=True)
    assert snap["state"] == "ok"
    names = {o["objective"] for o in snap["objectives"]}
    assert names == {"availability", "latency"}
    for objective in snap["objectives"]:
        assert 0.0 <= objective["budget_remaining"] <= 1.0


def test_shed_requests_recorded_with_reason():
    async def scenario(stack, host, port):
        stack.app.gate = TenantGate(per_tenant=1, total=1)
        assert stack.app.gate.try_enter("filler")
        status, _, _ = await _get(host, port, "/queue")
        assert status == 429
        stack.app.gate.leave("filler")
        _, _, payload = await _get(host, port, "/debug/requests")
        return json.loads(payload)

    snap = run_with_server(scenario, observability=True)
    assert snap["shed_totals"]["tenant-gate"] == 1.0
    assert snap["errors"]["total"] == 0  # sheds are not availability errors


def test_debug_surface_404s_when_plane_disabled():
    async def scenario(stack, host, port):
        out = []
        for target in ("/debug/requests", "/debug/slo", "/debug/trace/x"):
            status, _, _ = await _get(host, port, target)
            out.append(status)
        return out

    assert run_with_server(scenario) == [404, 404, 404]


def test_flight_dump_endpoint_writes_valid_jsonl(tmp_path):
    dump_path = tmp_path / "flight.jsonl"

    async def scenario(stack, host, port):
        await _get(host, port, "/health")
        status, _, payload = await _get(
            host,
            port,
            "/debug/flight/dump",
            method="POST",
            body=json.dumps({"path": str(dump_path)}).encode(),
        )
        return status, json.loads(payload)

    status, payload = run_with_server(scenario, observability=True)
    assert status == 200
    assert payload["path"] == str(dump_path)
    assert payload["traces"] >= 1
    lines = [json.loads(l) for l in dump_path.read_text().splitlines() if l]
    assert len(lines) == payload["traces"]
    assert all("trace" in line and "spans" in line for line in lines)


# -- unhandled handler errors ----------------------------------------------------
def test_unhandled_error_returns_500_with_request_id_and_is_recorded():
    async def scenario(stack, host, port):
        def boom():
            raise RuntimeError("handler bug")

        stack.manager.snapshot = boom
        status, headers, _ = await _get(
            host, port, "/queue", headers=[("X-Request-Id", "doomed-1")]
        )
        del stack.manager.snapshot
        _, _, payload = await _get(host, port, "/debug/requests")
        return status, headers, json.loads(payload)

    status, headers, snap = run_with_server(scenario, observability=True)
    assert status == 500
    assert headers["x-request-id"] == "doomed-1"
    assert snap["errors"]["total"] == 1.0
    assert snap["flight"]["errors"] >= 1
    errored = [e for e in snap["recent"] if e.get("error")]
    assert errored and errored[0]["error"] == "RuntimeError"


# -- /health and /metrics enrichment ---------------------------------------------
def test_health_reports_slo_and_sites_when_plane_enabled():
    async def scenario(stack, host, port):
        _, _, payload = await _get(host, port, "/health")
        return json.loads(payload), stack.env

    payload, env = run_with_server(scenario, observability=True)
    assert payload["status"] == "ok"
    assert payload["slo"]["state"] == "ok"
    if getattr(env, "health", None) is not None:
        assert "sites" in payload


def test_metrics_gains_windowed_gauges_when_plane_enabled():
    async def scenario(stack, host, port):
        await _get(host, port, "/health")
        _, _, body = await _get(host, port, "/metrics")
        return body.decode()

    text = run_with_server(scenario, observability=True)
    assert "serve_request_rate" in text
    assert "serve_slo_burn_rate" in text
    assert "serve_slo_budget_remaining" in text


def test_plane_enable_is_reversible_and_telemetry_reset():
    async def scenario(stack, host, port):
        assert telemetry.enabled()
        await _get(host, port, "/health")
        return stack.plane.enabled

    assert run_with_server(scenario, observability=True) is True
    # The autouse fixture disables telemetry after each test; this test
    # documents that an enabled stack *does* turn the runtime on.
