"""Shared helpers for the serving-tier tests.

The stack-building helpers run everything inside one ``asyncio.run`` per
test (the repo has no async test plugin), against a deliberately tiny
demonstration environment so each boot costs milliseconds, not seconds.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable

import pytest

from repro.catalog.coords import SkyPosition
from repro.serve.harness import ServingStack, build_serving_stack
from repro.sky.cluster import ClusterModel

TINY_NAME = "SRV01"
TINY_RA, TINY_DEC = 150.0, 2.2


def tiny_cluster(name: str = TINY_NAME, n: int = 12) -> ClusterModel:
    return ClusterModel(
        name=name,
        center=SkyPosition(TINY_RA, TINY_DEC),
        redshift=0.05,
        n_galaxies=n,
        core_radius_deg=0.04,
        seed=7,
        context_image_count=4,
    )


def build_tiny_stack(**kwargs) -> ServingStack:
    kwargs.setdefault("runner", "synthetic")
    kwargs.setdefault("clusters", [tiny_cluster()])
    return build_serving_stack(**kwargs)


def run_with_app(
    fn: Callable[[ServingStack], Awaitable[object]], **stack_kwargs
) -> object:
    """Run ``fn`` against a started manager + app (no listening socket)."""

    async def runner() -> object:
        stack = build_tiny_stack(**stack_kwargs)
        stack.manager.start()
        try:
            return await fn(stack)
        finally:
            stack.app.bridge.close()
            stack.manager.stop()

    return asyncio.run(runner())


def run_with_server(
    fn: Callable[[ServingStack, str, int], Awaitable[object]], **stack_kwargs
) -> object:
    """Run ``fn`` against a fully started stack on an ephemeral port."""

    async def runner() -> object:
        async with build_tiny_stack(**stack_kwargs) as stack:
            return await fn(stack, stack.server.host, stack.server.port)

    return asyncio.run(runner())


@pytest.fixture()
def cluster() -> ClusterModel:
    return tiny_cluster()


@pytest.fixture(autouse=True)
def _telemetry_reset():
    """Observability-enabled stacks turn the telemetry runtime on globally
    (``plane.enable()``); make sure no test leaks that into the next."""
    yield
    from repro import telemetry

    telemetry.disable()
