"""Loadgen tests: determinism, percentile math, SLO classification."""

from __future__ import annotations

import asyncio
import math

import pytest

from repro.serve.loadgen import (
    RequestOutcome,
    Scenario,
    ScenarioReport,
    herd_scenario,
    percentile,
    plan_requests,
    run_scenario,
    slow_client_scenario,
    steady_scenario,
)

from tests.serve.conftest import TINY_DEC, TINY_RA, TINY_NAME, run_with_server

CLUSTERS = [(TINY_NAME, TINY_RA, TINY_DEC)]


class TestPercentile:
    def test_nearest_rank(self):
        samples = sorted(float(v) for v in range(1, 101))
        assert percentile(samples, 50) == 50.0
        assert percentile(samples, 95) == 95.0
        assert percentile(samples, 99) == 99.0
        assert percentile(samples, 100) == 100.0

    def test_single_sample(self):
        assert percentile([7.0], 50) == 7.0
        assert percentile([7.0], 99) == 7.0

    def test_empty_is_nan(self):
        assert math.isnan(percentile([], 99))

    @pytest.mark.parametrize("q", [0.0, -1.0, 101.0])
    def test_out_of_range_quantile_rejected(self, q):
        with pytest.raises(ValueError):
            percentile([1.0], q)


class TestPlanning:
    def test_same_seed_same_plan(self):
        a = plan_requests(steady_scenario(requests=60, seed=11), CLUSTERS)
        b = plan_requests(steady_scenario(requests=60, seed=11), CLUSTERS)
        assert a == b

    def test_different_seed_different_plan(self):
        a = plan_requests(steady_scenario(requests=60, seed=11), CLUSTERS)
        b = plan_requests(steady_scenario(requests=60, seed=12), CLUSTERS)
        assert a != b

    def test_poisson_arrivals_are_monotone_and_spread(self):
        plans = plan_requests(steady_scenario(requests=200, rate=100.0), CLUSTERS)
        times = [p.at for p in plans]
        assert times == sorted(times)
        assert times[-1] > 0.5  # ~200 arrivals at 100 rps span ~2s

    def test_herd_releases_everything_at_t0(self):
        plans = plan_requests(herd_scenario(requests=50), CLUSTERS)
        assert all(p.at == 0.0 for p in plans)

    def test_slow_every_marks_the_right_fraction(self):
        scenario = slow_client_scenario(requests=100, slow_every=5)
        plans = plan_requests(scenario, CLUSTERS)
        assert sum(p.slow for p in plans) == 20

    def test_tenants_rotate_evenly(self):
        plans = plan_requests(steady_scenario(requests=99), CLUSTERS)
        per_tenant = {t: 0 for t in ("alice", "bob", "carol")}
        for p in plans:
            per_tenant[p.tenant] += 1
        assert set(per_tenant.values()) == {33}

    def test_mix_produces_all_kinds(self):
        plans = plan_requests(steady_scenario(requests=200), CLUSTERS)
        kinds = {p.kind for p in plans}
        assert kinds == {"cone", "sia", "submit", "status"}
        submit = next(p for p in plans if p.kind == "submit")
        assert submit.method == "POST" and submit.body

    def test_no_clusters_is_an_error(self):
        with pytest.raises(ValueError):
            plan_requests(steady_scenario(requests=5), [])


def outcome(status: int, *, slow: bool = False, latency: float = 0.01):
    return RequestOutcome(
        kind="cone",
        tenant="alice",
        status=status,
        latency=latency,
        received=100,
        slow=slow,
    )


class TestScenarioReport:
    def make(self, outcomes) -> ScenarioReport:
        return ScenarioReport(
            scenario=steady_scenario(requests=len(outcomes)),
            outcomes=outcomes,
            wall_seconds=2.0,
        )

    def test_classification(self):
        report = self.make(
            [
                outcome(200),
                outcome(202),
                outcome(429),
                outcome(503),
                outcome(404),  # client error: neither completed, shed nor failed
                outcome(500),
                outcome(0),
            ]
        )
        d = report.as_dict()
        assert d["completed"] == 2
        assert d["shed"] == 2
        assert d["failures"] == 2
        assert d["shed_rate"] == pytest.approx(2 / 7)
        assert d["throughput_rps"] == pytest.approx(1.0)

    def test_slow_readers_excluded_from_latency_slo(self):
        report = self.make(
            [outcome(200, latency=0.01), outcome(200, slow=True, latency=9.0)]
        )
        assert report.latencies_ms() == [pytest.approx(10.0)]
        assert report.latencies_ms(include_slow=True)[-1] == pytest.approx(9000.0)
        assert report.as_dict()["p99_ms"] == pytest.approx(10.0)

    def test_by_kind_breakdown(self):
        report = self.make([outcome(200), outcome(429)])
        by_kind = report.as_dict()["by_kind"]
        assert by_kind["cone"] == {
            "requests": 2,
            "completed": 1,
            "shed": 1,
            "failures": 0,
        }

    def test_summary_is_one_line(self):
        report = self.make([outcome(200)])
        assert "\n" not in report.summary()
        assert "steady-poisson" in report.summary()

    def test_id_mismatch_is_its_own_failure_class(self):
        bad = RequestOutcome(
            kind="cone", tenant="alice", status=200, latency=0.01,
            received=100, slow=False, id_mismatch=True,
        )
        report = self.make([outcome(200), bad])
        d = report.as_dict()
        # A healthy status with the wrong echoed id still fails the run.
        assert d["id_mismatches"] == 1
        assert d["failures"] == 1
        assert report.failures == [bad]


class TestRequestIdEcho:
    def test_planned_requests_carry_deterministic_ids(self):
        plans = plan_requests(steady_scenario(requests=5, seed=0x2003), CLUSTERS)
        assert [p.request_id for p in plans] == [
            f"lg2003-{i:05d}" for i in range(5)
        ]

    def test_live_run_asserts_the_echo(self):
        scenario = steady_scenario(requests=20, rate=200.0, seed=6)

        async def drive(stack, host, port):
            report = await run_scenario(host, port, scenario, CLUSTERS)
            assert report.as_dict()["id_mismatches"] == 0
            assert report.failures == []
            # drain queued submits so teardown is quick
            deadline = asyncio.get_running_loop().time() + 30
            while stack.manager.queue_depth() or stack.manager.running_jobs():
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.05)

        run_with_server(drive)


class TestEndToEnd:
    def test_small_open_loop_run_has_no_failures(self):
        scenario = Scenario(
            name="tiny-e2e",
            requests=30,
            rate=200.0,
            slow_every=10,
            slow_read_delay=0.02,
            seed=5,
        )

        async def drive(stack, host, port):
            report = await run_scenario(host, port, scenario, CLUSTERS)
            d = report.as_dict()
            assert d["requests"] == 30
            assert d["failures"] == 0, [o.error for o in report.failures]
            assert d["completed"] + d["shed"] == 30
            assert d["completed"] > 0
            # drain whatever the submits queued so teardown is quick
            deadline = asyncio.get_running_loop().time() + 30
            while stack.manager.queue_depth() or stack.manager.running_jobs():
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.05)

        run_with_server(drive)
