"""Socket-level tests: keep-alive, deadlines, shedding, clean shutdown."""

from __future__ import annotations

import asyncio

from repro.serve.loadgen import http_request

from tests.serve.conftest import TINY_DEC, TINY_RA, run_with_server


async def raw_exchange(host, port, payload: bytes, *, read_until_eof=True) -> bytes:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(payload)
        await writer.drain()
        if read_until_eof:
            return await reader.read()
        return await reader.readuntil(b"\r\n\r\n")
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class TestConnectionHandling:
    def test_keep_alive_serves_many_requests_on_one_connection(self):
        async def scenario(stack, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            try:
                for _ in range(3):
                    writer.write(
                        f"GET /health HTTP/1.1\r\nHost: {host}\r\n\r\n".encode()
                    )
                    await writer.drain()
                    head = await reader.readuntil(b"\r\n\r\n")
                    assert head.startswith(b"HTTP/1.1 200 OK")
                    assert b"Connection: keep-alive" in head
                    length = int(
                        [
                            line.split(b":")[1]
                            for line in head.split(b"\r\n")
                            if line.lower().startswith(b"content-length")
                        ][0]
                    )
                    await reader.readexactly(length)
            finally:
                writer.close()
                await writer.wait_closed()

        run_with_server(scenario)

    def test_connection_close_is_honoured(self):
        async def scenario(stack, host, port):
            data = await raw_exchange(
                host,
                port,
                f"GET /health HTTP/1.1\r\nHost: {host}\r\nConnection: close\r\n\r\n".encode(),
            )
            assert data.startswith(b"HTTP/1.1 200 OK")
            assert b"Connection: close" in data

        run_with_server(scenario)

    def test_malformed_request_gets_400_and_drop(self):
        async def scenario(stack, host, port):
            data = await raw_exchange(host, port, b"WHAT IS THIS\r\n\r\n")
            assert data.startswith(b"HTTP/1.1 400 ")

        run_with_server(scenario)

    def test_head_request_sends_headers_only(self):
        async def scenario(stack, host, port):
            data = await raw_exchange(
                host,
                port,
                f"HEAD /health HTTP/1.1\r\nHost: {host}\r\nConnection: close\r\n\r\n".encode(),
            )
            head, _, body = data.partition(b"\r\n\r\n")
            assert head.startswith(b"HTTP/1.1 200 OK")
            assert b"Content-Length" in head
            assert body == b""

        run_with_server(scenario)

    def test_slow_loris_header_is_dropped_at_deadline(self):
        async def scenario(stack, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            try:
                writer.write(b"GET /health HTTP/1.1\r\n")  # never finished
                await writer.drain()
                # the server must hang up (EOF), not wait forever
                data = await asyncio.wait_for(reader.read(), timeout=5.0)
                assert data == b""
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass

        run_with_server(scenario, header_timeout=0.2)

    def test_connection_flood_sheds_503_with_retry_after(self):
        async def scenario(stack, host, port):
            # one idle keep-alive connection occupies the only handler slot
            reader1, writer1 = await asyncio.open_connection(host, port)
            writer1.write(f"GET /health HTTP/1.1\r\nHost: {host}\r\n\r\n".encode())
            await writer1.drain()
            await reader1.readuntil(b"\r\n\r\n")
            try:
                status, headers, _ = await http_request(
                    host, port, "GET", "/health", timeout=5.0
                )
                assert status == 503
                assert headers.get("retry-after") == "1"
            finally:
                writer1.close()
                await writer1.wait_closed()

        run_with_server(scenario, max_connections=1, keep_alive_timeout=30.0)


class TestStreamingOverTheWire:
    def test_cone_response_is_chunked_and_parseable(self):
        async def scenario(stack, host, port):
            status, headers, body = await http_request(
                host, port, "GET", f"/cone?RA={TINY_RA}&DEC={TINY_DEC}&SR=0.25"
            )
            assert status == 200
            assert headers.get("transfer-encoding") == "chunked"
            assert headers.get("content-type") == "application/x-votable+xml"
            assert body.startswith(b"<?xml version='1.0' encoding='utf-8'?>")
            assert body.rstrip().endswith(b"</VOTABLE>")

        run_with_server(scenario)

    def test_full_job_lifecycle_over_http(self):
        async def scenario(stack, host, port):
            status, headers, body = await http_request(
                host,
                port,
                "POST",
                "/jobs",
                headers=[("X-Tenant", "alice"), ("Content-Type", "application/json")],
                body=b'{"cluster": "SRV01"}',
            )
            assert status == 202
            location = headers["location"]
            status, _, body = await http_request(
                host, port, "GET", f"{location}?wait=30"
            )
            assert status == 200 and b'"state": "completed"' in body
            status, headers, result = await http_request(
                host, port, "GET", f"{location}/result"
            )
            assert status == 200
            assert headers.get("transfer-encoding") == "chunked"
            job_id = location.rsplit("/", 1)[1]
            assert result == stack.manager.result_bytes(job_id)

        run_with_server(scenario)


class TestShutdown:
    def test_close_leaves_no_tasks_and_refuses_connections(self):
        async def scenario():
            from tests.serve.conftest import build_tiny_stack

            stack = build_tiny_stack()
            await stack.start()
            host, port = stack.server.host, stack.server.port
            status, _, _ = await http_request(host, port, "GET", "/health")
            assert status == 200
            await stack.close()

            current = asyncio.current_task()
            stray = [
                t for t in asyncio.all_tasks() if t is not current and not t.done()
            ]
            assert stray == []
            assert stack.server.connections() == 0
            try:
                _, writer = await asyncio.wait_for(
                    asyncio.open_connection(host, port), timeout=1.0
                )
            except (ConnectionError, OSError, asyncio.TimeoutError):
                pass
            else:
                writer.close()
                raise AssertionError("listener still accepting after close()")

        asyncio.run(scenario())

    def test_close_is_safe_with_inflight_idle_connection(self):
        async def scenario():
            from tests.serve.conftest import build_tiny_stack

            stack = build_tiny_stack()
            await stack.start()
            host, port = stack.server.host, stack.server.port
            # an idle keep-alive connection is parked in its read loop
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(f"GET /health HTTP/1.1\r\nHost: {host}\r\n\r\n".encode())
            await writer.drain()
            await reader.readuntil(b"\r\n\r\n")
            await stack.close(grace=0.2)
            assert stack.server.connections() == 0
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

        asyncio.run(scenario())
