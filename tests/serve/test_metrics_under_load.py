"""Scraping ``/metrics`` while the tier is under concurrent load.

A scrape racing a thundering herd must still return a parseable
exposition document, counters must only ever move forward between
scrapes, and no (name, labels) series may be emitted twice — the
guarantees a Prometheus server actually relies on.
"""

from __future__ import annotations

import asyncio

from repro.serve.loadgen import herd_scenario, http_request, run_scenario
from repro.telemetry.exporters import parse_prometheus_text
from tests.serve.conftest import TINY_DEC, TINY_NAME, TINY_RA, run_with_server


def _series_key(labels: dict[str, str]) -> tuple:
    return tuple(sorted(labels.items()))


def _scrape_series(text: str) -> dict[tuple, float]:
    """Flatten one exposition document to {(name, labels): value}."""
    flat: dict[tuple, float] = {}
    for name, samples in parse_prometheus_text(text).items():
        for labels, value in samples:
            flat[(name, _series_key(labels))] = value
    return flat


def _run_herd_with_scrapes(**stack_kwargs):
    targets = [(TINY_NAME, TINY_RA, TINY_DEC)]

    async def scenario(stack, host, port):
        herd = run_scenario(host, port, herd_scenario(requests=40), targets)
        herd_task = asyncio.create_task(herd)
        scrapes: list[str] = []
        while not herd_task.done():
            status, _, body = await http_request(host, port, "GET", "/metrics")
            if status == 200:  # a scrape may itself be shed under the herd
                scrapes.append(body.decode("utf-8"))
            await asyncio.sleep(0.02)
        report = await herd_task
        # Two guaranteed post-load scrapes for the monotonicity check.
        for _ in range(2):
            status, _, body = await http_request(host, port, "GET", "/metrics")
            assert status == 200
            scrapes.append(body.decode("utf-8"))
        return scrapes, report.as_dict()

    return run_with_server(scenario, **stack_kwargs)


def test_scrapes_parse_and_counters_are_monotone_under_herd():
    # observability=True turns the telemetry runtime on, so the serve
    # counters are live; without it /metrics legitimately exposes nothing.
    scrapes, report = _run_herd_with_scrapes(observability=True)
    assert report["failures"] == 0
    assert len(scrapes) >= 2
    parsed = [_scrape_series(text) for text in scrapes]  # ValueError = fail
    counters = [
        key
        for key in parsed[-1]
        if key[0].endswith("_total") and not key[0].endswith("_bucket")
    ]
    assert any(key[0] == "serve_requests_total" for key in counters)
    for earlier, later in zip(parsed, parsed[1:]):
        for key in counters:
            if key in earlier and key in later:
                assert later[key] >= earlier[key], f"counter went backwards: {key}"


def test_no_duplicate_series_in_any_scrape_with_plane_enabled():
    scrapes, _ = _run_herd_with_scrapes(observability=True)
    for text in scrapes:
        seen: set[tuple] = set()
        for name, samples in parse_prometheus_text(text).items():
            for labels, _value in samples:
                key = (name, _series_key(labels))
                assert key not in seen, f"duplicate series {key}"
                seen.add(key)
    # The plane's windowed gauges made it into the exposition.
    assert "serve_request_rate" in scrapes[-1]
    assert "serve_slo_budget_remaining" in scrapes[-1]
