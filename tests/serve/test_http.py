"""Unit tests for the minimal HTTP/1.1 layer: parsing, framing, deadlines."""

from __future__ import annotations

import asyncio

import pytest

from repro.serve.http import (
    HttpError,
    Response,
    SlowClientError,
    StreamingResponse,
    error_response,
    parse_request_head,
    read_request,
    render_head,
    write_response,
)


def head_of(text: str) -> bytes:
    """Request text with LF line endings -> wire bytes (no blank line)."""
    return text.replace("\n", "\r\n").encode("ascii")


class TestParseRequestHead:
    def test_get_with_query(self):
        request = parse_request_head(
            head_of("GET /cone?RA=150.1&DEC=2.2&SR=0.25 HTTP/1.1\nHost: x\nX-Tenant: alice")
        )
        assert request.method == "GET"
        assert request.path == "/cone"
        assert request.query == {"RA": "150.1", "DEC": "2.2", "SR": "0.25"}
        assert request.header("x-tenant") == "alice"
        assert request.header("X-Tenant") == "alice"  # lookup is case-blind

    def test_path_is_percent_decoded(self):
        request = parse_request_head(head_of("GET /jobs/job%2D1 HTTP/1.1"))
        assert request.path == "/jobs/job-1"

    def test_empty_path_becomes_root(self):
        assert parse_request_head(head_of("GET  HTTP/1.1")).path == "/"

    @pytest.mark.parametrize(
        "line",
        [
            "GET /x",  # two tokens after splitting on single spaces -> not 3
            "GET /x HTTP/2.0",
            "get /x HTTP/1.1",
            "G3T /x HTTP/1.1",
        ],
    )
    def test_malformed_request_lines_are_400(self, line):
        with pytest.raises(HttpError) as err:
            parse_request_head(head_of(line))
        assert err.value.status == 400

    def test_malformed_header_is_400(self):
        with pytest.raises(HttpError) as err:
            parse_request_head(head_of("GET / HTTP/1.1\nno-colon-here"))
        assert err.value.status == 400

    def test_header_name_with_leading_space_is_400(self):
        # obs-fold / smuggling shape: " Host: x" must not silently merge
        with pytest.raises(HttpError) as err:
            parse_request_head(head_of("GET / HTTP/1.1\n Host: x"))
        assert err.value.status == 400


class TestKeepAliveSemantics:
    def test_http11_defaults_to_keep_alive(self):
        assert parse_request_head(head_of("GET / HTTP/1.1")).keep_alive

    def test_http11_close_honoured(self):
        request = parse_request_head(head_of("GET / HTTP/1.1\nConnection: close"))
        assert not request.keep_alive

    def test_http10_defaults_to_close(self):
        assert not parse_request_head(head_of("GET / HTTP/1.0")).keep_alive

    def test_http10_explicit_keep_alive(self):
        request = parse_request_head(
            head_of("GET / HTTP/1.0\nConnection: Keep-Alive")
        )
        assert request.keep_alive


def feed(data: bytes, eof: bool = True) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    if eof:
        reader.feed_eof()
    return reader


class TestReadRequest:
    def run(self, coro):
        return asyncio.run(coro)

    def test_reads_request_with_body(self):
        async def scenario():
            reader = feed(
                b"POST /jobs HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody"
            )
            return await read_request(reader)

        request = self.run(scenario())
        assert request.method == "POST"
        assert request.body == b"body"

    def test_clean_eof_returns_none(self):
        async def scenario():
            return await read_request(feed(b""))

        assert self.run(scenario()) is None

    def test_partial_head_then_eof_is_400(self):
        async def scenario():
            return await read_request(feed(b"GET / HT"))

        with pytest.raises(HttpError) as err:
            self.run(scenario())
        assert err.value.status == 400

    def test_transfer_encoding_is_501(self):
        async def scenario():
            return await read_request(
                feed(b"POST /jobs HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
            )

        with pytest.raises(HttpError) as err:
            self.run(scenario())
        assert err.value.status == 501

    @pytest.mark.parametrize("value", ["nope", "-3"])
    def test_bad_content_length_is_400(self, value):
        async def scenario():
            return await read_request(
                feed(f"POST / HTTP/1.1\r\nContent-Length: {value}\r\n\r\n".encode())
            )

        with pytest.raises(HttpError) as err:
            self.run(scenario())
        assert err.value.status == 400

    def test_oversized_body_is_413(self):
        async def scenario():
            return await read_request(
                feed(b"POST / HTTP/1.1\r\nContent-Length: 999\r\n\r\n"),
                max_body_bytes=100,
            )

        with pytest.raises(HttpError) as err:
            self.run(scenario())
        assert err.value.status == 413

    def test_oversized_header_section_is_413(self):
        async def scenario():
            filler = b"X-Pad: " + b"a" * 600 + b"\r\n"
            return await read_request(
                feed(b"GET / HTTP/1.1\r\n" + filler + b"\r\n"),
                max_header_bytes=256,
            )

        with pytest.raises(HttpError) as err:
            self.run(scenario())
        assert err.value.status == 413

    def test_stalled_header_is_slow_client(self):
        async def scenario():
            reader = feed(b"GET / HTTP/1.1\r\n", eof=False)  # never finishes
            return await read_request(reader, timeout=0.05)

        with pytest.raises(SlowClientError):
            self.run(scenario())

    def test_stalled_body_is_slow_client(self):
        async def scenario():
            reader = feed(
                b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nab", eof=False
            )
            return await read_request(reader, timeout=0.05)

        with pytest.raises(SlowClientError):
            self.run(scenario())


class MemoryWriter:
    """Just enough StreamWriter surface for write_response."""

    def __init__(self, fail_after_writes: int | None = None) -> None:
        self.buffer = bytearray()
        self.writes = 0
        self._fail_after = fail_after_writes

    def write(self, data: bytes) -> None:
        self.buffer += data
        self.writes += 1

    async def drain(self) -> None:
        if self._fail_after is not None and self.writes > self._fail_after:
            raise SlowClientError("stalled reader")


class TestWriteResponse:
    def run(self, coro):
        return asyncio.run(coro)

    def test_content_length_framing(self):
        writer = MemoryWriter()
        sent = self.run(
            write_response(
                writer, Response(status=200, body=b"hello"), keep_alive=True
            )
        )
        text = bytes(writer.buffer)
        assert sent == 5
        assert text.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Length: 5\r\n" in text
        assert b"Connection: keep-alive\r\n" in text
        assert text.endswith(b"\r\n\r\nhello")

    def test_chunked_framing_exact_bytes(self):
        writer = MemoryWriter()
        response = StreamingResponse(status=200, chunks=iter([b"abc", "defg", b""]))
        sent = self.run(write_response(writer, response, keep_alive=False))
        text = bytes(writer.buffer)
        head, _, body = text.partition(b"\r\n\r\n")
        assert b"Transfer-Encoding: chunked" in head
        assert b"Connection: close" in head
        # empty chunk skipped: it would otherwise terminate the stream early
        assert body == b"3\r\nabc\r\n4\r\ndefg\r\n0\r\n\r\n"
        assert sent == 7

    def test_head_only_suppresses_bodies(self):
        writer = MemoryWriter()
        sent = self.run(
            write_response(
                writer,
                Response(status=200, body=b"hello"),
                keep_alive=True,
                head_only=True,
            )
        )
        assert sent == 0
        assert b"Content-Length: 5" in writer.buffer  # advertised, not sent
        assert not bytes(writer.buffer).endswith(b"hello")

    def test_aborted_stream_still_closes_generator(self):
        closed = []

        def chunks():
            try:
                while True:
                    yield b"x" * 64
            finally:
                closed.append(True)

        writer = MemoryWriter(fail_after_writes=3)
        with pytest.raises(SlowClientError):
            self.run(
                write_response(
                    writer,
                    StreamingResponse(status=200, chunks=chunks()),
                    keep_alive=True,
                )
            )
        assert closed == [True]

    def test_fully_consumed_stream_closes_generator_too(self):
        closed = []

        def chunks():
            try:
                yield b"done"
            finally:
                closed.append(True)

        writer = MemoryWriter()
        self.run(
            write_response(
                writer,
                StreamingResponse(status=200, chunks=chunks()),
                keep_alive=True,
            )
        )
        assert closed == [True]


class TestErrorRendering:
    def test_render_head_unknown_status(self):
        head = render_head(599, [], keep_alive=False)
        assert head.startswith(b"HTTP/1.1 599 Unknown\r\n")

    def test_error_response_carries_headers_and_detail(self):
        response = error_response(
            HttpError(429, "overloaded", headers=(("Retry-After", "7"),))
        )
        assert response.status == 429
        assert response.body == b"overloaded\n"
        assert ("Retry-After", "7") in response.headers
