"""App-level tests: routing, admission/backpressure, streaming identity."""

from __future__ import annotations

import json

import pytest

from repro.core.errors import SchedulerError
from repro.scheduler.policy import AdmissionPolicy
from repro.scheduler.service import WorkloadManager
from repro.serve.app import ServeApp, TenantGate
from repro.serve.harness import SyntheticJobRunner
from repro.serve.http import HttpError, Response, StreamingResponse, parse_request_head
from repro.services.protocol import ConeSearchRequest
from repro.votable.writer import write_votable

from tests.serve.conftest import TINY_DEC, TINY_RA, run_with_app


def req(method: str, target: str, *, tenant: str = "", body: bytes = b""):
    lines = [f"{method} {target} HTTP/1.1", "Host: test"]
    if tenant:
        lines.append(f"X-Tenant: {tenant}")
    request = parse_request_head("\r\n".join(lines).encode("ascii"))
    request.body = body
    return request


def drained(response: StreamingResponse) -> bytes:
    out = bytearray()
    for chunk in response.chunks:
        out += chunk.encode("utf-8") if isinstance(chunk, str) else chunk
    return bytes(out)


class TestTenantGate:
    def test_bounds_are_validated(self):
        with pytest.raises(ValueError):
            TenantGate(per_tenant=0)

    def test_per_tenant_and_total_bounds(self):
        gate = TenantGate(per_tenant=1, total=2)
        assert gate.try_enter("a")
        assert not gate.try_enter("a")  # per-tenant bound
        assert gate.try_enter("b")
        assert not gate.try_enter("c")  # global bound
        gate.leave("a")
        assert gate.try_enter("c")
        assert gate.inflight() == 2
        assert gate.inflight("b") == 1


class TestRouteLabel:
    @pytest.mark.parametrize(
        ("method", "path", "label"),
        [
            ("GET", "/cone", "cone"),
            ("GET", "/sia", "sia"),
            ("GET", "/health", "health"),
            ("GET", "/metrics", "metrics"),
            ("GET", "/queue", "queue"),
            ("POST", "/jobs", "jobs.submit"),
            ("GET", "/jobs", "jobs.list"),
            ("GET", "/jobs/job-1", "jobs.status"),
            ("GET", "/jobs/job-1/result", "jobs.result"),
            ("GET", "/nope", "unmatched"),
        ],
    )
    def test_labels_are_stable_and_low_cardinality(self, method, path, label):
        assert ServeApp.route_label(method, path) == label


class TestQueryEndpoints:
    def test_health_reports_queue_state(self):
        async def scenario(stack):
            response = await stack.app.handle(req("GET", "/health"))
            return json.loads(response.body)

        payload = run_with_app(scenario)
        assert payload["status"] == "ok"
        assert payload["queued"] == 0

    def test_cone_streams_byte_identical_to_writer(self):
        """Acceptance criterion: streamed == non-streaming writer output."""

        async def scenario(stack):
            target = f"/cone?RA={TINY_RA}&DEC={TINY_DEC}&SR=0.25"
            response = await stack.app.handle(req("GET", target))
            assert isinstance(response, StreamingResponse)
            streamed = drained(response)
            reference = stack.env.photometry_service.search(
                ConeSearchRequest(ra=TINY_RA, dec=TINY_DEC, sr=0.25)
            )
            assert streamed == write_votable(reference).encode("utf-8")
            assert int(dict(response.headers)["X-Record-Count"]) == len(reference)
            # the gate slot taken by handle() is released by consumption
            assert stack.app.gate.inflight() == 0

        run_with_app(scenario)

    @pytest.mark.parametrize(
        "target",
        [
            "/cone?RA=150&DEC=2.2",  # missing SR
            "/cone?RA=abc&DEC=2.2&SR=0.2",
            "/cone?RA=150&DEC=2.2&SR=0.2&catalog=sounding",
            "/sia?POS=150.0&SIZE=0.2",  # malformed POS
            "/sia?POS=150.0,2.2",  # missing SIZE
            "/sia?POS=1,2&SIZE=0.2&survey=nope",
        ],
    )
    def test_bad_query_parameters_are_400(self, target):
        async def scenario(stack):
            with pytest.raises(HttpError) as err:
                await stack.app.handle(req("GET", target))
            assert err.value.status == 400
            assert stack.app.gate.inflight() == 0

        run_with_app(scenario)

    def test_sia_streams_the_archive_table(self):
        async def scenario(stack):
            target = f"/sia?POS={TINY_RA},{TINY_DEC}&SIZE=0.3&survey=rosat"
            response = await stack.app.handle(req("GET", target))
            body = drained(response)
            assert body.startswith(b"<?xml version='1.0' encoding='utf-8'?>")
            assert b"VOTABLE" in body

        run_with_app(scenario)

    def test_method_not_allowed_carries_allow_header(self):
        async def scenario(stack):
            with pytest.raises(HttpError) as err:
                await stack.app.handle(req("POST", "/cone?RA=1&DEC=2&SR=0.1"))
            assert err.value.status == 405
            assert dict(err.value.headers)["Allow"] == "GET"

        run_with_app(scenario)

    def test_unknown_route_is_404(self):
        async def scenario(stack):
            with pytest.raises(HttpError) as err:
                await stack.app.handle(req("GET", "/totally/elsewhere"))
            assert err.value.status == 404

        run_with_app(scenario)


class TestJobEndpoints:
    def test_submit_then_poll_then_stream_result(self):
        async def scenario(stack):
            submit = await stack.app.handle(
                req(
                    "POST",
                    "/jobs",
                    tenant="alice",
                    body=json.dumps({"cluster": "SRV01"}).encode(),
                )
            )
            assert submit.status == 202
            job = json.loads(submit.body)
            location = dict(submit.headers)["Location"]
            assert location == f"/jobs/{job['job_id']}"

            # long-poll until terminal, then stream the result
            status = await stack.app.handle(req("GET", f"{location}?wait=30"))
            record = json.loads(status.body)
            assert record["state"] == "completed"

            result = await stack.app.handle(req("GET", f"{location}/result"))
            body = drained(result)
            assert body == stack.manager.result_bytes(job["job_id"])
            assert body.startswith(b"<?xml version='1.0' encoding='utf-8'?>")

        run_with_app(scenario)

    def test_submit_body_validation(self):
        cases = [
            (b"{not json", "malformed JSON"),
            (b"[]", "must be an object"),
            (b"{}", "cluster"),
            (b'{"cluster": "X", "options": 5}', "options"),
            (b'{"cluster": "X", "priority": "high"}', "priority"),
        ]

        async def scenario(stack):
            for body, needle in cases:
                with pytest.raises(HttpError) as err:
                    await stack.app.handle(req("POST", "/jobs", body=body))
                assert err.value.status == 400
                assert needle in err.value.detail

        run_with_app(scenario)

    def test_unknown_job_is_404(self):
        async def scenario(stack):
            for target in ("/jobs/job-404-x", "/jobs/job-404-x/result"):
                with pytest.raises(HttpError) as err:
                    await stack.app.handle(req("GET", target))
                assert err.value.status == 404

        run_with_app(scenario)

    def test_result_of_unfinished_job_is_409(self):
        async def scenario(stack):
            # the manager is built but never started: the job stays queued
            record = stack.manager.submit("alice", "SRV01", {})
            with pytest.raises(HttpError) as err:
                await stack.app.handle(req("GET", f"/jobs/{record.job_id}/result"))
            assert err.value.status == 409

        async def unstarted(stack):
            # mirror run_with_app but without manager.start()
            try:
                await scenario(stack)
            finally:
                stack.app.bridge.close()

        import asyncio

        from tests.serve.conftest import build_tiny_stack

        asyncio.run(unstarted(build_tiny_stack()))


class TestAdmissionAndBackpressure:
    def test_tenant_gate_sheds_with_retry_after(self):
        async def scenario(stack):
            gate = TenantGate(per_tenant=1, total=8)
            app = ServeApp(stack.env, stack.manager, bridge=stack.app.bridge, gate=gate)
            target = f"/cone?RA={TINY_RA}&DEC={TINY_DEC}&SR=0.2"
            held = await app.handle(req("GET", target, tenant="alice"))
            # stream not yet consumed: alice's slot is still in flight
            with pytest.raises(HttpError) as err:
                await app.handle(req("GET", target, tenant="alice"))
            assert err.value.status == 429
            assert "Retry-After" in dict(err.value.headers)
            # other tenants are unaffected
            other = await app.handle(req("GET", target, tenant="bob"))
            drained(other)
            # consuming the held stream frees the slot
            drained(held)
            after = await app.handle(req("GET", target, tenant="alice"))
            drained(after)
            assert gate.inflight() == 0

        run_with_app(scenario)

    def test_abandoned_stream_releases_slot_on_close(self):
        async def scenario(stack):
            gate = TenantGate(per_tenant=1, total=8)
            app = ServeApp(stack.env, stack.manager, bridge=stack.app.bridge, gate=gate)
            target = f"/cone?RA={TINY_RA}&DEC={TINY_DEC}&SR=0.2"
            held = await app.handle(req("GET", target, tenant="alice"))
            assert gate.inflight("alice") == 1
            held.chunks.close()  # what write_response does on an aborted write
            assert gate.inflight("alice") == 0

        run_with_app(scenario)

    def test_queue_full_submission_sheds_429(self):
        async def scenario(stack):
            assert isinstance(
                (
                    await stack.app.handle(
                        req("POST", "/jobs", tenant="a",
                            body=b'{"cluster": "SRV01"}')
                    )
                ),
                Response,
            )
            with pytest.raises(HttpError) as err:
                await stack.app.handle(
                    req("POST", "/jobs", tenant="a",
                        body=b'{"cluster": "SRV01", "options": {"n": 2}}')
                )
            assert err.value.status == 429
            retry = dict(err.value.headers)["Retry-After"]
            assert int(retry) >= 1

        import asyncio

        from tests.serve.conftest import build_tiny_stack

        async def unstarted():
            # manager never started: the first job occupies the whole queue
            stack = build_tiny_stack()
            stack.manager = WorkloadManager(
                SyntheticJobRunner(),
                admission=AdmissionPolicy(max_queue_depth=1, max_active_per_user=8),
            )
            stack.app.manager = stack.manager
            try:
                await scenario(stack)
            finally:
                stack.app.bridge.close()

        asyncio.run(unstarted())

    def test_retry_after_scales_with_backlog(self):
        async def scenario(stack):
            base = stack.app.retry_after()
            assert base == 1  # empty queue still tells clients to back off
            for i in range(12):
                stack.manager.submit("a", "SRV01", {"i": i})
            assert stack.app.retry_after() >= 6

        import asyncio

        from tests.serve.conftest import build_tiny_stack

        async def unstarted():
            stack = build_tiny_stack()
            try:
                await scenario(stack)
            finally:
                stack.app.bridge.close()

        asyncio.run(unstarted())
