"""Tests for the resilience section of the telemetry report."""

from __future__ import annotations

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.report import RESILIENCE_METRICS, render_resilience_summary


class TestRenderResilienceSummary:
    def test_empty_registry_renders_nothing(self):
        assert render_resilience_summary(MetricsRegistry()) == ""

    def test_unrelated_metrics_ignored(self):
        registry = MetricsRegistry()
        registry.counter("service_requests_total").inc(5)
        assert render_resilience_summary(registry) == ""

    def test_families_render_with_totals_and_labels(self):
        registry = MetricsRegistry()
        registry.counter("faults_injected_total").inc(
            2, stream="cone-query", action="timeout"
        )
        registry.counter("faults_injected_total").inc(
            1, stream="cutout-fetch", action="malformed"
        )
        registry.counter("resilience_retries_total").inc(3, target="rls")
        registry.counter("scheduler_requeues_total").inc(1, user="alice")

        text = render_resilience_summary(registry)
        assert text.startswith("== resilience ==")
        assert "faults_injected_total" in text and " 3" in text
        assert "action=timeout,stream=cone-query" in text
        assert "resilience_retries_total" in text
        assert "scheduler_requeues_total" in text

    def test_every_declared_family_is_renderable(self):
        registry = MetricsRegistry()
        for name in RESILIENCE_METRICS:
            if name == "resilience_breaker_open":
                registry.gauge(name).set(1.0, site="isi")
            else:
                registry.counter(name).inc(1, site="isi")
        text = render_resilience_summary(registry)
        for name in RESILIENCE_METRICS:
            assert name in text

    def test_galmorph_fallbacks_surface_in_resilience_section(self):
        registry = MetricsRegistry()
        registry.counter("galmorph_shm_fallback_total").inc(2)
        registry.counter("galmorph_pool_fallback_total").inc(1)
        assert "galmorph_shm_fallback_total" in RESILIENCE_METRICS
        assert "galmorph_pool_fallback_total" in RESILIENCE_METRICS
        text = render_resilience_summary(registry)
        assert "galmorph_shm_fallback_total" in text
        assert "galmorph_pool_fallback_total" in text
