"""Flight recorder: bounded retention of watched request traces."""

from __future__ import annotations

import json

from repro import telemetry
from repro.telemetry.flight import FlightRecorder
from repro.telemetry.tracing import Tracer, make_record


def span_for(trace_id: str, name: str = "serve.request", **attrs) -> dict:
    return make_record(name, trace_id, f"{trace_id}-s1", None, 0.0, 0.01, attrs=attrs)


class TestWatchAndFinish:
    def test_only_watched_traces_collected(self):
        tracer = Tracer()
        rec = FlightRecorder()
        rec.attach(tracer)
        rec.watch("t-watched")
        tracer.add(span_for("t-watched"))
        tracer.add(span_for("t-ignored"))
        entry = rec.finish("t-watched", status="ok")
        assert entry is not None
        assert len(entry["spans"]) == 1
        assert rec.get("t-ignored") is None

    def test_finish_unwatched_returns_none(self):
        rec = FlightRecorder()
        assert rec.finish("t-unknown") is None

    def test_meta_retained(self):
        tracer = Tracer()
        rec = FlightRecorder()
        rec.attach(tracer)
        rec.watch("t1")
        entry = rec.finish("t1", status="ok", meta={"path": "/cone", "status": 200})
        assert entry["meta"]["path"] == "/cone"

    def test_open_trace_visible_via_get(self):
        tracer = Tracer()
        rec = FlightRecorder()
        rec.attach(tracer)
        rec.watch("t-open")
        tracer.add(span_for("t-open"))
        entry = rec.get("t-open")
        assert entry["status"] == "open"
        assert len(entry["spans"]) == 1

    def test_forget_drops_without_retention(self):
        rec = FlightRecorder()
        rec.watch("t-f")
        rec.forget("t-f")
        assert rec.get("t-f") is None
        assert rec.finish("t-f") is None


class TestBoundedRetention:
    def test_completed_ring_evicts_oldest(self):
        rec = FlightRecorder(max_completed=3)
        for i in range(5):
            rec.watch(f"t{i}")
            rec.finish(f"t{i}", status="ok")
        assert rec.get("t0") is None
        assert rec.get("t1") is None
        assert rec.get("t4") is not None
        assert rec.stats()["completed"] == 3

    def test_error_traces_survive_healthy_churn(self):
        rec = FlightRecorder(max_completed=2, max_errors=16)
        rec.watch("t-err")
        rec.finish("t-err", status="error")
        for i in range(10):
            rec.watch(f"t-ok{i}")
            rec.finish(f"t-ok{i}", status="ok")
        assert rec.get("t-err")["status"] == "error"

    def test_shed_goes_to_error_ring(self):
        rec = FlightRecorder(max_completed=1)
        rec.watch("t-shed")
        rec.finish("t-shed", status="shed")
        assert rec.stats()["errors"] == 1

    def test_per_trace_span_cap(self):
        tracer = Tracer()
        rec = FlightRecorder(max_spans_per_trace=5)
        rec.attach(tracer)
        rec.watch("t-big")
        for _ in range(20):
            tracer.add(span_for("t-big"))
        entry = rec.finish("t-big")
        assert len(entry["spans"]) == 5
        assert entry["dropped_spans"] == 15


class TestDump:
    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer()
        rec = FlightRecorder()
        rec.attach(tracer)
        for i, status in enumerate(["ok", "error", "ok"]):
            tid = f"t{i}"
            rec.watch(tid)
            tracer.add(span_for(tid))
            rec.finish(tid, status=status, meta={"i": i})
        out = tmp_path / "flight.jsonl"
        n = rec.dump(out)
        assert n == 3
        lines = out.read_text().splitlines()
        assert len(lines) == 3
        parsed = [json.loads(line) for line in lines]
        statuses = sorted(p["status"] for p in parsed)
        assert statuses == ["error", "ok", "ok"]
        for p in parsed:
            assert p["spans"] and p["spans"][0]["trace"] == p["trace"]

    def test_entries_errors_first(self):
        rec = FlightRecorder()
        rec.watch("t-ok")
        rec.finish("t-ok", status="ok")
        rec.watch("t-err")
        rec.finish("t-err", status="error")
        entries = rec.entries()
        assert entries[0]["status"] == "error"


class TestTracerIntegration:
    def test_spans_from_enabled_telemetry_flow_in(self, enabled_telemetry):
        rec = FlightRecorder()
        rec.attach(telemetry.get_tracer())
        with telemetry.trace_span("serve.request") as sp:
            trace_id = sp.trace_id
            rec.watch(trace_id)
            with telemetry.trace_span("scheduler.submit"):
                pass
        entry = rec.finish(trace_id)
        names = {s["name"] for s in entry["spans"]}
        # The inner span closed while watched; the outer closed after watch too.
        assert "scheduler.submit" in names
        assert "serve.request" in names

    def test_detach_stops_collection(self):
        tracer = Tracer()
        rec = FlightRecorder()
        rec.attach(tracer)
        rec.watch("t1")
        rec.detach()
        tracer.add(span_for("t1"))
        entry = rec.finish("t1")
        assert entry["spans"] == []


class TestTracerBounds:
    def test_max_spans_ring(self):
        tracer = Tracer(max_spans=3)
        for i in range(10):
            tracer.add(span_for(f"t{i}"))
        spans = tracer.spans()
        assert len(spans) == 3
        assert spans[-1]["trace"] == "t9"

    def test_subscribe_unsubscribe(self):
        tracer = Tracer()
        seen = []
        unsub = tracer.subscribe(seen.append)
        tracer.add(span_for("t1"))
        unsub()
        tracer.add(span_for("t2"))
        assert len(seen) == 1

    def test_ingest_notifies_listeners(self):
        tracer = Tracer()
        seen = []
        tracer.subscribe(seen.append)
        tracer.ingest([span_for("t1"), span_for("t2")])
        assert len(seen) == 2
