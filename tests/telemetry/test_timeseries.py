"""Windowed time-series: ring counters, windowed rates, latency quantiles."""

from __future__ import annotations

import math
import threading

import pytest

from repro.telemetry.timeseries import (
    LabelledWindows,
    LatencyWindow,
    RingCounter,
    WindowedCounter,
    nearest_rank,
)


class TestNearestRank:
    def test_empty_is_nan(self):
        assert math.isnan(nearest_rank([], 50))

    def test_single_sample(self):
        assert nearest_rank([7.0], 50) == 7.0
        assert nearest_rank([7.0], 99) == 7.0

    def test_percentiles_of_1_to_100(self):
        xs = [float(i) for i in range(1, 101)]
        assert nearest_rank(xs, 50) == 50.0
        assert nearest_rank(xs, 95) == 95.0
        assert nearest_rank(xs, 99) == 99.0
        assert nearest_rank(xs, 100) == 100.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            nearest_rank([1.0], 0)
        with pytest.raises(ValueError):
            nearest_rank([1.0], 101)


class TestRingCounter:
    def test_add_and_total(self):
        ring = RingCounter(10.0, buckets=10)
        ring.add(1.0, now=100.0)
        ring.add(2.0, now=100.5)
        assert ring.total(now=100.5) == 3.0

    def test_old_samples_fall_out(self):
        ring = RingCounter(10.0, buckets=10)
        ring.add(5.0, now=100.0)
        assert ring.total(now=105.0) == 5.0
        # Past the window span, the sample has decayed.
        assert ring.total(now=111.0) == 0.0

    def test_rate_is_total_over_span(self):
        ring = RingCounter(10.0, buckets=10)
        for i in range(20):
            ring.add(1.0, now=200.0 + i * 0.5)
        assert ring.rate(now=209.5) == pytest.approx(2.0)

    def test_slot_reuse_clears_stale_epoch(self):
        ring = RingCounter(1.0, buckets=4)  # 0.25s resolution
        ring.add(1.0, now=0.1)
        # Same slot one full revolution later must not accumulate.
        ring.add(1.0, now=1.1)
        assert ring.total(now=1.1) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RingCounter(0.0)
        with pytest.raises(ValueError):
            RingCounter(1.0, buckets=0)

    def test_thread_safety_totals_conserved(self):
        ring = RingCounter(60.0, buckets=20)

        def worker():
            for _ in range(1000):
                ring.add(1.0, now=30.0)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert ring.total(now=30.0) == 4000.0


class TestWindowedCounter:
    def test_canonical_window_labels(self):
        wc = WindowedCounter()
        assert set(wc.rates(now=0.0)) == {"1s", "10s", "60s"}

    def test_rates_reflect_recency(self):
        wc = WindowedCounter()
        # 60 events spread over the last minute, 1/s.
        for i in range(60):
            wc.add(1.0, now=1000.0 + i)
        rates = wc.rates(now=1059.0)
        # Ring buckets truncate at window edges: tolerate one bucket's worth.
        assert rates["60s"] == pytest.approx(1.0, rel=0.06)
        assert rates["10s"] == pytest.approx(1.0)
        assert wc.lifetime == 60.0

    def test_burst_visible_in_short_window_only(self):
        wc = WindowedCounter()
        for _ in range(100):
            wc.add(1.0, now=500.0)
        rates = wc.rates(now=500.0)
        assert rates["1s"] == pytest.approx(100.0)
        assert rates["60s"] == pytest.approx(100.0 / 60.0)

    def test_snapshot_keys(self):
        wc = WindowedCounter()
        wc.add(1.0, now=10.0)
        snap = wc.snapshot(now=10.0)
        assert snap["total"] == 1.0
        assert "rate_1s" in snap and "rate_10s" in snap and "rate_60s" in snap


class TestLatencyWindow:
    def test_quantiles_over_uniform_samples(self):
        lw = LatencyWindow(span_s=60.0, cap=256)
        for i in range(1, 101):
            lw.observe(float(i), now=100.0)
        assert lw.quantile(50, now=100.0) == 50.0
        assert lw.quantile(99, now=100.0) == 99.0

    def test_decay_drops_old_seconds(self):
        lw = LatencyWindow(span_s=10.0)
        lw.observe(99.0, now=100.0)
        lw.observe(1.0, now=109.0)
        # Both inside the 10 s window.
        assert lw.quantile(99, now=109.0) == 99.0
        # The old second has fallen out.
        assert lw.quantile(99, now=112.0) == 1.0

    def test_empty_window_is_nan(self):
        lw = LatencyWindow(span_s=10.0)
        assert math.isnan(lw.quantile(50, now=5.0))

    def test_reservoir_cap_bounds_memory(self):
        lw = LatencyWindow(span_s=10.0, cap=16)
        for i in range(1000):
            lw.observe(float(i), now=50.0)
        samples = lw.samples(now=50.0)
        assert len(samples) == 16
        assert lw.count(now=50.0) == 1000

    def test_sub_window_query(self):
        lw = LatencyWindow(span_s=60.0)
        lw.observe(100.0, now=10.0)
        lw.observe(1.0, now=40.0)
        assert lw.quantile(99, window_s=5.0, now=40.0) == 1.0
        assert lw.quantile(99, window_s=60.0, now=40.0) == 100.0

    def test_quantiles_dict(self):
        lw = LatencyWindow(span_s=10.0, cap=128)
        for i in range(1, 101):
            lw.observe(float(i) / 1000.0, now=5.0)
        q = lw.quantiles(now=5.0)
        assert set(q) == {"p50", "p95", "p99"}
        assert q["p50"] == pytest.approx(0.050)

    def test_deterministic_reservoir(self):
        a = LatencyWindow(span_s=10.0, cap=8, seed=42)
        b = LatencyWindow(span_s=10.0, cap=8, seed=42)
        for i in range(100):
            a.observe(float(i), now=3.0)
            b.observe(float(i), now=3.0)
        assert a.samples(now=3.0) == b.samples(now=3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyWindow(span_s=0.5)


class TestLabelledWindows:
    def test_per_label_rates(self):
        fam = LabelledWindows()
        fam.add("alice", 1.0, now=10.0)
        fam.add("alice", 1.0, now=10.0)
        fam.add("bob", 1.0, now=10.0)
        totals = fam.totals()
        assert totals == {"alice": 2.0, "bob": 1.0}
        rates = fam.rates(now=10.0)
        assert rates["alice"]["1s"] == pytest.approx(2.0)

    def test_cardinality_cap_overflows(self):
        fam = LabelledWindows(max_series=3)
        for i in range(10):
            fam.add(f"tenant{i}", 1.0, now=5.0)
        labels = fam.labels()
        assert len(labels) <= 4  # 3 real + __other__
        assert LabelledWindows.OVERFLOW in labels
        # Every event is accounted for somewhere.
        assert sum(fam.totals().values()) == 10.0
