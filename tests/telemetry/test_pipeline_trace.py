"""Full-pipeline tracing smoke: the demo portal run emits a coherent trace."""

from __future__ import annotations

import numpy as np
import pytest

from repro import telemetry
from repro.catalog.coords import SkyPosition
from repro.fits.hdu import ImageHDU
from repro.morphology.pipeline import GalmorphTask, galmorph_batch
from repro.portal.demo import build_demo_environment
from repro.sky.cluster import ClusterModel, GalaxyRecord, MorphType
from repro.sky.galaxy import render_galaxy_image
from repro.telemetry.report import node_spans, render_report, summarize


def _cluster(name: str, n: int) -> ClusterModel:
    return ClusterModel(
        name=name,
        center=SkyPosition(150.0, 2.2),
        redshift=0.05,
        n_galaxies=n,
        core_radius_deg=0.04,
        tidal_radius_deg=0.4,
        seed=2003,
        context_image_count=4,
    )


def _tasks(count: int) -> list[GalmorphTask]:
    types = [MorphType.ELLIPTICAL, MorphType.SPIRAL]
    tasks = []
    for i in range(count):
        galaxy = GalaxyRecord(
            f"t-{i}", 150.0, 2.0, 0.05, 17.0, types[i % 2], 2.5, 0.25, 30.0, 0.2, 0.1
        )
        hdu = ImageHDU(render_galaxy_image(galaxy, rng=np.random.default_rng(7 + i)))
        tasks.append(
            GalmorphTask(
                image=hdu, redshift=0.05, pix_scale=0.4 / 3600.0, galaxy_id=f"t-{i}"
            )
        )
    return tasks


@pytest.fixture(scope="module")
def traced_run():
    """One traced demo analysis shared by the smoke assertions below."""
    env = build_demo_environment(
        clusters=[_cluster("TEL-A", 6)], seed_virtual_data_reuse=False
    )
    telemetry.enable()
    try:
        session = env.portal.run_analysis("TEL-A")
        spans = list(telemetry.get_tracer().spans())
        metrics = telemetry.get_registry().dump()
    finally:
        telemetry.disable()
    return session, spans, metrics


def test_single_root_and_no_orphans(traced_run):
    _, spans, _ = traced_run
    by_id = {s["span"]: s for s in spans}
    roots = [s for s in spans if s["parent"] is None]
    assert [r["name"] for r in roots] == ["portal.run_analysis"]
    # every parent pointer resolves to a recorded span
    orphans = [s for s in spans if s["parent"] is not None and s["parent"] not in by_id]
    assert orphans == []
    # one trace id across the whole run
    assert len({s["trace"] for s in spans}) == 1


def test_expected_stage_spans_present(traced_run):
    _, spans, _ = traced_run
    names = {s["name"] for s in spans}
    for expected in (
        "portal.run_analysis",
        "service.request",
        "service.vdl_generate",
        "vdl.compose",
        "pegasus.plan",
        "pegasus.reduction",
        "pegasus.concretize",
        "condor.execute",
        "condor.node",
        "galmorph.galaxy",
    ):
        assert expected in names, f"missing span {expected!r}"


def test_one_node_span_per_executed_dag_node(traced_run):
    _, spans, _ = traced_run
    execute = next(s for s in spans if s["name"] == "condor.execute")
    nodes = node_spans(spans)
    # the concrete workflow executed every node exactly once (after dedup)
    assert len(nodes) == execute["attrs"]["nodes"]
    assert len({n["attrs"]["node"] for n in nodes}) == len(nodes)
    # all executed nodes are children of the execute span's trace
    assert all(n["trace"] == execute["trace"] for n in nodes)


def test_galmorph_spans_chain_up_to_portal_root(traced_run):
    _, spans, _ = traced_run
    by_id = {s["span"]: s for s in spans}

    def ancestry(span):
        chain = [span["name"]]
        while span["parent"] is not None:
            span = by_id[span["parent"]]
            chain.append(span["name"])
        return chain

    galaxy = next(s for s in spans if s["name"] == "galmorph.galaxy")
    chain = ancestry(galaxy)
    assert chain[-1] == "portal.run_analysis"
    assert "condor.node" in chain or "galmorph.batch" in chain


def test_metrics_counted_during_run(traced_run):
    session, _, metrics = traced_run
    assert session.merged is not None
    nodes_total = metrics["workflow_nodes_total"]
    succeeded = sum(
        v for labels, v in nodes_total["series"].items()
        if dict(labels).get("state") == "succeeded"
    )
    assert succeeded > 0
    assert metrics["galmorph_rows_total"]["kind"] == "counter"
    assert metrics["service_requests_total"]["kind"] == "counter"


def test_report_renders_from_live_trace(traced_run):
    _, spans, _ = traced_run
    summary = summarize(spans)
    assert summary["nodes"] > 0
    assert summary["critical_path_len"] >= 1
    text = render_report(spans, top=3)
    assert "== workflow node timeline ==" in text
    assert "== critical path ==" in text


def test_batch_spans_carry_parent_trace_id(enabled_telemetry):
    """Process-pool (or its sequential fallback) keeps one trace id."""
    with telemetry.trace_span("driver") as driver:
        results = galmorph_batch(_tasks(3), processes=2)
    assert len(results) == 3
    spans = telemetry.get_tracer().spans()
    batch = next(s for s in spans if s["name"] == "galmorph.batch")
    assert batch["parent"] == driver.span_id
    galaxies = [s for s in spans if s["name"] == "galmorph.galaxy"]
    assert len(galaxies) == 3
    # whether the pool spawned or the sequential fallback ran, every
    # per-galaxy span must stay inside the driver's trace
    assert all(s["trace"] == driver.trace_id for s in galaxies)
    assert telemetry.get_registry().counter("galmorph_rows_total").total() == 3
