"""Trace-report helpers: node dedup, critical path, timeline, rendering."""

from __future__ import annotations

import pytest

from repro.telemetry.report import (
    critical_path,
    node_spans,
    render_report,
    slowest_spans,
    summarize,
)
from repro.telemetry.selftest import REFERENCE_TRACE_JSONL, run_selftest
from repro.telemetry.tracing import parse_trace_jsonl


def _node(span_id, node, start, end, deps=(), status="ok", attempts=1):
    return {
        "name": "condor.node",
        "trace": "t",
        "span": span_id,
        "parent": None,
        "start": start,
        "end": end,
        "dur": end - start,
        "status": status,
        "clock": "sim",
        "pid": 1,
        "attrs": {
            "node": node, "kind": "compute", "site": "p", "attempts": attempts,
            "deps": list(deps),
        },
    }


def test_node_spans_dedup_to_final_attempt():
    spans = [
        _node("s1", "j1", 0.0, 1.0, attempts=1, status="error"),
        _node("s2", "j1", 1.0, 3.0, attempts=2),
        _node("s3", "j2", 0.0, 2.0),
    ]
    nodes = node_spans(spans)
    assert len(nodes) == 2
    j1 = next(n for n in nodes if n["attrs"]["node"] == "j1")
    assert j1["span"] == "s2"  # latest end wins


def test_critical_path_follows_deps():
    # diamond: a -> (b fast | c slow) -> d
    spans = [
        _node("sa", "a", 0.0, 1.0),
        _node("sb", "b", 1.0, 2.0, deps=["a"]),
        _node("sc", "c", 1.0, 6.0, deps=["a"]),
        _node("sd", "d", 6.0, 7.0, deps=["b", "c"]),
    ]
    chain = [r["attrs"]["node"] for r in critical_path(spans)]
    assert chain == ["a", "c", "d"]


def test_critical_path_empty_without_nodes():
    assert critical_path([]) == []
    assert critical_path([{"name": "other", "span": "x", "attrs": {}}]) == []


def test_slowest_spans_orders_by_duration():
    spans = [_node("s1", "j1", 0.0, 5.0), _node("s2", "j2", 0.0, 1.0),
             _node("s3", "j3", 0.0, 9.0)]
    top = slowest_spans(spans, n=2)
    assert [r["attrs"]["node"] for r in top] == ["j3", "j1"]


def test_summarize_rollup():
    spans = parse_trace_jsonl(REFERENCE_TRACE_JSONL)
    summary = summarize(spans)
    assert summary["spans"] == 23
    assert summary["traces"] == 1
    assert summary["nodes"] == 4
    assert summary["nodes_by_kind"] == {"transfer": 1, "compute": 3}
    assert summary["critical_path_len"] == 3
    assert summary["node_makespan"] == pytest.approx(19.4)
    assert summary["errors"] == 0


def test_render_report_sections_and_content():
    spans = parse_trace_jsonl(REFERENCE_TRACE_JSONL)
    text = render_report(spans, top=5)
    for section in (
        "== trace summary ==",
        "== span hierarchy ==",
        "== workflow node timeline ==",
        "== critical path ==",
        "== top 5 slowest nodes ==",
    ):
        assert section in text
    assert "portal.run_analysis" in text
    assert "clock=sim" in text
    assert "dv-g1" in text
    # sibling aggregation keeps big traces readable
    assert "condor.node ×4" in text


def test_render_report_without_node_spans():
    spans = [
        {"name": "root", "trace": "t", "span": "s1", "parent": None,
         "start": 0.0, "end": 1.0, "dur": 1.0, "status": "ok",
         "clock": "wall", "pid": 1, "attrs": {}},
    ]
    text = render_report(spans)
    assert "no condor.node spans" in text


def test_selftest_passes_quietly(capsys):
    assert run_selftest(verbose=False) == 0
    out = capsys.readouterr().out
    assert "telemetry selftest OK" in out
