"""Exporter golden tests: Prometheus text format and the strict parser."""

from __future__ import annotations

import json

import pytest

from repro.telemetry.exporters import (
    parse_prometheus_text,
    to_json,
    to_prometheus_text,
)
from repro.telemetry.metrics import MetricsRegistry


def _sample_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("workflow_nodes_total", help="nodes by terminal state").inc(
        7, state="succeeded"
    )
    reg.counter("workflow_nodes_total").inc(1, state="failed")
    reg.gauge("pool_busy_slots").set(3, site="pool-a")
    h = reg.histogram("galmorph_seconds", buckets=(0.01, 0.1, 1.0))
    h.observe(0.005)
    h.observe(0.05)
    h.observe(5.0)
    return reg


GOLDEN = """\
# TYPE galmorph_seconds histogram
galmorph_seconds_bucket{le="0.01"} 1
galmorph_seconds_bucket{le="0.1"} 2
galmorph_seconds_bucket{le="1"} 2
galmorph_seconds_bucket{le="+Inf"} 3
galmorph_seconds_sum 5.055
galmorph_seconds_count 3
# TYPE pool_busy_slots gauge
pool_busy_slots{site="pool-a"} 3
# HELP workflow_nodes_total nodes by terminal state
# TYPE workflow_nodes_total counter
workflow_nodes_total{state="failed"} 1
workflow_nodes_total{state="succeeded"} 7
"""


def test_prometheus_text_golden():
    assert to_prometheus_text(_sample_registry()) == GOLDEN


def test_prometheus_text_parses_back():
    text = to_prometheus_text(_sample_registry())
    samples = parse_prometheus_text(text)
    assert samples["workflow_nodes_total"] == [
        ({"state": "failed"}, 1.0),
        ({"state": "succeeded"}, 7.0),
    ]
    assert ({"le": "+Inf"}, 3.0) in samples["galmorph_seconds_bucket"]
    assert samples["galmorph_seconds_count"] == [({}, 3.0)]


def test_prometheus_label_escaping_roundtrip():
    reg = MetricsRegistry()
    tricky = 'A "quoted" back\\slash\nnewline'
    reg.counter("odd_total").inc(1, label=tricky)
    samples = parse_prometheus_text(to_prometheus_text(reg))
    assert samples["odd_total"] == [({"label": tricky}, 1.0)]


def test_empty_counter_renders_zero_sample():
    reg = MetricsRegistry()
    reg.counter("quiet_total")
    text = to_prometheus_text(reg)
    assert "quiet_total 0" in text
    assert parse_prometheus_text(text)["quiet_total"] == [({}, 0.0)]


def test_parser_rejects_malformed_lines():
    with pytest.raises(ValueError):
        parse_prometheus_text("this is not a sample\n")
    with pytest.raises(ValueError):
        parse_prometheus_text('ok_total{bad labels} 1\n')
    with pytest.raises(ValueError):
        parse_prometheus_text("# BOGUS comment\n")


def test_json_export_shape():
    doc = json.loads(to_json(_sample_registry()))
    assert doc["workflow_nodes_total"]["kind"] == "counter"
    series = doc["workflow_nodes_total"]["series"]
    assert {"labels": {"state": "succeeded"}, "value": 7.0} in series
    hist = doc["galmorph_seconds"]
    assert hist["kind"] == "histogram"
    assert hist["series"][0]["count"] == 3
    assert hist["series"][0]["buckets"]["+Inf"] == 3
