"""Metrics registry: kinds, labels, concurrency, cross-process merge."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


def test_counter_basics():
    c = Counter("ops_total")
    c.inc()
    c.inc(2.5, kind="a")
    assert c.value() == 1.0
    assert c.value(kind="a") == 2.5
    assert c.total() == 3.5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_set_inc_dec():
    g = Gauge("depth")
    g.set(5, site="x")
    g.inc(2, site="x")
    g.dec(3, site="x")
    assert g.value(site="x") == 4.0


def test_histogram_buckets_cumulative():
    h = Histogram("lat_seconds", buckets=(0.1, 1.0, 10.0))
    for v in (0.05, 0.5, 5.0, 50.0):
        h.observe(v)
    snap = h.snapshot()
    assert snap["buckets"] == {"0.1": 1, "1.0": 2, "10.0": 3, "+Inf": 4}
    assert snap["count"] == 4
    assert snap["sum"] == pytest.approx(55.55)


def test_registry_get_or_create_and_kind_conflict():
    reg = MetricsRegistry()
    c1 = reg.counter("x_total")
    c2 = reg.counter("x_total")
    assert c1 is c2
    with pytest.raises(ValueError):
        reg.gauge("x_total")
    assert reg.get("x_total") is c1
    assert reg.get("nope") is None
    assert "x_total" in reg


def test_registry_concurrent_increments():
    """8 threads x 1000 increments lose nothing (the lock contract)."""
    reg = MetricsRegistry()

    def hammer(k: int) -> None:
        for _ in range(1000):
            reg.counter("hits_total").inc(1, worker=str(k % 2))
            reg.histogram("t_seconds").observe(0.01)

    with ThreadPoolExecutor(max_workers=8) as pool:
        list(pool.map(hammer, range(8)))
    assert reg.counter("hits_total").total() == 8000
    assert reg.histogram("t_seconds").snapshot()["count"] == 8000


def test_dump_merge_roundtrip():
    src = MetricsRegistry()
    src.counter("jobs_total").inc(3, state="done")
    src.gauge("load").set(0.7, site="a")
    src.histogram("d_seconds", buckets=(1.0, 5.0)).observe(2.0)

    dst = MetricsRegistry()
    dst.counter("jobs_total").inc(1, state="done")
    dst.histogram("d_seconds", buckets=(1.0, 5.0)).observe(0.5)
    dst.merge(src.dump())

    assert dst.counter("jobs_total").value(state="done") == 4.0  # counters add
    assert dst.gauge("load").value(site="a") == 0.7  # gauges take incoming
    snap = dst.histogram("d_seconds").snapshot()
    assert snap["count"] == 2
    assert snap["sum"] == pytest.approx(2.5)


def test_merge_bucket_mismatch_rejected():
    src = MetricsRegistry()
    src.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
    dst = MetricsRegistry()
    dst.histogram("h_seconds", buckets=(2.0,)).observe(0.5)
    with pytest.raises(ValueError):
        dst.merge(src.dump())


def test_default_buckets_sorted():
    assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


def test_invalid_metric_name_rejected():
    with pytest.raises(ValueError):
        Counter("bad name")
