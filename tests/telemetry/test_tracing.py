"""Span API: nesting, propagation, disabled no-op, JSONL round-trip."""

from __future__ import annotations

import contextvars
import json
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import telemetry
from repro.telemetry.tracing import (
    Tracer,
    load_trace_jsonl,
    make_record,
    new_span_id,
    parse_trace_jsonl,
)


def test_disabled_trace_span_is_shared_noop():
    telemetry.disable()
    a = telemetry.trace_span("x")
    b = telemetry.trace_span("y", k=1)
    assert a is b  # one shared handle, no allocation per call
    with a as span:
        span.set(anything="goes")
    assert len(telemetry.get_tracer()) == 0 or telemetry.get_tracer() is not None


def test_span_nesting_parent_ids(enabled_telemetry):
    with telemetry.trace_span("outer") as outer:
        with telemetry.trace_span("middle"):
            with telemetry.trace_span("inner"):
                pass
    spans = {s["name"]: s for s in telemetry.get_tracer().spans()}
    assert set(spans) == {"outer", "middle", "inner"}
    assert spans["outer"]["parent"] is None
    assert spans["middle"]["parent"] == spans["outer"]["span"]
    assert spans["inner"]["parent"] == spans["middle"]["span"]
    assert len({s["trace"] for s in spans.values()}) == 1
    assert outer.span_id == spans["outer"]["span"]


def test_sibling_spans_share_parent(enabled_telemetry):
    with telemetry.trace_span("root"):
        with telemetry.trace_span("a"):
            pass
        with telemetry.trace_span("b"):
            pass
    spans = {s["name"]: s for s in telemetry.get_tracer().spans()}
    assert spans["a"]["parent"] == spans["root"]["span"]
    assert spans["b"]["parent"] == spans["root"]["span"]


def test_exception_marks_span_error(enabled_telemetry):
    with pytest.raises(RuntimeError):
        with telemetry.trace_span("boom"):
            raise RuntimeError("kaput")
    rec = telemetry.get_tracer().spans()[-1]
    assert rec["status"] == "error"
    assert "kaput" in rec["attrs"]["error"]


def test_thread_propagation_via_copy_context(enabled_telemetry):
    """copy_context() per submission parents worker spans correctly."""

    def work(i: int) -> None:
        with telemetry.trace_span("worker", i=i):
            pass

    with telemetry.trace_span("driver") as driver:
        with ThreadPoolExecutor(max_workers=4) as pool:
            futures = [
                pool.submit(contextvars.copy_context().run, work, i) for i in range(8)
            ]
            for f in futures:
                f.result()
    spans = telemetry.get_tracer().spans()
    workers = [s for s in spans if s["name"] == "worker"]
    assert len(workers) == 8
    assert all(s["parent"] == driver.span_id for s in workers)
    assert all(s["trace"] == driver.trace_id for s in workers)


def test_record_span_synthetic_sim_clock(enabled_telemetry):
    with telemetry.trace_span("exec") as parent:
        rec = telemetry.record_span(
            "condor.node", 10.0, 22.5, clock="sim", node="j1", deps=["j0"]
        )
    assert rec is not None
    assert rec["parent"] == parent.span_id
    assert rec["clock"] == "sim"
    assert rec["dur"] == pytest.approx(12.5)
    assert rec["attrs"]["deps"] == ["j0"]


def test_jsonl_roundtrip(tmp_path, enabled_telemetry):
    with telemetry.trace_span("a", n=3):
        with telemetry.trace_span("b"):
            pass
    path = tmp_path / "trace.jsonl"
    n = telemetry.get_tracer().export_jsonl(path)
    assert n == 2
    loaded = load_trace_jsonl(path)
    assert loaded == telemetry.get_tracer().spans()
    # every line is standalone JSON
    lines = path.read_text().strip().splitlines()
    assert len(lines) == 2
    assert all(isinstance(json.loads(line), dict) for line in lines)


def test_parse_trace_jsonl_rejects_garbage():
    with pytest.raises(ValueError):
        parse_trace_jsonl("not json\n")
    with pytest.raises(ValueError):
        parse_trace_jsonl('{"no": "span keys"}\n')


def test_run_with_context_collects_child_telemetry(enabled_telemetry):
    """Worker-side helper returns spans that parent to the shipped context."""
    with telemetry.trace_span("parent") as parent:
        ctx = telemetry.capture_context()
    assert ctx is not None and ctx.span_id == parent.span_id

    def child_work(x: int) -> int:
        with telemetry.trace_span("child"):
            telemetry.count("child_ops_total")
        return x * 2

    result, spans, metrics = telemetry.run_with_context(ctx, child_work, 21)
    assert result == 42
    assert len(spans) == 1
    assert spans[0]["trace"] == parent.trace_id
    assert spans[0]["parent"] == parent.span_id
    assert metrics["child_ops_total"]["kind"] == "counter"
    # child spans were NOT recorded into the parent tracer automatically
    names = [s["name"] for s in telemetry.get_tracer().spans()]
    assert "child" not in names
    # ... until ingested
    telemetry.get_tracer().ingest(spans)
    telemetry.get_registry().merge(metrics)
    assert "child" in [s["name"] for s in telemetry.get_tracer().spans()]
    assert telemetry.get_registry().counter("child_ops_total").total() == 1


def test_make_record_schema():
    rec = make_record("n", "t1", new_span_id(), None, 1.0, 2.5, attrs={"k": "v"})
    assert set(rec) == {
        "name", "trace", "span", "parent", "start", "end", "dur",
        "status", "clock", "pid", "attrs",
    }
    assert rec["dur"] == pytest.approx(1.5)
    assert rec["clock"] == "wall"


def test_tracer_thread_safety_smoke():
    tracer = Tracer()

    def add_many(k: int) -> None:
        for i in range(200):
            tracer.add(make_record(f"s{k}", "t", new_span_id(), None, 0.0, 1.0))

    with ThreadPoolExecutor(max_workers=8) as pool:
        list(pool.map(add_many, range(8)))
    assert len(tracer) == 1600
