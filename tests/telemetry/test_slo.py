"""SLO burn-rate tracker: multi-window availability and latency budgets."""

from __future__ import annotations

import pytest

from repro.telemetry.slo import FAST_BURN, SLOW_BURN, Objective, SLOTracker


class TestObjective:
    def test_no_traffic_is_ok(self):
        obj = Objective("availability", budget=0.001)
        snap = obj.snapshot(now=100.0)
        assert snap["state"] == "ok"
        assert snap["burn_short"] == 0.0
        assert snap["budget_remaining"] == 1.0

    def test_within_budget_is_ok(self):
        obj = Objective("availability", budget=0.01, short_window_s=60, long_window_s=600)
        # 1000 requests, 1 bad: 0.1% bad vs 1% budget → burn 0.1.
        for i in range(1000):
            obj.record(good=(i != 0), now=100.0)
        snap = obj.snapshot(now=100.0)
        assert snap["state"] == "ok"
        assert snap["burn_long"] == pytest.approx(0.1)

    def test_sustained_burn_pages(self):
        obj = Objective("availability", budget=0.001, short_window_s=60, long_window_s=600)
        # 10% failure rate → burn 100 ≫ 14.4 in both windows.
        for i in range(1000):
            obj.record(good=(i % 10 != 0), now=500.0)
        snap = obj.snapshot(now=500.0)
        assert snap["burn_short"] >= FAST_BURN
        assert snap["burn_long"] >= FAST_BURN
        assert snap["state"] == "page"

    def test_short_spike_alone_does_not_page(self):
        obj = Objective("availability", budget=0.01, short_window_s=10, long_window_s=600)
        # Long window dominated by healthy traffic still inside its span.
        for _ in range(10000):
            obj.record(good=True, now=100.0)
        # Fresh burst of failures saturating the short window only.
        for _ in range(50):
            obj.record(good=False, now=650.0)
        snap = obj.snapshot(now=650.0)
        assert snap["burn_short"] >= FAST_BURN
        # Long window dilutes the burst below the slow threshold, so the
        # two-window rule suppresses the alert.
        assert snap["burn_long"] < SLOW_BURN
        assert snap["state"] == "ok"

    def test_burn_clears_as_windows_decay(self):
        obj = Objective("availability", budget=0.001, short_window_s=10, long_window_s=60)
        for _ in range(100):
            obj.record(good=False, now=100.0)
        assert obj.snapshot(now=100.0)["state"] == "page"
        # After the short window decays the failures, paging stops.
        assert obj.snapshot(now=115.0)["state"] == "ok"

    def test_budget_remaining_clamped(self):
        obj = Objective("availability", budget=0.001)
        for _ in range(100):
            obj.record(good=False, now=50.0)
        snap = obj.snapshot(now=50.0)
        assert snap["budget_remaining"] == 0.0

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            Objective("x", budget=0.0)
        with pytest.raises(ValueError):
            Objective("x", budget=1.0)


class TestSLOTracker:
    def test_snapshot_shape(self):
        slo = SLOTracker()
        slo.record(ok=True, latency_s=0.01, now=10.0)
        snap = slo.snapshot(now=10.0)
        assert snap["state"] == "ok"
        assert {o["objective"] for o in snap["objectives"]} == {
            "availability",
            "latency",
        }
        assert snap["latency_target_s"] == 0.5

    def test_slow_requests_burn_latency_budget(self):
        slo = SLOTracker(latency_target_s=0.1, latency_budget=0.01,
                         short_window_s=60, long_window_s=600)
        for i in range(100):
            slo.record(ok=True, latency_s=5.0 if i % 2 == 0 else 0.01, now=50.0)
        snap = slo.snapshot(now=50.0)
        latency = next(o for o in snap["objectives"] if o["objective"] == "latency")
        assert latency["state"] == "page"
        availability = next(
            o for o in snap["objectives"] if o["objective"] == "availability"
        )
        assert availability["state"] == "ok"
        # Worst objective wins.
        assert snap["state"] == "page"

    def test_failures_do_not_double_count_latency(self):
        slo = SLOTracker(latency_target_s=0.1)
        slo.record(ok=False, latency_s=99.0, now=10.0)
        snap = slo.snapshot(now=10.0)
        latency = next(o for o in snap["objectives"] if o["objective"] == "latency")
        assert latency["events_long"] == 0

    def test_state_shortcut(self):
        slo = SLOTracker(availability_budget=0.001)
        for _ in range(100):
            slo.record(ok=False, now=20.0)
        assert slo.state(now=20.0) == "page"
