"""Tests for cluster dynamics: dispersion estimators and the DS test."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.portal.dynamics import (
    analyze_dynamics,
    biweight_location,
    dressler_shectman_test,
    gapper_dispersion,
)
from repro.votable.model import Field, VOTable


class TestGapper:
    def test_gaussian_recovery(self):
        rng = np.random.default_rng(1)
        v = rng.normal(0.0, 800.0, 400)
        assert gapper_dispersion(v) == pytest.approx(800.0, rel=0.1)

    def test_small_sample(self):
        rng = np.random.default_rng(2)
        v = rng.normal(0.0, 500.0, 15)
        assert gapper_dispersion(v) == pytest.approx(500.0, rel=0.4)

    def test_outlier_resistant(self):
        rng = np.random.default_rng(3)
        v = rng.normal(0.0, 500.0, 50)
        contaminated = np.append(v, [50_000.0])
        plain_std = float(np.std(contaminated))
        gapper = gapper_dispersion(contaminated)
        assert gapper < plain_std / 2  # far less sensitive to the interloper

    def test_needs_two(self):
        with pytest.raises(ValueError):
            gapper_dispersion(np.array([1.0]))

    @given(st.lists(st.floats(-1e4, 1e4), min_size=2, max_size=40))
    def test_nonnegative_and_shift_invariant(self, values):
        v = np.array(values)
        sigma = gapper_dispersion(v)
        assert sigma >= 0.0
        assert gapper_dispersion(v + 123.0) == pytest.approx(sigma, abs=1e-6)


class TestBiweight:
    def test_center_recovery(self):
        rng = np.random.default_rng(4)
        v = rng.normal(250.0, 100.0, 200)
        assert biweight_location(v) == pytest.approx(250.0, abs=25.0)

    def test_robust_to_outliers(self):
        v = np.append(np.random.default_rng(5).normal(0.0, 10.0, 50), [1e6])
        assert abs(biweight_location(v)) < 20.0

    def test_constant_sample(self):
        assert biweight_location(np.full(10, 7.0)) == 7.0

    def test_empty(self):
        with pytest.raises(ValueError):
            biweight_location(np.array([]))


def relaxed_cluster(n=80, seed=1):
    """Positions and velocities with no position-velocity correlation.

    (Seed chosen away from the inevitable ~5% of null samples whose DS
    p-value dips below 0.05 — p is uniform under the null.)
    """
    rng = np.random.default_rng(seed)
    ra = 150.0 + rng.normal(0, 0.1, n)
    dec = 2.0 + rng.normal(0, 0.1, n)
    velocity = rng.normal(0.0, 800.0, n)
    return ra, dec, velocity


def merging_cluster(n=80, seed=0):
    """Two kinematically distinct subclumps: strong substructure."""
    rng = np.random.default_rng(seed)
    half = n // 2
    ra = np.concatenate([150.0 + rng.normal(0, 0.03, half), 150.25 + rng.normal(0, 0.03, n - half)])
    dec = np.concatenate([2.0 + rng.normal(0, 0.03, half), 2.25 + rng.normal(0, 0.03, n - half)])
    velocity = np.concatenate(
        [rng.normal(-900.0, 300.0, half), rng.normal(+900.0, 300.0, n - half)]
    )
    return ra, dec, velocity


class TestDresslerShectman:
    def test_relaxed_cluster_not_flagged(self):
        ra, dec, velocity = relaxed_cluster()
        result = dressler_shectman_test(ra, dec, velocity, n_shuffles=200)
        assert not result.has_substructure
        assert result.p_value > 0.05

    def test_merging_cluster_flagged(self):
        ra, dec, velocity = merging_cluster()
        result = dressler_shectman_test(ra, dec, velocity, n_shuffles=200)
        assert result.has_substructure
        assert result.p_value < 0.02
        assert result.big_delta / result.n_galaxies > 1.2

    def test_default_neighbor_count(self):
        ra, dec, velocity = relaxed_cluster(n=64)
        result = dressler_shectman_test(ra, dec, velocity, n_shuffles=50)
        assert result.n_neighbors == 8  # sqrt(64)

    def test_validation(self):
        ra, dec, velocity = relaxed_cluster(n=12)
        with pytest.raises(ValueError):
            dressler_shectman_test(ra[:5], dec[:5], velocity[:5])
        with pytest.raises(ValueError):
            dressler_shectman_test(ra, dec, velocity[:-1])
        with pytest.raises(ValueError):
            dressler_shectman_test(ra, dec, velocity, n_neighbors=12)

    def test_deterministic_given_seed(self):
        ra, dec, velocity = relaxed_cluster()
        a = dressler_shectman_test(ra, dec, velocity, n_shuffles=50, seed=9)
        b = dressler_shectman_test(ra, dec, velocity, n_shuffles=50, seed=9)
        assert a.p_value == b.p_value
        assert a.delta == b.delta


class TestAnalyzeDynamics:
    def test_on_portal_catalog(self, small_cluster):
        from repro.portal.demo import build_demo_environment

        env = build_demo_environment(clusters=[small_cluster], seed_virtual_data_reuse=False)
        session = env.portal.run_analysis(small_cluster.name)
        state = analyze_dynamics(session.merged, small_cluster, n_shuffles=100)
        assert state.n_members == small_cluster.n_galaxies
        # synthesis drew velocities at sigma = 900 km/s
        assert state.velocity_dispersion_kms == pytest.approx(
            small_cluster.velocity_dispersion_kms, rel=0.4
        )
        # members were placed with no position-velocity correlation
        assert not state.ds.has_substructure
        assert small_cluster.name in state.summary()

    def test_missing_columns(self, small_cluster):
        table = VOTable([Field("ra", "double")])
        with pytest.raises(ValueError):
            analyze_dynamics(table, small_cluster)
