"""Tests for the Figure 7 overlay data products."""

from __future__ import annotations

import pytest

from repro.catalog.regions import parse_region_file
from repro.fits.io import read_fits
from repro.fits.wcs import TanWCS
from repro.portal.demo import build_demo_environment
from repro.portal.overlay import build_overlay, write_overlay
from repro.votable.model import Field, VOTable


@pytest.fixture(scope="module")
def overlay_product():
    from repro.catalog.coords import SkyPosition
    from repro.sky.cluster import ClusterModel

    cluster = ClusterModel(
        name="OVL", center=SkyPosition(60.0, -20.0), redshift=0.04, n_galaxies=15,
        seed=21, context_image_count=6,
    )
    env = build_demo_environment(clusters=[cluster], seed_virtual_data_reuse=False)
    session = env.portal.run_analysis("OVL")
    return build_overlay(session.merged, cluster, optical_size=96, xray_size=48), cluster


class TestBuildOverlay:
    def test_layers_share_grid_and_wcs(self, overlay_product):
        product, _ = overlay_product
        assert product.optical.data.shape == product.xray.data.shape
        assert TanWCS.from_header(product.optical.header) == TanWCS.from_header(product.xray.header)

    def test_region_per_galaxy(self, overlay_product):
        product, cluster = overlay_product
        assert len(product.regions) == cluster.n_galaxies
        regions = parse_region_file(product.region_text)
        assert len(regions) == cluster.n_galaxies

    def test_regions_lie_on_the_image(self, overlay_product):
        product, _ = overlay_product
        wcs = TanWCS.from_header(product.optical.header)
        height, width = product.optical.data.shape
        inside = 0
        for region in product.regions:
            x, y = wcs.sky_to_pixel(region.ra, region.dec)
            if 1 <= float(x) <= width and 1 <= float(y) <= height:
                inside += 1
        assert inside >= len(product.regions) * 0.9

    def test_missing_columns_rejected(self, overlay_product):
        _, cluster = overlay_product
        with pytest.raises(ValueError):
            build_overlay(VOTable([Field("ra", "double")]), cluster)


class TestWriteOverlay:
    def test_files_written_and_readable(self, overlay_product, tmp_path):
        product, cluster = overlay_product
        paths = write_overlay(product, tmp_path / "out")
        assert set(paths) == {"optical", "xray", "regions"}
        optical = read_fits(paths["optical"])
        xray = read_fits(paths["xray"])
        assert optical.data.shape == xray.data.shape
        regions = parse_region_file(paths["regions"].read_text())
        assert len(regions) == cluster.n_galaxies
