"""Tests for the transformation bodies and the status board."""

from __future__ import annotations

import math

import pytest

from repro.core.errors import ExecutionError
from repro.fits.io import write_fits_bytes
from repro.morphology.pipeline import MorphologyResult
from repro.portal.executables import (
    concat_executable,
    galmorph_executable,
    result_to_text,
    text_to_result,
)
from repro.portal.status import StatusBoard
from repro.sky.imaging import CutoutFactory
from repro.votable.parser import parse_votable
from repro.workflow.abstract import AbstractJob


class TestResultTextFormat:
    def test_roundtrip_valid(self):
        result = MorphologyResult(
            "g1", True, surface_brightness=21.5, concentration=3.3,
            asymmetry=0.12, petrosian_radius_arcsec=4.5, petrosian_radius_kpc=2.2,
        )
        assert text_to_result(result_to_text(result)) == result

    def test_roundtrip_invalid_with_nans(self):
        result = MorphologyResult("g2", False, error="no significant central source")
        back = text_to_result(result_to_text(result))
        assert back.galaxy_id == "g2"
        assert not back.valid
        assert math.isnan(back.asymmetry)
        assert back.error == "no significant central source"

    def test_malformed_rejected(self):
        with pytest.raises(ExecutionError):
            text_to_result(b"id g1\n")


class TestGalmorphExecutable:
    def _job(self, image_lfn="g.fit", out_lfn="g.txt", **extra):
        params = {
            "redshift": "0.05",
            "pixScale": str(0.4 / 3600.0),
            "zeroPoint": "0",
            "Ho": "100",
            "om": "0.3",
            "flat": "1",
        }
        params.update({k: str(v) for k, v in extra.items()})
        return AbstractJob("dv-g", "galMorph", (image_lfn,), (out_lfn,), params)

    def test_computes_from_fits(self, small_cluster):
        factory = CutoutFactory(small_cluster)
        member = min(factory.members(), key=lambda m: m.magnitude)
        payload = write_fits_bytes(factory.render_cutout(member.galaxy_id))
        out = galmorph_executable(self._job(), {"g.fit": payload})
        result = text_to_result(out["g.txt"])
        assert result.valid
        assert result.galaxy_id == member.galaxy_id

    def test_requires_single_input(self):
        with pytest.raises(ExecutionError):
            galmorph_executable(self._job(), {})

    def test_bad_image_yields_invalid_not_crash(self, small_cluster):
        import numpy as np

        from repro.fits.hdu import ImageHDU

        noise = ImageHDU(np.random.default_rng(0).normal(5, 1, (64, 64)).astype("f4"))
        out = galmorph_executable(self._job(), {"g.fit": write_fits_bytes(noise)})
        assert not text_to_result(out["g.txt"]).valid


class TestConcatExecutable:
    def test_builds_votable(self):
        results = [
            MorphologyResult("g1", True, 21.0, 3.1, 0.05, 4.0, 2.0),
            MorphologyResult("g2", False, error="bad image"),
        ]
        job = AbstractJob(
            "dv-concat", "concatVOTable",
            ("g1.txt", "g2.txt"), ("out.vot",), {"cluster": "TEST01"},
        )
        inputs = {"g1.txt": result_to_text(results[0]), "g2.txt": result_to_text(results[1])}
        out = concat_executable(job, inputs)
        table = parse_votable(out["out.vot"].decode())
        assert len(table) == 2
        rows = list(table)
        assert rows[0]["valid"] is True and rows[0]["asymmetry"] == pytest.approx(0.05)
        assert rows[1]["valid"] is False and rows[1]["asymmetry"] is None
        assert rows[1]["error"] == "bad image"
        assert table.name == "TEST01"

    def test_preserves_input_order(self):
        job = AbstractJob(
            "c", "concatVOTable", ("b.txt", "a.txt"), ("o.vot",), {"cluster": "X"}
        )
        inputs = {
            "a.txt": result_to_text(MorphologyResult("a", False, error="x")),
            "b.txt": result_to_text(MorphologyResult("b", False, error="x")),
        }
        table = parse_votable(concat_executable(job, inputs)["o.vot"].decode())
        assert [r["id"] for r in table] == ["b", "a"]


class TestStatusBoard:
    def test_create_post_poll(self):
        board = StatusBoard()
        url = board.create("req-1")
        board.post("req-1", "running", "working")
        message = board.poll(url)
        assert message.state == "running"
        board.post("req-1", "completed", result_url="http://x/out.vot")
        assert board.poll(url).result_url == "http://x/out.vot"
        assert board.page("req-1").completed

    def test_poll_counts(self):
        board = StatusBoard()
        url = board.create("req-2")
        board.post("req-2", "running")
        for _ in range(3):
            board.poll(url)
        assert board.poll_count == 3

    def test_unknown_url(self):
        with pytest.raises(KeyError):
            StatusBoard().poll("http://x/status/ghost")

    def test_duplicate_request(self):
        board = StatusBoard()
        board.create("r")
        with pytest.raises(ValueError):
            board.create("r")

    def test_empty_page_reports_accepted(self):
        board = StatusBoard()
        url = board.create("r")
        assert board.poll(url).state == "accepted"
