"""Tests for the campaign driver and report aggregation."""

from __future__ import annotations

import pytest

from repro.catalog.coords import SkyPosition
from repro.portal.campaign import CampaignReport, ClusterRunRecord, run_campaign
from repro.portal.demo import build_demo_environment
from repro.sky.cluster import ClusterModel


def cluster(name, n, ra=40.0):
    return ClusterModel(
        name=name,
        center=SkyPosition(ra, 5.0),
        redshift=0.05,
        n_galaxies=n,
        seed=9,
        context_image_count=8,
    )


def record(name, galaxies=10, jobs=11, transfers=21) -> ClusterRunRecord:
    return ClusterRunRecord(
        cluster=name,
        galaxies=galaxies,
        compute_jobs=jobs,
        transfers=transfers,
        stage_in=galaxies,
        inter_site=galaxies,
        stage_out=1,
        images=galaxies + 8,
        image_bytes=galaxies * 20160,
        valid_measurements=galaxies - 1,
        jobs_per_site={"isi": jobs},
        analysis=None,
    )


class TestCampaignReport:
    def test_aggregation(self):
        report = CampaignReport(records=[record("A", 10), record("B", 20, jobs=21, transfers=41)])
        assert report.clusters == 2
        assert report.galaxies == 30
        assert report.compute_jobs == 32
        assert report.transfers == 62
        assert report.galaxy_range == (10, 20)
        assert report.pools_used() == ["isi"]

    def test_totals_table_mentions_paper_values(self):
        report = CampaignReport(records=[record("A")])
        table = report.totals_table()
        assert "1152" in table and "2295" in table and "30.0 MB" in table


class TestRunCampaign:
    def test_subset_selection(self):
        clusters = [cluster("CAMP-A", 8, ra=40.0), cluster("CAMP-B", 9, ra=80.0)]
        env = build_demo_environment(clusters=clusters, seed_virtual_data_reuse=False)
        report = run_campaign(env, cluster_names=["CAMP-B"], analyze=False)
        assert report.clusters == 1
        assert report.records[0].cluster == "CAMP-B"
        assert report.records[0].galaxies == 9

    def test_analysis_skipped_for_tiny_clusters(self):
        # below the 8-valid-row minimum the Dressler statistics are skipped
        env = build_demo_environment(clusters=[cluster("CAMP-C", 6)], seed_virtual_data_reuse=False)
        report = run_campaign(env, analyze=True)
        assert report.records[0].analysis is None  # too few valid rows

    def test_per_cluster_accounting_consistent(self):
        env = build_demo_environment(clusters=[cluster("CAMP-D", 12)], seed_virtual_data_reuse=False)
        report = run_campaign(env, analyze=False)
        r = report.records[0]
        assert r.compute_jobs == r.galaxies + 1
        assert r.transfers == r.stage_in + r.inter_site + r.stage_out
        assert r.images == r.galaxies + 8
        assert r.image_bytes > 0


class TestCampaignFailures:
    def test_clean_run_reports_success(self):
        env = build_demo_environment(clusters=[cluster("CAMP-OK", 6)], seed_virtual_data_reuse=False)
        report = run_campaign(env, analyze=False)
        assert report.succeeded
        assert report.failed_clusters == []
        assert report.failed_nodes == 0 and report.unrunnable_nodes == 0
        assert not report.records[0].failed

    def test_failed_cluster_surfaces_node_counts(self):
        env = build_demo_environment(
            clusters=[cluster("CAMP-F", 6)],
            seed_virtual_data_reuse=False,
            max_retries=1,
        )
        env.vds.simulation_options.forced_failures["job-dv-CAMP-F-0000"] = 99
        report = run_campaign(env, analyze=False)
        assert not report.succeeded
        assert report.failed_clusters == ["CAMP-F"]
        record = report.records[0]
        assert record.failed
        assert record.failed_nodes == 1
        assert record.unrunnable_nodes >= 1  # concat (at least) never ran
        assert record.error
        assert "CAMP-F" in report.failure_summary()

    def test_failure_does_not_abort_remaining_clusters(self):
        clusters = [cluster("CAMP-F1", 6, ra=40.0), cluster("CAMP-F2", 7, ra=80.0)]
        env = build_demo_environment(
            clusters=clusters, seed_virtual_data_reuse=False, max_retries=1
        )
        env.vds.simulation_options.forced_failures[
            "job-dv-concat-CAMP-F1-morphology.vot"
        ] = 99
        report = run_campaign(env, cluster_names=["CAMP-F1", "CAMP-F2"], analyze=False)
        # CAMP-F1's failure is recorded and the campaign moves on to CAMP-F2
        # rather than aborting the whole run.
        assert len(report.records) == 2
        assert report.records[0].cluster == "CAMP-F1"
        assert report.records[0].failed and report.records[0].failed_nodes == 1
        assert report.records[1].cluster == "CAMP-F2"
        # CAMP-F2 trips the forced-failure validation (its DAG has no such
        # node) — still recorded per cluster, not raised out of the driver.
        assert report.records[1].failed
        assert "unknown workflow nodes" in (report.records[1].error or "")

    def test_cleared_fault_lets_later_run_succeed(self):
        env = build_demo_environment(
            clusters=[cluster("CAMP-R", 7)], seed_virtual_data_reuse=False, max_retries=1
        )
        env.vds.simulation_options.forced_failures[
            "job-dv-concat-CAMP-R-morphology.vot"
        ] = 99
        report = run_campaign(env, analyze=False)
        assert not report.succeeded
        env.vds.simulation_options.forced_failures.clear()
        report2 = run_campaign(env, analyze=False)
        assert report2.succeeded
        assert report2.records[0].galaxies == 7

    def test_failed_record_marks_synthetic_fields(self):
        record_obj = record("X")
        assert not record_obj.failed
        failed = ClusterRunRecord(
            cluster="Y",
            galaxies=0,
            compute_jobs=0,
            transfers=0,
            stage_in=0,
            inter_site=0,
            stage_out=0,
            images=0,
            image_bytes=0,
            valid_measurements=0,
            jobs_per_site={},
            analysis=None,
            failed_nodes=2,
            unrunnable_nodes=3,
            error="boom",
        )
        assert failed.failed
        report = CampaignReport(records=[record_obj, failed])
        assert report.failed_clusters == ["Y"]
        assert report.failed_nodes == 2 and report.unrunnable_nodes == 3
        assert "boom" in report.failure_summary()
