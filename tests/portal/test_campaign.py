"""Tests for the campaign driver and report aggregation."""

from __future__ import annotations

import pytest

from repro.catalog.coords import SkyPosition
from repro.portal.campaign import CampaignReport, ClusterRunRecord, run_campaign
from repro.portal.demo import build_demo_environment
from repro.sky.cluster import ClusterModel


def cluster(name, n, ra=40.0):
    return ClusterModel(
        name=name,
        center=SkyPosition(ra, 5.0),
        redshift=0.05,
        n_galaxies=n,
        seed=9,
        context_image_count=8,
    )


def record(name, galaxies=10, jobs=11, transfers=21) -> ClusterRunRecord:
    return ClusterRunRecord(
        cluster=name,
        galaxies=galaxies,
        compute_jobs=jobs,
        transfers=transfers,
        stage_in=galaxies,
        inter_site=galaxies,
        stage_out=1,
        images=galaxies + 8,
        image_bytes=galaxies * 20160,
        valid_measurements=galaxies - 1,
        jobs_per_site={"isi": jobs},
        analysis=None,
    )


class TestCampaignReport:
    def test_aggregation(self):
        report = CampaignReport(records=[record("A", 10), record("B", 20, jobs=21, transfers=41)])
        assert report.clusters == 2
        assert report.galaxies == 30
        assert report.compute_jobs == 32
        assert report.transfers == 62
        assert report.galaxy_range == (10, 20)
        assert report.pools_used() == ["isi"]

    def test_totals_table_mentions_paper_values(self):
        report = CampaignReport(records=[record("A")])
        table = report.totals_table()
        assert "1152" in table and "2295" in table and "30.0 MB" in table


class TestRunCampaign:
    def test_subset_selection(self):
        clusters = [cluster("CAMP-A", 8, ra=40.0), cluster("CAMP-B", 9, ra=80.0)]
        env = build_demo_environment(clusters=clusters, seed_virtual_data_reuse=False)
        report = run_campaign(env, cluster_names=["CAMP-B"], analyze=False)
        assert report.clusters == 1
        assert report.records[0].cluster == "CAMP-B"
        assert report.records[0].galaxies == 9

    def test_analysis_skipped_for_tiny_clusters(self):
        # below the 8-valid-row minimum the Dressler statistics are skipped
        env = build_demo_environment(clusters=[cluster("CAMP-C", 6)], seed_virtual_data_reuse=False)
        report = run_campaign(env, analyze=True)
        assert report.records[0].analysis is None  # too few valid rows

    def test_per_cluster_accounting_consistent(self):
        env = build_demo_environment(clusters=[cluster("CAMP-D", 12)], seed_virtual_data_reuse=False)
        report = run_campaign(env, analyze=False)
        r = report.records[0]
        assert r.compute_jobs == r.galaxies + 1
        assert r.transfers == r.stage_in + r.inter_site + r.stage_out
        assert r.images == r.galaxies + 8
        assert r.image_bytes > 0
