"""Tests for the portal flow (Figure 5), analysis (Figure 7) and ASCII viz."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ServiceError
from repro.portal.analysis import analyze_morphology_catalog
from repro.portal.demo import build_demo_environment
from repro.portal.visualize import ascii_histogram, ascii_overlay, ascii_scatter
from repro.votable.model import Field, VOTable


@pytest.fixture(scope="module")
def env_session(small_cluster_module):
    env = build_demo_environment(clusters=[small_cluster_module], seed_virtual_data_reuse=False)
    session = env.portal.run_analysis(small_cluster_module.name)
    return env, session


@pytest.fixture(scope="module")
def small_cluster_module():
    from repro.catalog.coords import SkyPosition
    from repro.sky.cluster import ClusterModel

    return ClusterModel(
        name="TESTM",
        center=SkyPosition(150.0, 2.2),
        redshift=0.05,
        n_galaxies=30,
        core_radius_deg=0.04,
        tidal_radius_deg=0.4,
        seed=42,
        context_image_count=9,
    )


class TestPortalFlow:
    def test_list_clusters(self, env_session):
        env, _ = env_session
        assert env.portal.list_clusters() == ["TESTM"]

    def test_unknown_cluster(self, env_session):
        env, _ = env_session
        with pytest.raises(ServiceError):
            env.portal.select_cluster("NOPE")

    def test_context_images_found(self, env_session):
        _, session = env_session
        assert session.n_context_images == 9  # configured split across archives
        assert session.context_image_bytes > 0

    def test_catalog_built_from_both_services(self, env_session):
        _, session = env_session
        assert session.catalog is not None
        assert len(session.catalog) == 30
        # joined schema carries photometry AND spectroscopy columns
        assert {"mag_r", "redshift", "velocity"} <= set(session.catalog.field_names())

    def test_cutout_references_resolved(self, env_session):
        _, session = env_session
        assert session.input_votable is not None
        assert all(row["cutout_url"].startswith("http://cutout.synth") for row in session.input_votable)

    def test_results_merged(self, env_session):
        _, session = env_session
        merged = session.merged
        assert merged is not None
        assert len(merged) == 30
        assert {"asymmetry", "concentration", "valid"} <= set(merged.field_names())

    def test_figure5_event_order(self, env_session):
        env, _ = env_session
        kinds = env.events.kinds()
        expected = [
            "cluster-selected",
            "context-images-found",
            "catalog-built",
            "cutouts-resolved",
            "compute-submitted",
            "results-received",
            "results-merged",
        ]
        positions = [kinds.index(k) for k in expected]
        assert positions == sorted(positions)

    def test_portal_polls_status(self, env_session):
        _, session = env_session
        assert session.polls >= 1

    def test_meter_recorded_protocol_costs(self, env_session):
        env, _ = env_session
        assert env.meter.count("sia-query") >= 30  # per-galaxy cutout queries
        assert env.meter.count("sia-download") == 30
        assert env.meter.count("cone-query") == 2


class TestDresslerAnalysis:
    def test_statistics(self, env_session):
        _, session = env_session
        analysis = analyze_morphology_catalog(session.merged, session.cluster)
        assert analysis.n_galaxies == 30
        assert 0 < analysis.n_valid <= 30
        assert len(analysis.radial.early_fraction) == 4
        assert -1.0 <= analysis.asymmetry_radius_spearman <= 1.0
        text = analysis.summary()
        assert "Spearman" in text and session.cluster.name in text

    def test_too_few_valid_rows_rejected(self, small_cluster_module):
        table = VOTable(
            [
                Field("ra", "double"),
                Field("dec", "double"),
                Field("valid", "boolean"),
                Field("asymmetry", "double"),
                Field("concentration", "double"),
            ]
        )
        for i in range(4):
            table.append([150.0 + i * 0.01, 2.0, True, 0.1, 3.0])
        with pytest.raises(ValueError):
            analyze_morphology_catalog(table, small_cluster_module)

    def test_invalid_rows_excluded(self, env_session):
        _, session = env_session
        analysis = analyze_morphology_catalog(session.merged, session.cluster)
        n_invalid = sum(1 for r in session.merged if not r["valid"])
        assert analysis.n_valid == analysis.n_galaxies - n_invalid


class TestVisualize:
    def test_overlay_renders(self, env_session):
        _, session = env_session
        text = ascii_overlay(session.merged, session.cluster)
        lines = text.splitlines()
        assert len(lines) >= 28
        assert session.cluster.name in text
        # some galaxies plotted
        assert any(mark in text for mark in "EeoxS")

    def test_scatter(self):
        rng = np.random.default_rng(0)
        text = ascii_scatter(rng.random(50), rng.random(50), xlabel="radius", ylabel="A")
        assert "radius" in text and "*" in text

    def test_scatter_validates(self):
        with pytest.raises(ValueError):
            ascii_scatter(np.array([]), np.array([]))

    def test_histogram(self):
        text = ascii_histogram(np.array([1.0, 1.1, 2.0, 5.0]), bins=4, label="asym")
        assert "asym" in text and "#" in text

    def test_histogram_empty(self):
        with pytest.raises(ValueError):
            ascii_histogram(np.array([]))


class TestXrayAxis:
    def test_xray_correlations_present_and_signed(self, env_session):
        """§2's third axis: star formation indicators vs x-ray surface
        brightness.  Bright x-ray = cluster core = symmetric early types."""
        import numpy as np

        _, session = env_session
        analysis = analyze_morphology_catalog(session.merged, session.cluster)
        assert np.isfinite(analysis.asymmetry_xray_spearman)
        assert np.isfinite(analysis.early_xray_spearman)
        # signs are anti-symmetric with the radius correlations
        assert analysis.asymmetry_xray_spearman * analysis.asymmetry_radius_spearman <= 0
        assert "x-ray SB" in analysis.summary()
