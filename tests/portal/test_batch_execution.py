"""Clustered compute nodes through the batch executable path.

The batched galMorph body must be *observationally identical* to the seed
per-member loop: same output files byte-for-byte, same GRAM accounting
(one submission per member — the paper's per-job bookkeeping), same
missing-output failures.  The per-member loop remains the fallback for
bundles without a registered batch body and for mixed-transformation
bundles.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.condor.gram import GramGateway, GridCredential
from repro.condor.local import ExecutableRegistry, LocalExecutor
from repro.fits.hdu import ImageHDU
from repro.fits.io import write_fits_bytes
from repro.portal.executables import register_demo_executables, text_to_result
from repro.rls.rls import ReplicaLocationService
from repro.rls.site import StorageSite
from repro.sky.cluster import GalaxyRecord, MorphType
from repro.sky.galaxy import render_galaxy_image
from repro.workflow.abstract import AbstractJob
from repro.workflow.concrete import ClusteredComputeNode, ComputeNode, ConcreteWorkflow

PARAMS = {"redshift": "0.05", "pixScale": str(0.4 / 3600.0)}


def _payloads(count: int) -> list[bytes]:
    types = [MorphType.ELLIPTICAL, MorphType.SPIRAL, MorphType.IRREGULAR]
    out = []
    for i in range(count):
        galaxy = GalaxyRecord(
            f"g{i}", 150.0, 2.0, 0.05, 17.0, types[i % 3], 2.5, 0.25, 30.0, 0.2, 0.1
        )
        image = render_galaxy_image(galaxy, rng=np.random.default_rng(10 + i))
        out.append(write_fits_bytes(ImageHDU(image)))
    return out


def _environment(count: int = 4):
    sites = {"B": StorageSite("B")}
    rls = ReplicaLocationService()
    rls.add_site("B")
    registry = ExecutableRegistry()
    register_demo_executables(registry)
    for i, payload in enumerate(_payloads(count)):
        sites["B"].put(sites["B"].pfn_for(f"img{i}"), payload)
    return sites, rls, registry


def _members(count: int) -> list[ComputeNode]:
    return [
        ComputeNode(
            f"m{i}",
            AbstractJob(f"d{i}", "galMorph", (f"img{i}",), (f"res{i}",), dict(PARAMS)),
            "B",
            "/bin/galMorph",
        )
        for i in range(count)
    ]


def _cluster_workflow(count: int) -> ConcreteWorkflow:
    cw = ConcreteWorkflow()
    cw.add(ClusteredComputeNode("cluster0", tuple(_members(count)), "B"))
    return cw


class TestBatchPath:
    def test_batch_outputs_match_per_member_loop(self):
        """Same bundle through the batch body and through per-member nodes:
        same records, every parameter within the 1e-9 stacked-kernel
        parity contract (the stacked batch kernels reorder floating-point
        summation, so values can differ from the scalar path at the
        ~1e-15 level; identity, validity and structure must still match
        exactly)."""
        count = 4
        sites_a, rls_a, registry_a = _environment(count)
        report = LocalExecutor(sites_a, registry_a, rls_a).execute(_cluster_workflow(count))
        assert report.succeeded

        sites_b, rls_b, registry_b = _environment(count)
        cw = ConcreteWorkflow()
        for member in _members(count):
            cw.add(member)
        assert LocalExecutor(sites_b, registry_b, rls_b).execute(cw).succeeded

        for i in range(count):
            lfn = f"res{i}"
            got = text_to_result(sites_a["B"].get(sites_a["B"].pfn_for(lfn)))
            want = text_to_result(sites_b["B"].get(sites_b["B"].pfn_for(lfn)))
            assert got.galaxy_id == want.galaxy_id
            assert got.valid == want.valid
            assert got.error == want.error
            for field in (
                "surface_brightness",
                "concentration",
                "asymmetry",
                "petrosian_radius_arcsec",
                "petrosian_radius_kpc",
            ):
                a, b = getattr(got, field), getattr(want, field)
                if np.isnan(a) and np.isnan(b):
                    continue
                assert abs(a - b) <= 1e-9, (lfn, field, a, b)

    def test_processes_env_knob_keeps_outputs_identical(self, monkeypatch):
        """REPRO_GALMORPH_PROCESSES steers the pool width without changing
        a byte of output (chunked stacked rows == sequential rows)."""
        count = 4
        sites_a, rls_a, registry_a = _environment(count)
        monkeypatch.setenv("REPRO_GALMORPH_PROCESSES", "2")
        assert LocalExecutor(sites_a, registry_a, rls_a).execute(_cluster_workflow(count)).succeeded

        sites_b, rls_b, registry_b = _environment(count)
        monkeypatch.setenv("REPRO_GALMORPH_PROCESSES", "0")
        assert LocalExecutor(sites_b, registry_b, rls_b).execute(_cluster_workflow(count)).succeeded

        for i in range(count):
            lfn = f"res{i}"
            assert sites_a["B"].get(sites_a["B"].pfn_for(lfn)) == sites_b["B"].get(
                sites_b["B"].pfn_for(lfn)
            )

    def test_gram_submissions_stay_per_member(self):
        """Batching is an executable-level optimisation; the paper's per-job
        GRAM accounting is preserved."""
        count = 3
        sites, rls, registry = _environment(count)
        gateway = GramGateway()
        cred = GridCredential("svc", issued_at=time.time() - 1)
        executor = LocalExecutor(sites, registry, rls, gram=gateway, credential=cred)
        assert executor.execute(_cluster_workflow(count)).succeeded
        assert gateway.submissions.get("B") == count

    def test_provenance_recorded_per_member(self):
        count = 3
        sites, rls, registry = _environment(count)
        executor = LocalExecutor(sites, registry, rls)
        assert executor.execute(_cluster_workflow(count)).succeeded
        for i in range(count):
            record = executor.provenance.producer(f"res{i}")
            assert record is not None and record.success
            assert record.transformation == "galMorph"

    def test_wrong_result_count_fails_node(self):
        sites, rls, _ = _environment(0)
        registry = ExecutableRegistry()
        registry.register("t", lambda job, inputs: {job.outputs[0]: b"x"})
        registry.register_batch("t", lambda jobs, inputs: [])  # drops results
        members = tuple(
            ComputeNode(f"m{i}", AbstractJob(f"d{i}", "t", (), (f"o{i}",)), "B", "/bin/t")
            for i in range(2)
        )
        cw = ConcreteWorkflow()
        cw.add(ClusteredComputeNode("c0", members, "B"))
        report = LocalExecutor(sites, registry, rls, max_retries=0).execute(cw)
        assert not report.succeeded

    def test_missing_declared_output_fails_node(self):
        sites, rls, _ = _environment(0)
        registry = ExecutableRegistry()
        registry.register("t", lambda job, inputs: {job.outputs[0]: b"x"})
        registry.register_batch("t", lambda jobs, inputs: [{} for _ in jobs])
        members = tuple(
            ComputeNode(f"m{i}", AbstractJob(f"d{i}", "t", (), (f"o{i}",)), "B", "/bin/t")
            for i in range(2)
        )
        cw = ConcreteWorkflow()
        cw.add(ClusteredComputeNode("c0", members, "B"))
        report = LocalExecutor(sites, registry, rls, max_retries=0).execute(cw)
        assert not report.succeeded


class TestFallbackPath:
    def test_no_batch_body_uses_per_member_loop(self):
        """A transformation without a batch body still executes clustered
        bundles through the seed per-member loop."""
        sites = {"B": StorageSite("B")}
        rls = ReplicaLocationService()
        rls.add_site("B")
        registry = ExecutableRegistry()
        calls: list[str] = []

        def body(job, inputs):
            calls.append(job.job_id)
            return {job.outputs[0]: job.job_id.encode()}

        registry.register("t", body)
        members = tuple(
            ComputeNode(f"m{i}", AbstractJob(f"d{i}", "t", (), (f"o{i}",)), "B", "/bin/t")
            for i in range(3)
        )
        cw = ConcreteWorkflow()
        cw.add(ClusteredComputeNode("c0", members, "B"))
        assert LocalExecutor(sites, registry, rls).execute(cw).succeeded
        assert calls == ["d0", "d1", "d2"]  # seqexec order preserved

    def test_mixed_transformation_bundle_falls_back(self):
        """A bundle mixing transformations never goes through a batch body,
        even if one member's transformation has one registered."""
        sites = {"B": StorageSite("B")}
        rls = ReplicaLocationService()
        rls.add_site("B")
        registry = ExecutableRegistry()
        registry.register("t1", lambda job, inputs: {job.outputs[0]: b"t1"})
        registry.register("t2", lambda job, inputs: {job.outputs[0]: b"t2"})

        def never(jobs, inputs):  # pragma: no cover - must not run
            raise AssertionError("batch body called for a mixed bundle")

        registry.register_batch("t1", never)
        members = (
            ComputeNode("m0", AbstractJob("d0", "t1", (), ("o0",)), "B", "/bin/t1"),
            ComputeNode("m1", AbstractJob("d1", "t2", (), ("o1",)), "B", "/bin/t2"),
        )
        cw = ConcreteWorkflow()
        cw.add(ClusteredComputeNode("c0", members, "B"))
        assert LocalExecutor(sites, registry, rls).execute(cw).succeeded
        assert sites["B"].get(sites["B"].pfn_for("o0")) == b"t1"
        assert sites["B"].get(sites["B"].pfn_for("o1")) == b"t2"


class TestRegistryContracts:
    def test_batch_requires_per_job_body_first(self):
        registry = ExecutableRegistry()
        with pytest.raises(ValueError):
            registry.register_batch("t", lambda jobs, inputs: [])

    def test_duplicate_batch_rejected(self):
        registry = ExecutableRegistry()
        registry.register("t", lambda j, i: {})
        registry.register_batch("t", lambda jobs, inputs: [])
        with pytest.raises(ValueError):
            registry.register_batch("t", lambda jobs, inputs: [])

    def test_get_batch_none_when_unregistered(self):
        registry = ExecutableRegistry()
        registry.register("t", lambda j, i: {})
        assert registry.get_batch("t") is None

    def test_unclustered_nodes_unaffected(self):
        """Plain compute nodes never touch the batch body."""
        sites, rls, registry = _environment(1)
        cw = ConcreteWorkflow()
        cw.add(_members(1)[0])
        report = LocalExecutor(sites, registry, rls).execute(cw)
        assert report.succeeded
        assert sites["B"].exists(sites["B"].pfn_for("res0"))
