"""Tests for the CLI, the batched-SIA portal path, and provenance export."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.provenance import InvocationRecord, ProvenanceStore
from repro.portal.demo import build_demo_environment
from repro.services.protocol import SIARequest


class TestCli:
    def test_clusters(self, capsys):
        assert main(["clusters"]) == 0
        out = capsys.readouterr().out
        assert "A1656" in out and "561" in out

    def test_registry(self, capsys):
        assert main(["registry"]) == 0
        out = capsys.readouterr().out
        assert "Chandra Data Archive" in out

    def test_analyze(self, capsys):
        assert main(["analyze", "A3526", "--table"]) == 0
        out = capsys.readouterr().out
        assert "37 galaxies" in out
        assert "A3526-0000" in out

    def test_explain(self, capsys):
        assert main(["explain", "A3526", "A3526-morphology.vot"]) == 0
        out = capsys.readouterr().out
        assert "concatVOTable" in out

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestBatchedCutouts:
    def test_batched_resolution_matches_per_galaxy(self, tiny_cluster):
        env_a = build_demo_environment(clusters=[tiny_cluster], seed_virtual_data_reuse=False)
        session_a = env_a.portal.select_cluster(tiny_cluster.name)
        env_a.portal.build_catalog(session_a)
        per_galaxy = env_a.portal.resolve_cutouts(session_a, batched=False)

        env_b = build_demo_environment(clusters=[tiny_cluster], seed_virtual_data_reuse=False)
        session_b = env_b.portal.select_cluster(tiny_cluster.name)
        env_b.portal.build_catalog(session_b)
        batched = env_b.portal.resolve_cutouts(session_b, batched=True)

        assert per_galaxy == batched
        # but the metered cost differs wildly
        assert env_a.meter.count("sia-query") >= tiny_cluster.n_galaxies
        assert env_b.meter.count("sia-batch-query") == 1
        assert env_b.meter.total("sia-batch-query") < env_a.meter.total("sia-query") / 3

    def test_query_batch_validates(self, tiny_cluster):
        env = build_demo_environment(clusters=[tiny_cluster])
        from repro.core.errors import ServiceError

        with pytest.raises(ServiceError):
            env.cutout_service.query_batch([])

    def test_fetch_batch_single_charge(self, tiny_cluster):
        env = build_demo_environment(clusters=[tiny_cluster], seed_virtual_data_reuse=False)
        service = env.cutout_service
        urls = [
            service.url_for(tiny_cluster.name, f"{tiny_cluster.name}-000{i}") for i in range(3)
        ]
        payloads = service.fetch_batch(urls)
        assert len(payloads) == 3
        assert env.meter.count("sia-batch-download") == 1
        assert env.meter.count("sia-download") == 0


class TestProvenanceExport:
    def make_store(self) -> ProvenanceStore:
        store = ProvenanceStore()
        store.record(
            InvocationRecord("j1", "galMorph", "isi", 0.0, 1.5, ("a.fit",), ("a.txt",), {"z": "0.05"})
        )
        store.record(
            InvocationRecord("j2", "concatVOTable", "store", 2.0, 2.5, ("a.txt",), ("out.vot",))
        )
        return store

    def test_lineage_text(self):
        text = self.make_store().lineage_text("out.vot")
        assert "out.vot was derived by:" in text
        assert "concatVOTable @ store" in text
        assert "galMorph @ isi" in text

    def test_lineage_text_raw(self):
        assert "raw data" in self.make_store().lineage_text("a.fit")

    def test_json_roundtrip(self):
        store = self.make_store()
        clone = ProvenanceStore.from_json(store.to_json())
        assert len(clone) == 2
        assert clone.producer("out.vot").transformation == "concatVOTable"
        assert clone.producer("a.txt").parameters == {"z": "0.05"}

    def test_json_is_valid(self):
        parsed = json.loads(self.make_store().to_json())
        assert isinstance(parsed, list) and len(parsed) == 2

    def test_vds_explain(self):
        from repro.core import VirtualDataSystem

        vds = VirtualDataSystem()
        assert "raw data" in vds.explain("nothing.fits")


class TestCliExtensions:
    def test_dynamics(self, capsys):
        assert main(["dynamics", "A3526", "--shuffles", "50"]) == 0
        out = capsys.readouterr().out
        assert "sigma_v" in out and "DS test" in out

    def test_overlay(self, capsys, tmp_path):
        assert main(["overlay", "A3526", "--outdir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "galaxies.reg" in out
        assert (tmp_path / "A3526-galaxies.reg").exists()
        assert (tmp_path / "A3526-optical.fits").exists()

    def test_bands(self, capsys):
        assert main(["bands", "A3526"]) == 0
        out = capsys.readouterr().out
        assert "A(late)" in out
