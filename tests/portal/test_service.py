"""Tests for the compute web service (Figure 6 semantics)."""

from __future__ import annotations

import pytest

from repro.core.errors import ServiceError
from repro.portal.demo import build_demo_environment
from repro.portal.service import votable_to_url_list, votable_to_vdl
from repro.vdl.parser import parse_vdl
from repro.votable.model import Field, VOTable
from repro.votable.parser import parse_votable


@pytest.fixture()
def env(tiny_cluster):
    return build_demo_environment(clusters=[tiny_cluster], seed_virtual_data_reuse=False)


def input_votable(env, cluster):
    session = env.portal.select_cluster(cluster.name)
    env.portal.build_catalog(session)
    return env.portal.resolve_cutouts(session)


class TestStylesheets:
    def test_url_list(self):
        vot = VOTable([Field("id", "char"), Field("cutout_url", "char")])
        vot.append(["g1", "http://c/1"])
        vot.append(["g2", "http://c/2"])
        assert votable_to_url_list(vot) == [("g1", "http://c/1"), ("g2", "http://c/2")]

    def test_url_list_missing_fields(self):
        with pytest.raises(ServiceError):
            votable_to_url_list(VOTable([Field("id", "char")]))

    def test_vdl_generation_parses_and_chains(self):
        vot = VOTable(
            [
                Field("id", "char"),
                Field("ra", "double"),
                Field("dec", "double"),
                Field("redshift", "double"),
                Field("cutout_url", "char"),
                Field("cutout_scale", "double"),
            ]
        )
        vot.append(["g1", 1.0, 2.0, 0.05, "http://c/1", 1e-4])
        vot.append(["g2", 1.1, 2.1, 0.05, "http://c/2", 1e-4])
        text = votable_to_vdl(vot, "out.vot", "TESTC")
        _, dvs = parse_vdl(text)
        assert len(dvs) == 3  # 2 galMorph + 1 concat
        concat = dvs[-1]
        assert concat.output_files() == ("out.vot",)
        assert set(concat.input_files()) == {"g1.txt", "g2.txt"}
        galmorph = dvs[0]
        assert galmorph.scalar_parameters()["redshift"] == "0.05"
        assert galmorph.input_files() == ("g1.fit",)


class TestService:
    def test_missing_fields_rejected(self, env):
        with pytest.raises(ServiceError):
            env.compute_service.gal_morph_compute(VOTable([Field("id", "char")]), "o.vot", "X")

    def test_full_request_completes(self, env, tiny_cluster):
        vot = input_votable(env, tiny_cluster)
        url = env.compute_service.gal_morph_compute(vot, "out.vot", tiny_cluster.name)
        message = env.compute_service.poll(url)
        assert message.state == "completed"
        payload = env.compute_service.fetch_result(message.result_url)
        table = parse_votable(payload.decode())
        assert len(table) == tiny_cluster.n_galaxies

    def test_images_cached_and_registered(self, env, tiny_cluster):
        vot = input_votable(env, tiny_cluster)
        env.compute_service.gal_morph_compute(vot, "out.vot", tiny_cluster.name)
        request = list(env.compute_service.requests.values())[-1]
        assert request.images_downloaded == tiny_cluster.n_galaxies
        assert request.images_cached == 0
        # every image registered in the RLS at the cache site
        lfn = f"{tiny_cluster.name}-0000.fit"
        assert any(r.site == "nvo-storage" for r in env.vds.rls.lookup(lfn))

    def test_second_request_short_circuits(self, env, tiny_cluster):
        vot = input_votable(env, tiny_cluster)
        env.compute_service.gal_morph_compute(vot, "out.vot", tiny_cluster.name)
        url2 = env.compute_service.gal_morph_compute(vot, "out.vot", tiny_cluster.name)
        message = env.compute_service.poll(url2)
        assert message.state == "completed"
        request = list(env.compute_service.requests.values())[-1]
        assert request.short_circuited
        assert request.images_downloaded == 0

    def test_new_output_name_reuses_cached_images(self, env, tiny_cluster):
        vot = input_votable(env, tiny_cluster)
        env.compute_service.gal_morph_compute(vot, "out.vot", tiny_cluster.name)
        env.compute_service.gal_morph_compute(vot, "out2.vot", tiny_cluster.name)
        request = list(env.compute_service.requests.values())[-1]
        assert not request.short_circuited
        assert request.images_downloaded == 0
        assert request.images_cached == tiny_cluster.n_galaxies
        # but the per-galaxy results were reused: only concat ran
        assert request.plan is not None
        assert len(request.plan.reduced) == 1

    def test_per_galaxy_results_registered(self, env, tiny_cluster):
        vot = input_votable(env, tiny_cluster)
        env.compute_service.gal_morph_compute(vot, "out.vot", tiny_cluster.name)
        assert env.vds.rls.exists(f"{tiny_cluster.name}-0000.txt")

    def test_simulate_mode_registers_virtually(self, tiny_cluster):
        env = build_demo_environment(
            clusters=[tiny_cluster], execution_mode="simulate", seed_virtual_data_reuse=False
        )
        vot = input_votable(env, tiny_cluster)
        url = env.compute_service.gal_morph_compute(vot, "out.vot", tiny_cluster.name)
        assert env.compute_service.poll(url).state == "completed"
        assert env.vds.rls.exists("out.vot")
        request = list(env.compute_service.requests.values())[-1]
        assert request.report is not None and request.report.makespan > 0

    def test_poll_charges_meter(self, env, tiny_cluster):
        vot = input_votable(env, tiny_cluster)
        url = env.compute_service.gal_morph_compute(vot, "out.vot", tiny_cluster.name)
        before = env.meter.count("status-poll")
        env.compute_service.poll(url)
        assert env.meter.count("status-poll") == before + 1


class TestServiceFailurePath:
    def test_portal_surfaces_workflow_failure(self, tiny_cluster):
        """An unrecoverable Grid failure reaches the portal as a failed
        status, not a hang or a crash."""
        from repro.core.errors import ServiceError

        env = build_demo_environment(
            clusters=[tiny_cluster], execution_mode="simulate", seed_virtual_data_reuse=False
        )
        out_name = f"{tiny_cluster.name}-morphology.vot"
        env.vds.simulation_options.forced_failures[f"job-dv-concat-{out_name}"] = 99
        with pytest.raises(ServiceError, match="failed"):
            env.portal.run_analysis(tiny_cluster.name)
        request = list(env.compute_service.requests.values())[-1]
        assert not request.report.succeeded
        page = env.compute_service.status.page(request.request_id)
        assert page.latest.state == "failed"
