"""Tests for graceful portal degradation: archive and cutout quorums.

The seed portal was all-or-nothing: one dead archive failed the whole
session.  With a quorum configured, dead archives become annotations and
unresolvable galaxies are dropped (and annotated) instead — but only down
to the quorum, below which the session still fails loudly.
"""

from __future__ import annotations

import pytest

from repro.catalog.coords import SkyPosition
from repro.core.errors import ServiceError
from repro.faults.plan import FaultPlan, ServiceFaultSpec
from repro.portal.demo import build_demo_environment
from repro.sky.cluster import ClusterModel


def tiny(name: str = "T01", n: int = 6) -> ClusterModel:
    return ClusterModel(
        name=name,
        center=SkyPosition(25.0, 3.0),
        redshift=0.04,
        n_galaxies=n,
        seed=13,
        context_image_count=5,
    )


XRAY_DOWN = FaultPlan(
    services={"xray-query": ServiceFaultSpec(error_rate=1.0, permanent=True)},
    recoverable=False,
)


class TestArchiveQuorum:
    def test_seed_behaviour_no_quorum_fails_fast(self):
        env = build_demo_environment(clusters=[tiny()], fault_plan=XRAY_DOWN)
        with pytest.raises(ServiceError):
            env.portal.select_cluster("T01")

    def test_quorum_annotates_dead_archives(self):
        env = build_demo_environment(
            clusters=[tiny()], fault_plan=XRAY_DOWN, archive_quorum=1
        )
        session = env.portal.select_cluster("T01")
        assert len(session.archive_errors) == 2  # both X-ray archives down
        assert session.degraded
        assert session.n_context_images > 0  # the optical survey answered

    def test_quorum_not_met_still_fails(self):
        all_down = FaultPlan(
            services={
                "xray-query": ServiceFaultSpec(error_rate=1.0, permanent=True),
                "sia-query": ServiceFaultSpec(error_rate=1.0, permanent=True),
            },
            recoverable=False,
        )
        env = build_demo_environment(
            clusters=[tiny()], fault_plan=all_down, archive_quorum=1
        )
        with pytest.raises(ServiceError, match="archive quorum not met"):
            env.portal.select_cluster("T01")


class ForgetfulCutouts:
    """Wraps the real cutout service but denies a set of galaxy ids —
    the 'archive lost these cutouts' failure the per-row quorum absorbs."""

    def __init__(self, inner, denied: set[str]) -> None:
        self._inner = inner
        self.denied = denied

    def query(self, request):
        table = self._inner.query(request)
        from repro.votable.model import VOTable

        out = VOTable(table.fields, name=table.name, params=dict(table.params))
        for row in table:
            if row["title"] not in self.denied:
                out.append(row)
        return out

    def __getattr__(self, name):  # fetch_image, url_for, query_batch, ...
        return getattr(self._inner, name)


class TestCutoutQuorum:
    def _env_session(self, cutout_quorum: float, deny: int):
        env = build_demo_environment(clusters=[tiny()], cutout_quorum=cutout_quorum)
        session = env.portal.select_cluster("T01")
        env.portal.build_catalog(session)
        denied = {row["id"] for row in list(session.catalog)[:deny]}
        env.portal.cutout_service = ForgetfulCutouts(
            env.portal.cutout_service, denied
        )
        return env, session, denied

    def test_full_quorum_fails_on_any_unresolved_galaxy(self):
        env, session, _ = self._env_session(cutout_quorum=1.0, deny=1)
        with pytest.raises(ServiceError, match="no image"):
            env.portal.resolve_cutouts(session)

    def test_partial_quorum_drops_and_annotates(self):
        env, session, denied = self._env_session(cutout_quorum=0.5, deny=1)
        table = env.portal.resolve_cutouts(session)
        assert set(session.dropped_galaxies) == denied
        assert len(table) == tiny().n_galaxies - 1
        assert session.degraded

    def test_quorum_floor_enforced(self):
        env, session, _ = self._env_session(cutout_quorum=0.5, deny=4)
        with pytest.raises(ServiceError, match="cutout quorum not met"):
            env.portal.resolve_cutouts(session)

    def test_fault_free_portal_drops_nothing(self):
        env = build_demo_environment(clusters=[tiny()], cutout_quorum=0.5)
        session = env.portal.select_cluster("T01")
        env.portal.build_catalog(session)
        table = env.portal.resolve_cutouts(session)
        assert session.dropped_galaxies == []
        assert len(table) == tiny().n_galaxies
        assert not session.degraded
