"""Tests for cone search, SIA archives, the cutout service and registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ServiceError
from repro.fits.io import read_fits_bytes
from repro.fits.wcs import TanWCS
from repro.services.conesearch import SyntheticPhotometryCatalog, SyntheticRedshiftCatalog
from repro.services.cutout import CutoutSIAService
from repro.services.protocol import ConeSearchRequest, SIARequest
from repro.services.registry import DataCenter, default_registry
from repro.services.sia import OpticalImageArchive, XrayImageArchive
from repro.services.transport import CostMeter


@pytest.fixture()
def cone_request(small_cluster):
    return ConeSearchRequest(
        ra=small_cluster.center.ra,
        dec=small_cluster.center.dec,
        sr=1.1 * small_cluster.tidal_radius_deg,
    )


@pytest.fixture()
def field_request(small_cluster):
    return SIARequest(
        ra=small_cluster.center.ra,
        dec=small_cluster.center.dec,
        size=2.2 * small_cluster.tidal_radius_deg,
    )


class TestConeSearchServices:
    def test_photometry_returns_all_members(self, small_cluster, cone_request):
        table = SyntheticPhotometryCatalog([small_cluster]).search(cone_request)
        assert len(table) == small_cluster.n_galaxies
        assert set(table.field_names()) >= {"id", "ra", "dec", "mag_r", "color_gr"}

    def test_redshift_schema_differs(self, small_cluster, cone_request):
        table = SyntheticRedshiftCatalog([small_cluster]).search(cone_request)
        assert "redshift" in table.field_names()
        assert "mag_r" not in table.field_names()

    def test_tiny_cone_selects_subset(self, small_cluster):
        service = SyntheticPhotometryCatalog([small_cluster])
        tiny = service.search(
            ConeSearchRequest(small_cluster.center.ra, small_cluster.center.dec, 0.02)
        )
        assert 0 < len(tiny) < small_cluster.n_galaxies

    def test_meter_charged(self, small_cluster, cone_request):
        meter = CostMeter()
        SyntheticPhotometryCatalog([small_cluster], meter=meter).search(cone_request)
        assert meter.count("cone-query") == 1
        assert meter.total("cone-query") > 0

    def test_red_sequence(self, small_cluster, cone_request):
        """Early types should be redder on average (the synthesis encodes it)."""
        table = SyntheticPhotometryCatalog([small_cluster]).search(cone_request)
        members = {m.galaxy_id: m for m in small_cluster.generate_members()}
        red = [r["color_gr"] for r in table if members[r["id"]].morph.value in ("E", "S0")]
        blue = [r["color_gr"] for r in table if members[r["id"]].morph.value not in ("E", "S0")]
        assert np.mean(red) > np.mean(blue)


class TestSIAArchives:
    def test_tile_count_matches_configuration(self, small_cluster, field_request):
        archive = OpticalImageArchive([small_cluster], tiles_per_cluster=9)
        table = archive.query(field_request)
        assert len(table) == 9

    def test_per_cluster_tile_counts(self, small_cluster, tiny_cluster):
        archive = OpticalImageArchive(
            [small_cluster, tiny_cluster],
            tiles_per_cluster={small_cluster.name: 5, tiny_cluster.name: 3},
        )
        req = SIARequest(
            ra=small_cluster.center.ra,
            dec=small_cluster.center.dec,
            size=2.2 * small_cluster.tidal_radius_deg,
        )
        assert len(archive.query(req)) == 5

    def test_fetch_returns_valid_fits_with_wcs(self, small_cluster, field_request):
        archive = XrayImageArchive([small_cluster], tiles_per_cluster=4)
        record = archive.query(field_request).row(0)
        hdu = read_fits_bytes(archive.fetch(record["url"]))
        assert hdu.data.shape == (64, 64)
        wcs = TanWCS.from_header(hdu.header)
        assert wcs.crval1 == pytest.approx(record["ra"], abs=1e-9)

    def test_metadata_size_matches_payload(self, small_cluster, field_request):
        archive = OpticalImageArchive([small_cluster], tiles_per_cluster=3)
        record = archive.query(field_request).row(0)
        assert len(archive.fetch(record["url"])) == record["size_bytes"]

    def test_fetch_bad_cluster(self, small_cluster):
        archive = OpticalImageArchive([small_cluster], tiles_per_cluster=3)
        with pytest.raises(ServiceError):
            archive.fetch("http://synth-dss.synth/sia/image?cluster=NOPE&tile=0")

    def test_fetch_bad_tile(self, small_cluster):
        archive = OpticalImageArchive([small_cluster], tiles_per_cluster=3)
        with pytest.raises(ServiceError):
            archive.fetch(
                f"http://synth-dss.synth/sia/image?cluster={small_cluster.name}&tile=99"
            )

    def test_xray_survey_name_configurable(self, small_cluster):
        archive = XrayImageArchive([small_cluster], survey="SYNTH-CHANDRA", tiles_per_cluster=2)
        assert archive.base_url.startswith("http://synth-chandra")

    def test_xray_tiles_brighter_near_center(self, small_cluster, field_request):
        archive = XrayImageArchive([small_cluster], tiles_per_cluster=9)
        table = archive.query(field_request)
        rows = sorted(
            (r for r in table),
            key=lambda r: (r["ra"] - small_cluster.center.ra) ** 2
            + (r["dec"] - small_cluster.center.dec) ** 2,
        )
        central = read_fits_bytes(archive.fetch(rows[0]["url"])).data.mean()
        outer = read_fits_bytes(archive.fetch(rows[-1]["url"])).data.mean()
        assert central > outer


class TestCutoutService:
    def test_query_returns_cutout_records(self, small_cluster):
        service = CutoutSIAService([small_cluster])
        member = small_cluster.generate_members()[0]
        table = service.query(SIARequest(ra=member.ra, dec=member.dec, size=0.005))
        ids = [r["title"] for r in table]
        assert member.galaxy_id in ids

    def test_fetch_renders_galaxy(self, small_cluster):
        service = CutoutSIAService([small_cluster])
        member = small_cluster.generate_members()[0]
        payload = service.fetch(service.url_for(small_cluster.name, member.galaxy_id))
        hdu = read_fits_bytes(payload)
        assert hdu.header["OBJECT"] == member.galaxy_id
        assert len(payload) == service.estimated_size()

    def test_fetch_cached_is_byte_identical(self, small_cluster):
        service = CutoutSIAService([small_cluster])
        url = service.url_for(small_cluster.name, f"{small_cluster.name}-0001")
        assert service.fetch(url) == service.fetch(url)

    def test_unknown_galaxy(self, small_cluster):
        service = CutoutSIAService([small_cluster])
        with pytest.raises(ServiceError):
            service.fetch(service.url_for(small_cluster.name, "nope"))

    def test_unknown_cluster(self, small_cluster):
        service = CutoutSIAService([small_cluster])
        with pytest.raises(ServiceError):
            service.fetch(service.url_for("NOPE", "x"))

    def test_meter_charges_per_download(self, small_cluster):
        meter = CostMeter()
        service = CutoutSIAService([small_cluster], meter=meter)
        for i in range(3):
            service.fetch(service.url_for(small_cluster.name, f"{small_cluster.name}-000{i}"))
        assert meter.count("sia-download") == 3


class TestRegistry:
    def test_table1_contents(self):
        registry = default_registry()
        assert len(registry) == 5
        rows = registry.table_rows()
        assert ("Chandra X-ray Center", "Chandra Data Archive", "SIA") in rows
        mast = registry.by_collection("Digitized Sky Survey (DSS)")
        assert set(mast.interfaces) == {"SIA", "Cone Search"}

    def test_capability_discovery(self):
        registry = default_registry()
        sia_centers = registry.with_interface("SIA")
        cone_centers = registry.with_interface("Cone Search")
        assert len(sia_centers) == 4
        assert len(cone_centers) == 3

    def test_unknown_collection(self):
        with pytest.raises(KeyError):
            default_registry().by_collection("nope")

    def test_invalid_interface_rejected(self):
        with pytest.raises(ValueError):
            DataCenter("X", "Y", ("FTP",))
