"""Tests for the NVO resource registry and service failover."""

from __future__ import annotations

import pytest

from repro.core.errors import ServiceError
from repro.services.conesearch import SyntheticPhotometryCatalog
from repro.services.nvoregistry import (
    FailoverConeSearch,
    FailoverSIA,
    ResourceRecord,
    ResourceRegistry,
    SkyCoverage,
)
from repro.services.protocol import ConeSearchRequest, SIARequest
from repro.services.sia import OpticalImageArchive


def rec(identifier, capability="cone-search", service=None, waveband="optical", coverage=None):
    return ResourceRecord(
        identifier=f"ivo://test/{identifier}",
        title=identifier,
        capability=capability,
        service=service,
        waveband=waveband,
        coverage=coverage or SkyCoverage(),
    )


class TestSkyCoverage:
    def test_all_sky(self):
        assert SkyCoverage().contains(123.0, -45.0)

    def test_cone(self):
        cov = SkyCoverage(ra=10.0, dec=0.0, radius_deg=5.0)
        assert cov.contains(12.0, 0.0)
        assert not cov.contains(20.0, 0.0)


class TestResourceRegistry:
    def test_register_discover(self):
        registry = ResourceRegistry()
        registry.register(rec("ned"))
        registry.register(rec("dss", capability="sia"))
        registry.register(rec("rosat", capability="sia", waveband="x-ray"))
        assert len(registry) == 3
        assert len(registry.discover(capability="sia")) == 2
        assert len(registry.discover(capability="sia", waveband="x-ray")) == 1
        assert registry.discover(capability="compute") == []

    def test_positional_discovery(self):
        registry = ResourceRegistry()
        registry.register(
            rec("north", coverage=SkyCoverage(ra=0.0, dec=60.0, radius_deg=30.0))
        )
        registry.register(rec("allsky"))
        found = registry.discover(capability="cone-search", ra=0.0, dec=-60.0)
        assert [r.title for r in found] == ["allsky"]

    def test_identifier_validation(self):
        with pytest.raises(ServiceError):
            ResourceRecord("http://x", "t", "sia", None)
        with pytest.raises(ServiceError):
            ResourceRecord("ivo://x", "t", "teleport", None)

    def test_duplicate_and_unregister(self):
        registry = ResourceRegistry()
        registry.register(rec("a"))
        with pytest.raises(ServiceError):
            registry.register(rec("a"))
        registry.unregister("ivo://test/a")
        with pytest.raises(ServiceError):
            registry.unregister("ivo://test/a")

    def test_lookup(self):
        registry = ResourceRegistry()
        registry.register(rec("a"))
        assert registry.resource("ivo://test/a").title == "a"
        with pytest.raises(ServiceError):
            registry.resource("ivo://test/none")


class _BrokenService:
    def __init__(self) -> None:
        self.calls = 0

    def search(self, request):
        self.calls += 1
        raise ServiceError("service down")

    def query(self, request):
        self.calls += 1
        raise ServiceError("service down")

    def fetch(self, url):
        self.calls += 1
        raise ServiceError("service down")


class TestFailover:
    def test_cone_failover(self, small_cluster):
        working = SyntheticPhotometryCatalog([small_cluster])
        broken = _BrokenService()
        facade = FailoverConeSearch(
            [rec("broken", service=broken), rec("working", service=working)]
        )
        request = ConeSearchRequest(
            small_cluster.center.ra, small_cluster.center.dec, small_cluster.tidal_radius_deg
        )
        table = facade.search(request)
        assert len(table) > 0
        assert facade.failures == {"ivo://test/broken": 1}
        # the working replica is promoted: the broken one is not retried
        facade.search(request)
        assert broken.calls == 1
        assert facade.active_identifier == "ivo://test/working"

    def test_sia_failover_query_and_fetch(self, small_cluster):
        working = OpticalImageArchive([small_cluster], tiles_per_cluster=3)
        facade = FailoverSIA(
            [rec("broken", capability="sia", service=_BrokenService()),
             rec("dss", capability="sia", service=working)]
        )
        request = SIARequest(
            small_cluster.center.ra, small_cluster.center.dec, 2.2 * small_cluster.tidal_radius_deg
        )
        table = facade.query(request)
        assert len(table) == 3
        payload = facade.fetch(table.row(0)["url"])
        assert payload.startswith(b"SIMPLE")

    def test_all_fail(self):
        facade = FailoverConeSearch([rec("a", service=_BrokenService())])
        with pytest.raises(ServiceError) as err:
            facade.search(ConeSearchRequest(0.0, 0.0, 1.0))
        assert "all 1 registered services failed" in str(err.value)

    def test_requires_resources(self):
        with pytest.raises(ServiceError):
            FailoverConeSearch([])
