"""Tests for the general-purpose VOTable operations service."""

from __future__ import annotations

import pytest

from repro.core.errors import ServiceError
from repro.services.tableops import TableOpRequest, VOTableOperationsService
from repro.services.transport import CostMeter
from repro.votable.model import Field, VOTable
from repro.votable.parser import parse_votable
from repro.votable.writer import write_votable


def catalog() -> VOTable:
    t = VOTable([Field("id", "char"), Field("mag", "double")])
    t.extend([["g1", 17.0], ["g2", 19.5], ["g3", 21.0]])
    return t


def results() -> VOTable:
    t = VOTable([Field("id", "char"), Field("asym", "double")])
    t.extend([["g1", 0.05], ["g3", 0.30]])
    return t


class TestWireApi:
    def test_join_over_xml(self):
        service = VOTableOperationsService()
        out = service.execute(
            TableOpRequest("join", {"on": "id"}),
            write_votable(catalog()),
            write_votable(results()),
        )
        joined = parse_votable(out)
        assert [r["id"] for r in joined] == ["g1", "g3"]
        assert joined.row(1)["asym"] == 0.30

    def test_meter_charged_by_payload(self):
        meter = CostMeter()
        service = VOTableOperationsService(meter=meter)
        service.execute(
            TableOpRequest("join", {"on": "id"}),
            write_votable(catalog()),
            write_votable(results()),
        )
        assert meter.count("table-ops") == 1
        assert meter.total("table-ops") > 0


class TestOperations:
    def setup_method(self):
        self.service = VOTableOperationsService()

    def test_left_join(self):
        out = self.service.apply(TableOpRequest("left-join", {"on": "id"}), catalog(), results())
        assert len(out) == 3
        assert out.row(1)["asym"] is None

    def test_select_range(self):
        out = self.service.apply(
            TableOpRequest("select", {"column": "mag", "minimum": 18.0, "maximum": 20.0}),
            catalog(),
        )
        assert [r["id"] for r in out] == ["g2"]

    def test_select_nulls_dropped(self):
        t = catalog()
        t.append({"id": "g4"})  # null mag
        out = self.service.apply(TableOpRequest("select", {"column": "mag"}), t)
        assert len(out) == 3

    def test_stack(self):
        out = self.service.apply(TableOpRequest("stack"), catalog(), catalog())
        assert len(out) == 6

    def test_add_column(self):
        out = self.service.apply(
            TableOpRequest(
                "add-column", {"name": "member", "datatype": "boolean", "values": [True, False, True]}
            ),
            catalog(),
        )
        assert out.row(0)["member"] is True

    def test_request_count(self):
        self.service.apply(TableOpRequest("stack"), catalog())
        self.service.apply(TableOpRequest("stack"), catalog())
        assert self.service.request_count == 2


class TestValidation:
    def setup_method(self):
        self.service = VOTableOperationsService()

    def test_unknown_operation(self):
        with pytest.raises(ServiceError):
            self.service.apply(TableOpRequest("pivot"), catalog())

    def test_join_arity(self):
        with pytest.raises(ServiceError):
            self.service.apply(TableOpRequest("join", {"on": "id"}), catalog())

    def test_join_requires_on(self):
        with pytest.raises(ServiceError):
            self.service.apply(TableOpRequest("join"), catalog(), results())

    def test_select_requires_column(self):
        with pytest.raises(ServiceError):
            self.service.apply(TableOpRequest("select"), catalog())

    def test_add_column_requires_values(self):
        with pytest.raises(ServiceError):
            self.service.apply(TableOpRequest("add-column", {"name": "x"}), catalog())

    def test_stack_requires_tables(self):
        with pytest.raises(ServiceError):
            self.service.apply(TableOpRequest("stack"))
