"""Tests for protocol requests and the transport cost model."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import ServiceError
from repro.services.protocol import ConeSearchRequest, SIARequest
from repro.services.transport import CostMeter, ProtocolCost, TransportModel


class TestConeSearchRequest:
    def test_validation(self):
        with pytest.raises(ServiceError):
            ConeSearchRequest(ra=400.0, dec=0.0, sr=1.0)
        with pytest.raises(ServiceError):
            ConeSearchRequest(ra=0.0, dec=-91.0, sr=1.0)
        with pytest.raises(ServiceError):
            ConeSearchRequest(ra=0.0, dec=0.0, sr=-1.0)

    def test_url_roundtrip(self):
        req = ConeSearchRequest(ra=194.95, dec=27.98, sr=0.5)
        url = req.to_url("http://ned.synth/cone")
        assert url.startswith("http://ned.synth/cone?")
        assert ConeSearchRequest.from_url(url) == req

    def test_missing_param(self):
        with pytest.raises(ServiceError):
            ConeSearchRequest.from_url("http://x/cone?RA=1&DEC=2")

    @given(st.floats(0, 359.9), st.floats(-89.9, 89.9), st.floats(0, 10))
    def test_url_roundtrip_property(self, ra, dec, sr):
        req = ConeSearchRequest(ra, dec, sr)
        assert ConeSearchRequest.from_url(req.to_url("http://svc/c")) == req


class TestSIARequest:
    def test_pos_format(self):
        req = SIARequest(ra=10.0, dec=-5.0, size=0.25)
        url = req.to_url("http://dss.synth/sia")
        assert "POS=10.0%2C-5.0" in url
        assert SIARequest.from_url(url) == req

    def test_size_positive(self):
        with pytest.raises(ServiceError):
            SIARequest(ra=0.0, dec=0.0, size=0.0)

    def test_malformed_pos(self):
        with pytest.raises(ServiceError):
            SIARequest.from_url("http://x/sia?POS=10&SIZE=1")

    def test_format_default(self):
        req = SIARequest.from_url("http://x/sia?POS=1,2&SIZE=0.5")
        assert req.fmt == "image/fits"


class TestProtocolCost:
    def test_latency_plus_bandwidth(self):
        cost = ProtocolCost(request_latency_s=0.5, bandwidth_bps=1000.0)
        assert cost.time(0) == pytest.approx(0.5)
        assert cost.time(2000) == pytest.approx(2.5)

    def test_negative_size(self):
        with pytest.raises(ValueError):
            ProtocolCost(0.1, 100.0).time(-1)


class TestTransportModel:
    def test_sia_overhead_dominated_for_cutouts(self):
        model = TransportModel()
        t = model.sia_download.time(20160)
        # >50% of the time is the fixed per-request latency
        assert model.sia_download.request_latency_s / t > 0.5

    def test_gridftp_much_faster(self):
        model = TransportModel()
        assert model.gridftp.time(20160) < model.sia_download.time(20160) / 5

    def test_batched_beats_per_item(self):
        model = TransportModel()
        n, size = 100, 20160
        per_item = n * model.sia_query.time(size)
        batched = model.batched_query_time(n, n * size)
        assert batched < per_item / 5

    def test_batch_needs_items(self):
        with pytest.raises(ValueError):
            TransportModel().batched_query_time(0, 0)


class TestCostMeter:
    def test_accumulates(self):
        meter = CostMeter()
        meter.charge("sia", 1.0)
        meter.charge("sia", 2.0)
        meter.charge("gridftp", 0.5)
        assert meter.total("sia") == pytest.approx(3.0)
        assert meter.total() == pytest.approx(3.5)
        assert meter.count("sia") == 2
        assert meter.breakdown() == {"sia": 3.0, "gridftp": 0.5}

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CostMeter().charge("x", -1.0)

    def test_reset(self):
        meter = CostMeter()
        meter.charge("x", 1.0)
        meter.reset()
        assert meter.total() == 0.0
