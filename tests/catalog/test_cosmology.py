"""Tests for the flat Lambda-CDM cosmology."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.catalog.cosmology import C_KM_S, FlatLambdaCDM


class TestConstruction:
    def test_bad_h0(self):
        with pytest.raises(ValueError):
            FlatLambdaCDM(h0=0.0)

    def test_bad_omega(self):
        with pytest.raises(ValueError):
            FlatLambdaCDM(omega_m=0.0)
        with pytest.raises(ValueError):
            FlatLambdaCDM(omega_m=1.5)

    def test_flatness(self):
        cosmo = FlatLambdaCDM(omega_m=0.3)
        assert cosmo.omega_lambda == pytest.approx(0.7)


class TestDistances:
    def test_zero_redshift(self):
        cosmo = FlatLambdaCDM()
        assert cosmo.comoving_distance_mpc(0.0) == 0.0

    def test_negative_redshift_rejected(self):
        with pytest.raises(ValueError):
            FlatLambdaCDM().comoving_distance_mpc(-0.1)

    def test_low_z_hubble_law(self):
        # D ~ cz/H0 for z << 1
        cosmo = FlatLambdaCDM(h0=100.0)
        z = 0.01
        expected = C_KM_S * z / 100.0
        assert cosmo.comoving_distance_mpc(z) == pytest.approx(expected, rel=0.02)

    def test_einstein_de_sitter_analytic(self):
        # Omega_m = 1: D_C = 2 (c/H0) (1 - 1/sqrt(1+z))
        cosmo = FlatLambdaCDM(h0=70.0, omega_m=1.0)
        z = 1.0
        analytic = 2.0 * cosmo.hubble_distance_mpc * (1.0 - 1.0 / (1.0 + z) ** 0.5)
        assert cosmo.comoving_distance_mpc(z) == pytest.approx(analytic, rel=1e-4)

    def test_distance_relations(self):
        cosmo = FlatLambdaCDM()
        z = 0.5
        d_c = cosmo.comoving_distance_mpc(z)
        assert cosmo.angular_diameter_distance_mpc(z) == pytest.approx(d_c / 1.5)
        assert cosmo.luminosity_distance_mpc(z) == pytest.approx(d_c * 1.5)

    @given(st.floats(0.001, 3.0))
    def test_monotonic_in_z(self, z):
        cosmo = FlatLambdaCDM()
        assert cosmo.comoving_distance_mpc(z + 0.1) > cosmo.comoving_distance_mpc(z)

    def test_known_concordance_value(self):
        # For H0=70, Om=0.3: D_C(z=1) ~ 3300 Mpc (standard reference value)
        cosmo = FlatLambdaCDM(h0=70.0, omega_m=0.3)
        assert cosmo.comoving_distance_mpc(1.0) == pytest.approx(3300, rel=0.02)


class TestScales:
    def test_kpc_per_arcsec_coma(self):
        # Coma (z=0.0231), H0=100: ~0.32 h^-1 kpc/arcsec
        cosmo = FlatLambdaCDM(h0=100.0)
        assert cosmo.kpc_per_arcsec(0.0231) == pytest.approx(0.327, rel=0.03)

    def test_pixel_scale_kpc(self):
        cosmo = FlatLambdaCDM()
        z, pix_deg = 0.05, 0.4 / 3600.0
        expected = cosmo.kpc_per_arcsec(z) * 0.4
        assert cosmo.pixel_scale_kpc(z, pix_deg) == pytest.approx(expected)

    def test_pixel_scale_sign_insensitive(self):
        cosmo = FlatLambdaCDM()
        assert cosmo.pixel_scale_kpc(0.1, -1e-4) == cosmo.pixel_scale_kpc(0.1, 1e-4)

    def test_distance_modulus(self):
        cosmo = FlatLambdaCDM(h0=70.0)
        # z=0.1: D_L ~ 460 Mpc -> mu ~ 38.3
        assert cosmo.distance_modulus(0.1) == pytest.approx(38.3, abs=0.2)

    def test_distance_modulus_z0(self):
        with pytest.raises(ValueError):
            FlatLambdaCDM().distance_modulus(0.0)
