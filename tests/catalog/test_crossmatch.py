"""Tests for cross-matching and local density estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.catalog.crossmatch import (
    crossmatch_positions,
    local_density,
    radial_separation_deg,
)


class TestCrossmatch:
    def test_exact_match(self):
        pairs = crossmatch_positions(
            np.array([10.0, 20.0]),
            np.array([0.0, 5.0]),
            np.array([20.0, 10.0]),
            np.array([5.0, 0.0]),
        )
        assert sorted(pairs) == [(0, 1), (1, 0)]

    def test_tolerance_respected(self):
        offset = 5.0 / 3600.0  # 5 arcsec
        pairs = crossmatch_positions(
            np.array([10.0]), np.array([0.0]),
            np.array([10.0 + offset]), np.array([0.0]),
            tolerance_arcsec=2.0,
        )
        assert pairs == []
        pairs = crossmatch_positions(
            np.array([10.0]), np.array([0.0]),
            np.array([10.0 + offset]), np.array([0.0]),
            tolerance_arcsec=6.0,
        )
        assert pairs == [(0, 0)]

    def test_nearest_neighbour_selected(self):
        pairs = crossmatch_positions(
            np.array([10.0]), np.array([0.0]),
            np.array([10.0003, 10.0001]), np.array([0.0, 0.0]),
            tolerance_arcsec=5.0,
        )
        assert pairs == [(0, 1)]

    def test_empty_catalogs(self):
        assert crossmatch_positions(np.array([]), np.array([]), np.array([1.0]), np.array([1.0])) == []
        assert crossmatch_positions(np.array([1.0]), np.array([1.0]), np.array([]), np.array([])) == []

    def test_ra_wrap_at_zero(self):
        # sources straddling RA=0 must still match
        pairs = crossmatch_positions(
            np.array([359.9999]), np.array([0.0]),
            np.array([0.0001]), np.array([0.0]),
            tolerance_arcsec=2.0,
        )
        assert pairs == [(0, 0)]


class TestLocalDensity:
    def test_dense_region_higher(self):
        rng = np.random.default_rng(1)
        # 40 points in a tight clump + 40 spread wide
        clump_ra = 10.0 + rng.normal(0, 0.01, 40)
        clump_dec = 0.0 + rng.normal(0, 0.01, 40)
        field_ra = 10.0 + rng.uniform(-2, 2, 40)
        field_dec = rng.uniform(-2, 2, 40)
        ra = np.concatenate([clump_ra, field_ra])
        dec = np.concatenate([clump_dec, field_dec])
        density = local_density(ra, dec, n_neighbors=5)
        assert density[:40].mean() > 10 * density[40:].mean()

    def test_small_samples(self):
        assert local_density(np.array([1.0]), np.array([1.0])).tolist() == [0.0]
        out = local_density(np.array([1.0, 1.001]), np.array([0.0, 0.0]), n_neighbors=10)
        assert (out > 0).all()

    def test_all_positive(self):
        rng = np.random.default_rng(2)
        density = local_density(rng.uniform(0, 10, 30), rng.uniform(-5, 5, 30))
        assert (density > 0).all()

    def test_coincident_points_finite(self):
        ra = np.array([5.0, 5.0, 5.0])
        dec = np.array([1.0, 1.0, 1.0])
        assert np.isfinite(local_density(ra, dec, n_neighbors=2)).all()


class TestRadialSeparation:
    def test_matches_scalar_separation(self):
        out = radial_separation_deg(10.0, 0.0, np.array([10.0, 11.0]), np.array([0.0, 0.0]))
        assert out[0] == pytest.approx(0.0)
        assert out[1] == pytest.approx(1.0, rel=1e-6)
