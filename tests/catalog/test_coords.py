"""Tests for spherical geometry."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.catalog.coords import (
    SkyPosition,
    angular_separation_deg,
    cone_contains,
    position_angle_deg,
)

ras = st.floats(0.0, 359.999)
decs = st.floats(-89.0, 89.0)


class TestSkyPosition:
    def test_ra_wraps(self):
        assert SkyPosition(370.0, 0.0).ra == pytest.approx(10.0)

    def test_dec_bounds(self):
        with pytest.raises(ValueError):
            SkyPosition(0.0, 91.0)

    def test_separation_symmetric(self):
        a, b = SkyPosition(10, 10), SkyPosition(20, -5)
        assert a.separation_deg(b) == pytest.approx(b.separation_deg(a))

    def test_offset_small_angle(self):
        p = SkyPosition(100.0, 60.0)
        q = p.offset(0.1, 0.0)
        # true-angle offset: separation ~0.1 deg despite high declination
        assert p.separation_deg(q) == pytest.approx(0.1, rel=1e-3)


class TestSeparation:
    def test_known_values(self):
        assert float(angular_separation_deg(0, 0, 90, 0)) == pytest.approx(90.0)
        assert float(angular_separation_deg(0, -90, 0, 90)) == pytest.approx(180.0)
        assert float(angular_separation_deg(10, 20, 10, 20)) == pytest.approx(0.0)

    def test_small_separation_precision(self):
        # Vincenty must resolve milliarcsecond scales
        sep = float(angular_separation_deg(150.0, 2.0, 150.0, 2.0 + 1e-7))
        assert sep == pytest.approx(1e-7, rel=1e-6)

    @given(ras, decs, ras, decs)
    def test_bounds_and_symmetry(self, ra1, dec1, ra2, dec2):
        s12 = float(angular_separation_deg(ra1, dec1, ra2, dec2))
        s21 = float(angular_separation_deg(ra2, dec2, ra1, dec1))
        assert 0.0 <= s12 <= 180.0 + 1e-9
        assert s12 == pytest.approx(s21, abs=1e-9)

    @given(ras, decs)
    def test_identity(self, ra, dec):
        assert float(angular_separation_deg(ra, dec, ra, dec)) == pytest.approx(0.0, abs=1e-9)

    @given(ras, decs, ras, decs, ras, decs)
    def test_triangle_inequality(self, ra1, dec1, ra2, dec2, ra3, dec3):
        s12 = float(angular_separation_deg(ra1, dec1, ra2, dec2))
        s23 = float(angular_separation_deg(ra2, dec2, ra3, dec3))
        s13 = float(angular_separation_deg(ra1, dec1, ra3, dec3))
        assert s13 <= s12 + s23 + 1e-7


class TestPositionAngle:
    def test_north(self):
        assert float(position_angle_deg(0, 0, 0, 10)) == pytest.approx(0.0)

    def test_east(self):
        assert float(position_angle_deg(0, 0, 10, 0)) == pytest.approx(90.0)

    @given(ras, decs, ras, decs)
    def test_range(self, ra1, dec1, ra2, dec2):
        pa = float(position_angle_deg(ra1, dec1, ra2, dec2))
        assert 0.0 <= pa < 360.0


class TestCone:
    def test_membership(self):
        ra = np.array([10.0, 10.5, 12.0])
        dec = np.array([0.0, 0.0, 0.0])
        mask = cone_contains(10.0, 0.0, 1.0, ra, dec)
        assert mask.tolist() == [True, True, False]

    def test_negative_radius(self):
        with pytest.raises(ValueError):
            cone_contains(0, 0, -1.0, 0.0, 0.0)

    def test_zero_radius_contains_center(self):
        assert bool(cone_contains(5.0, 5.0, 0.0, 5.0, 5.0))
