"""Tests for FITS card formatting/parsing, including property round-trips."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fits.cards import CARD_LENGTH, Card, format_card, parse_card

keywords = st.from_regex(r"[A-Z][A-Z0-9_-]{0,7}", fullmatch=True)
# printable ASCII without quotes-edge-cases handled separately
string_values = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    max_size=40,
)


class TestFormatCard:
    def test_fixed_length(self):
        assert len(format_card(Card("NAXIS", 2))) == CARD_LENGTH

    def test_integer_alignment(self):
        record = format_card(Card("BITPIX", -32))
        assert record[8:10] == "= "
        assert record[:30].endswith("-32")

    def test_logical(self):
        assert format_card(Card("SIMPLE", True, "ok"))[29] == "T"
        assert format_card(Card("EXTEND", False))[29] == "F"

    def test_string_quoting(self):
        record = format_card(Card("OBJECT", "M31"))
        assert record[10] == "'"

    def test_comment_included(self):
        assert "/ a comment" in format_card(Card("NAXIS", 2, "a comment"))

    def test_commentary_card(self):
        record = format_card(Card("HISTORY", None, "made by tests"))
        assert record.startswith("HISTORY made by tests")

    def test_too_long_rejected(self):
        with pytest.raises(ValueError):
            format_card(Card("OBJECT", "x" * 75))

    def test_keyword_validation(self):
        with pytest.raises(ValueError):
            Card("TOOLONGKEY", 1)
        with pytest.raises(ValueError):
            Card("lower", 1)
        with pytest.raises(ValueError):
            Card("BAD KEY", 1)


class TestParseCard:
    def test_undefined_value(self):
        card = parse_card("UNDEF   =")
        assert card.value is None

    def test_string_with_doubled_quote(self):
        card = parse_card(format_card(Card("NAME", "O'Neil")))
        assert card.value == "O'Neil"

    def test_rejects_overlong_record(self):
        with pytest.raises(ValueError):
            parse_card("X" * 81)

    def test_float_with_comment(self):
        card = parse_card("CRVAL1  =     150.00000000 / [deg] RA")
        assert card.value == pytest.approx(150.0)
        assert card.comment == "[deg] RA"


class TestRoundTrip:
    @given(keywords, st.integers(-(10**15), 10**15))
    def test_int_roundtrip(self, keyword, value):
        card = Card(keyword, value)
        assert parse_card(format_card(card)).value == value

    @given(keywords, st.floats(allow_nan=False, allow_infinity=False, width=64))
    def test_float_roundtrip(self, keyword, value):
        parsed = parse_card(format_card(Card(keyword, value)))
        assert parsed.value == pytest.approx(value, rel=1e-13, abs=1e-300)

    @given(keywords, st.booleans())
    def test_bool_roundtrip(self, keyword, value):
        assert parse_card(format_card(Card(keyword, value))).value is value

    @given(keywords, string_values)
    def test_string_roundtrip(self, keyword, value):
        card = Card(keyword, value)
        try:
            record = format_card(card)
        except ValueError:
            return  # value legitimately too long for one card
        parsed = parse_card(record)
        # FITS cannot represent trailing blanks in strings
        assert parsed.value == value.rstrip()
