"""Tests for the TAN WCS: projection correctness and round-trips."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fits.header import Header
from repro.fits.wcs import TanWCS


def make_wcs(ra=150.0, dec=2.2, scale=1e-4) -> TanWCS:
    return TanWCS(crval1=ra, crval2=dec, crpix1=32.5, crpix2=32.5, cdelt1=-scale, cdelt2=scale)


class TestConstruction:
    def test_zero_scale_rejected(self):
        with pytest.raises(ValueError):
            TanWCS(0, 0, 1, 1, 0.0, 1e-4)

    def test_bad_dec_rejected(self):
        with pytest.raises(ValueError):
            TanWCS(0, 95.0, 1, 1, -1e-4, 1e-4)


class TestProjection:
    def test_reference_pixel_maps_to_crval(self):
        wcs = make_wcs()
        ra, dec = wcs.pixel_to_sky(32.5, 32.5)
        assert float(ra) == pytest.approx(150.0, abs=1e-10)
        assert float(dec) == pytest.approx(2.2, abs=1e-10)

    def test_scale_near_reference(self):
        wcs = make_wcs()
        # one pixel along +y is cdelt2 degrees of Dec
        _, dec = wcs.pixel_to_sky(32.5, 33.5)
        assert float(dec) - 2.2 == pytest.approx(1e-4, rel=1e-6)

    def test_ra_axis_flipped(self):
        wcs = make_wcs()
        ra, _ = wcs.pixel_to_sky(33.5, 32.5)  # +x
        # cdelt1 < 0: RA decreases with x (per-cos-dec correction tiny here)
        assert float(ra) < 150.0

    def test_vectorised(self):
        wcs = make_wcs()
        x = np.array([1.0, 10.0, 30.0])
        y = np.array([1.0, 20.0, 60.0])
        ra, dec = wcs.pixel_to_sky(x, y)
        assert ra.shape == (3,)
        x2, y2 = wcs.sky_to_pixel(ra, dec)
        np.testing.assert_allclose(x2, x, atol=1e-8)
        np.testing.assert_allclose(y2, y, atol=1e-8)

    def test_horizon_rejected(self):
        wcs = make_wcs(ra=0.0, dec=0.0)
        with pytest.raises(ValueError):
            wcs.sky_to_pixel(180.0, 0.0)  # antipode

    def test_pixel_scale_deg(self):
        assert make_wcs(scale=2e-4).pixel_scale_deg == pytest.approx(2e-4)

    @given(
        st.floats(0.0, 359.99),
        st.floats(-80.0, 80.0),
        st.floats(-100.0, 100.0),
        st.floats(-100.0, 100.0),
    )
    def test_roundtrip_property(self, ra0, dec0, dx, dy):
        wcs = TanWCS(crval1=ra0, crval2=dec0, crpix1=0.0, crpix2=0.0, cdelt1=-2e-4, cdelt2=2e-4)
        ra, dec = wcs.pixel_to_sky(dx, dy)
        x, y = wcs.sky_to_pixel(ra, dec)
        assert float(x) == pytest.approx(dx, abs=1e-6)
        assert float(y) == pytest.approx(dy, abs=1e-6)


class TestHeaderRoundTrip:
    def test_to_from_header(self):
        wcs = make_wcs()
        hdr = wcs.to_header()
        assert TanWCS.from_header(hdr) == wcs

    def test_wrong_ctype_rejected(self):
        hdr = make_wcs().to_header()
        hdr.set("CTYPE1", "RA---SIN")
        with pytest.raises(ValueError):
            TanWCS.from_header(hdr)

    def test_merges_into_existing_header(self):
        hdr = Header()
        hdr.set("OBJECT", "X")
        make_wcs().to_header(hdr)
        assert hdr["OBJECT"] == "X"
        assert hdr["CTYPE1"] == "RA---TAN"
