"""Tests for FITS headers, HDUs and file I/O."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.fits.hdu import ImageHDU, bitpix_for
from repro.fits.header import BLOCK_SIZE, Header
from repro.fits.io import read_fits, read_fits_bytes, write_fits, write_fits_bytes


class TestHeader:
    def test_set_get_contains(self):
        hdr = Header()
        hdr.set("OBJECT", "M87", "target")
        assert hdr["OBJECT"] == "M87"
        assert "OBJECT" in hdr
        assert "MISSING" not in hdr

    def test_get_default(self):
        assert Header().get("NOPE", 42) == 42

    def test_replace_preserves_position(self):
        hdr = Header()
        hdr.set("A", 1)
        hdr.set("B", 2)
        hdr.set("A", 9)
        assert [c.keyword for c in hdr] == ["A", "B"]
        assert hdr["A"] == 9

    def test_delete(self):
        hdr = Header()
        hdr.set("A", 1)
        del hdr["A"]
        assert "A" not in hdr
        with pytest.raises(KeyError):
            del hdr["A"]

    def test_commentary(self):
        hdr = Header()
        hdr.add_comment("first")
        hdr.add_history("second")
        assert hdr.comments() == ["first"]
        assert hdr.history() == ["second"]

    def test_to_bytes_block_aligned(self):
        hdr = Header()
        hdr.set("NAXIS", 0)
        payload = hdr.to_bytes()
        assert len(payload) % BLOCK_SIZE == 0

    def test_roundtrip(self):
        hdr = Header()
        hdr.set("OBJECT", "NGC 1275", "target name")
        hdr.set("EXPTIME", 300.5)
        hdr.add_history("processed")
        back, consumed = Header.from_bytes(hdr.to_bytes())
        assert back == hdr
        assert consumed == len(hdr.to_bytes())

    def test_missing_end_raises(self):
        with pytest.raises(ValueError):
            Header.from_bytes(b" " * BLOCK_SIZE)


class TestBitpix:
    @pytest.mark.parametrize(
        "dtype,code",
        [("uint8", 8), ("int16", 16), ("int32", 32), ("int64", 64), ("float32", -32), ("float64", -64)],
    )
    def test_supported(self, dtype, code):
        assert bitpix_for(np.dtype(dtype)) == code

    def test_unsupported(self):
        with pytest.raises(TypeError):
            bitpix_for(np.dtype("complex64"))


class TestImageHDU:
    def test_header_only(self):
        hdu, consumed = ImageHDU.from_bytes(ImageHDU(None).to_bytes())
        assert hdu.data is None
        assert consumed == BLOCK_SIZE

    def test_axis_order_fits_convention(self):
        data = np.zeros((3, 5), dtype=np.float32)  # NAXIS1=5 (fast), NAXIS2=3
        hdu = ImageHDU(data)
        raw = hdu.to_bytes().decode("ascii", errors="replace")
        assert "NAXIS1  =                    5" in raw
        assert "NAXIS2  =                    3" in raw

    def test_data_padded_to_block(self):
        data = np.ones((10, 10), dtype=np.float64)
        assert len(ImageHDU(data).to_bytes()) % BLOCK_SIZE == 0

    def test_nbytes(self):
        assert ImageHDU(np.zeros((4, 4), dtype=np.float32)).nbytes == 64

    def test_truncated_data_raises(self):
        payload = ImageHDU(np.ones((8, 8), dtype=np.float64)).to_bytes()
        with pytest.raises(ValueError):
            ImageHDU.from_bytes(payload[: BLOCK_SIZE + 10])

    def test_non_fits_rejected(self):
        hdr = Header()
        hdr.set("SIMPLE", False)
        hdr.set("BITPIX", 8)
        hdr.set("NAXIS", 0)
        with pytest.raises(ValueError):
            ImageHDU.from_bytes(hdr.to_bytes())

    @given(
        npst.arrays(
            dtype=st.sampled_from([np.float32, np.float64]),
            shape=npst.array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=16),
            elements=st.floats(-1e6, 1e6, width=32),
        )
    )
    def test_float_data_roundtrip(self, data):
        back, _ = ImageHDU.from_bytes(ImageHDU(data).to_bytes())
        assert back.data is not None
        assert back.data.shape == data.shape
        np.testing.assert_array_equal(back.data, data)

    @given(
        npst.arrays(
            dtype=st.sampled_from([np.int16, np.int32, np.int64]),
            shape=npst.array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=16),
            elements=st.integers(-30000, 30000),
        )
    )
    def test_int_data_roundtrip(self, data):
        back, _ = ImageHDU.from_bytes(ImageHDU(data).to_bytes())
        assert back.data is not None
        np.testing.assert_array_equal(back.data, data)

    def test_user_keywords_survive(self):
        hdr = Header()
        hdr.set("REDSHIFT", 0.0279)
        hdu = ImageHDU(np.zeros((2, 2), dtype=np.float32), hdr)
        back, _ = ImageHDU.from_bytes(hdu.to_bytes())
        assert back.header["REDSHIFT"] == pytest.approx(0.0279)


class TestFileIO:
    def test_write_read_path(self, tmp_path):
        data = np.arange(36, dtype=np.float32).reshape(6, 6)
        path = tmp_path / "image.fits"
        n = write_fits(path, ImageHDU(data))
        assert path.stat().st_size == n
        back = read_fits(path)
        np.testing.assert_array_equal(back.data, data)

    def test_bytes_api_matches_file_api(self, tmp_path):
        hdu = ImageHDU(np.ones((3, 3), dtype=np.int32))
        payload = write_fits_bytes(hdu)
        path = tmp_path / "x.fits"
        write_fits(path, hdu)
        assert path.read_bytes() == payload
        np.testing.assert_array_equal(read_fits_bytes(payload).data, hdu.data)
