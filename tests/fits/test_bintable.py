"""Tests for FITS binary tables and VOTable interchange."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fits.bintable import (
    BinTableColumn,
    BinTableHDU,
    bintable_to_votable,
    votable_to_bintable,
)
from repro.fits.header import BLOCK_SIZE
from repro.votable.model import Field, VOTable


def sample_table() -> BinTableHDU:
    table = BinTableHDU(
        [
            BinTableColumn("id", "16A"),
            BinTableColumn("ra", "D"),
            BinTableColumn("flux", "E"),
            BinTableColumn("count", "J"),
            BinTableColumn("big", "K"),
            BinTableColumn("ok", "L"),
        ]
    )
    table.append(["g1", 150.123456, 3.5, 42, 2**40, True])
    table.append(["g2", 151.0, None, -7, -(2**40), False])
    return table


class TestColumns:
    def test_tform_validation(self):
        with pytest.raises(ValueError):
            BinTableColumn("x", "Z")
        with pytest.raises(ValueError):
            BinTableColumn("x", "A")  # string without width
        with pytest.raises(ValueError):
            BinTableColumn("x", "3J")  # arrays unsupported
        with pytest.raises(ValueError):
            BinTableColumn("", "D")

    def test_width(self):
        assert BinTableColumn("s", "16A").width_bytes == 16
        assert BinTableColumn("d", "D").width_bytes == 8
        assert BinTableColumn("l", "L").width_bytes == 1


class TestBinTableHDU:
    def test_structure(self):
        table = sample_table()
        assert table.row_bytes == 16 + 8 + 4 + 4 + 8 + 1
        assert len(table) == 2

    def test_duplicate_columns(self):
        with pytest.raises(ValueError):
            BinTableHDU([BinTableColumn("a", "D"), BinTableColumn("a", "E")])

    def test_needs_columns(self):
        with pytest.raises(ValueError):
            BinTableHDU([])

    def test_row_arity(self):
        with pytest.raises(ValueError):
            sample_table().append(["just-one"])

    def test_block_aligned(self):
        assert len(sample_table().to_bytes()) % BLOCK_SIZE == 0

    def test_roundtrip(self):
        table = sample_table()
        back, consumed = BinTableHDU.from_bytes(table.to_bytes())
        assert consumed == len(table.to_bytes())
        assert [c.name for c in back.columns] == [c.name for c in table.columns]
        rows = back.rows()
        assert rows[0][0] == "g1"
        assert rows[0][1] == pytest.approx(150.123456)
        assert rows[0][3] == 42 and rows[0][4] == 2**40 and rows[0][5] is True
        assert rows[1][2] is None  # NaN -> null
        assert rows[1][5] is False

    def test_integer_nulls_rejected(self):
        table = BinTableHDU([BinTableColumn("n", "J")])
        table.append([None])
        with pytest.raises(ValueError):
            table.to_bytes()

    def test_user_header_kept(self):
        table = sample_table()
        table.header.set("EXTNAME", "CATALOG")
        back, _ = BinTableHDU.from_bytes(table.to_bytes())
        assert back.header["EXTNAME"] == "CATALOG"

    def test_rejects_non_bintable(self):
        from repro.fits.hdu import ImageHDU

        with pytest.raises(ValueError):
            BinTableHDU.from_bytes(ImageHDU(None).to_bytes())

    def test_truncated_data(self):
        payload = sample_table().to_bytes()
        with pytest.raises(ValueError):
            BinTableHDU.from_bytes(payload[: BLOCK_SIZE + 4])


names = st.from_regex(r"[a-z][a-z0-9_]{0,7}", fullmatch=True)


@st.composite
def votables(draw):
    n = draw(st.integers(1, 4))
    field_names = draw(st.lists(names, min_size=n, max_size=n, unique=True))
    datatypes = draw(
        st.lists(st.sampled_from(["char", "int", "long", "float", "double", "boolean"]),
                 min_size=n, max_size=n)
    )
    fields = [Field(fn, dt) for fn, dt in zip(field_names, datatypes)]
    table = VOTable(fields, name="cat")
    for _ in range(draw(st.integers(0, 6))):
        row = []
        for f in fields:
            if f.datatype == "char":
                row.append(draw(st.from_regex(r"[A-Za-z0-9_-]{1,12}", fullmatch=True)))
            elif f.datatype == "boolean":
                row.append(draw(st.booleans()))
            elif f.datatype == "int":
                row.append(draw(st.integers(-(2**31) + 1, 2**31 - 1)))
            elif f.datatype == "long":
                row.append(draw(st.integers(-(2**62), 2**62)))
            elif f.datatype == "float":
                row.append(draw(st.floats(-1e6, 1e6, width=32)))
            else:
                row.append(draw(st.floats(-1e9, 1e9, allow_nan=False)))
        table.append(row)
    return table


class TestVOTableInterchange:
    @given(votables())
    def test_roundtrip_through_bintable_bytes(self, votable):
        hdu = votable_to_bintable(votable)
        back_hdu, _ = BinTableHDU.from_bytes(hdu.to_bytes())
        back = bintable_to_votable(back_hdu)
        assert back.name == votable.name
        assert len(back) == len(votable)
        for original, restored in zip(votable, back):
            for field in votable.fields:
                a, b = original[field.name], restored[field.name]
                if field.datatype == "short":
                    continue  # widened to int
                if isinstance(a, float):
                    assert b == pytest.approx(a, rel=1e-6)
                else:
                    assert a == b

    def test_short_widened_to_int(self):
        t = VOTable([Field("x", "short")])
        t.append([123])
        back = bintable_to_votable(votable_to_bintable(t))
        assert back.field("x").datatype == "int"
        assert back.row(0)["x"] == 123

    def test_long_strings_widen_column(self):
        t = VOTable([Field("s", "char")])
        t.append(["x" * 50])
        hdu = votable_to_bintable(t, string_width=8)
        assert hdu.columns[0].width_bytes == 50
        assert bintable_to_votable(hdu).row(0)["s"] == "x" * 50
