"""Every shipped example must run green — they are part of the API surface."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args: str, timeout: int = 240) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "CATALOG OF PIXELS OF THE NIGHT SKY" in result.stdout
        assert "second request: 0 jobs" in result.stdout

    def test_portal_session(self):
        result = run_example("portal_session.py", "A3526")
        assert result.returncode == 0, result.stderr
        assert "matched galaxies: 37" in result.stdout
        assert "merged rows: 37" in result.stdout

    def test_campaign_single_cluster(self):
        result = run_example("galaxy_morphology_campaign.py", "A3526")
        assert result.returncode == 0, result.stderr
        assert "clusters analyzed" in result.stdout

    def test_dressler(self):
        result = run_example("dressler_relation.py", "A3526")
        assert result.returncode == 0, result.stderr
        assert "density-morphology relation rediscovered" in result.stdout
        assert "DS test" in result.stdout

    def test_virtual_data_reuse(self):
        result = run_example("virtual_data_reuse.py")
        assert result.returncode == 0, result.stderr
        assert "pruned jobs: ['d1']" in result.stdout
        assert "short-circuited=True" in result.stdout

    def test_service_discovery(self):
        result = run_example("service_discovery.py")
        assert result.returncode == 0, result.stderr
        assert "answered by ivo://mirror/dss" in result.stdout

    def test_grid_tuning(self):
        result = run_example("grid_tuning.py")
        assert result.returncode == 0, result.stderr
        assert "MDS-aware placement" in result.stdout
        assert "clustering sweep" in result.stdout
