"""Integration tests: the full system across module boundaries."""

from __future__ import annotations

import zlib

import pytest

from repro.portal.campaign import run_campaign
from repro.portal.demo import build_demo_environment
from repro.portal.analysis import analyze_morphology_catalog
from repro.catalog.coords import SkyPosition
from repro.sky.cluster import ClusterModel


def cluster(name, n, seed=2003, **kwargs):
    defaults = dict(
        name=name,
        # crc32, not hash(): the builtin string hash is salted per process
        # (PYTHONHASHSEED), and a shifted RA can overlap one extra context
        # tile — the image accounting below must be run-to-run stable.
        center=SkyPosition(150.0 + zlib.crc32(name.encode()) % 40, 2.2),
        redshift=0.05,
        n_galaxies=n,
        core_radius_deg=0.04,
        tidal_radius_deg=0.4,
        seed=seed,
        context_image_count=9,
    )
    defaults.update(kwargs)
    return ClusterModel(**defaults)


class TestFullPipeline:
    def test_two_cluster_campaign_accounting(self):
        clusters = [cluster("INT-A", 10), cluster("INT-B", 14)]
        env = build_demo_environment(clusters=clusters, seed_virtual_data_reuse=False)
        report = run_campaign(env, analyze=False)
        assert report.clusters == 2
        assert report.galaxies == 24
        # one galMorph per galaxy + one concat per cluster
        assert report.compute_jobs == 24 + 2
        # stage-in per galaxy + inter-site result moves + one final per cluster
        assert report.transfers == 2 * 24 + 2
        assert report.images == 24 + 18
        assert report.image_bytes > 0

    def test_virtual_data_reuse_seed_skips_one_stage_in(self):
        clusters = [cluster("INT-C", 12)]
        env = build_demo_environment(clusters=clusters, seed_virtual_data_reuse=True)
        report = run_campaign(env, analyze=False)
        record = report.records[0]
        assert record.stage_in == 11  # one input already at its exec pool
        assert record.inter_site == 12
        assert record.stage_out == 1

    def test_jobs_spread_over_three_pools(self):
        env = build_demo_environment(clusters=[cluster("INT-D", 12)], seed_virtual_data_reuse=False)
        report = run_campaign(env, analyze=False)
        per_site = report.records[0].jobs_per_site
        assert set(per_site) == {"isi", "uwisc", "fnal", "nvo-storage"}
        # round-robin: the 12 galMorph jobs split 4/4/4
        assert per_site["isi"] == per_site["uwisc"] == per_site["fnal"] == 4

    def test_random_site_selection_also_completes(self):
        env = build_demo_environment(
            clusters=[cluster("INT-E", 10)],
            site_selection="random",
            seed_virtual_data_reuse=False,
        )
        report = run_campaign(env, analyze=False)
        assert report.records[0].compute_jobs == 11

    def test_dressler_rediscovered_end_to_end(self):
        env = build_demo_environment(clusters=[cluster("INT-F", 80)], seed_virtual_data_reuse=False)
        session = env.portal.run_analysis("INT-F")
        analysis = analyze_morphology_catalog(session.merged, session.cluster)
        assert analysis.rediscovered
        assert analysis.concentration_radius_spearman < 0

    def test_provenance_of_final_votable(self):
        env = build_demo_environment(clusters=[cluster("INT-G", 6)], seed_virtual_data_reuse=False)
        env.portal.run_analysis("INT-G")
        lineage = env.vds.provenance.lineage("INT-G-morphology.vot")
        transformations = {r.transformation for r in lineage}
        assert transformations == {"concatVOTable", "galMorph"}
        assert len(lineage) == 7  # 1 concat + 6 galMorph

    def test_simulated_campaign_reports_makespan(self):
        env = build_demo_environment(
            clusters=[cluster("INT-H", 10)],
            execution_mode="simulate",
            seed_virtual_data_reuse=False,
        )
        session = env.portal.select_cluster("INT-H")
        env.portal.build_catalog(session)
        vot = env.portal.resolve_cutouts(session)
        url = env.compute_service.gal_morph_compute(vot, "h.vot", "INT-H")
        assert env.compute_service.poll(url).state == "completed"
        request = list(env.compute_service.requests.values())[-1]
        assert request.report.makespan > 0
        assert request.report.succeeded


class TestFaultToleranceEndToEnd:
    def test_invalid_galaxies_do_not_fail_run(self):
        """§4.3.1(4): bad-quality images produce invalid rows, not failures."""
        env = build_demo_environment(clusters=[cluster("INT-I", 40)], seed_virtual_data_reuse=False)
        session = env.portal.run_analysis("INT-I")
        validity = [row["valid"] for row in session.merged]
        assert len(validity) == 40
        # the synthetic sky includes faint members that fail measurement
        # while the run as a whole completes
        assert all(isinstance(v, bool) for v in validity)

    def test_simulated_job_failures_recovered_by_retries(self):
        env = build_demo_environment(
            clusters=[cluster("INT-J", 20)],
            execution_mode="simulate",
            failure_rate=0.15,
            max_retries=5,
            seed_virtual_data_reuse=False,
        )
        session = env.portal.select_cluster("INT-J")
        env.portal.build_catalog(session)
        vot = env.portal.resolve_cutouts(session)
        url = env.compute_service.gal_morph_compute(vot, "j.vot", "INT-J")
        assert env.compute_service.poll(url).state == "completed"
        request = list(env.compute_service.requests.values())[-1]
        assert request.report.retries > 0


class TestDiscoveryDrivenPortal:
    def test_discovery_environment_runs(self):
        env = build_demo_environment(
            clusters=[cluster("INT-K", 10)], discovery=True, seed_virtual_data_reuse=False
        )
        assert env.resource_registry is not None
        assert len(env.resource_registry) == 10  # 5 services + 5 mirrors
        session = env.portal.run_analysis("INT-K")
        assert len(session.merged) == 10

    def test_archive_outage_fails_over_mid_session(self):
        from repro.core.errors import ServiceError

        env = build_demo_environment(
            clusters=[cluster("INT-L", 8)], discovery=True, seed_virtual_data_reuse=False
        )
        # cut the primary optical archive before the user arrives
        primary = env.resource_registry.resource("ivo://nvo/dss")

        def outage(*args, **kwargs):
            raise ServiceError("DSS down for maintenance")

        primary.service.query = outage
        session = env.portal.run_analysis("INT-L")
        assert len(session.merged) == 8
        facade = env.portal.optical_archive
        assert facade.failures.get("ivo://nvo/dss") == 1
        assert facade.active_identifier == "ivo://mirror/dss"

    def test_non_discovery_environment_has_no_registry(self):
        env = build_demo_environment(clusters=[cluster("INT-M", 6)], seed_virtual_data_reuse=False)
        assert env.resource_registry is None
