"""Tests for the speculation ledger (CostMeter waste accounting) and the
per-site slot autoscaler."""

from __future__ import annotations

import pytest

from repro.adaptive.autoscale import AutoscaleConfig, SiteAutoscaler
from repro.adaptive.controller import AdaptiveController
from repro.adaptive.speculation import (
    SPECULATIVE_CATEGORY,
    SpeculationPolicy,
    SpeculationTracker,
)
from repro.services.transport import CostMeter


class TestSpeculationPolicy:
    def test_defaults_valid(self):
        policy = SpeculationPolicy()
        assert policy.p95_multiplier == 1.5
        assert policy.quantile == 0.95

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"p95_multiplier": 0.5},
            {"min_samples": 0},
            {"max_active": 0},
            {"quantile": 0.0},
            {"min_budget_s": -1.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SpeculationPolicy(**kwargs)


class TestSpeculationTracker:
    def test_cancelled_duplicate_charges_elapsed_only(self):
        """The satellite contract: a duplicate killed after 2.5s charges
        2.5 ``speculative`` seconds — never the transport timeout."""
        meter = CostMeter()
        tracker = SpeculationTracker(meter)
        tracker.record_launch("uwisc", "gm-1")
        tracker.record_waste("uwisc", "gm-1", 2.5)
        assert meter.total(SPECULATIVE_CATEGORY) == pytest.approx(2.5)
        assert meter.count(SPECULATIVE_CATEGORY) == 1
        assert meter.total() == pytest.approx(2.5)  # nothing else charged

    def test_negative_elapsed_clamped(self):
        meter = CostMeter()
        tracker = SpeculationTracker(meter)
        tracker.record_waste("isi", "gm-2", -0.1)
        assert meter.total(SPECULATIVE_CATEGORY) == 0.0
        assert tracker.wasted == 1

    def test_snapshot_counters(self):
        tracker = SpeculationTracker()
        tracker.record_launch("isi", "a")
        tracker.record_launch("isi", "b")
        tracker.record_win("isi", "a")
        tracker.record_waste("uwisc", "a", 1.25)
        assert tracker.snapshot() == {
            "launched": 2,
            "won": 1,
            "wasted": 1,
            "wasted_seconds": 1.25,
        }

    def test_meterless_tracker_counts(self):
        tracker = SpeculationTracker(None)
        tracker.record_waste("isi", "x", 3.0)
        assert tracker.wasted_seconds == pytest.approx(3.0)


class TestSiteAutoscaler:
    def scaler(self, **kwargs) -> SiteAutoscaler:
        config = AutoscaleConfig(
            scale_up_at=4, step_up=2, step_down=1, max_factor=2.0,
            cooldown_s=10.0, **kwargs,
        )
        return SiteAutoscaler({"isi": 4}, config)

    def test_blocked_demand_scales_up(self):
        scaler = self.scaler()
        assert scaler.evaluate("isi", blocked=6, busy=4, now=0.0) == 6
        assert scaler.scale_ups == 1

    def test_cooldown_blocks_consecutive_changes(self):
        scaler = self.scaler()
        scaler.evaluate("isi", blocked=6, busy=4, now=0.0)
        assert scaler.evaluate("isi", blocked=6, busy=4, now=5.0) == 6
        assert scaler.evaluate("isi", blocked=6, busy=4, now=10.0) == 8
        assert scaler.scale_ups == 2

    def test_ceiling_is_max_factor_times_provisioned(self):
        scaler = self.scaler()
        now = 0.0
        for _ in range(10):
            scaler.evaluate("isi", blocked=10, busy=8, now=now)
            now += 10.0
        assert scaler.slots("isi") == 8  # 2.0 x 4 provisioned

    def test_idle_scales_back_to_provisioned_floor(self):
        scaler = self.scaler()
        scaler.evaluate("isi", blocked=6, busy=4, now=0.0)
        now = 10.0
        while scaler.slots("isi") > 4:
            scaler.evaluate("isi", blocked=0, busy=0, now=now)
            now += 10.0
        assert scaler.slots("isi") == 4
        assert scaler.scale_downs == 2
        # never shrinks below the provisioned topology
        scaler.evaluate("isi", blocked=0, busy=0, now=now)
        assert scaler.slots("isi") == 4

    def test_unknown_site_is_zero(self):
        assert self.scaler().evaluate("nope", blocked=9, busy=9, now=0.0) == 0

    def test_snapshot(self):
        scaler = self.scaler()
        scaler.evaluate("isi", blocked=6, busy=4, now=0.0)
        assert scaler.snapshot() == {
            "slots": {"isi": 6},
            "scale_ups": 1,
            "scale_downs": 0,
        }


class TestAdaptiveController:
    def test_snapshot_reflects_armed_layers(self):
        controller = AdaptiveController(
            speculation=SpeculationPolicy(), autoscale=AutoscaleConfig()
        )
        snapshot = controller.snapshot()
        assert snapshot["speculation_enabled"] is True
        assert snapshot["autoscale_enabled"] is True
        assert snapshot["predictive"] is True
        assert snapshot["speculation"]["launched"] == 0
        assert "autoscale" not in snapshot  # no simulator run parked one

    def test_snapshot_includes_parked_autoscaler(self):
        controller = AdaptiveController(autoscale=AutoscaleConfig())
        controller.last_autoscaler = SiteAutoscaler({"isi": 4}, controller.autoscale)
        assert controller.snapshot()["autoscale"]["slots"] == {"isi": 4}

    def test_waste_lands_in_environment_meter(self):
        meter = CostMeter()
        controller = AdaptiveController(speculation=SpeculationPolicy(), meter=meter)
        controller.tracker.record_waste("uwisc", "gm-9", 4.0)
        assert meter.total(SPECULATIVE_CATEGORY) == pytest.approx(4.0)
