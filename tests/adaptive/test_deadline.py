"""Tests for deadline-aware degradation: the tracker's prediction and the
workload manager's journaled shedding."""

from __future__ import annotations

import time

import pytest

from repro.adaptive.deadline import DeadlineTracker
from repro.scheduler.job import JobState
from repro.scheduler.journal import JobJournal
from repro.scheduler.runner import JobOutcome
from repro.scheduler.service import WorkloadManager


class TestDeadlineTracker:
    def test_no_prediction_without_samples(self):
        tracker = DeadlineTracker(deadline_s=100.0, started_at=0.0)
        assert tracker.predicted_completion(50.0, queued=10, running=2, parallelism=4) is None
        # shedding on zero information would cancel work for nothing
        assert not tracker.should_shed(99.0, queued=100, running=4, parallelism=4)

    def test_prediction_is_elapsed_plus_waves(self):
        tracker = DeadlineTracker(deadline_s=100.0, started_at=0.0)
        tracker.observe(10.0)
        # 7 remaining over 4 workers = 2 waves x 10s on top of now
        assert tracker.predicted_completion(
            30.0, queued=5, running=2, parallelism=4
        ) == pytest.approx(50.0)

    def test_empty_queue_predicts_now(self):
        tracker = DeadlineTracker(deadline_s=100.0, started_at=10.0)
        tracker.observe(10.0)
        assert tracker.predicted_completion(
            40.0, queued=0, running=0, parallelism=4
        ) == pytest.approx(30.0)

    def test_should_shed_threshold(self):
        tracker = DeadlineTracker(deadline_s=60.0, started_at=0.0)
        tracker.observe(10.0)
        assert not tracker.should_shed(10.0, queued=4, running=0, parallelism=1)
        assert tracker.should_shed(30.0, queued=4, running=0, parallelism=1)

    def test_snapshot(self):
        tracker = DeadlineTracker(deadline_s=60.0, started_at=5.0)
        tracker.observe(2.0)
        snapshot = tracker.snapshot(15.0)
        assert snapshot["deadline_s"] == 60.0
        assert snapshot["elapsed_s"] == pytest.approx(10.0)
        assert snapshot["mean_job_s"] == pytest.approx(2.0)

    def test_invalid_deadline_rejected(self):
        with pytest.raises(ValueError):
            DeadlineTracker(deadline_s=0.0, started_at=0.0)


class SlowRunner:
    """Every job takes ~0.25s — longer than the campaign deadline."""

    def run(self, spec, resume_from):
        time.sleep(0.25)
        return JobOutcome(result_bytes=b"ok")


class TestManagerShedding:
    def test_sheds_lowest_priority_newest_first_and_journals(self):
        journal = JobJournal(None)
        manager = WorkloadManager(
            SlowRunner(),
            total_slots=8,
            slots_per_job=1,
            max_workers=1,
            journal=journal,
            deadline_s=0.2,
        )
        manager.start()
        try:
            # The high-priority job runs; the three others are queued when
            # its completion gives the tracker its first sample.
            head = manager.submit("alice", "A3526", priority=10)
            victims = [
                manager.submit("alice", "A0001", priority=5),
                manager.submit("alice", "A0002", priority=1),
                manager.submit("alice", "A0003", priority=1),
            ]
            assert manager.wait(head.job_id, timeout=10.0).state is JobState.COMPLETED
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                records = [manager.job(v.job_id) for v in victims]
                if all(r.state is JobState.CANCELLED for r in records):
                    break
                time.sleep(0.02)
            records = [manager.job(v.job_id) for v in victims]
            assert all(r.state is JobState.CANCELLED for r in records)
            assert all(r.extra.get("shed") is True for r in records)
            assert all("deadline-shed" in (r.error or "") for r in records)

            # victim order: lowest priority first, newest among equals
            shed_lines = [
                line for line in journal.events() if line["event"] == "deadline-shed"
            ]
            assert [line["job_id"] for line in shed_lines] == [
                victims[2].job_id,  # priority 1, newest
                victims[1].job_id,  # priority 1, older
                victims[0].job_id,  # priority 5
            ]

            snapshot = manager.snapshot()
            assert snapshot["deadline"]["deadline_s"] == 0.2
            by_id = {job["job_id"]: job for job in snapshot["jobs"]}
            assert all(by_id[v.job_id]["shed"] for v in victims)
            assert not by_id[head.job_id]["shed"]
        finally:
            manager.stop()

        # replay agrees: shed jobs fold to CANCELLED, nothing requeues
        state = journal.replay()
        for victim in victims:
            assert state.jobs[victim.job_id].state is JobState.CANCELLED
            assert state.jobs[victim.job_id].extra["shed"] is True
        assert state.queued_jobs() == []

    def test_no_deadline_means_no_tracker(self):
        manager = WorkloadManager(SlowRunner(), max_workers=1)
        manager.start()
        try:
            assert "deadline" not in manager.snapshot()
        finally:
            manager.stop()
