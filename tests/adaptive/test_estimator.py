"""Tests for the decayed reservoirs and the site latency estimator."""

from __future__ import annotations

import pytest

from repro.adaptive.estimator import DecayedReservoir, SiteLatencyEstimator


class TestDecayedReservoir:
    def test_empty_is_none(self):
        reservoir = DecayedReservoir()
        assert reservoir.mean() is None
        assert reservoir.quantile(0.95) is None
        assert len(reservoir) == 0

    def test_mean_and_quantile(self):
        reservoir = DecayedReservoir(decay=1.0)  # no decay: plain stats
        for value in (1.0, 2.0, 3.0, 4.0):
            reservoir.observe(value)
        assert reservoir.mean() == pytest.approx(2.5)
        # nearest-rank: never invents an unobserved value
        assert reservoir.quantile(0.95) == 4.0
        assert reservoir.quantile(0.5) == 2.0

    def test_decay_forgets_slow_spell(self):
        reservoir = DecayedReservoir(decay=0.5)
        for _ in range(5):
            reservoir.observe(100.0)  # the slow spell
        for _ in range(10):
            reservoir.observe(1.0)  # recovery
        # With decay 0.5 the old samples carry ~2^-10 weight: the mean
        # must sit near the recovered duration, not the historic one.
        assert reservoir.mean() < 2.0

    def test_window_bounds_memory(self):
        reservoir = DecayedReservoir(window=4)
        for value in range(10):
            reservoir.observe(float(value))
        assert len(reservoir) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            DecayedReservoir(window=0)
        with pytest.raises(ValueError):
            DecayedReservoir(decay=0.0)
        with pytest.raises(ValueError):
            DecayedReservoir().observe(-1.0)
        with pytest.raises(ValueError):
            DecayedReservoir().quantile(1.5)


class TestSiteLatencyEstimator:
    def warm(self) -> SiteLatencyEstimator:
        estimator = SiteLatencyEstimator()
        for _ in range(10):
            estimator.observe("isi", "galMorph", 10.0)
            estimator.observe("uwisc", "galMorph", 50.0)
        return estimator

    def test_predict_per_site(self):
        estimator = self.warm()
        assert estimator.predict("isi") == pytest.approx(10.0)
        assert estimator.predict("uwisc") == pytest.approx(50.0)
        assert estimator.predict("fnal") is None

    def test_samples_and_sites(self):
        estimator = self.warm()
        assert estimator.samples("isi") == 10
        assert estimator.samples("isi", "galMorph") == 10
        assert estimator.samples("isi", "other") == 0
        assert estimator.sites() == ("isi", "uwisc")

    def test_best_quantile_is_min_over_sites_not_pooled(self):
        """The straggler budget must anchor to the healthiest site: the
        slow site's own samples must never inflate what counts as
        'suspiciously long'."""
        estimator = self.warm()
        pooled = estimator.class_quantile("galMorph", 0.95)
        best = estimator.best_quantile("galMorph", 0.95)
        assert best == pytest.approx(10.0)
        assert pooled == pytest.approx(50.0)  # pooled view is dominated
        assert best < pooled

    def test_best_quantile_none_without_history(self):
        assert SiteLatencyEstimator().best_quantile("galMorph", 0.95) is None

    def test_snapshot_shape(self):
        snapshot = self.warm().snapshot()
        assert set(snapshot) == {"isi", "uwisc"}
        assert snapshot["isi"]["samples"] == 10
        assert snapshot["uwisc"]["mean_s"] == pytest.approx(50.0)
        assert snapshot["uwisc"]["p95_s"] >= snapshot["isi"]["p95_s"]
