"""The slow-site chaos profile: deterministic heavy-tail slowdown on
uwisc, latency never changes bytes."""

from __future__ import annotations

import pytest

from repro.faults.chaos import run_chaos_campaign
from repro.faults.plan import FaultInjector, SiteFaultSpec
from repro.faults.profiles import get_profile


class TestProfileShape:
    def test_registered_and_recoverable(self):
        plan = get_profile("slow-site", seed=5)
        assert plan.recoverable is True
        assert set(plan.sites) == {"uwisc"}
        spec = plan.sites["uwisc"]
        assert spec.slow_enabled
        assert spec.slow_factor == 4.0
        assert spec.slow_wall_unit_s > 0.0  # real executor feels it too
        # nothing ever *fails*: breakers must never trip on this profile
        assert not plan.services
        assert spec.fail_rate == 0.0 if hasattr(spec, "fail_rate") else True

    def test_spec_defaults_are_inert(self):
        assert not SiteFaultSpec().slow_enabled


class TestSlowdownDraws:
    def injector(self, seed: int = 5) -> FaultInjector:
        return get_profile("slow-site", seed=seed).injector()

    def test_identity_keyed_and_deterministic(self):
        a = self.injector()
        b = self.injector()
        for node in ("gm-1", "gm-2", "gm-3"):
            assert a.site_slowdown("uwisc", node, 1) == b.site_slowdown(
                "uwisc", node, 1
            )

    def test_bounded_heavy_tail(self):
        injector = self.injector()
        draws = [
            injector.site_slowdown("uwisc", f"gm-{i}", 1) for i in range(200)
        ]
        assert all(1.0 <= d <= 40.0 for d in draws)
        assert len(set(draws)) > 100  # a distribution, not a constant
        assert max(draws) > 8.0  # the tail the speculation layer must beat

    def test_attempt_changes_the_draw(self):
        injector = self.injector()
        first = injector.site_slowdown("uwisc", "gm-1", 1)
        second = injector.site_slowdown("uwisc", "gm-1", 2)
        assert first != second

    def test_healthy_sites_cost_nothing(self):
        injector = self.injector()
        assert injector.site_slowdown("isi", "gm-1", 1) == 1.0
        assert injector.site_wall_delay("isi", "gm-1", 1) == 0.0

    def test_wall_delay_is_capped(self):
        injector = self.injector()
        delays = [
            injector.site_wall_delay("uwisc", f"gm-{i}", 1) for i in range(100)
        ]
        assert all(0.0 <= d <= 0.4 for d in delays)
        assert any(d > 0.0 for d in delays)

    def test_seed_changes_schedule(self):
        assert [
            self.injector(1).site_slowdown("uwisc", f"gm-{i}", 1) for i in range(10)
        ] != [
            self.injector(2).site_slowdown("uwisc", f"gm-{i}", 1) for i in range(10)
        ]


class TestByteIdentity:
    def test_campaign_recovers_byte_identical(self):
        """The harness asserts merged output equals the fault-free twin's
        bytes for recoverable profiles — latency must never change them."""
        report = run_chaos_campaign(profile="slow-site")
        assert report.recovered
        assert report.profile == "slow-site"


class TestUnknownProfile:
    def test_unknown_profile_rejected(self):
        with pytest.raises((KeyError, ValueError)):
            get_profile("no-such-profile", seed=1)
