"""Simulator-level adaptive execution: speculation beats a slow site,
autoscaling grows hot pools, and the disabled layer changes nothing."""

from __future__ import annotations

import pytest

from repro.adaptive import (
    AdaptiveController,
    AutoscaleConfig,
    SpeculationPolicy,
)
from repro.condor.pool import GridTopology
from repro.condor.simulator import (
    GridSimulator,
    SimulationOptions,
    node_class,
    payload_with_site,
)
from repro.faults.profiles import get_profile
from repro.workflow.abstract import AbstractJob
from repro.workflow.concrete import ComputeNode, ConcreteWorkflow


def fan_workflow(n: int, sites: list[str]) -> ConcreteWorkflow:
    wf = ConcreteWorkflow()
    for i in range(n):
        wf.add(
            ComputeNode(
                f"gm{i}",
                AbstractJob(f"j{i}", "galMorph", (f"in{i}.fit",), (f"out{i}.xml",)),
                sites[i % len(sites)],
                "/bin/galmorph",
            )
        )
    return wf


def run(workflow, *, adaptive=None, faults=None, seed=7):
    simulator = GridSimulator(
        GridTopology.default_demo(),
        SimulationOptions(seed=seed),
        faults=faults,
        adaptive=adaptive,
    )
    return simulator.execute(workflow)


class TestPayloadHelpers:
    def test_node_class_is_transformation(self):
        node = ComputeNode(
            "n", AbstractJob("j", "galMorph", ("a",), ("b",)), "isi", "/bin/x"
        )
        assert node_class(node) == "galMorph"

    def test_payload_with_site_moves_node(self):
        node = ComputeNode(
            "n", AbstractJob("j", "galMorph", ("a",), ("b",)), "isi", "/bin/x"
        )
        moved = payload_with_site(node, "fnal")
        assert moved.site == "fnal"
        assert moved.node_id == node.node_id
        assert node.site == "isi"  # original untouched


class TestDisabledLayerDeterminism:
    def test_two_disabled_runs_identical(self):
        sites = sorted(GridTopology.default_demo().pools)
        a = run(fan_workflow(60, sites))
        b = run(fan_workflow(60, sites))
        assert a.makespan == b.makespan
        assert [(r.node_id, r.site, r.start, r.end) for r in a.runs] == [
            (r.node_id, r.site, r.start, r.end) for r in b.runs
        ]

    def test_disarmed_controller_matches_disabled(self):
        """A controller with every mechanism off must not perturb the
        event schedule: no spec events, no slot overlay, same RNG."""
        sites = sorted(GridTopology.default_demo().pools)
        disabled = run(fan_workflow(60, sites))
        disarmed = run(
            fan_workflow(60, sites),
            adaptive=AdaptiveController(speculation=None, autoscale=None),
        )
        assert disarmed.makespan == disabled.makespan
        assert disarmed.speculated == 0
        assert [(r.node_id, r.start, r.end) for r in disarmed.runs] == [
            (r.node_id, r.start, r.end) for r in disabled.runs
        ]


class TestSpeculation:
    def test_speculation_beats_slow_site(self):
        # 300 nodes: enough uwisc stragglers that the critical path is one
        # of them, so winning duplicates must shorten the makespan
        sites = sorted(GridTopology.default_demo().pools)
        faults = get_profile("slow-site", seed=7).injector()
        static = run(fan_workflow(300, sites), faults=faults)

        controller = AdaptiveController(speculation=SpeculationPolicy())
        adaptive = run(
            fan_workflow(300, sites),
            adaptive=controller,
            faults=get_profile("slow-site", seed=7).injector(),
        )
        assert static.succeeded and adaptive.succeeded
        assert adaptive.speculated > 0
        assert adaptive.spec_won > 0
        assert adaptive.makespan < static.makespan
        # every cancelled copy is accounted as waste
        assert controller.tracker.wasted == adaptive.spec_wasted
        assert controller.tracker.launched == adaptive.speculated

    def test_winning_duplicate_reports_final_site(self):
        """A node whose duplicate won reports the duplicate's site."""
        faults = get_profile("slow-site", seed=7).injector()
        controller = AdaptiveController(speculation=SpeculationPolicy())
        report = run(
            fan_workflow(120, sorted(GridTopology.default_demo().pools)),
            adaptive=controller,
            faults=faults,
        )
        assert report.spec_won > 0
        moved = [r for r in report.compute_runs if r.site != "uwisc"]
        assert len(moved) > 80  # winners were attributed off the slow site

    def test_estimator_learns_from_runs(self):
        controller = AdaptiveController(speculation=SpeculationPolicy())
        run(
            fan_workflow(60, sorted(GridTopology.default_demo().pools)),
            adaptive=controller,
            faults=get_profile("slow-site", seed=7).injector(),
        )
        snapshot = controller.estimator.snapshot()
        assert snapshot["uwisc"]["mean_s"] > snapshot["isi"]["mean_s"]


class TestAutoscale:
    def test_queue_pressure_grows_slots(self):
        controller = AdaptiveController(
            speculation=None,
            autoscale=AutoscaleConfig(scale_up_at=4, cooldown_s=5.0),
        )
        report = run(
            fan_workflow(200, ["isi"]),  # everything on one 12-slot pool
            adaptive=controller,
        )
        assert report.succeeded
        assert controller.last_autoscaler is not None
        scaled = controller.last_autoscaler.snapshot()
        assert scaled["scale_ups"] > 0
        assert scaled["slots"]["isi"] > 12

    def test_autoscaled_run_is_faster(self):
        plain = run(fan_workflow(200, ["isi"]))
        controller = AdaptiveController(
            speculation=None,
            autoscale=AutoscaleConfig(scale_up_at=4, cooldown_s=5.0),
        )
        scaled = run(fan_workflow(200, ["isi"]), adaptive=controller)
        assert scaled.makespan < plain.makespan

    def test_snapshot_parked_on_controller(self):
        controller = AdaptiveController(autoscale=AutoscaleConfig())
        run(fan_workflow(20, ["isi"]), adaptive=controller)
        assert "autoscale" in controller.snapshot()


class TestSpeculationBudgetAnchoring:
    def test_budget_uses_best_site_quantile(self):
        """After a slow-site run the budget must reflect the healthy
        sites, not uwisc's self-normalised tail."""
        controller = AdaptiveController(speculation=SpeculationPolicy())
        run(
            fan_workflow(120, sorted(GridTopology.default_demo().pools)),
            adaptive=controller,
            faults=get_profile("slow-site", seed=7).injector(),
        )
        estimator = controller.estimator
        best = estimator.best_quantile("galMorph", 0.95)
        pooled = estimator.class_quantile("galMorph", 0.95)
        assert best is not None and pooled is not None
        assert best <= pooled
        slow_p95 = estimator.quantile("uwisc", "galMorph", 0.95)
        if slow_p95 is not None:
            assert best < slow_p95
