"""Journal replay for the adaptive events: ``speculate`` is a pure
annotation (fingerprint-stable, crash-safe), ``deadline-shed`` is
terminal CANCELLED."""

from __future__ import annotations

import pytest

from repro.core.errors import SchedulerError
from repro.scheduler.job import JobRecord, JobSpec, JobState, derivation_signature
from repro.scheduler.journal import JobJournal, replay_events


def submit(journal: JobJournal, seq: int = 0, user: str = "alice") -> JobRecord:
    spec = JobSpec.create(user, "A3526")
    record = JobRecord(
        job_id=f"job-{seq:06d}-test",
        spec=spec,
        signature=derivation_signature(spec),
        seq=seq,
        submitted_at=float(seq),
    )
    journal.append("submit", job=record.as_record())
    return record


class TestSpeculateReplay:
    def test_annotation_only_fingerprint_stable(self):
        """The fingerprint folds (seq, id, user, cluster, state): how many
        duplicates the workflow launched must not change it."""
        plain = JobJournal(None)
        record = submit(plain)
        plain.append("start", job_id=record.job_id)
        plain.append("complete", job_id=record.job_id, cost=1.0)

        spec = JobJournal(None)
        record2 = submit(spec)
        spec.append("start", job_id=record2.job_id)
        spec.append("speculate", job_id=record2.job_id, nodes=3)
        spec.append("complete", job_id=record2.job_id, cost=1.0)

        assert spec.replay().fingerprint() == plain.replay().fingerprint()
        replayed = spec.replay().jobs[record2.job_id]
        assert replayed.state is JobState.COMPLETED
        assert replayed.extra["speculated"] is True
        assert replayed.extra["speculated_nodes"] == 3

    def test_crash_mid_speculation_requeues_exactly_once(self):
        """A crash between the speculate line and the terminal line is the
        standard interrupted-RUNNING case: one requeue, no double run."""
        journal = JobJournal(None)
        record = submit(journal)
        journal.append("start", job_id=record.job_id)
        journal.append("speculate", job_id=record.job_id, nodes=2)
        # crash here: no complete/fail line
        state = journal.replay()
        replayed = state.jobs[record.job_id]
        assert replayed.state is JobState.QUEUED
        assert replayed.started_at is None
        assert replayed.attempts == 1  # the interrupted attempt still counts
        assert [r.job_id for r in state.queued_jobs()] == [record.job_id]

    def test_replay_deterministic(self):
        journal = JobJournal(None)
        record = submit(journal)
        journal.append("start", job_id=record.job_id)
        journal.append("speculate", job_id=record.job_id)
        assert journal.replay().fingerprint() == journal.replay().fingerprint()

    def test_speculate_for_unknown_job_rejected(self):
        journal = JobJournal(None)
        journal.append("speculate", job_id="job-999999-ghost")
        with pytest.raises(SchedulerError):
            journal.replay()

    def test_default_node_count_is_one(self):
        journal = JobJournal(None)
        record = submit(journal)
        journal.append("start", job_id=record.job_id)
        journal.append("speculate", job_id=record.job_id)
        journal.append("complete", job_id=record.job_id)
        assert journal.replay().jobs[record.job_id].extra["speculated_nodes"] == 1


class TestDeadlineShedReplay:
    def test_shed_is_terminal_cancelled(self):
        journal = JobJournal(None)
        record = submit(journal)
        journal.append(
            "deadline-shed", job_id=record.job_id, reason="deadline-shed: over"
        )
        state = journal.replay()
        replayed = state.jobs[record.job_id]
        assert replayed.state is JobState.CANCELLED
        assert replayed.extra["shed"] is True
        assert replayed.error == "deadline-shed: over"
        assert replayed.finished_at is not None
        assert state.queued_jobs() == []

    def test_shed_job_never_requeues(self):
        """Even a shed-after-start job stays cancelled on replay — the
        interrupted-RUNNING rule only rescues jobs still RUNNING."""
        journal = JobJournal(None)
        record = submit(journal)
        journal.append("start", job_id=record.job_id)
        journal.append("deadline-shed", job_id=record.job_id)
        state = journal.replay()
        assert state.jobs[record.job_id].state is JobState.CANCELLED
        assert state.queued_jobs() == []

    def test_events_registered(self):
        journal = JobJournal(None)
        record = submit(journal)
        # both events append without SchedulerError (EVENTS allows them)
        journal.append("speculate", job_id=record.job_id)
        journal.append("deadline-shed", job_id=record.job_id)

    def test_mixed_events_fingerprint_stable_across_replays(self):
        journal = JobJournal(None)
        for seq in range(3):
            record = submit(journal, seq=seq)
            journal.append("start", job_id=record.job_id)
            if seq == 0:
                journal.append("speculate", job_id=record.job_id, nodes=2)
                journal.append("complete", job_id=record.job_id)
            elif seq == 1:
                journal.append("deadline-shed", job_id=record.job_id)
        first = replay_events(journal.events()).fingerprint()
        second = replay_events(journal.events()).fingerprint()
        assert first == second
        states = {r.job_id: r.state for r in replay_events(journal.events()).jobs.values()}
        assert list(states.values()) == [
            JobState.COMPLETED,
            JobState.CANCELLED,
            JobState.QUEUED,  # seq 2 was interrupted RUNNING
        ]
