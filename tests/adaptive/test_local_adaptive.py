"""Real-executor speculation: a wall-delayed site triggers a duplicate,
the result stays byte-identical, and RLS is registered exactly once."""

from __future__ import annotations

from repro.adaptive import AdaptiveController, SpeculationPolicy
from repro.condor.local import ExecutableRegistry, LocalExecutor
from repro.faults.plan import FaultPlan, SiteFaultSpec
from repro.rls.rls import ReplicaLocationService
from repro.rls.site import StorageSite
from repro.workflow.abstract import AbstractJob
from repro.workflow.concrete import (
    ComputeNode,
    ConcreteWorkflow,
    RegistrationNode,
    TransferKind,
    TransferNode,
)

#: Deterministic 0.45s stall per compute attempt on U (sigma=0 pins the
#: lognormal at 1, so factor is exactly 4: (4-1) x 0.15s, under the cap).
SLOW_U = FaultPlan(
    seed=11,
    sites={
        "U": SiteFaultSpec(
            slow_factor=4.0,
            slow_sigma=0.0,
            slow_wall_unit_s=0.15,
            slow_wall_cap_s=1.0,
        )
    },
    recoverable=True,
)


def environment():
    sites = {name: StorageSite(name) for name in ("A", "B", "U")}
    rls = ReplicaLocationService()
    for name in sites:
        rls.add_site(name)
    registry = ExecutableRegistry()

    def double(job: AbstractJob, inputs: dict[str, bytes]) -> dict[str, bytes]:
        (content,) = inputs.values()
        return {job.outputs[0]: content * 2}

    registry.register("double", double)
    return sites, rls, registry


def slow_site_workflow(sites, n: int = 3) -> ConcreteWorkflow:
    """n independent double() jobs planned on the slow site U, their
    inputs staged from A, the first output registered in RLS."""
    cw = ConcreteWorkflow()
    for i in range(n):
        cw.add(
            TransferNode(
                f"x{i}", f"b{i}", TransferKind.STAGE_IN,
                "A", sites["A"].pfn_for(f"b{i}"),
                "U", sites["U"].pfn_for(f"b{i}"),
            )
        )
        cw.add(
            ComputeNode(
                f"j{i}",
                AbstractJob(f"d{i}", "double", (f"b{i}",), (f"c{i}",)),
                "U",
                "/bin/double",
            )
        )
        cw.link(f"x{i}", f"j{i}")
    cw.add(RegistrationNode("r0", "c0", sites["U"].pfn_for("c0"), "U"))
    cw.link("j0", "r0")
    return cw


def warm_controller() -> AdaptiveController:
    """History that makes U's stall a straggler: the healthy sites run
    double() in ~10ms, so the p95 budget is ~15ms."""
    controller = AdaptiveController(speculation=SpeculationPolicy())
    for _ in range(6):
        controller.estimator.observe("A", "double", 0.01)
    return controller


class TestLocalSpeculation:
    def test_duplicate_fires_and_bytes_identical(self):
        # baseline: no faults, no adaptive layer
        sites, rls, registry = environment()
        for i in range(3):
            sites["A"].put(sites["A"].pfn_for(f"b{i}"), f"v{i}".encode())
        baseline = LocalExecutor(sites, registry, rls)
        report = baseline.execute(slow_site_workflow(sites))
        assert report.succeeded
        expected = {
            f"c{i}": sites["U"].get(sites["U"].pfn_for(f"c{i}")) for i in range(3)
        }

        # slow U + armed speculation
        sites, rls, registry = environment()
        for i in range(3):
            sites["A"].put(sites["A"].pfn_for(f"b{i}"), f"v{i}".encode())
        controller = warm_controller()
        executor = LocalExecutor(
            sites, registry, rls,
            faults=SLOW_U.injector(),
            adaptive=controller,
        )
        report = executor.execute(slow_site_workflow(sites))
        assert report.succeeded
        assert report.speculated >= 1
        assert report.speculated == controller.tracker.launched
        # first result won, loser charged: every launch ends as win or waste
        assert controller.tracker.won + controller.tracker.wasted >= report.speculated
        for i in range(3):
            assert sites["U"].get(sites["U"].pfn_for(f"c{i}")) == expected[f"c{i}"]

    def test_registration_never_duplicated(self):
        sites, rls, registry = environment()
        for i in range(3):
            sites["A"].put(sites["A"].pfn_for(f"b{i}"), f"v{i}".encode())
        executor = LocalExecutor(
            sites, registry, rls,
            faults=SLOW_U.injector(),
            adaptive=warm_controller(),
        )
        report = executor.execute(slow_site_workflow(sites))
        assert report.succeeded
        # speculation raced compute copies, but c0 is registered once
        assert len(rls.lookup("c0")) == 1

    def test_disarmed_layer_changes_nothing(self):
        sites, rls, registry = environment()
        for i in range(3):
            sites["A"].put(sites["A"].pfn_for(f"b{i}"), f"v{i}".encode())
        executor = LocalExecutor(
            sites, registry, rls,
            adaptive=AdaptiveController(speculation=None),
        )
        report = executor.execute(slow_site_workflow(sites))
        assert report.succeeded
        assert report.speculated == 0
        assert sites["U"].get(sites["U"].pfn_for("c1")) == b"v1v1"
