"""Tests for predictive site selection: abstention, ranking, hysteresis."""

from __future__ import annotations

import pytest

from repro.adaptive.estimator import SiteLatencyEstimator
from repro.adaptive.selector import PredictiveSiteSelector
from repro.pegasus.site_selector import RoundRobinSiteSelector

SITES = ["fnal", "isi", "uwisc"]


def warm_estimator(means: dict[str, float], samples: int = 5) -> SiteLatencyEstimator:
    estimator = SiteLatencyEstimator()
    for site, mean in means.items():
        for _ in range(samples):
            estimator.observe(site, "galMorph", mean)
    return estimator


class TestAbstention:
    def test_no_history_falls_back_to_base(self):
        selector = PredictiveSiteSelector(
            RoundRobinSiteSelector(), SiteLatencyEstimator()
        )
        # round-robin over sorted candidates
        assert [selector.choose(f"j{i}", SITES) for i in range(3)] == SITES

    def test_partial_history_still_abstains(self):
        """Ranking a known site against an unknown one would starve the
        unknown site of samples forever — prediction waits for all."""
        estimator = warm_estimator({"isi": 10.0, "fnal": 12.0})
        selector = PredictiveSiteSelector(RoundRobinSiteSelector(), estimator)
        choices = {selector.choose(f"j{i}", SITES) for i in range(6)}
        assert choices == set(SITES)  # still pure round-robin

    def test_below_min_samples_abstains(self):
        estimator = warm_estimator(
            {"isi": 10.0, "fnal": 12.0, "uwisc": 50.0}, samples=2
        )
        selector = PredictiveSiteSelector(
            RoundRobinSiteSelector(), estimator, min_samples=3
        )
        assert {selector.choose(f"j{i}", SITES) for i in range(6)} == set(SITES)


class TestRanking:
    def test_prefers_fastest_site(self):
        estimator = warm_estimator({"isi": 10.0, "fnal": 12.0, "uwisc": 50.0})
        selector = PredictiveSiteSelector(RoundRobinSiteSelector(), estimator)
        assert selector.choose("j0", SITES) == "isi"

    def test_backlog_inflation_spreads_load(self):
        """Every job on the fastest site would melt it: predicted
        completion scales with the backlog already assigned, so choices
        eventually spill to the second-fastest site."""
        estimator = warm_estimator({"isi": 10.0, "fnal": 12.0, "uwisc": 50.0})
        selector = PredictiveSiteSelector(
            RoundRobinSiteSelector(),
            estimator,
            capacities={"isi": 4, "fnal": 4, "uwisc": 4},
            hysteresis=0.0,
        )
        choices = [selector.choose(f"j{i}", SITES) for i in range(20)]
        assert choices[0] == "isi"
        assert "fnal" in choices
        # 5x slower: 20 assignments of backlog never justify uwisc
        assert "uwisc" not in choices

    def test_candidate_subset_respected(self):
        estimator = warm_estimator({"isi": 10.0, "uwisc": 50.0})
        selector = PredictiveSiteSelector(RoundRobinSiteSelector(), estimator)
        assert selector.choose("j0", ["uwisc"]) == "uwisc"


class TestHysteresis:
    def test_small_edge_keeps_incumbent(self):
        estimator = warm_estimator({"isi": 10.0, "fnal": 10.5, "uwisc": 50.0})
        selector = PredictiveSiteSelector(
            RoundRobinSiteSelector(),
            estimator,
            capacities={"isi": 100, "fnal": 100, "uwisc": 100},
            hysteresis=0.15,
        )
        assert selector.choose("j0", SITES) == "isi"
        # fnal is now marginally better on paper (isi carries backlog),
        # but not by the 15% the switch requires
        assert selector.choose("j1", SITES) == "isi"

    def test_large_edge_switches(self):
        estimator = warm_estimator({"isi": 10.0, "fnal": 12.0, "uwisc": 50.0})
        selector = PredictiveSiteSelector(
            RoundRobinSiteSelector(),
            estimator,
            capacities={"isi": 1, "fnal": 1, "uwisc": 1},
            hysteresis=0.15,
        )
        choices = [selector.choose(f"j{i}", SITES) for i in range(8)]
        assert choices[0] == "isi"
        assert "fnal" in choices  # backlog-inflated isi loses by > 15%

    def test_invalid_hysteresis_rejected(self):
        with pytest.raises(ValueError):
            PredictiveSiteSelector(
                RoundRobinSiteSelector(), SiteLatencyEstimator(), hysteresis=1.0
            )
