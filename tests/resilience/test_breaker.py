"""Tests for the circuit breaker and the shared site-health tracker."""

from __future__ import annotations

import pytest

from repro.resilience.breaker import BreakerState, CircuitBreaker, SiteHealthTracker


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def breaker(threshold=3, recovery=60.0) -> tuple[CircuitBreaker, FakeClock]:
    clock = FakeClock()
    return (
        CircuitBreaker(
            failure_threshold=threshold, recovery_time_s=recovery, clock=clock
        ),
        clock,
    )


class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(recovery_time_s=-1.0)

    def test_opens_after_consecutive_failures(self):
        b, _ = breaker(threshold=3)
        b.record_failure()
        b.record_failure()
        assert b.state is BreakerState.CLOSED and b.allows()
        b.record_failure()
        assert b.state is BreakerState.OPEN and not b.allows()

    def test_success_resets_failure_count(self):
        b, _ = breaker(threshold=2)
        b.record_failure()
        b.record_success()
        b.record_failure()
        assert b.state is BreakerState.CLOSED  # never two *consecutive* failures

    def test_cooldown_half_opens(self):
        b, clock = breaker(threshold=1, recovery=30.0)
        b.record_failure()
        assert not b.allows()
        clock.advance(29.9)
        assert not b.allows()
        clock.advance(0.2)
        assert b.state is BreakerState.HALF_OPEN and b.allows()

    def test_probe_success_closes(self):
        b, clock = breaker(threshold=1, recovery=10.0)
        b.record_failure()
        clock.advance(11.0)
        assert b.state is BreakerState.HALF_OPEN
        b.record_success()
        assert b.state is BreakerState.CLOSED

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        b, clock = breaker(threshold=1, recovery=10.0)
        b.record_failure()
        clock.advance(11.0)
        assert b.state is BreakerState.HALF_OPEN
        b.record_failure()
        assert b.state is BreakerState.OPEN
        clock.advance(9.0)
        assert not b.allows()  # cooldown restarted at the probe failure
        clock.advance(1.5)
        assert b.allows()

    def test_transitions_counted(self):
        b, clock = breaker(threshold=1, recovery=5.0)
        b.record_failure()  # closed -> open
        clock.advance(6.0)
        _ = b.state  # open -> half-open
        b.record_success()  # half-open -> closed
        assert b.transitions == 3


class TestSiteHealthTracker:
    def tracker(self, threshold=2, recovery=60.0) -> tuple[SiteHealthTracker, FakeClock]:
        clock = FakeClock()
        return (
            SiteHealthTracker(
                failure_threshold=threshold, recovery_time_s=recovery, clock=clock
            ),
            clock,
        )

    def test_unknown_sites_are_healthy(self):
        t, _ = self.tracker()
        assert t.available("never-seen")
        assert t.blacklisted() == ()

    def test_blacklist_after_threshold(self):
        t, _ = self.tracker(threshold=2)
        t.record_failure("uwisc")
        assert t.available("uwisc")
        t.record_failure("uwisc")
        assert not t.available("uwisc")
        assert t.blacklisted() == ("uwisc",)

    def test_filter_available_preserves_order(self):
        t, _ = self.tracker(threshold=1)
        t.record_failure("fnal")
        assert t.filter_available(["isi", "fnal", "uwisc"]) == ["isi", "uwisc"]

    def test_states_snapshot(self):
        t, clock = self.tracker(threshold=1, recovery=10.0)
        t.record_failure("uwisc")
        t.record_success("isi")
        assert t.states() == {"isi": "closed", "uwisc": "open"}
        clock.advance(11.0)
        assert t.states()["uwisc"] == "half-open"
        t.record_success("uwisc")
        assert t.states()["uwisc"] == "closed"

    def test_breaker_telemetry(self, enabled_telemetry):
        t, _ = self.tracker(threshold=1)
        t.record_failure("uwisc")
        registry = enabled_telemetry.get_registry()
        transitions = registry.get("resilience_breaker_transitions_total")
        assert transitions is not None
        assert transitions.value(site="uwisc", to="open") == 1.0
        open_gauge = registry.get("resilience_breaker_open")
        assert open_gauge is not None
        assert open_gauge.value(site="uwisc") == 1.0
