"""Resilience test fixtures: enabled telemetry with guaranteed teardown."""

from __future__ import annotations

import pytest

from repro import telemetry


@pytest.fixture()
def enabled_telemetry():
    """Fresh tracer + registry for one test; always disabled afterwards."""
    telemetry.enable()
    try:
        yield telemetry
    finally:
        telemetry.disable()


@pytest.fixture(autouse=True)
def _always_disabled_after():
    """Safety net: no test leaves the global runtime enabled."""
    yield
    telemetry.disable()
