"""Tests for the shared retry policy: backoff, jitter, deadline, classify."""

from __future__ import annotations

import pytest

from repro.core.errors import (
    PermanentServiceError,
    TransientServiceError,
)
from repro.resilience.retry import RetryPolicy, retry_call


class TestPolicyValidation:
    def test_max_attempts_floor(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-1.0)

    def test_jitter_bounds(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)


class TestDelaySchedule:
    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(base_delay_s=1.0, multiplier=2.0, jitter=0.0, max_delay_s=100.0)
        assert [policy.delay_for(k) for k in (1, 2, 3, 4)] == [1.0, 2.0, 4.0, 8.0]

    def test_max_delay_caps_ladder(self):
        policy = RetryPolicy(base_delay_s=1.0, multiplier=10.0, jitter=0.0, max_delay_s=5.0)
        assert policy.delay_for(4) == 5.0

    def test_jitter_is_deterministic_per_label_and_attempt(self):
        policy = RetryPolicy(base_delay_s=1.0, jitter=0.5, seed=3)
        again = RetryPolicy(base_delay_s=1.0, jitter=0.5, seed=3)
        assert policy.delay_for(1, "sia-query/a2151") == again.delay_for(1, "sia-query/a2151")
        assert policy.delay_for(1, "one") != policy.delay_for(1, "two")
        assert policy.delay_for(1, "one") != policy.delay_for(2, "one")

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(base_delay_s=1.0, multiplier=1.0, jitter=0.1)
        for attempt in range(1, 20):
            assert 0.9 <= policy.delay_for(attempt, "x") < 1.1


class Flaky:
    """Callable failing the first ``n`` invocations."""

    def __init__(self, n: int, exc: Exception | None = None) -> None:
        self.n = n
        self.calls = 0
        self.exc = exc if exc is not None else TransientServiceError("hiccup")

    def __call__(self) -> str:
        self.calls += 1
        if self.calls <= self.n:
            raise self.exc
        return "payload"


class TestRetryCall:
    POLICY = RetryPolicy(max_attempts=3, base_delay_s=0.25, jitter=0.0, seed=1)

    def test_success_passes_through(self):
        fn = Flaky(0)
        assert retry_call(fn, self.POLICY) == "payload"
        assert fn.calls == 1

    def test_transient_failures_absorbed(self):
        fn = Flaky(2)
        assert retry_call(fn, self.POLICY) == "payload"
        assert fn.calls == 3

    def test_attempt_budget_exhausts(self):
        fn = Flaky(3)
        with pytest.raises(TransientServiceError):
            retry_call(fn, self.POLICY)
        assert fn.calls == 3

    def test_permanent_failure_propagates_immediately(self):
        fn = Flaky(5, exc=PermanentServiceError("gone"))
        with pytest.raises(PermanentServiceError):
            retry_call(fn, self.POLICY)
        assert fn.calls == 1

    def test_none_policy_is_bare_call(self):
        fn = Flaky(1)
        with pytest.raises(TransientServiceError):
            retry_call(fn, None)
        assert fn.calls == 1

    def test_single_attempt_policy_is_bare_call(self):
        fn = Flaky(1)
        with pytest.raises(TransientServiceError):
            retry_call(fn, RetryPolicy(max_attempts=1))
        assert fn.calls == 1

    def test_deadline_abandons_ladder(self):
        # delays: 1.0, 2.0 — the second retry would exceed the 1.5 s budget.
        policy = RetryPolicy(
            max_attempts=5, base_delay_s=1.0, jitter=0.0, deadline_s=1.5, seed=1
        )
        fn = Flaky(10)
        with pytest.raises(TransientServiceError):
            retry_call(fn, policy)
        assert fn.calls == 2

    def test_on_backoff_sees_each_retry(self):
        events: list[tuple[int, float, str]] = []
        fn = Flaky(2)
        retry_call(
            fn,
            self.POLICY,
            label="probe",
            on_backoff=lambda a, d, e: events.append((a, d, type(e).__name__)),
        )
        assert [a for a, _, _ in events] == [1, 2]
        assert [d for _, d, _ in events] == [0.25, 0.5]
        assert all(kind == "TransientServiceError" for _, _, kind in events)

    def test_sleep_hook_serves_the_delay(self):
        slept: list[float] = []
        retry_call(Flaky(2), self.POLICY, sleep=slept.append)
        assert slept == [0.25, 0.5]

    def test_custom_classifier(self):
        fn = Flaky(1, exc=KeyError("odd"))
        assert (
            retry_call(fn, self.POLICY, classify=lambda e: isinstance(e, KeyError))
            == "payload"
        )
        assert fn.calls == 2
