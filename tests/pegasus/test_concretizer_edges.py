"""Edge-case tests for the concretizer's policies and error paths."""

from __future__ import annotations

import pytest

from repro.core.errors import PlanningError
from repro.pegasus.concretizer import Concretizer, default_pfn_resolver
from repro.pegasus.options import PlannerOptions
from repro.pegasus.site_selector import RoundRobinSiteSelector
from repro.rls.rls import ReplicaLocationService
from repro.tc.catalog import TransformationCatalog
from repro.workflow.abstract import AbstractJob, AbstractWorkflow


def make_parts(replica_sites=("A",)):
    rls = ReplicaLocationService()
    for site in ("A", "B", "C", "U"):
        rls.add_site(site)
    for site in replica_sites:
        rls.register("a", f"gsiftp://{site}.grid/data/a", site)
    tc = TransformationCatalog()
    tc.install("t", "B", "/bin/t")
    return rls, tc


def concretizer(rls, tc, **options):
    defaults = dict(output_site="U", site_selection="round-robin", replica_selection="first")
    defaults.update(options)
    return Concretizer(
        rls=rls,
        tc=tc,
        options=PlannerOptions(**defaults),
        site_selector=RoundRobinSiteSelector(),
    )


def one_job_workflow():
    return AbstractWorkflow([AbstractJob("j", "t", ("a",), ("b",))])


class TestReplicaSelection:
    def test_first_policy_deterministic(self):
        rls, tc = make_parts(replica_sites=("A", "C"))
        conc = concretizer(rls, tc, replica_selection="first")
        cw = conc.concretize(one_job_workflow())
        (stage_in,) = cw.transfer_nodes()[0:1]
        assert stage_in.source_site == "A"  # sorted order

    def test_random_policy_stays_within_replicas(self):
        rls, tc = make_parts(replica_sites=("A", "C"))
        sources = set()
        for seed in range(8):
            conc = concretizer(rls, tc, replica_selection="random", seed=seed)
            cw = conc.concretize(one_job_workflow())
            stage_ins = [t for t in cw.transfer_nodes() if t.lfn == "a"]
            sources.add(stage_ins[0].source_site)
        assert sources <= {"A", "C"}
        assert len(sources) == 2  # both replicas get used across seeds

    def test_unknown_policy_rejected(self):
        rls, tc = make_parts()
        conc = concretizer(rls, tc, replica_selection="closest")
        with pytest.raises(PlanningError):
            conc.concretize(one_job_workflow())

    def test_local_replica_preferred_over_policy(self):
        rls, tc = make_parts(replica_sites=("A", "B"))  # B is the exec site
        conc = concretizer(rls, tc, replica_selection="first")
        cw = conc.concretize(one_job_workflow())
        assert [t for t in cw.transfer_nodes() if t.lfn == "a"] == []


class TestPfnResolver:
    def test_default_scheme(self):
        assert default_pfn_resolver("isi", "x.fit") == "gsiftp://isi.grid/data/x.fit"

    def test_custom_resolver_used_in_nodes(self):
        rls, tc = make_parts()
        conc = Concretizer(
            rls=rls,
            tc=tc,
            options=PlannerOptions(output_site="U", replica_selection="first"),
            site_selector=RoundRobinSiteSelector(),
            pfn_resolver=lambda site, lfn: f"file:///{site}/{lfn}",
        )
        cw = conc.concretize(one_job_workflow())
        stage_out = [t for t in cw.transfer_nodes() if t.lfn == "b"][0]
        assert stage_out.dest_pfn == "file:///U/b"

    def test_size_estimator_applied(self):
        rls, tc = make_parts()
        conc = Concretizer(
            rls=rls,
            tc=tc,
            options=PlannerOptions(output_site=None, replica_selection="first"),
            site_selector=RoundRobinSiteSelector(),
            size_estimator=lambda lfn: 777,
        )
        cw = conc.concretize(one_job_workflow())
        assert all(t.size_bytes == 777 for t in cw.transfer_nodes())


class TestMissingReplica:
    def test_no_replica_anywhere_is_planning_error(self):
        rls, tc = make_parts(replica_sites=())
        conc = concretizer(rls, tc)
        from repro.core.errors import InfeasibleWorkflowError

        with pytest.raises(InfeasibleWorkflowError):
            conc.concretize(one_job_workflow())
