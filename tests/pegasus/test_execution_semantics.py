"""Execution-semantics property test for the concretizer.

The strongest invariant a planner must satisfy: *walking the concrete
workflow in any topological order, every node's data is where it needs to
be when the node runs* — transfer sources exist, compute inputs are at the
execution site, registrations point at files that exist.  We check it over
randomly generated workflows, RLS states and planner policies.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pegasus.options import PlannerOptions
from repro.pegasus.planner import PegasusPlanner
from repro.rls.rls import ReplicaLocationService
from repro.tc.catalog import TransformationCatalog
from repro.workflow.abstract import AbstractJob, AbstractWorkflow
from repro.workflow.concrete import (
    ComputeNode,
    ConcreteWorkflow,
    RegistrationNode,
    TransferNode,
)

SITES = ["isi", "uwisc", "fnal"]
STORE = "store"


@st.composite
def planning_scenarios(draw):
    """A random layered workflow + RLS contents + planner policy."""
    n_layers = draw(st.integers(1, 3))
    jobs: list[AbstractJob] = []
    raw_files = [f"raw{i}" for i in range(draw(st.integers(1, 3)))]
    previous = list(raw_files)
    all_products: list[str] = []
    for layer in range(n_layers):
        layer_outputs: list[str] = []
        for j in range(draw(st.integers(1, 3))):
            inputs = tuple(
                draw(st.lists(st.sampled_from(previous), min_size=1, max_size=2, unique=True))
            )
            out = f"f{layer}_{j}"
            jobs.append(
                AbstractJob(f"job{layer}_{j}", f"t{draw(st.integers(0, 1))}", inputs, (out,))
            )
            layer_outputs.append(out)
            all_products.append(out)
        previous = layer_outputs
    # materialise a random subset of intermediate products
    cached = draw(st.lists(st.sampled_from(all_products), unique=True, max_size=len(all_products)))
    policy = draw(st.sampled_from(["random", "round-robin"]))
    output_site = draw(st.sampled_from([None, STORE]))
    seed = draw(st.integers(0, 100))
    return jobs, raw_files, cached, policy, output_site, seed


def check_execution_semantics(cw: ConcreteWorkflow, rls: ReplicaLocationService) -> None:
    """Walk the DAG; assert data locality at every step."""
    # (site, lfn) pairs available before anything runs: RLS replicas
    available: set[tuple[str, str]] = set()
    for lfn in _all_lfns(cw):
        for replica in rls.lookup(lfn):
            available.add((replica.site, lfn))

    for node_id in cw.dag.topological_order():
        payload = cw.dag.payload(node_id)
        if isinstance(payload, TransferNode):
            assert (payload.source_site, payload.lfn) in available, (
                f"transfer {node_id} sources {payload.lfn} from {payload.source_site} "
                "where it does not exist"
            )
            available.add((payload.dest_site, payload.lfn))
        elif isinstance(payload, ComputeNode):
            for lfn in payload.job.inputs:
                assert (payload.site, lfn) in available, (
                    f"compute {node_id} at {payload.site} missing input {lfn}"
                )
            for lfn in payload.job.outputs:
                available.add((payload.site, lfn))
        elif isinstance(payload, RegistrationNode):
            assert (payload.site, payload.lfn) in available, (
                f"registration {node_id} publishes {payload.lfn}@{payload.site} "
                "before the file exists there"
            )


def _all_lfns(cw: ConcreteWorkflow) -> set[str]:
    lfns: set[str] = set()
    for _, payload in cw.dag.payloads():
        if isinstance(payload, TransferNode):
            lfns.add(payload.lfn)
        elif isinstance(payload, ComputeNode):
            lfns.update(payload.job.inputs)
            lfns.update(payload.job.outputs)
        elif isinstance(payload, RegistrationNode):
            lfns.add(payload.lfn)
    return lfns


class TestExecutionSemantics:
    @given(planning_scenarios())
    @settings(max_examples=60)
    def test_planned_workflows_are_executable(self, scenario):
        jobs, raw_files, cached, policy, output_site, seed = scenario
        rls = ReplicaLocationService()
        for site in (*SITES, STORE):
            rls.add_site(site)
        for lfn in raw_files:
            rls.register(lfn, f"gsiftp://{STORE}.grid/data/{lfn}", STORE)
        for lfn in cached:
            rls.register(lfn, f"gsiftp://{STORE}.grid/data/{lfn}", STORE)
        tc = TransformationCatalog()
        for site in SITES:
            tc.install("t0", site, "/bin/t0")
        tc.install("t1", SITES[0], "/bin/t1")  # t1 only at one site

        planner = PegasusPlanner(
            rls,
            tc,
            PlannerOptions(
                output_site=output_site,
                site_selection=policy,
                replica_selection="random",
                seed=seed,
            ),
        )
        plan = planner.plan(AbstractWorkflow(jobs))
        check_execution_semantics(plan.concrete, rls)

        # and the requested final products end where they were promised
        requested = plan.abstract.final_products()
        if output_site is not None:
            # after the walk every requested file must exist at the output
            # site or have been satisfied from the RLS there
            available = {
                (t.dest_site, t.lfn) for t in plan.concrete.transfer_nodes()
            } | {
                (n.site, lfn)
                for n in plan.concrete.compute_nodes()
                for lfn in n.job.outputs
            } | {
                (r.site, r.lfn) for lfn in requested for r in rls.lookup(lfn)
            }
            for lfn in requested:
                assert (output_site, lfn) in available
