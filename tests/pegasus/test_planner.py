"""Tests for the concretizer and the end-to-end planner (Figures 2 and 4)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import InfeasibleWorkflowError, PlanningError
from repro.pegasus.concretizer import Concretizer
from repro.pegasus.options import PlannerOptions
from repro.pegasus.planner import PegasusPlanner
from repro.pegasus.site_selector import RoundRobinSiteSelector
from repro.pegasus.submit import generate_submit_files
from repro.rls.rls import ReplicaLocationService
from repro.tc.catalog import TransformationCatalog
from repro.workflow.abstract import AbstractJob, AbstractWorkflow
from repro.workflow.concrete import ComputeNode, TransferKind


def grid(*materialised: str):
    rls = ReplicaLocationService()
    for site in ("A", "B", "C", "U"):
        rls.add_site(site)
    for lfn in materialised:
        rls.register(lfn, f"gsiftp://A.grid/data/{lfn}", "A")
    tc = TransformationCatalog()
    tc.install("t1", "B", "/bin/t1")
    tc.install("t2", "B", "/bin/t2")
    return rls, tc


def chain() -> AbstractWorkflow:
    return AbstractWorkflow(
        [
            AbstractJob("d1", "t1", inputs=("a",), outputs=("b",)),
            AbstractJob("d2", "t2", inputs=("b",), outputs=("c",)),
        ]
    )


def options(**kwargs) -> PlannerOptions:
    defaults = dict(output_site="U", site_selection="round-robin", replica_selection="first")
    defaults.update(kwargs)
    return PlannerOptions(**defaults)


class TestFeasibility:
    def test_missing_input_rejected(self):
        rls, tc = grid()  # 'a' absent
        planner = PegasusPlanner(rls, tc, options())
        with pytest.raises(InfeasibleWorkflowError):
            planner.plan(chain())

    def test_present_input_accepted(self):
        rls, tc = grid("a")
        PegasusPlanner(rls, tc, options()).plan(chain())

    def test_unknown_transformation_rejected(self):
        rls, _ = grid("a")
        planner = PegasusPlanner(rls, TransformationCatalog(), options())
        with pytest.raises(PlanningError):
            planner.plan(chain())


class TestFigure4Shape:
    def test_reduced_concrete_workflow(self):
        """Figure 3 -> Figure 4: move b, run d2@B, move c to U, register."""
        rls, tc = grid("a", "b")
        plan = PegasusPlanner(rls, tc, options()).plan(chain())
        cw = plan.concrete
        assert [j.job_id for j in plan.reduced.jobs()] == ["d2"]
        stats = cw.stats()
        assert stats["compute"] == 1
        assert stats["stage_in"] == 1
        assert stats["stage_out"] == 1
        assert stats["registration"] == 1
        # order: transfer -> compute -> transfer -> registration
        order = cw.dag.topological_order()
        kinds = [type(cw.dag.payload(n)).__name__ for n in order]
        assert kinds == ["TransferNode", "ComputeNode", "TransferNode", "RegistrationNode"]

    def test_local_replica_skips_stage_in(self):
        rls, tc = grid("a")
        rls.register("a", "gsiftp://B.grid/data/a", "B")  # replica at the exec site
        plan = PegasusPlanner(rls, tc, options()).plan(chain())
        assert plan.concrete.stats()["stage_in"] == 0

    def test_inter_site_transfer_when_jobs_split(self):
        rls, tc = grid("a")
        tc.install("t2", "C", "/bin/t2")  # force d2 elsewhere
        opts = options(site_selection="least-loaded")
        # least-loaded with capacities drives t1->B (only choice), t2->C or B;
        # use round-robin instead for determinism across the two jobs
        plan = PegasusPlanner(
            rls, tc, options(), site_capacities={"B": 1, "C": 1}
        ).plan(chain())
        cw = plan.concrete
        sites = {n.job.job_id: n.site for n in cw.compute_nodes()}
        if sites["d1"] != sites["d2"]:
            assert cw.stats()["inter_site"] == 1
        else:
            assert cw.stats()["inter_site"] == 0

    def test_no_output_site_no_stage_out(self):
        rls, tc = grid("a")
        plan = PegasusPlanner(rls, tc, options(output_site=None)).plan(chain())
        assert plan.concrete.stats()["stage_out"] == 0
        # registration happens at the execution site
        regs = plan.concrete.registration_nodes()
        assert {r.site for r in regs} == {"B"}

    def test_registration_disabled(self):
        rls, tc = grid("a")
        plan = PegasusPlanner(rls, tc, options(register_outputs=False)).plan(chain())
        assert plan.concrete.stats()["registration"] == 0

    def test_fully_satisfied_delivery_only(self):
        rls, tc = grid("a", "c")
        plan = PegasusPlanner(rls, tc, options()).plan(chain())
        assert plan.reduction.fully_satisfied
        stats = plan.concrete.stats()
        assert stats["compute"] == 0
        assert stats["stage_out"] == 1  # deliver the cached c to U

    def test_fully_satisfied_already_at_output_site(self):
        rls, tc = grid("a")
        rls.register("c", "gsiftp://U.grid/data/c", "U")
        plan = PegasusPlanner(rls, tc, options()).plan(chain())
        assert len(plan.concrete) == 0

    def test_reduction_disabled_keeps_jobs(self):
        rls, tc = grid("a", "b", "c")
        plan = PegasusPlanner(rls, tc, options(enable_reduction=False)).plan(chain())
        assert plan.concrete.stats()["compute"] == 2


class TestSharedInputDedup:
    def test_one_stage_in_per_site(self):
        rls = ReplicaLocationService()
        for site in ("A", "B"):
            rls.add_site(site)
        rls.register("shared", "gsiftp://A.grid/data/shared", "A")
        tc = TransformationCatalog()
        tc.install("t", "B", "/bin/t")
        wf = AbstractWorkflow(
            [
                AbstractJob("j1", "t", inputs=("shared",), outputs=("o1",)),
                AbstractJob("j2", "t", inputs=("shared",), outputs=("o2",)),
            ]
        )
        plan = PegasusPlanner(rls, tc, PlannerOptions(site_selection="round-robin")).plan(wf)
        assert plan.concrete.stats()["stage_in"] == 1
        # both jobs depend on that single transfer node
        transfer = plan.concrete.transfer_nodes(TransferKind.STAGE_IN)[0]
        children = plan.concrete.dag.children(transfer.node_id)
        assert {"job-j1", "job-j2"} <= children


class TestFigure2Events:
    def test_event_sequence(self):
        rls, tc = grid("a", "b")
        planner = PegasusPlanner(rls, tc, options())
        planner.plan(chain())
        kinds = planner.events.kinds()
        expected_order = [
            "abstract-workflow-received",
            "request-manager-dispatch",
            "rls-resolution",
            "dag-reduction",
            "tc-resolution",
            "concrete-workflow",
            "submit-files-generated",
        ]
        positions = [kinds.index(k) for k in expected_order]
        assert positions == sorted(positions)

    def test_reduction_event_detail(self):
        rls, tc = grid("a", "b")
        planner = PegasusPlanner(rls, tc, options())
        planner.plan(chain())
        (event,) = planner.events.of_kind("dag-reduction")
        assert event.detail["before"] == 2
        assert event.detail["after"] == 1
        assert event.detail["pruned"] == 1


class TestSubmitFiles:
    def test_generated_for_every_node(self):
        rls, tc = grid("a")
        plan = PegasusPlanner(rls, tc, options()).plan(chain())
        submit = plan.submit
        assert len(submit) == len(plan.concrete)
        assert submit.dag_file.count("JOB ") == len(plan.concrete)

    def test_parent_child_lines_match_edges(self):
        rls, tc = grid("a")
        plan = PegasusPlanner(rls, tc, options()).plan(chain())
        for parent, child in plan.concrete.dag.edges():
            assert f"PARENT {parent} CHILD {child}" in plan.submit.dag_file

    def test_compute_submit_contents(self):
        rls, tc = grid("a")
        plan = PegasusPlanner(rls, tc, options()).plan(chain())
        compute_ids = [n.node_id for n in plan.concrete.compute_nodes()]
        text = plan.submit.submit_files[compute_ids[0]]
        assert "universe = globus" in text
        assert "executable = /bin/t" in text

    def test_transfer_submit_uses_globus_url_copy(self):
        rls, tc = grid("a")
        plan = PegasusPlanner(rls, tc, options()).plan(chain())
        transfer = plan.concrete.transfer_nodes()[0]
        assert "globus-url-copy" in plan.submit.submit_files[transfer.node_id]
