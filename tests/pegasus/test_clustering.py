"""Tests for horizontal job clustering."""

from __future__ import annotations

import pytest

from repro.condor.local import ExecutableRegistry, LocalExecutor
from repro.condor.pool import CondorPool, GridTopology
from repro.condor.simulator import GridSimulator, SimulationOptions
from repro.pegasus.clustering import cluster_workflow
from repro.pegasus.options import PlannerOptions
from repro.pegasus.planner import PegasusPlanner
from repro.rls.rls import ReplicaLocationService
from repro.rls.site import StorageSite
from repro.tc.catalog import TransformationCatalog
from repro.workflow.abstract import AbstractJob, AbstractWorkflow
from repro.workflow.concrete import ClusteredComputeNode


def plan_fan(n=9, pools=("isi",)):
    rls = ReplicaLocationService()
    for site in (*pools, "store"):
        rls.add_site(site)
    tc = TransformationCatalog()
    for pool in pools:
        tc.install("galMorph", pool, "/bin/galmorph")
    tc.install("concatVOTable", "store", "/bin/concat")
    jobs = []
    for i in range(n):
        rls.register(f"g{i}.fit", f"gsiftp://store.grid/data/g{i}.fit", "store")
        jobs.append(AbstractJob(f"d{i}", "galMorph", (f"g{i}.fit",), (f"g{i}.txt",)))
    jobs.append(
        AbstractJob("cat", "concatVOTable", tuple(f"g{i}.txt" for i in range(n)), ("all.vot",))
    )
    planner = PegasusPlanner(
        rls, tc, PlannerOptions(output_site="store", site_selection="round-robin")
    )
    return planner.plan(AbstractWorkflow(jobs)), rls


class TestClusterWorkflow:
    def test_groups_by_site_and_size(self):
        plan, _ = plan_fan(9)
        clustered = cluster_workflow(plan.concrete, max_cluster_size=4)
        bundles = clustered.clustered_nodes()
        # 9 same-site galMorph jobs -> bundles of 4+4 and a singleton left plain
        assert sorted(len(b) for b in bundles) == [4, 4]
        assert clustered.total_compute_jobs() == plan.concrete.total_compute_jobs()

    def test_never_spans_sites(self):
        plan, _ = plan_fan(12, pools=("isi", "uwisc", "fnal"))
        clustered = cluster_workflow(plan.concrete, max_cluster_size=8)
        for bundle in clustered.clustered_nodes():
            assert len({m.site for m in bundle.members}) == 1

    def test_acyclic_and_dependencies_preserved(self):
        plan, _ = plan_fan(9)
        clustered = cluster_workflow(plan.concrete, max_cluster_size=3)
        clustered.validate()
        # the concat job still depends (transitively) on every bundle
        concat_ids = [
            node_id
            for node_id, payload in clustered.dag.payloads()
            if getattr(payload, "transformation", "") == "concatVOTable"
        ]
        assert len(concat_ids) == 1
        ancestors = clustered.dag.ancestors(concat_ids[0])
        for bundle in clustered.clustered_nodes():
            assert bundle.node_id in ancestors

    def test_transformation_filter(self):
        plan, _ = plan_fan(6)
        clustered = cluster_workflow(
            plan.concrete, max_cluster_size=3, transformations={"concatVOTable"}
        )
        assert clustered.clustered_nodes() == []  # only one concat: singleton

    def test_size_validation(self):
        plan, _ = plan_fan(4)
        with pytest.raises(ValueError):
            cluster_workflow(plan.concrete, max_cluster_size=0)

    def test_cluster_node_validation(self):
        plan, _ = plan_fan(4)
        member = plan.concrete.compute_nodes()[0]
        with pytest.raises(ValueError):
            ClusteredComputeNode("c", (member,), member.site)


class TestClusteredExecution:
    def test_simulator_amortises_overhead(self):
        plan, _ = plan_fan(12)
        topo = GridTopology()
        topo.add_pool(CondorPool("isi", slots=1))  # serialise everything
        opts = SimulationOptions(runtime_jitter=0.0, job_overhead_s=30.0)
        plain = GridSimulator(topo, opts).execute(plan.concrete)
        clustered_cw = cluster_workflow(plan.concrete, max_cluster_size=6)
        clustered = GridSimulator(topo, opts).execute(clustered_cw)
        assert plain.succeeded and clustered.succeeded
        # 12 jobs x 30s overhead vs 2 bundles x 30s: ~300s saved
        assert plain.makespan - clustered.makespan == pytest.approx(300.0, abs=1.0)

    def test_local_executor_runs_members(self):
        plan, rls = plan_fan(6)
        clustered_cw = cluster_workflow(plan.concrete, max_cluster_size=3)
        sites = {name: StorageSite(name) for name in ("isi", "store")}
        for i in range(6):
            sites["store"].put(sites["store"].pfn_for(f"g{i}.fit"), b"img")
        registry = ExecutableRegistry()
        registry.register("galMorph", lambda job, inputs: {job.outputs[0]: b"m"})
        registry.register(
            "concatVOTable",
            lambda job, inputs: {job.outputs[0]: b"|".join(inputs[l] for l in job.inputs)},
        )
        executor = LocalExecutor(sites, registry, rls)
        report = executor.execute(clustered_cw)
        assert report.succeeded
        assert sites["store"].get(sites["store"].pfn_for("all.vot")) == b"m|m|m|m|m|m"
        # provenance recorded per member, not per bundle
        assert len(executor.provenance) == 7


class TestClusteredSubmitFiles:
    def test_seqexec_submit_generated(self):
        from repro.pegasus.submit import generate_submit_files

        plan, _ = plan_fan(6)
        clustered_cw = cluster_workflow(plan.concrete, max_cluster_size=3)
        submit = generate_submit_files(clustered_cw, dag_name="clustered")
        bundle_ids = [b.node_id for b in clustered_cw.clustered_nodes()]
        assert bundle_ids
        for bundle_id in bundle_ids:
            text = submit.submit_files[bundle_id]
            assert "seqexec" in text
            assert text.count("# member ") == 3
        assert submit.dag_file.count("JOB ") == len(clustered_cw)


class TestClusteringProperties:
    def test_reachability_preserved_random_plans(self):
        """Clustering must preserve every ordering constraint: if node A
        preceded node B in the original workflow, A's bundle still precedes
        B's bundle (or they share one)."""
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @st.composite
        def cases(draw):
            n = draw(st.integers(3, 20))
            pools = draw(st.sampled_from([("isi",), ("isi", "uwisc"), ("isi", "uwisc", "fnal")]))
            size = draw(st.integers(2, 6))
            return n, pools, size

        @settings(max_examples=25, deadline=None)
        @given(cases())
        def check(case):
            n, pools, size = case
            plan, _ = plan_fan(n, pools=pools)
            original = plan.concrete
            clustered = cluster_workflow(original, max_cluster_size=size)
            clustered.validate()
            # map original node -> clustered node
            mapping = {}
            for node_id, payload in clustered.dag.payloads():
                if isinstance(payload, ClusteredComputeNode):
                    for member in payload.members:
                        mapping[member.node_id] = node_id
                else:
                    mapping[node_id] = node_id
            # reachability: every original edge ordering survives
            for parent, child in original.dag.edges():
                mp, mc = mapping[parent], mapping[child]
                if mp == mc:
                    continue  # same bundle: seqexec order handles it
                assert mp in ({mc} | clustered.dag.ancestors(mc)), (
                    f"{parent}->{child} ordering lost after clustering"
                )
            assert clustered.total_compute_jobs() == original.total_compute_jobs()

        check()
