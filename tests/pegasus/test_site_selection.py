"""Tests for site-selection policies."""

from __future__ import annotations

import pytest

from repro.core.errors import PlanningError
from repro.pegasus.site_selector import (
    LeastLoadedSiteSelector,
    RandomSiteSelector,
    RoundRobinSiteSelector,
    make_site_selector,
)

SITES = ["isi", "uwisc", "fnal"]


class TestRandom:
    def test_choices_from_candidates(self):
        selector = RandomSiteSelector(seed=1)
        for i in range(50):
            assert selector.choose(f"j{i}", SITES) in SITES

    def test_seeded_reproducible(self):
        a = [RandomSiteSelector(seed=5).choose(f"j{i}", SITES) for i in range(10)]
        b = [RandomSiteSelector(seed=5).choose(f"j{i}", SITES) for i in range(10)]
        # each selector re-created: same seed -> same first choice
        assert a[0] == b[0]

    def test_spreads_over_sites(self):
        selector = RandomSiteSelector(seed=3)
        chosen = {selector.choose(f"j{i}", SITES) for i in range(100)}
        assert chosen == set(SITES)

    def test_empty_candidates(self):
        with pytest.raises(PlanningError):
            RandomSiteSelector().choose("j", [])


class TestRoundRobin:
    def test_cycles_sorted(self):
        selector = RoundRobinSiteSelector()
        chosen = [selector.choose(f"j{i}", SITES) for i in range(6)]
        assert chosen == ["fnal", "isi", "uwisc", "fnal", "isi", "uwisc"]

    def test_counter_shared_across_candidate_sets(self):
        selector = RoundRobinSiteSelector()
        selector.choose("a", SITES)
        assert selector.choose("b", ["only"]) == "only"
        # counter advanced twice; next three-way pick continues the cycle
        assert selector.choose("c", SITES) == "uwisc"


class TestLeastLoaded:
    def test_balances_by_capacity(self):
        selector = LeastLoadedSiteSelector({"big": 30, "small": 10})
        counts = {"big": 0, "small": 0}
        for i in range(40):
            counts[selector.choose(f"j{i}", ["big", "small"])] += 1
        assert counts["big"] == 30 and counts["small"] == 10

    def test_requires_capacities(self):
        with pytest.raises(ValueError):
            LeastLoadedSiteSelector({"x": 0})

    def test_unknown_sites_rejected(self):
        selector = LeastLoadedSiteSelector({"a": 1})
        with pytest.raises(PlanningError):
            selector.choose("j", ["b", "c"])


class TestFactory:
    def test_known_policies(self):
        assert isinstance(make_site_selector("random"), RandomSiteSelector)
        assert isinstance(make_site_selector("round-robin"), RoundRobinSiteSelector)
        assert isinstance(
            make_site_selector("least-loaded", capacities={"a": 1}), LeastLoadedSiteSelector
        )

    def test_least_loaded_needs_capacities(self):
        with pytest.raises(PlanningError):
            make_site_selector("least-loaded")

    def test_unknown_policy(self):
        with pytest.raises(PlanningError):
            make_site_selector("alphabetical")
