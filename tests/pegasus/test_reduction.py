"""Tests for Abstract DAG Reduction, including the invariant property:
reduction never removes a job whose output is still needed and absent."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pegasus.reduction import reduce_workflow
from repro.rls.rls import ReplicaLocationService
from repro.workflow.abstract import AbstractJob, AbstractWorkflow


def make_rls(*lfns: str) -> ReplicaLocationService:
    rls = ReplicaLocationService()
    rls.add_site("store")
    for lfn in lfns:
        rls.register(lfn, f"gsiftp://store/{lfn}", "store")
    return rls


def chain_workflow() -> AbstractWorkflow:
    return AbstractWorkflow(
        [
            AbstractJob("d1", "t1", inputs=("a",), outputs=("b",)),
            AbstractJob("d2", "t2", inputs=("b",), outputs=("c",)),
        ]
    )


class TestFigure3:
    def test_nothing_materialised_keeps_all(self):
        result = reduce_workflow(chain_workflow(), make_rls("a"))
        assert {j.job_id for j in result.workflow.jobs()} == {"d1", "d2"}
        assert result.pruned_jobs == ()

    def test_intermediate_materialised_prunes_producer(self):
        result = reduce_workflow(chain_workflow(), make_rls("a", "b"))
        assert {j.job_id for j in result.workflow.jobs()} == {"d2"}
        assert result.pruned_jobs == ("d1",)
        assert result.reused_lfns == ("b",)

    def test_final_materialised_prunes_everything(self):
        result = reduce_workflow(chain_workflow(), make_rls("a", "c"))
        assert result.fully_satisfied
        assert set(result.pruned_jobs) == {"d1", "d2"}
        assert result.reused_lfns == ("c",)

    def test_requested_intermediate(self):
        # requesting b with b materialised: nothing to run
        result = reduce_workflow(chain_workflow(), make_rls("b"), requested_lfns=["b"])
        assert result.fully_satisfied

    def test_unknown_request_rejected(self):
        with pytest.raises(ValueError):
            reduce_workflow(chain_workflow(), make_rls(), requested_lfns=["zzz"])


class TestDiamond:
    def diamond(self) -> AbstractWorkflow:
        return AbstractWorkflow(
            [
                AbstractJob("left", "make", inputs=("src",), outputs=("L",)),
                AbstractJob("right", "make", inputs=("src",), outputs=("R",)),
                AbstractJob("merge", "join", inputs=("L", "R"), outputs=("final",)),
            ]
        )

    def test_one_branch_materialised(self):
        result = reduce_workflow(self.diamond(), make_rls("src", "L"))
        assert {j.job_id for j in result.workflow.jobs()} == {"right", "merge"}
        assert result.reused_lfns == ("L",)

    def test_multi_output_job_partially_materialised(self):
        wf = AbstractWorkflow(
            [
                AbstractJob("gen", "t", inputs=("src",), outputs=("x", "y")),
                AbstractJob("use", "t2", inputs=("x", "y"), outputs=("final",)),
            ]
        )
        # only x exists: gen must still run (y is needed and absent)
        result = reduce_workflow(wf, make_rls("src", "x"))
        assert {j.job_id for j in result.workflow.jobs()} == {"gen", "use"}


@st.composite
def random_workflow_and_materialised(draw):
    """A random layered workflow plus a random set of materialised files."""
    n_layers = draw(st.integers(1, 4))
    jobs: list[AbstractJob] = []
    previous_files = [f"raw{i}" for i in range(draw(st.integers(1, 3)))]
    all_files = list(previous_files)
    counter = 0
    for layer in range(n_layers):
        layer_files: list[str] = []
        for j in range(draw(st.integers(1, 3))):
            inputs = tuple(
                draw(st.lists(st.sampled_from(previous_files), min_size=1, max_size=2, unique=True))
            )
            out = f"f{layer}_{j}"
            counter += 1
            jobs.append(AbstractJob(f"job{layer}_{j}", "t", inputs=inputs, outputs=(out,)))
            layer_files.append(out)
            all_files.append(out)
        previous_files = layer_files
    materialised = draw(st.lists(st.sampled_from(all_files), max_size=len(all_files), unique=True))
    return AbstractWorkflow(jobs), set(materialised), {f for f in all_files if f.startswith("raw")}


class TestReductionInvariants:
    @given(random_workflow_and_materialised())
    def test_every_needed_file_obtainable(self, case):
        """After reduction every input of every kept job is either produced
        by another kept job or exists in the RLS; requested products are
        produced or reused."""
        workflow, materialised, raw = case
        rls = make_rls(*(materialised | raw))
        requested = workflow.final_products()
        result = reduce_workflow(workflow, rls, requested)
        kept = result.workflow
        kept_products = kept.products()
        for job in kept.jobs():
            for lfn in job.inputs:
                assert lfn in kept_products or rls.exists(lfn), (
                    f"input {lfn} of {job.job_id} neither produced nor materialised"
                )
        for lfn in requested:
            assert lfn in kept_products or rls.exists(lfn)

    @given(random_workflow_and_materialised())
    def test_no_unnecessary_jobs(self, case):
        """Every kept job's outputs feed (transitively) a requested file
        that is not materialised."""
        workflow, materialised, raw = case
        rls = make_rls(*(materialised | raw))
        result = reduce_workflow(workflow, rls)
        kept = result.workflow
        # any job whose every output is materialised should have been pruned
        for job in kept.jobs():
            assert not all(rls.exists(lfn) for lfn in job.outputs), (
                f"job {job.job_id} kept although all outputs exist"
            )

    @given(random_workflow_and_materialised())
    def test_monotone(self, case):
        """Materialising more files never increases the kept-job count."""
        workflow, materialised, raw = case
        smaller = reduce_workflow(workflow, make_rls(*(materialised | raw)))
        baseline = reduce_workflow(workflow, make_rls(*raw))
        assert len(smaller.workflow) <= len(baseline.workflow)
