"""Tests for abstract/concrete workflow models, DAX and rendering."""

from __future__ import annotations

import pytest

from repro.core.errors import WorkflowError
from repro.workflow.abstract import AbstractJob, AbstractWorkflow
from repro.workflow.concrete import (
    ComputeNode,
    ConcreteWorkflow,
    RegistrationNode,
    TransferKind,
    TransferNode,
)
from repro.workflow.dax import parse_dax, write_dax
from repro.workflow.viz import render_ascii, to_dot


def job(job_id, transformation="t", inputs=(), outputs=("out",), **params):
    return AbstractJob(
        job_id=job_id,
        transformation=transformation,
        inputs=tuple(inputs),
        outputs=tuple(outputs),
        parameters={k: str(v) for k, v in params.items()},
    )


class TestAbstractJob:
    def test_requires_outputs(self):
        with pytest.raises(WorkflowError):
            job("j", outputs=())

    def test_input_output_overlap_rejected(self):
        with pytest.raises(WorkflowError):
            job("j", inputs=("x",), outputs=("x",))


class TestAbstractWorkflow:
    def test_dataflow_edges(self):
        wf = AbstractWorkflow(
            [job("a", outputs=("f1",)), job("b", inputs=("f1",), outputs=("f2",))]
        )
        assert wf.dag.edges() == [("a", "b")]

    def test_out_of_order_insertion(self):
        wf = AbstractWorkflow()
        wf.add_job(job("consumer", inputs=("mid",), outputs=("end",)))
        wf.add_job(job("producer", outputs=("mid",)))
        assert wf.dag.edges() == [("producer", "consumer")]

    def test_duplicate_producer_rejected(self):
        wf = AbstractWorkflow([job("a", outputs=("f",))])
        with pytest.raises(WorkflowError):
            wf.add_job(job("b", outputs=("f",)))

    def test_required_inputs_and_products(self):
        wf = AbstractWorkflow(
            [
                job("a", inputs=("raw",), outputs=("mid",)),
                job("b", inputs=("mid", "raw2"), outputs=("end",)),
            ]
        )
        assert wf.required_inputs() == {"raw", "raw2"}
        assert wf.products() == {"mid", "end"}
        assert wf.final_products() == {"end"}
        assert wf.producer_of("mid") == "a"
        assert wf.producer_of("raw") is None

    def test_copy_is_independent(self):
        wf = AbstractWorkflow([job("a")])
        clone = wf.copy()
        clone.add_job(job("b", inputs=("out",), outputs=("more",)))
        assert len(wf) == 1 and len(clone) == 2


class TestConcreteWorkflow:
    def _sample(self) -> ConcreteWorkflow:
        cw = ConcreteWorkflow()
        move = TransferNode(
            "x1", "b", TransferKind.STAGE_IN, "A", "gsiftp://A/b", "B", "gsiftp://B/b", 100
        )
        compute = ComputeNode("j1", job("d2", inputs=("b",), outputs=("c",)), "B", "/bin/t")
        out = TransferNode(
            "x2", "c", TransferKind.STAGE_OUT, "B", "gsiftp://B/c", "U", "gsiftp://U/c", 50
        )
        reg = RegistrationNode("r1", "c", "gsiftp://U/c", "U")
        for node in (move, compute, out, reg):
            cw.add(node)
        cw.link("x1", "j1")
        cw.link("j1", "x2")
        cw.link("x2", "r1")
        return cw

    def test_typed_views(self):
        cw = self._sample()
        assert len(cw.compute_nodes()) == 1
        assert len(cw.transfer_nodes()) == 2
        assert len(cw.transfer_nodes(TransferKind.STAGE_IN)) == 1
        assert len(cw.registration_nodes()) == 1

    def test_stats(self):
        stats = self._sample().stats()
        assert stats == {
            "compute": 1,
            "clustered": 0,
            "transfer": 2,
            "stage_in": 1,
            "inter_site": 0,
            "stage_out": 1,
            "registration": 1,
            "bytes_moved": 150,
        }

    def test_validate(self):
        cw = self._sample()
        cw.validate()
        cw.link("r1", "x1")
        with pytest.raises(WorkflowError):
            cw.validate()

    def test_render_ascii_mentions_figure4_steps(self):
        text = render_ascii(self._sample().dag)
        assert "move b A->B" in text
        assert "t@B" in text
        assert "register c" in text

    def test_to_dot_shapes(self):
        dot = to_dot(self._sample().dag)
        assert "shape=box" in dot and "shape=ellipse" in dot and "shape=diamond" in dot


class TestDax:
    def _workflow(self) -> AbstractWorkflow:
        return AbstractWorkflow(
            [
                job("d1", "t1", inputs=("a",), outputs=("b",), p="1"),
                job("d2", "t2", inputs=("b",), outputs=("c",)),
            ]
        )

    def test_roundtrip(self):
        wf = self._workflow()
        back = parse_dax(write_dax(wf, name="fig1"))
        assert {j.job_id for j in back.jobs()} == {"d1", "d2"}
        assert back.dag.edges() == wf.dag.edges()
        assert back.job("d1").parameters == {"p": "1"}

    def test_rejects_non_dax(self):
        with pytest.raises(ValueError):
            parse_dax("<html/>")

    def test_rejects_edge_mismatch(self):
        text = write_dax(self._workflow())
        # corrupt: drop the child/parent element
        broken = text.replace('<child ref="d2">', '<child ref="d1">').replace(
            '<parent ref="d1" />', '<parent ref="d2" />'
        )
        with pytest.raises(ValueError):
            parse_dax(broken)

    def test_bytes_accepted(self):
        wf = self._workflow()
        assert len(parse_dax(write_dax(wf).encode())) == 2
