"""Tests for the DAG core, cross-validated against networkx."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import WorkflowError
from repro.workflow.dag import DAG


def chain(n=4) -> DAG:
    dag: DAG[str] = DAG()
    for i in range(n):
        dag.add_node(f"n{i}", f"payload{i}")
    for i in range(n - 1):
        dag.add_edge(f"n{i}", f"n{i+1}")
    return dag


class TestConstruction:
    def test_duplicate_node(self):
        dag = chain(2)
        with pytest.raises(WorkflowError):
            dag.add_node("n0", "x")

    def test_edge_unknown_node(self):
        dag = chain(2)
        with pytest.raises(WorkflowError):
            dag.add_edge("n0", "ghost")

    def test_self_loop(self):
        dag = chain(2)
        with pytest.raises(WorkflowError):
            dag.add_edge("n0", "n0")

    def test_remove_node(self):
        dag = chain(3)
        dag.remove_node("n1")
        assert "n1" not in dag
        assert dag.children("n0") == set()
        assert dag.parents("n2") == set()
        with pytest.raises(WorkflowError):
            dag.remove_node("n1")

    def test_payload_access(self):
        dag = chain(2)
        assert dag.payload("n1") == "payload1"
        with pytest.raises(WorkflowError):
            dag.payload("ghost")


class TestQueries:
    def test_roots_and_leaves(self):
        dag = chain(3)
        assert dag.roots() == ["n0"]
        assert dag.leaves() == ["n2"]

    def test_diamond_relationships(self):
        dag: DAG[None] = DAG()
        for name in "abcd":
            dag.add_node(name, None)
        dag.add_edge("a", "b")
        dag.add_edge("a", "c")
        dag.add_edge("b", "d")
        dag.add_edge("c", "d")
        assert dag.ancestors("d") == {"a", "b", "c"}
        assert dag.descendants("a") == {"b", "c", "d"}
        assert dag.parents("d") == {"b", "c"}

    def test_depth_levels(self):
        dag = chain(3)
        assert dag.depth_levels() == [["n0"], ["n1"], ["n2"]]


class TestToposort:
    def test_cycle_detected(self):
        dag = chain(3)
        dag.add_edge("n2", "n0")
        with pytest.raises(WorkflowError):
            dag.topological_order()
        with pytest.raises(WorkflowError):
            dag.validate()

    def test_deterministic_by_insertion_order(self):
        dag: DAG[None] = DAG()
        for name in ("z", "a", "m"):
            dag.add_node(name, None)
        assert dag.topological_order() == ["z", "a", "m"]

    @given(
        st.integers(2, 12).flatmap(
            lambda n: st.lists(
                st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                    lambda e: e[0] < e[1]
                ),
                max_size=30,
            ).map(lambda edges: (n, edges))
        )
    )
    def test_matches_networkx_on_random_dags(self, case):
        n, edges = case
        dag: DAG[None] = DAG()
        g = nx.DiGraph()
        for i in range(n):
            dag.add_node(str(i), None)
            g.add_node(str(i))
        for u, v in set(edges):
            dag.add_edge(str(u), str(v))
            g.add_edge(str(u), str(v))
        order = dag.topological_order()
        # valid linearisation: every edge goes forward
        position = {node: i for i, node in enumerate(order)}
        assert all(position[u] < position[v] for u, v in g.edges)
        assert len(order) == n
        # ancestors agree with networkx
        for node in g.nodes:
            assert dag.ancestors(node) == nx.ancestors(g, node)
            assert dag.descendants(node) == nx.descendants(g, node)
