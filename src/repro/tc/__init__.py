"""Transformation Catalog (Deelman 2001).

"The Transformation Catalog performs the mapping between a logical
component name and the location of the corresponding executables on
specific compute resources.  The Transformation Catalog can also be used to
annotate the components with the creation information" (§3.2).
"""

from repro.tc.catalog import TCEntry, TransformationCatalog

__all__ = ["TCEntry", "TransformationCatalog"]
