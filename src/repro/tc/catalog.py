"""Transformation Catalog: logical transformation -> per-site executables."""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


@dataclass(frozen=True)
class TCEntry:
    """One installed executable for a logical transformation.

    Attributes
    ----------
    transformation:
        Logical component name (matches :class:`AbstractJob.transformation`).
    site:
        Compute resource where the executable is installed.
    path:
        Physical path of the executable at that site.
    annotations:
        Creation/provenance metadata (compiler, version, author, ...).
    """

    transformation: str
    site: str
    path: str
    annotations: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.transformation or not self.site or not self.path:
            raise ValueError("TCEntry requires transformation, site and path")


class TransformationCatalog:
    """Queryable store of :class:`TCEntry` records.

    "Pegasus queries the catalog to determine if the components are
    available in the execution environment and to identify their
    locations."
    """

    def __init__(self) -> None:
        self._entries: dict[str, list[TCEntry]] = {}
        self._lock = threading.Lock()
        self.query_count = 0

    def add(self, entry: TCEntry) -> None:
        with self._lock:
            existing = self._entries.setdefault(entry.transformation, [])
            if any(e.site == entry.site and e.path == entry.path for e in existing):
                raise ValueError(
                    f"duplicate TC entry: {entry.transformation!r} at "
                    f"{entry.site!r}:{entry.path!r}"
                )
            existing.append(entry)

    def install(self, transformation: str, site: str, path: str, **annotations: str) -> TCEntry:
        """Convenience constructor + add."""
        entry = TCEntry(transformation, site, path, dict(annotations))
        self.add(entry)
        return entry

    def query(self, transformation: str, site: str | None = None) -> list[TCEntry]:
        """Entries for a transformation, optionally restricted to one site."""
        with self._lock:
            self.query_count += 1
            entries = list(self._entries.get(transformation, ()))
        if site is not None:
            entries = [e for e in entries if e.site == site]
        return entries

    def sites_providing(self, transformation: str) -> list[str]:
        """Sites where the transformation is installed, sorted."""
        return sorted({e.site for e in self.query(transformation)})

    def transformations(self) -> list[str]:
        with self._lock:
            return list(self._entries)

    def __contains__(self, transformation: str) -> bool:
        with self._lock:
            return transformation in self._entries
