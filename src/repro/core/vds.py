"""The GriPhyN Virtual Data System facade.

Chimera + Pegasus + RLS + TC + DAGMan wired together: "Chimera and Pegasus
are part of the GriPhyN Virtual Data System (VDS) which enables efficient
on-demand data derivation" (§3.2).  A user of this class speaks only in
virtual data terms — *define* derivations, *request* logical files — and
the system plans and executes whatever is needed, reusing anything already
materialised.
"""

from __future__ import annotations

from typing import Iterable

from typing import TYPE_CHECKING

from repro.condor.local import ExecutableRegistry, LocalExecutor
from repro.condor.pool import GridTopology
from repro.condor.report import ExecutionReport
from repro.condor.simulator import GridSimulator, SimulationOptions
from repro.core.errors import ExecutionError
from repro.core.provenance import ProvenanceStore
from repro.pegasus.options import PlannerOptions
from repro.pegasus.planner import PegasusPlanner, PlanResult
from repro.adaptive.selector import PredictiveSiteSelector
from repro.pegasus.site_selector import (
    HealthAwareSiteSelector,
    SiteSelector,
    make_site_selector,
)
from repro.resilience.breaker import SiteHealthTracker
from repro.resilience.retry import RetryPolicy
from repro.rls.rls import ReplicaLocationService

if TYPE_CHECKING:  # pragma: no cover
    from repro.adaptive import AdaptiveController
    from repro.faults.plan import FaultInjector
from repro.rls.site import StorageSite
from repro.tc.catalog import TransformationCatalog
from repro.utils.events import EventLog
from repro.vdl.catalog import VirtualDataCatalog
from repro.vdl.composer import compose_workflow


class VirtualDataSystem:
    """One Grid's worth of virtual-data machinery.

    Parameters
    ----------
    topology:
        Compute pools and network model; every pool automatically gets a
        co-located storage site.
    planner_options:
        Pegasus configuration (output site, policies, reduction toggle).
    simulation_options:
        Discrete-event simulator configuration, used by ``mode="simulate"``.
    """

    def __init__(
        self,
        topology: GridTopology | None = None,
        planner_options: PlannerOptions | None = None,
        simulation_options: SimulationOptions | None = None,
        max_workers: int = 8,
        faults: "FaultInjector | None" = None,
        health: SiteHealthTracker | None = None,
        gram_retry: RetryPolicy | None = None,
        adaptive: "AdaptiveController | None" = None,
    ) -> None:
        self.topology = topology if topology is not None else GridTopology.default_demo()
        self.events = EventLog()
        self.vdc = VirtualDataCatalog()
        #: chaos fault oracle shared by the RLS and both execution engines
        self.faults = faults
        #: per-site circuit-breaker ledger: executors feed it, planning
        #: consults it (health-aware site selection routes replans around
        #: sites whose breaker is OPEN)
        self.health = health
        self.gram_retry = gram_retry
        #: adaptive-execution layer: cost-predictive site selection wraps
        #: the configured policy, and both executors speculate/autoscale
        #: against its shared estimator.  ``None`` keeps planning and
        #: execution byte-for-byte identical to the static system.
        self.adaptive = adaptive
        self.rls = ReplicaLocationService(self.events, faults=faults)
        self.tc = TransformationCatalog()
        self.registry = ExecutableRegistry()
        self.provenance = ProvenanceStore()
        self.sites: dict[str, StorageSite] = {}
        for pool_name in self.topology.pools:
            self.add_storage_site(pool_name)
        self.planner_options = planner_options if planner_options is not None else PlannerOptions()
        self.simulation_options = simulation_options if simulation_options is not None else SimulationOptions()
        self.max_workers = max_workers

        self._planner = PegasusPlanner(
            rls=self.rls,
            tc=self.tc,
            options=self.planner_options,
            site_capacities=self.topology.capacities(),
            pfn_resolver=self._pfn_resolver,
            size_estimator=self._size_estimator,
            event_log=self.events,
            site_selector_factory=(
                self._adaptive_selector
                if self.health is not None or self._predictive_enabled()
                else None
            ),
        )

    def _predictive_enabled(self) -> bool:
        return self.adaptive is not None and self.adaptive.predictive

    def _adaptive_selector(self) -> "SiteSelector":
        """Planner hook: the configured policy, cost-predicted by the
        latency estimator when the adaptive layer is armed, then filtered
        by site health.  Health gating wraps *outside* prediction so an
        OPEN breaker vetoes even the cheapest-looking site."""
        selector: "SiteSelector" = make_site_selector(
            self.planner_options.site_selection,
            seed=self.planner_options.seed,
            capacities=self.topology.capacities(),
        )
        if self._predictive_enabled():
            assert self.adaptive is not None
            selector = PredictiveSiteSelector(
                selector,
                self.adaptive.estimator,
                capacities=self.topology.capacities(),
                hysteresis=self.adaptive.hysteresis,
            )
        if self.health is not None:
            selector = HealthAwareSiteSelector(selector, self.health)
        return selector

    # -- wiring helpers --------------------------------------------------------
    def _pfn_resolver(self, site: str, lfn: str) -> str:
        if site in self.sites:
            return self.sites[site].pfn_for(lfn)
        return f"gsiftp://{site}.grid/data/{lfn}"

    def _size_estimator(self, lfn: str) -> int:
        """Plan-time size from any existing replica's storage; 0 if unknown."""
        for replica in self.rls.lookup(lfn):
            site = self.sites.get(replica.site)
            if site is not None and site.exists(replica.pfn):
                return site.size(replica.pfn)
        return 0

    def add_storage_site(self, name: str, base_url: str | None = None) -> StorageSite:
        """Register a storage site with both the byte store and the RLS."""
        if name in self.sites:
            raise ValueError(f"storage site {name!r} already exists")
        site = StorageSite(name, base_url)
        self.sites[name] = site
        self.rls.add_site(name)
        return site

    def publish(self, lfn: str, content: bytes, site_name: str) -> str:
        """Store real bytes at a site and register the replica; returns PFN."""
        site = self.sites[site_name]
        pfn = site.pfn_for(lfn)
        site.put(pfn, content)
        self.rls.register(lfn, pfn, site_name)
        return pfn

    def retrieve(self, lfn: str) -> bytes:
        """Fetch a materialised logical file from any replica."""
        for replica in self.rls.lookup(lfn):
            site = self.sites.get(replica.site)
            if site is not None and site.exists(replica.pfn):
                return site.get(replica.pfn)
        raise ExecutionError(f"no retrievable replica of {lfn!r}")

    # -- the virtual-data API ------------------------------------------------------
    def define(self, vdl_text: str) -> tuple[int, int]:
        """Ingest VDL text into the Chimera catalog; returns (#TR, #DV)."""
        return self.vdc.define(vdl_text)

    def plan(self, requested_lfns: Iterable[str]) -> PlanResult:
        """Chimera composition + Pegasus planning for the requested files."""
        requested = list(requested_lfns)
        abstract = compose_workflow(self.vdc, requested)
        self.events.emit(0.0, "chimera", "abstract-workflow-composed", jobs=len(abstract))
        return self._planner.plan(abstract, requested)

    def execute(
        self,
        plan: PlanResult,
        mode: str = "local",
        completed: set[str] | None = None,
        forced_failures: dict[str, int] | None = None,
    ) -> ExecutionReport:
        """Run a plan for real (``"local"``) or in virtual time (``"simulate"``).

        ``completed`` pre-marks nodes DONE (rescue-DAG resume: a
        resubmission skips everything a failed run finished).
        ``forced_failures`` is a fault-injection override; in local mode the
        configured :attr:`simulation_options.forced_failures` map applies
        too, so one chaos knob drives both engines.  Both maps are
        validated against the plan's DAG — unknown node ids raise
        :class:`~repro.core.errors.ExecutionError`.
        """
        if mode == "local":
            executor = LocalExecutor(
                sites=self.sites,
                registry=self.registry,
                rls=self.rls,
                max_workers=self.max_workers,
                provenance=self.provenance,
                event_log=self.events,
                forced_failures=self.simulation_options.forced_failures,
                faults=self.faults,
                health=self.health,
                gram_retry=self.gram_retry,
                adaptive=self.adaptive,
            )
            return executor.execute(
                plan.concrete, completed=completed, forced_failures=forced_failures
            )
        if mode == "simulate":
            simulator = GridSimulator(
                topology=self.topology,
                options=self.simulation_options,
                size_lookup=self._size_estimator,
                event_log=self.events,
                faults=self.faults,
                health=self.health,
                adaptive=self.adaptive,
            )
            return simulator.execute(
                plan.concrete, completed=completed, forced_failures=forced_failures
            )
        raise ValueError(f"unknown execution mode {mode!r}; use 'local' or 'simulate'")

    def materialize(self, requested_lfns: Iterable[str], mode: str = "local") -> tuple[PlanResult, ExecutionReport]:
        """Plan + execute in one step — 'ask for Y and the system figures
        out how to compute Y' (§3.3)."""
        plan = self.plan(requested_lfns)
        report = self.execute(plan, mode=mode)
        return plan, report

    def materialize_by_metadata(
        self, mode: str = "local", **metadata: str
    ) -> tuple[PlanResult, ExecutionReport]:
        """Ask for data by application metadata, not by file name.

        GriPhyN's virtual-data promise: the caller names *what the data is
        about* (e.g. ``cluster="A1656"``, ``band="r"``); the VDC resolves
        matching derivations to logical files and the system materialises
        them.
        """
        lfns = self.vdc.find_outputs_by_metadata(**metadata)
        if not lfns:
            raise ExecutionError(f"no derivations annotated with {metadata!r}")
        return self.materialize(lfns, mode=mode)

    def explain(self, lfn: str) -> str:
        """Answer "how was this file made?" from the provenance store."""
        return self.provenance.lineage_text(lfn)
