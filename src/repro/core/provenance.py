"""Provenance: the virtual-data bookkeeping GriPhyN attaches to products.

"GriPhyN puts data both raw and derived under the umbrella of Virtual
Data" — every materialised file can answer *how it was made*: which
derivation, which transformation, which site, when, from which inputs.
The provenance store records one :class:`InvocationRecord` per executed
compute node and indexes them by output logical file.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


@dataclass(frozen=True)
class InvocationRecord:
    """One completed (or failed) transformation invocation."""

    job_id: str
    transformation: str
    site: str
    start_time: float
    end_time: float
    inputs: tuple[str, ...]
    outputs: tuple[str, ...]
    parameters: dict[str, str] = field(default_factory=dict)
    success: bool = True

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time


class ProvenanceStore:
    """Append-only store of invocation records, indexed by output LFN."""

    def __init__(self) -> None:
        self._records: list[InvocationRecord] = []
        self._by_output: dict[str, InvocationRecord] = {}
        self._lock = threading.Lock()

    def record(self, invocation: InvocationRecord) -> None:
        with self._lock:
            self._records.append(invocation)
            if invocation.success:
                for lfn in invocation.outputs:
                    self._by_output[lfn] = invocation

    def lineage(self, lfn: str) -> list[InvocationRecord]:
        """The derivation chain behind ``lfn``, outputs-first.

        Walks producing invocations transitively through their inputs;
        stops at raw data (no recorded producer).
        """
        chain: list[InvocationRecord] = []
        seen: set[str] = set()
        frontier = [lfn]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            with self._lock:
                producer = self._by_output.get(current)
            if producer is None:
                continue
            chain.append(producer)
            frontier.extend(producer.inputs)
        return chain

    def producer(self, lfn: str) -> InvocationRecord | None:
        with self._lock:
            return self._by_output.get(lfn)

    def records(self) -> list[InvocationRecord]:
        with self._lock:
            return list(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    # -- export / explanation ------------------------------------------------
    def lineage_text(self, lfn: str) -> str:
        """Human-readable derivation history of ``lfn``, outputs-first.

        This is the "how was this made?" answer virtual data promises; the
        CLI's ``explain`` subcommand prints it.
        """
        chain = self.lineage(lfn)
        if not chain:
            return f"{lfn}: raw data (no recorded derivation)"
        lines = [f"{lfn} was derived by:"]
        for record in chain:
            status = "ok" if record.success else "FAILED"
            lines.append(
                f"  {record.job_id}: {record.transformation} @ {record.site} "
                f"[{status}, {record.duration:.2f}s]"
                + (f"  <- {', '.join(record.inputs)}" if record.inputs else "")
            )
        return "\n".join(lines)

    def to_json(self) -> str:
        """Serialise every invocation record as JSON (provenance archive)."""
        import json
        from dataclasses import asdict

        return json.dumps([asdict(r) for r in self.records()], indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ProvenanceStore":
        import json

        store = cls()
        for raw in json.loads(text):
            raw["inputs"] = tuple(raw["inputs"])
            raw["outputs"] = tuple(raw["outputs"])
            store.record(InvocationRecord(**raw))
        return store
