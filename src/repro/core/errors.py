"""Exception hierarchy for the reproduction.

Every failure mode a caller may want to handle distinctly gets its own
class; all inherit :class:`ReproError` so library consumers can catch the
whole family at once.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all library errors."""


class VDLSyntaxError(ReproError):
    """Malformed Virtual Data Language input (Chimera front-end)."""


class WorkflowError(ReproError):
    """Structural workflow problem: cycles, unknown nodes, bad edges."""


class PlanningError(ReproError):
    """Pegasus could not map the abstract workflow onto the Grid."""


class InfeasibleWorkflowError(PlanningError):
    """Root input files of the workflow are not present anywhere in the RLS.

    Mirrors §3.2: "The workflow can only be executed if the input files for
    these components can be found to exist somewhere in the Grid."
    """


class ExecutionError(ReproError):
    """DAGMan/Condor-G execution failed beyond recovery (no rescue)."""


class ServiceError(ReproError):
    """An NVO service (cone search, SIA, compute service) rejected a call."""


class TransientServiceError(ServiceError):
    """A service call failed in a way that is worth retrying.

    Models the transient failure modes of 2003-era archive stacks: dropped
    connections, 5xx-style server hiccups, overload shedding.  The shared
    retry policy (:mod:`repro.resilience.retry`) retries exactly this
    family; everything else propagates immediately.
    """


class ServiceTimeoutError(TransientServiceError):
    """The service did not answer inside the transport timeout.

    A timeout is charged at the *full* timeout on the
    :class:`~repro.services.transport.CostMeter` — waiting for nothing is
    the most expensive way a call can fail.
    """


class MalformedResponseError(TransientServiceError):
    """The service answered, but the payload failed validation.

    Truncated VOTables and corrupt FITS blocks are transmission-level
    damage, not server state: a retry re-renders the response and is
    expected to succeed.
    """


class PermanentServiceError(ServiceError):
    """A service failure no retry can fix: bad request, unknown resource,
    archive decommissioned.  The retry layer must give up immediately."""


class TransportError(ReproError):
    """Data movement failure (fetch of a URL, stage-in/out of a file)."""


class TransientTransportError(TransportError):
    """A transfer failed for reasons a retry (or another replica) can fix:
    GridFTP connection reset, busy storage server, stage-in flake."""


class StaleReplicaError(TransportError):
    """An RLS mapping points at a PFN that no longer exists.

    The replica-failover path unregisters the stale entry on verification
    failure and tries the next replica; only when *no* replica verifies
    does this propagate.
    """


def is_transient(exc: BaseException) -> bool:
    """Is this failure worth retrying?

    The single classification point the retry layer, the portal boundary
    and the scheduler's requeue decision all share.  Unknown exception
    types are conservatively treated as permanent.
    """
    return isinstance(exc, (TransientServiceError, TransientTransportError))


class SchedulerError(ReproError):
    """The multi-tenant workload manager rejected or mishandled a job."""


class QueueFullError(SchedulerError):
    """Global backpressure: the submission queue is at its depth bound."""


class QuotaExceededError(SchedulerError):
    """Per-user admission control: the tenant is at its active-job quota."""


class UnknownJobError(SchedulerError):
    """A job id that the workload manager has never seen."""
