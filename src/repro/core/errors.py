"""Exception hierarchy for the reproduction.

Every failure mode a caller may want to handle distinctly gets its own
class; all inherit :class:`ReproError` so library consumers can catch the
whole family at once.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all library errors."""


class VDLSyntaxError(ReproError):
    """Malformed Virtual Data Language input (Chimera front-end)."""


class WorkflowError(ReproError):
    """Structural workflow problem: cycles, unknown nodes, bad edges."""


class PlanningError(ReproError):
    """Pegasus could not map the abstract workflow onto the Grid."""


class InfeasibleWorkflowError(PlanningError):
    """Root input files of the workflow are not present anywhere in the RLS.

    Mirrors §3.2: "The workflow can only be executed if the input files for
    these components can be found to exist somewhere in the Grid."
    """


class ExecutionError(ReproError):
    """DAGMan/Condor-G execution failed beyond recovery (no rescue)."""


class ServiceError(ReproError):
    """An NVO service (cone search, SIA, compute service) rejected a call."""


class TransportError(ReproError):
    """Data movement failure (fetch of a URL, stage-in/out of a file)."""


class SchedulerError(ReproError):
    """The multi-tenant workload manager rejected or mishandled a job."""


class QueueFullError(SchedulerError):
    """Global backpressure: the submission queue is at its depth bound."""


class QuotaExceededError(SchedulerError):
    """Per-user admission control: the tenant is at its active-job quota."""


class UnknownJobError(SchedulerError):
    """A job id that the workload manager has never seen."""
