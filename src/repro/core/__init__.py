"""Core: the GriPhyN Virtual Data System facade and shared infrastructure.

The paper's primary contribution is the *integration*: Chimera (virtual
data language + abstract workflow composition) and Pegasus (planning,
reduction, concretization) over RLS / Transformation Catalog / DAGMan,
exposed to astronomers through a portal.  :class:`repro.core.vds.
VirtualDataSystem` is that integration as a library object; the portal and
web service of :mod:`repro.portal` drive it exactly as Figures 2, 5 and 6
describe.
"""

from repro.core.errors import (
    ExecutionError,
    InfeasibleWorkflowError,
    PlanningError,
    ReproError,
    ServiceError,
    TransportError,
    VDLSyntaxError,
    WorkflowError,
)
from repro.core.provenance import InvocationRecord, ProvenanceStore


def __getattr__(name: str):
    # VirtualDataSystem pulls in every subsystem; import it lazily so that
    # subsystem modules can depend on repro.core.errors without a cycle.
    if name == "VirtualDataSystem":
        from repro.core.vds import VirtualDataSystem

        return VirtualDataSystem
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ReproError",
    "VDLSyntaxError",
    "WorkflowError",
    "PlanningError",
    "InfeasibleWorkflowError",
    "ExecutionError",
    "ServiceError",
    "TransportError",
    "InvocationRecord",
    "ProvenanceStore",
    "VirtualDataSystem",
]
