"""The shard fleet coordinator: routing, aggregation, rebalance.

:class:`ShardFleet` is the multi-process form of the workload manager: it
spawns one :mod:`~repro.shard.worker` process per shard, routes every
submission by sky tile (cluster -> :func:`~repro.shard.tiling.tile_for_cluster`
-> :meth:`~repro.shard.ring.ConsistentHashRing.node_for`), and presents
the single-manager facade the serving tier already speaks — ``submit`` /
``job`` / ``jobs`` / ``wait`` / ``snapshot`` / ``queue_depth`` /
``result_bytes`` — so :class:`~repro.serve.app.ServeApp` runs sharded
without a special code path.

Rebalance is the part worth reading.  When a worker dies (detected by a
broken pipe or a reaped process), the coordinator:

1. drops the shard from the ring — its tiles remap to the survivors,
   each moving to exactly one new owner (consistent hashing's bounded
   remapping);
2. replays the dead shard's journal from disk — append-only JSONL with a
   torn-tail-tolerant reader, so even SIGKILL mid-write loses at most the
   half-written line;
3. archives the terminal jobs (their results remain answerable through
   the shared signature store) and **resubmits** the interrupted ones to
   the tiles' new owners, keeping an old-id -> new-id alias so tenants
   polling a relocated job never see a 404;
4. folds the dead shard's fair-share usage into the coordinator's ledger
   so global debts survive the crash.

Because every runner is deterministic and results are keyed by
derivation signature (not by shard), a relocated job either re-derives
byte-identical output or short-circuits on the signature directory — the
fleet-wide recovery invariant the chaos ``worker-crash`` profile asserts.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Mapping

import multiprocessing as mp

from repro import telemetry
from repro.core.errors import SchedulerError, UnknownJobError
from repro.scheduler.job import JobRecord, JobState, TERMINAL_STATES
from repro.scheduler.journal import JobJournal, global_fingerprint, merge_states
from repro.scheduler.policy import AdmissionPolicy, FairShareScheduler
from repro.shard.directory import SignatureStore
from repro.shard.ring import ConsistentHashRing
from repro.shard.tiling import DEFAULT_LEVEL, tile_for_cluster
from repro.shard.worker import (
    WorkerConfig,
    raise_remote,
    record_from_payload,
    worker_main,
)

#: Default per-request pipe timeout.  Every op the coordinator issues is
#: non-blocking on the worker side, so a silence this long means death.
REQUEST_TIMEOUT_S = 60.0

#: Poll cadence for wait/drain (coordinator-side; workers stay idle).
POLL_INTERVAL_S = 0.02


@dataclass
class _WorkerHandle:
    """Coordinator-side state for one shard worker."""

    name: str
    config: WorkerConfig
    process: Any
    conn: Any
    lock: threading.Lock
    alive: bool = True


class ShardFleet:
    """Spawn, route, aggregate and heal a set of shard workers."""

    def __init__(
        self,
        data_dir: str | os.PathLike[str],
        shards: int = 4,
        *,
        shard_names: tuple[str, ...] | None = None,
        name_prefix: str = "s",
        tile_level: int = DEFAULT_LEVEL,
        runner: str = "synthetic",
        base_seconds: float = 0.005,
        spread_seconds: float = 0.01,
        total_slots: int = 16,
        slots_per_job: int = 4,
        max_workers: int = 2,
        seed: int = 2003,
        fault_profile: str = "",
        clusters: tuple[str, ...] = (),
        admission: AdmissionPolicy | None = None,
        request_timeout_s: float = REQUEST_TIMEOUT_S,
    ) -> None:
        if shard_names is None:
            if shards < 1:
                raise ValueError(f"a fleet needs at least one shard, got {shards}")
            shard_names = tuple(f"{name_prefix}{i}" for i in range(shards))
        if len(set(shard_names)) != len(shard_names):
            raise ValueError(f"duplicate shard names: {shard_names}")
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.tile_level = tile_level
        self.request_timeout_s = request_timeout_s
        #: mirrored policy so the serving tier can size its tenant gate;
        #: actual admission happens inside each worker's manager.
        self.admission = admission if admission is not None else AdmissionPolicy()
        self.store = SignatureStore(self.data_dir / "sigstore")
        self.ring = ConsistentHashRing(shard_names)
        self._ctx = mp.get_context("spawn")
        self._lock = threading.RLock()  # topology + alias map
        self._workers: dict[str, _WorkerHandle] = {}
        self._aliases: dict[str, str] = {}  # relocated old id -> new id
        self._archived: dict[str, JobRecord] = {}  # dead shards' terminal jobs
        self._dead_usage: dict[str, float] = {}  # fair-share ledger of the dead
        self._dead_shards: list[str] = []
        self._configs = {
            name: WorkerConfig(
                shard=name,
                journal_path=str(self.journal_path(name)),
                store_root=str(self.data_dir / "sigstore"),
                runner=runner,
                base_seconds=base_seconds,
                spread_seconds=spread_seconds,
                total_slots=total_slots,
                slots_per_job=slots_per_job,
                max_workers=max_workers,
                seed=seed,
                fault_profile=fault_profile,
                telemetry_enabled=telemetry.enabled(),
                clusters=tuple(clusters),
            )
            for name in shard_names
        }
        self._started = False

    # -- lifecycle -------------------------------------------------------------
    def journal_path(self, shard: str) -> Path:
        return self.data_dir / f"journal-{shard}.jsonl"

    def start(self, ready_timeout_s: float = 60.0) -> None:
        """Spawn every worker and wait for its ready handshake."""
        with self._lock:
            if self._started:
                return
            for name, config in self._configs.items():
                self._spawn(name, config, ready_timeout_s)
            self._started = True

    def _spawn(self, name: str, config: WorkerConfig, ready_timeout_s: float) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=worker_main,
            args=(config, child_conn),
            name=f"shard-{name}",
            daemon=True,
        )
        process.start()
        child_conn.close()  # parent keeps only its end: EOF surfaces death
        if not parent_conn.poll(ready_timeout_s):
            process.kill()
            process.join()
            raise SchedulerError(f"shard {name!r} did not come up in {ready_timeout_s}s")
        ready = parent_conn.recv()
        if not (isinstance(ready, dict) and ready.get("ready")):
            process.kill()
            process.join()
            raise SchedulerError(f"shard {name!r} sent a malformed handshake: {ready!r}")
        self._workers[name] = _WorkerHandle(
            name=name,
            config=config,
            process=process,
            conn=parent_conn,
            lock=threading.Lock(),
        )

    def close(self) -> None:
        """Stop every worker; guaranteed leak-free (kill stragglers)."""
        with self._lock:
            handles = list(self._workers.values())
            self._started = False
        for handle in handles:
            if handle.alive and handle.process.is_alive():
                try:
                    with handle.lock:
                        handle.conn.send({"op": "stop"})
                        handle.conn.poll(5.0)
                except (OSError, EOFError, BrokenPipeError):
                    pass
            handle.process.join(timeout=5.0)
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join()
            handle.alive = False
            try:
                handle.conn.close()
            except OSError:
                pass

    def __enter__(self) -> "ShardFleet":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # convenience aliases so the fleet drops into manager-shaped call sites
    stop = close

    # -- placement -------------------------------------------------------------
    def shard_names(self) -> list[str]:
        with self._lock:
            return [n for n, h in self._workers.items() if h.alive]

    def placement(self, cluster: str) -> tuple[str, str]:
        """(tile id, owning shard) for a cluster under the current ring."""
        tile = tile_for_cluster(cluster, self.tile_level)
        with self._lock:
            return tile.tile_id, self.ring.node_for(tile.tile_id)

    # -- the wire --------------------------------------------------------------
    def _request(self, name: str, req: Mapping[str, Any]) -> dict[str, Any]:
        with self._lock:
            handle = self._workers.get(name)
        if handle is None or not handle.alive:
            raise SchedulerError(f"shard {name!r} is not serving")
        try:
            with handle.lock:
                handle.conn.send(dict(req))
                if not handle.conn.poll(self.request_timeout_s):
                    raise EOFError(f"shard {name!r}: no reply in {self.request_timeout_s}s")
                reply = handle.conn.recv()
        except (OSError, EOFError, BrokenPipeError) as exc:
            self._handle_death(name)
            raise SchedulerError(f"shard {name!r} died mid-request: {exc}") from exc
        if not reply.get("ok", False):
            raise_remote(reply, name)
        return reply

    # -- death detection + rebalance -------------------------------------------
    def reap(self) -> list[str]:
        """Detect dead workers and rebalance; returns the shards reaped."""
        with self._lock:
            dead = [
                h.name
                for h in self._workers.values()
                if h.alive and not h.process.is_alive()
            ]
        for name in dead:
            self._handle_death(name)
        return dead

    def kill_worker(self, name: str) -> None:
        """SIGKILL one shard (chaos harness + tests), then rebalance."""
        with self._lock:
            handle = self._workers.get(name)
        if handle is None:
            raise KeyError(f"no shard {name!r}")
        handle.process.kill()
        handle.process.join()
        self._handle_death(name)

    def _handle_death(self, name: str) -> None:
        with self._lock:
            handle = self._workers.get(name)
            if handle is None or not handle.alive:
                return  # already rebalanced
            handle.alive = False
            self._dead_shards.append(name)
            if name in self.ring:
                self.ring.remove_node(name)
            try:
                handle.conn.close()
            except OSError:
                pass
        handle.process.join(timeout=5.0)
        if handle.process.is_alive():  # pragma: no cover - kill() already sent
            handle.process.kill()
            handle.process.join()
        telemetry.count("shard_worker_deaths_total", shard=name)
        self._rebalance_from(name)

    def _rebalance_from(self, name: str) -> None:
        """Recover a dead shard's jobs from its journal (crash replay)."""
        state = JobJournal(self.journal_path(name)).replay()
        interrupted = state.queued_jobs()
        relocated = 0
        with self._lock:
            for user, cost in state.usage.items():
                self._dead_usage[user] = self._dead_usage.get(user, 0.0) + cost
            for record in state.jobs.values():
                if record.state in TERMINAL_STATES:
                    self._archived[record.job_id] = record
        if not self.shard_names():
            raise SchedulerError(
                f"shard {name!r} died and no survivors remain to rebalance onto"
            )
        for record in interrupted:
            replacement = self.submit(
                record.spec.user,
                record.spec.cluster,
                options=record.spec.options_dict() or None,
                priority=record.spec.priority,
            )
            with self._lock:
                self._aliases[record.job_id] = replacement.job_id
            relocated += 1
        telemetry.count("shard_jobs_relocated_total", amount=float(relocated), **{"from": name})

    # -- routing helpers --------------------------------------------------------
    def _resolve(self, job_id: str) -> tuple[str, str]:
        """(owning shard, canonical id) for a job id, following aliases."""
        with self._lock:
            seen = set()
            while job_id in self._aliases:
                if job_id in seen:  # pragma: no cover - alias cycles are a bug
                    raise SchedulerError(f"alias cycle at {job_id!r}")
                seen.add(job_id)
                job_id = self._aliases[job_id]
            shard = job_id.split("-job-", 1)[0]
            if "-job-" not in job_id or shard not in self._workers:
                raise UnknownJobError(f"no such job {job_id!r}")
        return shard, job_id

    # -- the manager facade -----------------------------------------------------
    def submit(
        self,
        user: str,
        cluster: str,
        options: Mapping[str, Any] | None = None,
        priority: int = 0,
    ) -> JobRecord:
        """Route one submission to its tile's shard; heals on a dead owner."""
        for _ in range(len(self._configs) + 1):
            tile_id, shard = self.placement(cluster)
            try:
                reply = self._request(shard, {
                    "op": "submit",
                    "user": user,
                    "cluster": cluster,
                    "options": dict(options) if options else None,
                    "priority": priority,
                })
            except SchedulerError as exc:
                if "died mid-request" in str(exc) or "is not serving" in str(exc):
                    continue  # ring already healed; re-route to the new owner
                raise
            record = record_from_payload(reply["job"])
            record.extra["tile"] = tile_id
            telemetry.count("shard_routed_jobs_total", shard=shard, tile=tile_id)
            return record
        raise SchedulerError(f"no live shard accepts cluster {cluster!r}")

    def job(self, job_id: str) -> JobRecord:
        with self._lock:
            archived = self._archived.get(self._aliases.get(job_id, job_id))
        if archived is not None:
            return archived
        shard, canonical = self._resolve(job_id)
        return record_from_payload(self._request(shard, {"op": "job", "job_id": canonical})["job"])

    def jobs(self) -> list[JobRecord]:
        records: dict[str, JobRecord] = {}
        for name in self.shard_names():
            try:
                reply = self._request(name, {"op": "jobs"})
            except SchedulerError:
                continue  # shard died mid-listing; survivors still answer
            for payload in reply["jobs"]:
                record = record_from_payload(payload)
                records[record.job_id] = record
        with self._lock:
            for job_id, record in self._archived.items():
                records.setdefault(job_id, record)
        return sorted(records.values(), key=lambda r: (r.shard, r.seq))

    def cancel(self, job_id: str) -> bool:
        shard, canonical = self._resolve(job_id)
        return bool(self._request(shard, {"op": "cancel", "job_id": canonical})["cancelled"])

    def wait(self, job_id: str, timeout: float | None = None) -> JobRecord:
        """Poll until terminal; survives a mid-wait rebalance via aliases."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            self.reap()
            try:
                record = self.job(job_id)
            except SchedulerError as exc:
                if isinstance(exc, UnknownJobError):
                    raise
                record = None  # owner died this instant; alias lands next loop
            if record is not None and record.terminal:
                return record
            if deadline is not None and time.monotonic() >= deadline:
                raise SchedulerError(f"timed out after {timeout}s waiting for {job_id}")
            time.sleep(POLL_INTERVAL_S)

    def drain(self, timeout: float | None = None) -> None:
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            self.reap()
            if self.queue_depth() == 0 and self.running_jobs() == 0:
                return
            if deadline is not None and time.monotonic() >= deadline:
                raise SchedulerError(f"timed out after {timeout}s draining the fleet")
            time.sleep(POLL_INTERVAL_S)

    def result_bytes(self, job_id: str) -> bytes:
        with self._lock:
            archived = self._archived.get(self._aliases.get(job_id, job_id))
        if archived is not None:
            if archived.state is not JobState.COMPLETED:
                raise SchedulerError(
                    f"job {job_id} is {archived.state.value}, not completed"
                )
            content = self.store.lookup(archived.signature)
            if content is None:
                raise SchedulerError(
                    f"result bytes for {job_id} are no longer materialised"
                )
            return content
        shard, canonical = self._resolve(job_id)
        content = self._request(shard, {"op": "result", "job_id": canonical})["content"]
        assert isinstance(content, bytes)
        return content

    # -- aggregation ------------------------------------------------------------
    def _sum_over_shards(self, key: str) -> int:
        total = 0
        for name in self.shard_names():
            try:
                total += int(self._request(name, {"op": "health"})[key])
            except SchedulerError:
                continue
        return total

    def queue_depth(self) -> int:
        return self._sum_over_shards("queued")

    def running_jobs(self) -> int:
        return self._sum_over_shards("running")

    def shard_health(self) -> dict[str, Any]:
        """Per-shard liveness + load, for ``/health`` and ``repro top``.

        Reaps first, so polling health doubles as the death detector."""
        self.reap()
        shards: dict[str, Any] = {}
        with self._lock:
            names = list(self._workers)
            dead = list(self._dead_shards)
        for name in names:
            with self._lock:
                handle = self._workers.get(name)
                alive = handle is not None and handle.alive
            if not alive:
                shards[name] = {"shard": name, "alive": False}
                continue
            try:
                health = self._request(name, {"op": "health"})
            except SchedulerError:
                shards[name] = {"shard": name, "alive": False}
                continue
            health.pop("ok", None)
            shards[name] = {**health, "alive": True}
        return {
            "shards": shards,
            "alive": sum(1 for s in shards.values() if s.get("alive")),
            "dead": dead,
            "relocated_jobs": len(self._aliases),
        }

    def fair_share_usage(self) -> dict[str, float]:
        """The *global* ledger: per-user usage summed across every shard
        (live workers report their decayed ledgers; dead shards contribute
        what their journals recorded)."""
        with self._lock:
            totals = dict(self._dead_usage)
        for name in self.shard_names():
            try:
                usage = self._request(name, {"op": "usage"})["usage"]
            except SchedulerError:
                continue
            for user, cost in usage.items():
                totals[user] = totals.get(user, 0.0) + float(cost)
        return totals

    def fair_share_debts(self) -> dict[str, float]:
        usage = self.fair_share_usage()
        ledger = FairShareScheduler()
        ledger.restore_usage(usage)
        return ledger.debts(usage.keys())

    def snapshot(self) -> dict[str, Any]:
        """Fleet-wide queue state in the single-manager shape (plus shards)."""
        shard_snaps: dict[str, Any] = {}
        jobs: list[dict[str, Any]] = []
        queued = running = slots_in_use = slots_total = 0
        for name in self.shard_names():
            try:
                snap = self._request(name, {"op": "snapshot"})["snapshot"]
            except SchedulerError:
                continue
            shard_snaps[name] = {
                "queued": snap["queued"],
                "running": snap["running"],
                "slots_in_use": snap["slots_in_use"],
                "slots_total": snap["slots_total"],
                "jobs": len(snap["jobs"]),
            }
            queued += snap["queued"]
            running += snap["running"]
            slots_in_use += snap["slots_in_use"]
            slots_total += snap["slots_total"]
            jobs.extend(snap["jobs"])
        with self._lock:
            for record in self._archived.values():
                jobs.append({**record.as_record(), "error": record.error})
        jobs.sort(key=lambda j: (j.get("shard", ""), j.get("seq", 0)))
        return {
            "sharded": True,
            "queued": queued,
            "running": running,
            "slots_in_use": slots_in_use,
            "slots_total": slots_total,
            "fair_share": self.fair_share_debts(),
            "shards": shard_snaps,
            "jobs": jobs,
        }

    # -- telemetry + identity ----------------------------------------------------
    def metrics_dumps(self) -> list[dict[str, Any]]:
        """Every live worker's registry dump (for cross-process merging)."""
        dumps: list[dict[str, Any]] = []
        for name in self.shard_names():
            try:
                dump = self._request(name, {"op": "metrics"})["metrics"]
            except SchedulerError:
                continue
            if dump:
                dumps.append(dump)
        return dumps

    def merged_metrics_text(self) -> str:
        """Coordinator + all workers as one Prometheus exposition."""
        from repro.telemetry.exporters import to_prometheus_text
        from repro.telemetry.metrics import MetricsRegistry

        merged = MetricsRegistry()
        if telemetry.enabled():
            merged.merge(telemetry.get_registry().dump())
        for dump in self.metrics_dumps():
            merged.merge(dump)
        return to_prometheus_text(merged)

    def journal_paths(self) -> list[Path]:
        """Every shard journal ever written by this fleet (dead ones too)."""
        with self._lock:
            return [self.journal_path(name) for name in self._workers]

    def global_fingerprint(self) -> list[tuple[int, str, str, str, str]]:
        """The fleet-wide queue identity (sorted union of shard replays)."""
        return global_fingerprint(p for p in self.journal_paths() if p.exists())

    def merged_journal_state(self):
        """One :class:`~repro.scheduler.journal.JournalState` spanning shards."""
        return merge_states(
            JobJournal(p).replay() for p in self.journal_paths() if p.exists()
        )

    def cross_shard_hits(self) -> int:
        total = 0
        for name in self.shard_names():
            try:
                total += int(self._request(name, {"op": "health"})["cross_shard_hits"])
            except SchedulerError:
                continue
        return total

    def leaked_processes(self) -> list[int]:
        """PIDs of worker processes still alive (must be empty after close)."""
        with self._lock:
            return [
                h.process.pid
                for h in self._workers.values()
                if h.process.pid is not None and h.process.is_alive()
            ]


def iter_shard_assignments(
    clusters: Iterator[str] | list[str],
    ring: ConsistentHashRing,
    level: int = DEFAULT_LEVEL,
) -> dict[str, list[tuple[str, str]]]:
    """shard -> [(cluster, tile id)] under a ring (the ``shard map`` verb)."""
    out: dict[str, list[tuple[str, str]]] = {name: [] for name in ring.nodes()}
    for cluster in clusters:
        tile = tile_for_cluster(cluster, level)
        out[ring.node_for(tile.tile_id)].append((cluster, tile.tile_id))
    return out
