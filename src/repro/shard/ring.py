"""Consistent-hash ring: tiles -> shards with bounded remapping.

Each shard is hashed onto a 64-bit ring at ``replicas`` virtual points; a
tile belongs to the shard owning the first point clockwise of the tile's
own hash.  The two properties the fleet depends on (and the test suite
asserts quantitatively):

* **balance** — with enough virtual points per shard, tile counts stay
  within a small factor of the mean (the canonical 64-tile/4-shard layout
  must keep max/mean skew under 1.5x);
* **bounded remapping** — adding or removing one shard moves only the
  tiles whose clockwise successor changed: about ``1/N`` of them, never
  the wholesale reshuffle a modulo placement would cause.  Remapping is
  what makes worker join/leave (and crash rebalance) cheap: the moved
  tiles' completed derivations are still findable through the shared
  signature directory, so even relocated work can be answered from cache.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Sequence

#: Virtual points per shard.  256 keeps the canonical layouts well inside
#: the balance gate while the ring stays tiny (a few KiB per shard).
DEFAULT_REPLICAS = 256


def _hash64(key: str) -> int:
    return int.from_bytes(
        hashlib.sha256(key.encode("utf-8")).digest()[:8], "big"
    )


class ConsistentHashRing:
    """Stable key -> node placement with minimal movement on membership change."""

    def __init__(
        self, nodes: Iterable[str] = (), replicas: int = DEFAULT_REPLICAS
    ) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be positive, got {replicas}")
        self.replicas = replicas
        self._nodes: set[str] = set()
        self._points: list[int] = []  # sorted virtual-point hashes
        self._owners: list[str] = []  # owner of each point, same order
        for node in nodes:
            self.add_node(node)

    # -- membership ----------------------------------------------------------
    def add_node(self, node: str) -> None:
        if not node:
            raise ValueError("ring nodes need a name")
        if node in self._nodes:
            raise ValueError(f"node {node!r} already on the ring")
        self._nodes.add(node)
        for i in range(self.replicas):
            point = _hash64(f"{node}#{i}")
            index = bisect.bisect(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, node)

    def remove_node(self, node: str) -> None:
        if node not in self._nodes:
            raise KeyError(f"node {node!r} not on the ring")
        self._nodes.discard(node)
        keep = [
            (point, owner)
            for point, owner in zip(self._points, self._owners)
            if owner != node
        ]
        self._points = [point for point, _ in keep]
        self._owners = [owner for _, owner in keep]

    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    # -- placement -------------------------------------------------------------
    def node_for(self, key: str) -> str:
        """The shard owning ``key`` (raises on an empty ring)."""
        if not self._points:
            raise LookupError("ring has no nodes")
        index = bisect.bisect(self._points, _hash64(key))
        if index == len(self._points):
            index = 0  # wrap: first point clockwise past the top
        return self._owners[index]

    def assignments(self, keys: Sequence[str]) -> dict[str, list[str]]:
        """node -> keys it owns (every node present, even when empty)."""
        placed: dict[str, list[str]] = {node: [] for node in self.nodes()}
        for key in keys:
            placed[self.node_for(key)].append(key)
        return placed

    def skew(self, keys: Sequence[str]) -> float:
        """max/mean key-count skew across nodes (1.0 = perfectly even)."""
        if not self._nodes or not keys:
            return 1.0
        counts = [len(ks) for ks in self.assignments(keys).values()]
        mean = sum(counts) / len(counts)
        return max(counts) / mean if mean else 1.0
