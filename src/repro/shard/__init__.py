"""``repro.shard`` — spatial sharding for the workload manager.

The paper distributes its replica index by sky region; this package is
that idea applied to the whole serving stack: jobs are routed by where
their cluster sits on the sky, and the queue, journal and replica index
are *partitioned* rather than merely locked.

* :mod:`~repro.shard.tiling` — hierarchical RA/Dec quad-tree tiles with
  stable ids; every cluster maps to exactly one tile;
* :mod:`~repro.shard.ring` — a consistent-hash ring placing tiles on
  shards with bounded remapping when shards join or leave;
* :mod:`~repro.shard.directory` — the shared signature -> (owner, bytes)
  store giving the fleet cross-shard result reuse;
* :mod:`~repro.shard.worker` — the per-shard child process: a private
  journal + RLS partition behind an ordinary workload manager;
* :mod:`~repro.shard.fleet` — the coordinator: tile routing, aggregate
  ``queue``/``health``/``metrics``, crash-replay rebalance on worker
  death, and the single-manager facade the serving tier speaks.

Quick start::

    from repro.shard import ShardFleet

    with ShardFleet("state/fleet", shards=4) as fleet:
        record = fleet.submit("alice", "A3526")
        done = fleet.wait(record.job_id, timeout=60)
        votable = fleet.result_bytes(done.job_id)

Topology, rebalance and the fleet-wide recovery invariant are documented
in ``docs/sharding.md``.
"""

from __future__ import annotations

from repro.shard.directory import FleetResultCache, SignatureStore
from repro.shard.fleet import ShardFleet, iter_shard_assignments
from repro.shard.ring import ConsistentHashRing
from repro.shard.tiling import (
    DEFAULT_LEVEL,
    SkyTile,
    tile_for,
    tile_for_cluster,
    tiles_at_level,
)
from repro.shard.worker import WorkerConfig, worker_main

__all__ = [
    "ConsistentHashRing",
    "DEFAULT_LEVEL",
    "FleetResultCache",
    "ShardFleet",
    "SignatureStore",
    "SkyTile",
    "WorkerConfig",
    "iter_shard_assignments",
    "tile_for",
    "tile_for_cluster",
    "tiles_at_level",
    "worker_main",
]
