"""Hierarchical RA/Dec sky tiling: the spatial partition key.

The paper's Giggle-style replica index is distributed by sky region; this
module supplies the partition function.  The celestial sphere is cut by a
quad-tree: level 0 is the whole sky, and each tile splits into four
children (RA halved, Dec halved), so level ``L`` has ``4**L`` tiles.  A
tile's identity is its root-to-leaf quadrant path — ``t3:201`` is the
level-3 tile reached by quadrants 2, 0, 1 — which makes ids *stable*:
deepening the tiling refines tiles without renaming their ancestors, and
two processes computing a tile id from the same position always agree.

Clusters map to tiles through their catalogued center.  Demonstration
clusters use their registry coordinates; any other name (synthetic load
targets, future catalogs) falls back to a deterministic pseudo-position
hashed from the name, uniform on the sphere — so *every* job routes to
exactly one tile without a central allocation step.

Equal-angle Dec splits make polar tiles smaller in solid angle than
equatorial ones; that is deliberate — tile ids must be recomputable from
bounds alone, and the consistent-hash ring (:mod:`repro.shard.ring`)
absorbs count imbalance when placing tiles on shards.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from functools import lru_cache

#: Default tree depth: 4**3 = 64 tiles, the canonical fleet partition.
DEFAULT_LEVEL = 3


@dataclass(frozen=True)
class SkyTile:
    """One node of the sky quad-tree (bounds are half-open in RA/Dec)."""

    tile_id: str
    level: int
    ra_min: float
    ra_max: float
    dec_min: float
    dec_max: float

    @property
    def path(self) -> str:
        """Quadrant digits from the root (empty for the root tile)."""
        suffix = self.tile_id.partition(":")[2]
        return "" if suffix == "root" else suffix

    @property
    def center(self) -> tuple[float, float]:
        return (
            0.5 * (self.ra_min + self.ra_max),
            0.5 * (self.dec_min + self.dec_max),
        )

    def contains(self, ra: float, dec: float) -> bool:
        ra = ra % 360.0
        in_ra = self.ra_min <= ra < self.ra_max
        # The north pole belongs to the topmost tiles, not to nothing.
        in_dec = self.dec_min <= dec < self.dec_max or (
            dec == 90.0 and self.dec_max == 90.0
        )
        return in_ra and in_dec


def _tile_id(level: int, path: str) -> str:
    return f"t{level}:{path}" if path else f"t{level}:root"


ROOT = SkyTile(_tile_id(0, ""), 0, 0.0, 360.0, -90.0, 90.0)


def tile_for(ra: float, dec: float, level: int = DEFAULT_LEVEL) -> SkyTile:
    """The level-``level`` tile containing ``(ra, dec)`` degrees."""
    if not -90.0 <= dec <= 90.0:
        raise ValueError(f"dec {dec} outside [-90, 90]")
    if level < 0:
        raise ValueError(f"tile level must be >= 0, got {level}")
    ra = ra % 360.0
    ra_min, ra_max = 0.0, 360.0
    dec_min, dec_max = -90.0, 90.0
    path = ""
    for _ in range(level):
        ra_mid = 0.5 * (ra_min + ra_max)
        dec_mid = 0.5 * (dec_min + dec_max)
        east = ra >= ra_mid
        north = dec >= dec_mid
        # Quadrant digits: bit 0 = east, bit 1 = north.
        path += str((2 if north else 0) + (1 if east else 0))
        ra_min, ra_max = (ra_mid, ra_max) if east else (ra_min, ra_mid)
        dec_min, dec_max = (dec_mid, dec_max) if north else (dec_min, dec_mid)
    return SkyTile(_tile_id(level, path), level, ra_min, ra_max, dec_min, dec_max)


def children(tile: SkyTile) -> tuple[SkyTile, ...]:
    """The four next-level tiles refining ``tile``."""
    ra_mid = 0.5 * (tile.ra_min + tile.ra_max)
    dec_mid = 0.5 * (tile.dec_min + tile.dec_max)
    level = tile.level + 1
    prefix = tile.path
    quads = (
        (0, tile.ra_min, ra_mid, tile.dec_min, dec_mid),
        (1, ra_mid, tile.ra_max, tile.dec_min, dec_mid),
        (2, tile.ra_min, ra_mid, dec_mid, tile.dec_max),
        (3, ra_mid, tile.ra_max, dec_mid, tile.dec_max),
    )
    return tuple(
        SkyTile(_tile_id(level, f"{prefix}{digit}"), level, ra0, ra1, dec0, dec1)
        for digit, ra0, ra1, dec0, dec1 in quads
    )


def parent(tile: SkyTile) -> SkyTile:
    """The tile one level up (the root is its own parent)."""
    if tile.level == 0:
        return tile
    ra, dec = tile.center
    return tile_for(ra, dec, tile.level - 1)


def tiles_at_level(level: int = DEFAULT_LEVEL) -> tuple[SkyTile, ...]:
    """Every tile of one level, in stable id order."""
    frontier: tuple[SkyTile, ...] = (ROOT,)
    for _ in range(level):
        frontier = tuple(child for tile in frontier for child in children(tile))
    return tuple(sorted(frontier, key=lambda t: t.tile_id))


@lru_cache(maxsize=4096)
def position_for_cluster(name: str) -> tuple[float, float]:
    """A cluster's routing position in degrees.

    Catalogued demonstration clusters use their real registry coordinates;
    anything else gets a deterministic pseudo-position derived from the
    name, uniform on the sphere (``dec = asin(2u - 1)`` corrects the
    poleward area compression), so routing never needs a lookup service.
    """
    from repro.sky.registry_data import demonstration_cluster

    try:
        cluster = demonstration_cluster(name)
    except KeyError:
        digest = hashlib.sha256(f"tile-pos|{name}".encode("utf-8")).digest()
        u_ra = int.from_bytes(digest[:8], "big") / 2**64
        u_dec = int.from_bytes(digest[8:16], "big") / 2**64
        return (360.0 * u_ra, math.degrees(math.asin(2.0 * u_dec - 1.0)))
    return (cluster.center.ra, cluster.center.dec)


def tile_for_cluster(name: str, level: int = DEFAULT_LEVEL) -> SkyTile:
    """The tile a named cluster's jobs route through."""
    ra, dec = position_for_cluster(name)
    return tile_for(ra, dec, level)
