"""The shard worker: one process, one journal, one RLS partition.

``worker_main`` is the child-process entry point the fleet spawns (spawn
context: everything it needs arrives as a picklable :class:`WorkerConfig`
of primitives).  Inside, the worker is deliberately boring — it builds a
completely ordinary :class:`~repro.scheduler.service.WorkloadManager`
whose journal lives at a shard-private path, whose result cache is the
fleet's :class:`~repro.shard.directory.FleetResultCache` ladder (private
RLS partition first, shared signature directory second), and whose job
ids carry the shard prefix — then serves a tiny request/response command
protocol over its end of a ``multiprocessing.Pipe``.

The protocol is synchronous per connection (the coordinator holds one
lock per worker), with every reply a dict carrying ``ok``; failures ship
the exception's class name so the coordinator can re-raise typed errors
(:class:`~repro.core.errors.QuotaExceededError` from a remote shard must
still read as a quota error to the serving tier).

Crash-safety is structural, not defensive: all durable state (journal
lines, signature-store entries) is written append-only or via atomic
rename, so the coordinator recovers a SIGKILLed worker purely from the
filesystem — replay the shard journal, resubmit what was in flight.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro import telemetry
from repro.core import errors as core_errors
from repro.scheduler.cache import RlsResultCache
from repro.scheduler.job import JobRecord
from repro.scheduler.journal import JobJournal
from repro.scheduler.service import WorkloadManager, _wall_times
from repro.shard.directory import FleetResultCache, SignatureStore


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a shard worker needs, as picklable primitives."""

    shard: str
    journal_path: str
    store_root: str
    runner: str = "synthetic"  # "synthetic" | "portal"
    base_seconds: float = 0.005
    spread_seconds: float = 0.01
    total_slots: int = 16
    slots_per_job: int = 4
    max_workers: int = 2
    seed: int = 2003
    fault_profile: str = ""  # portal runner only; "" = fault-free
    telemetry_enabled: bool = False
    clusters: tuple[str, ...] = field(default=())  # portal runner only


def _build_runner(config: WorkerConfig):
    if config.runner == "synthetic":
        from repro.serve.harness import SyntheticJobRunner

        return SyntheticJobRunner(
            base_seconds=config.base_seconds,
            spread_seconds=config.spread_seconds,
        )
    if config.runner == "portal":
        from repro.faults.profiles import get_profile
        from repro.portal.demo import build_demo_environment
        from repro.scheduler.runner import PortalJobRunner
        from repro.sky.registry_data import demonstration_cluster

        plan = (
            get_profile(config.fault_profile, config.seed)
            if config.fault_profile
            else None
        )
        kwargs: dict[str, Any] = {"seed": config.seed, "fault_plan": plan}
        if config.clusters:
            kwargs["clusters"] = [
                demonstration_cluster(name) for name in config.clusters
            ]
        env = build_demo_environment(**kwargs)
        return PortalJobRunner(env)
    raise ValueError(f"unknown worker runner {config.runner!r}")


def _build_cache(config: WorkerConfig) -> FleetResultCache:
    from repro.rls.rls import ReplicaLocationService
    from repro.rls.site import StorageSite

    # The shard's private replica index partition: a full RLS of its own,
    # holding only the signatures this shard materialised.
    site_name = f"{config.shard}-cache"
    local = RlsResultCache(
        ReplicaLocationService(), StorageSite(site_name), site_name
    )
    return FleetResultCache(
        SignatureStore(config.store_root), config.shard, local=local
    )


def record_payload(record: JobRecord) -> dict[str, Any]:
    """A :class:`JobRecord` as a picklable dict (journal record + derived)."""
    return {
        **record.as_record(),
        "cache_hit": record.cache_hit,
        "wait_seconds": record.wait_seconds,
        "run_seconds": record.run_seconds,
        "result_lfn": record.result_lfn,
        "error": record.error,
        "resumed_nodes": record.resumed_nodes,
        **_wall_times(record),
    }


def record_from_payload(payload: Mapping[str, Any]) -> JobRecord:
    """Rebuild a coordinator-side :class:`JobRecord` view from a payload."""
    record = JobRecord.from_record(payload)
    record.cache_hit = bool(payload.get("cache_hit", False))
    record.result_lfn = str(payload.get("result_lfn", ""))
    record.error = str(payload.get("error", ""))
    record.resumed_nodes = int(payload.get("resumed_nodes", 0))
    for key in ("wait_seconds", "run_seconds", "submitted_ts", "started_ts",
                "finished_ts", "wait_s"):
        if payload.get(key) is not None:
            record.extra[key] = payload[key]
    return record


class _WorkerServer:
    """The in-process command dispatcher (separated out for unit tests)."""

    def __init__(self, config: WorkerConfig, manager: WorkloadManager,
                 cache: FleetResultCache) -> None:
        self.config = config
        self.manager = manager
        self.cache = cache

    # -- command handlers -----------------------------------------------------
    def op_ping(self, req: Mapping[str, Any]) -> dict[str, Any]:
        return {"shard": self.config.shard, "pid": os.getpid()}

    def op_submit(self, req: Mapping[str, Any]) -> dict[str, Any]:
        record = self.manager.submit(
            req["user"],
            req["cluster"],
            options=req.get("options") or None,
            priority=int(req.get("priority", 0)),
        )
        return {"job": record_payload(record)}

    def op_job(self, req: Mapping[str, Any]) -> dict[str, Any]:
        return {"job": record_payload(self.manager.job(req["job_id"]))}

    def op_jobs(self, req: Mapping[str, Any]) -> dict[str, Any]:
        return {"jobs": [record_payload(r) for r in self.manager.jobs()]}

    def op_snapshot(self, req: Mapping[str, Any]) -> dict[str, Any]:
        return {"snapshot": self.manager.snapshot()}

    def op_cancel(self, req: Mapping[str, Any]) -> dict[str, Any]:
        return {"cancelled": self.manager.cancel(req["job_id"])}

    def op_result(self, req: Mapping[str, Any]) -> dict[str, Any]:
        return {"content": self.manager.result_bytes(req["job_id"])}

    def op_wait(self, req: Mapping[str, Any]) -> dict[str, Any]:
        record = self.manager.wait(req["job_id"], timeout=req.get("timeout"))
        return {"job": record_payload(record)}

    def op_drain(self, req: Mapping[str, Any]) -> dict[str, Any]:
        self.manager.drain(timeout=req.get("timeout"))
        return {}

    def op_usage(self, req: Mapping[str, Any]) -> dict[str, Any]:
        return {"usage": self.manager.scheduler.usage_snapshot()}

    def op_health(self, req: Mapping[str, Any]) -> dict[str, Any]:
        return {
            "shard": self.config.shard,
            "pid": os.getpid(),
            "queued": self.manager.queue_depth(),
            "running": self.manager.running_jobs(),
            "jobs": len(self.manager.jobs()),
            "slots_total": self.manager.leases.total_slots,
            "slots_in_use": self.manager.leases.in_use(),
            "shared_cache_hits": self.cache.shared_hits,
            "cross_shard_hits": self.cache.cross_shard_hits,
        }

    def op_metrics(self, req: Mapping[str, Any]) -> dict[str, Any]:
        dump = telemetry.get_registry().dump() if telemetry.enabled() else {}
        return {"metrics": dump}

    def handle(self, req: Mapping[str, Any]) -> dict[str, Any]:
        op = req.get("op", "")
        handler = getattr(self, f"op_{op}", None)
        if handler is None:
            return {"ok": False, "error": f"unknown op {op!r}", "kind": "ValueError"}
        try:
            reply = handler(req)
        except BaseException as exc:  # noqa: BLE001 - the worker loop must survive
            return {"ok": False, "error": str(exc), "kind": type(exc).__name__}
        reply["ok"] = True
        return reply


#: Typed errors the coordinator re-raises by name (everything else becomes
#: a plain SchedulerError carrying the remote message).
_RAISABLE = {
    name: getattr(core_errors, name)
    for name in dir(core_errors)
    if isinstance(getattr(core_errors, name), type)
    and issubclass(getattr(core_errors, name), BaseException)
}


def raise_remote(reply: Mapping[str, Any], shard: str) -> None:
    """Re-raise a worker's failure reply as the matching typed exception."""
    kind = str(reply.get("kind", ""))
    message = f"[{shard}] {reply.get('error', 'remote failure')}"
    exc_type = _RAISABLE.get(kind)
    if exc_type is None:
        exc_type = ValueError if kind in ("ValueError", "KeyError") else (
            core_errors.SchedulerError
        )
    raise exc_type(message)


def worker_main(config: WorkerConfig, conn: Any) -> None:
    """Child-process entry point: build the shard stack, serve the pipe."""
    if config.telemetry_enabled:
        telemetry.enable()
    runner = _build_runner(config)
    cache = _build_cache(config)
    manager = WorkloadManager(
        runner,
        total_slots=config.total_slots,
        slots_per_job=config.slots_per_job,
        max_workers=config.max_workers,
        cache=cache,
        journal=JobJournal(config.journal_path),
        shard=config.shard,
    )
    server = _WorkerServer(config, manager, cache)
    manager.start()
    # Ready handshake: the parent blocks on this before routing anything.
    conn.send({"ok": True, "ready": True, "shard": config.shard, "pid": os.getpid()})
    try:
        while True:
            try:
                req = conn.recv()
            except (EOFError, OSError):
                break  # coordinator went away; shut down cleanly
            if not isinstance(req, dict):
                conn.send({"ok": False, "error": "malformed request",
                           "kind": "ValueError"})
                continue
            if req.get("op") == "stop":
                conn.send({"ok": True})
                break
            conn.send(server.handle(req))
    finally:
        manager.stop()
        conn.close()
