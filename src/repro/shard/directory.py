"""The cross-shard signature directory: one cache hit stops compute everywhere.

Each shard's workload manager keeps its private journal and (for portal
runners) its private RLS partition — but derivation signatures are global:
"some other user may have already materialized part of the entire required
dataset" does not stop being true at a shard boundary.  The
:class:`SignatureStore` is the fleet's shared signature -> (owner shard,
result bytes) directory on a common filesystem:

* an entry is two files — ``<signature>.vot`` (the merged VOTable bytes)
  and ``<signature>.json`` (owner shard + size) — written atomically via
  temp-file + ``os.replace``, so a concurrent reader sees either nothing
  or a complete entry, never a torn one;
* any shard's :class:`FleetResultCache` consults the store before running
  a job, so a signature computed on shard A short-circuits the same
  derivation submitted to shard B (counted as a *cross-shard* hit when the
  recorded owner differs);
* after a worker death the store doubles as the survivors' memory: the
  dead shard's completed derivations are still answerable, and relocated
  jobs resume as cache hits instead of recomputes.

SIGKILL-safety falls out of the atomic rename: a worker killed mid-store
leaves at most an orphaned temp file, never a half-entry.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING

from repro import telemetry

if TYPE_CHECKING:  # pragma: no cover
    from repro.scheduler.cache import RlsResultCache


class SignatureStore:
    """Filesystem-backed signature -> (owner, bytes) directory."""

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- paths ---------------------------------------------------------------
    def _result_path(self, signature: str) -> Path:
        return self.root / f"{signature}.vot"

    def _meta_path(self, signature: str) -> Path:
        return self.root / f"{signature}.json"

    # -- queries ----------------------------------------------------------------
    def __contains__(self, signature: str) -> bool:
        return self._result_path(signature).exists()

    def __len__(self) -> int:
        return len(list(self.root.glob("sig-*.vot")))

    def signatures(self) -> list[str]:
        return sorted(path.stem for path in self.root.glob("sig-*.vot"))

    def owner(self, signature: str) -> str | None:
        """The shard that materialised ``signature`` (``None`` if unknown)."""
        try:
            meta = json.loads(self._meta_path(signature).read_text("utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        owner = meta.get("shard")
        return owner if isinstance(owner, str) else None

    def lookup(self, signature: str) -> bytes | None:
        try:
            return self._result_path(signature).read_bytes()
        except OSError:
            return None

    # -- writes -----------------------------------------------------------------
    def _write_atomic(self, path: Path, content: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=self.root, prefix=".tmp-", suffix=path.suffix)
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(content)
            os.replace(tmp, path)
        except BaseException:  # pragma: no cover - disk-full etc.
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise

    def store(self, signature: str, content: bytes, shard: str = "") -> str:
        """Publish one derivation; idempotent, last writer wins.

        The result bytes land before the meta entry, so a reader that sees
        an owner can always read the bytes it points at.
        """
        self._write_atomic(self._result_path(signature), content)
        meta = json.dumps(
            {"shard": shard, "size": len(content)}, sort_keys=True
        ).encode("utf-8")
        self._write_atomic(self._meta_path(signature), meta)
        return f"{signature}.vot"


class FleetResultCache:
    """The shard-side cache ladder: local RLS partition, then the shared store.

    Duck-compatible with :class:`~repro.scheduler.cache.RlsResultCache`
    (``lookup``/``store``/``lfn_for``), so a per-shard
    :class:`~repro.scheduler.service.WorkloadManager` plugs it in
    unchanged.  ``store`` publishes to both tiers; ``lookup`` prefers the
    local partition (no shared-filesystem read on the common case) and
    falls back to the directory, counting a **cross-shard hit** whenever
    the entry's recorded owner is some other shard.
    """

    def __init__(
        self,
        store: SignatureStore,
        shard: str,
        local: "RlsResultCache | None" = None,
    ) -> None:
        self.store_dir = store
        self.shard = shard
        self.local = local
        self.shared_hits = 0
        self.cross_shard_hits = 0

    @staticmethod
    def lfn_for(signature: str) -> str:
        return f"{signature}.vot"

    def lookup(self, signature: str) -> bytes | None:
        if self.local is not None:
            content = self.local.lookup(signature)
            if content is not None:
                return content
        content = self.store_dir.lookup(signature)
        if content is None:
            return None
        self.shared_hits += 1
        owner = self.store_dir.owner(signature)
        if owner and owner != self.shard:
            self.cross_shard_hits += 1
            telemetry.count(
                "shard_cross_cache_hits_total", shard=self.shard, owner=owner
            )
        # Pull the entry into the local partition so the next hit is local.
        if self.local is not None:
            try:
                self.local.store(signature, content)
            except Exception:  # noqa: BLE001 - the shared copy already answered
                pass
        return content

    def store(self, signature: str, content: bytes) -> str:
        lfn = self.store_dir.store(signature, content, shard=self.shard)
        if self.local is not None:
            self.local.store(signature, content)
        return lfn
