"""Open-loop load generation against the portal serving tier.

Closed-loop harnesses (each virtual user waits for its response before
sending again) hide overload: when the server slows down, the offered
load politely drops with it — the *coordinated omission* trap.  This
generator is **open-loop**: request arrival times are drawn up front from
a Poisson process (exponential inter-arrivals, seeded RNG) and every
request fires at its scheduled instant regardless of how the previous
ones are faring, which is how real portal traffic behaves and the only
way a p99 under load means anything.

Three canonical scenarios cover the SLO surface:

* **steady** — Poisson arrivals at a sustainable rate, mixed tenants and
  request kinds: the throughput/latency baseline;
* **thundering herd** — every request released at t=0: measures shed
  behaviour (429/503 with ``Retry-After``) and recovery, not latency;
* **slow clients** — a fraction of requests read their response a few
  bytes at a time: the tier must abort or bound them without letting the
  p99 of well-behaved traffic degrade.

Each request runs on its own connection (as a distinct portal user's
browser would) through a deliberately independent minimal HTTP client, so
the generator also acts as a second, adversarial implementation of the
wire protocol.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.serve.http import HttpError

#: Slow readers pull this many bytes per read.
SLOW_READ_BYTES = 512


# -- the minimal client -----------------------------------------------------------
async def http_request(
    host: str,
    port: int,
    method: str,
    target: str,
    *,
    headers: Sequence[tuple[str, str]] = (),
    body: bytes = b"",
    read_delay: float = 0.0,
    timeout: float = 30.0,
) -> tuple[int, dict[str, str], bytes]:
    """One request on one fresh connection; returns (status, headers, body)."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout=timeout
    )
    try:
        lines = [f"{method} {target} HTTP/1.1", f"Host: {host}:{port}"]
        lines.extend(f"{name}: {value}" for name, value in headers)
        lines.append("Connection: close")
        if body:
            lines.append(f"Content-Length: {len(body)}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body)
        await asyncio.wait_for(writer.drain(), timeout=timeout)
        return await asyncio.wait_for(
            _read_response(reader, read_delay), timeout=timeout
        )
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:  # noqa: BLE001 - peer may already have reset
            pass


async def _read_response(
    reader: asyncio.StreamReader, read_delay: float
) -> tuple[int, dict[str, str], bytes]:
    head = await reader.readuntil(b"\r\n\r\n")
    status_line, _, header_block = head[:-4].partition(b"\r\n")
    parts = status_line.split(b" ", 2)
    if len(parts) < 2 or not parts[0].startswith(b"HTTP/1."):
        raise HttpError(0, f"malformed status line {status_line!r}")
    status = int(parts[1])
    headers: dict[str, str] = {}
    for raw in header_block.split(b"\r\n"):
        if raw:
            name, _, value = raw.partition(b":")
            headers[name.decode("ascii").lower()] = value.strip().decode("ascii")
    if headers.get("transfer-encoding", "").lower() == "chunked":
        body = await _read_chunked(reader, read_delay)
    elif "content-length" in headers:
        body = await _read_n(reader, int(headers["content-length"]), read_delay)
    else:
        body = await _read_to_eof(reader, read_delay)
    return status, headers, body


async def _read_n(reader: asyncio.StreamReader, n: int, delay: float) -> bytes:
    if delay <= 0:
        return await reader.readexactly(n)
    out = bytearray()
    while len(out) < n:
        out += await reader.readexactly(min(SLOW_READ_BYTES, n - len(out)))
        await asyncio.sleep(delay)
    return bytes(out)


async def _read_chunked(reader: asyncio.StreamReader, delay: float) -> bytes:
    out = bytearray()
    while True:
        size_line = await reader.readuntil(b"\r\n")
        size = int(size_line.strip().split(b";")[0], 16)
        if size == 0:
            await reader.readuntil(b"\r\n")  # trailing CRLF after last-chunk
            return bytes(out)
        out += await _read_n(reader, size, delay)
        await reader.readexactly(2)  # chunk-data CRLF


async def _read_to_eof(reader: asyncio.StreamReader, delay: float) -> bytes:
    out = bytearray()
    while True:
        piece = await reader.read(SLOW_READ_BYTES if delay > 0 else 65536)
        if not piece:
            return bytes(out)
        out += piece
        if delay > 0:
            await asyncio.sleep(delay)


# -- scenarios --------------------------------------------------------------------
@dataclass(frozen=True)
class Scenario:
    """One open-loop run: arrival process + traffic composition."""

    name: str
    requests: int
    #: Poisson arrival rate (requests/second); ``None`` releases the whole
    #: scenario at t=0 — the thundering herd.
    rate: float | None
    tenants: tuple[str, ...] = ("alice", "bob", "carol")
    #: request-kind mix: (kind, weight); kinds: cone, sia, submit, status.
    mix: tuple[tuple[str, float], ...] = (
        ("cone", 0.45),
        ("sia", 0.2),
        ("status", 0.2),
        ("submit", 0.15),
    )
    #: every Nth request reads its response slowly (0 disables slow readers).
    slow_every: int = 0
    slow_read_delay: float = 0.05
    request_timeout: float = 30.0
    seed: int = 2003


def steady_scenario(requests: int = 400, rate: float = 150.0, seed: int = 2003) -> Scenario:
    return Scenario(name="steady-poisson", requests=requests, rate=rate, seed=seed)


def herd_scenario(requests: int = 200, seed: int = 2003) -> Scenario:
    return Scenario(name="thundering-herd", requests=requests, rate=None, seed=seed)


def slow_client_scenario(
    requests: int = 150,
    rate: float = 80.0,
    slow_every: int = 5,
    slow_read_delay: float = 0.08,
    seed: int = 2003,
) -> Scenario:
    return Scenario(
        name="slow-clients",
        requests=requests,
        rate=rate,
        slow_every=slow_every,
        slow_read_delay=slow_read_delay,
        seed=seed,
    )


SCENARIOS = {
    "steady": steady_scenario,
    "herd": herd_scenario,
    "slow": slow_client_scenario,
}


# -- outcomes + reporting ----------------------------------------------------------
@dataclass(frozen=True)
class RequestOutcome:
    kind: str
    tenant: str
    status: int  # 0 = transport-level failure (timeout, reset)
    latency: float
    received: int
    slow: bool
    error: str = ""
    #: the server echoed back a different ``X-Request-Id`` than was sent —
    #: a protocol-contract violation counted as its own failure class.
    id_mismatch: bool = False


def percentile(sorted_samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of pre-sorted ``sorted_samples``."""
    if not sorted_samples:
        return float("nan")
    if not 0.0 < q <= 100.0:
        raise ValueError(f"percentile must be in (0, 100], got {q}")
    rank = max(1, -(-len(sorted_samples) * q // 100))  # ceil without math
    return sorted_samples[int(rank) - 1]


@dataclass
class ScenarioReport:
    """Aggregate SLO view of one scenario run."""

    scenario: Scenario
    outcomes: list[RequestOutcome]
    wall_seconds: float
    server_histogram: dict[str, Any] = field(default_factory=dict)

    # -- selections -----------------------------------------------------------
    @property
    def completed(self) -> list[RequestOutcome]:
        return [o for o in self.outcomes if 200 <= o.status < 400]

    @property
    def shed(self) -> list[RequestOutcome]:
        return [o for o in self.outcomes if o.status in (429, 503)]

    @property
    def failures(self) -> list[RequestOutcome]:
        """Server faults, transport failures and request-id violations.

        4xx client errors are not failures, and neither is 503: this tier
        only emits 503 as deliberate connection-flood shedding (with
        ``Retry-After``), which :attr:`shed` accounts for.  A response
        that echoed the wrong ``X-Request-Id`` is a failure even when its
        status was healthy — the body cannot be trusted to belong to the
        request.
        """
        return [
            o
            for o in self.outcomes
            if o.status == 0
            or (o.status >= 500 and o.status != 503)
            or o.id_mismatch
        ]

    @property
    def id_mismatches(self) -> list[RequestOutcome]:
        return [o for o in self.outcomes if o.id_mismatch]

    def latencies_ms(self, include_slow: bool = False) -> list[float]:
        """Sorted completion latencies of well-behaved successful requests.

        Slow readers are excluded by default: their latency is the read
        delay they inflicted on themselves, not a server SLO signal.
        """
        samples = [
            o.latency * 1000.0
            for o in self.completed
            if include_slow or not o.slow
        ]
        return sorted(samples)

    # -- headline numbers ------------------------------------------------------
    def as_dict(self) -> dict[str, Any]:
        lat = self.latencies_ms()
        n = len(self.outcomes)
        completed = len(self.completed)
        shed = len(self.shed)
        failures = len(self.failures)
        return {
            "scenario": self.scenario.name,
            "requests": n,
            "rate_rps": self.scenario.rate,
            "completed": completed,
            "shed": shed,
            "failures": failures,
            "id_mismatches": len(self.id_mismatches),
            "shed_rate": shed / n if n else 0.0,
            "failure_rate": failures / n if n else 0.0,
            "throughput_rps": completed / self.wall_seconds if self.wall_seconds else 0.0,
            "wall_seconds": self.wall_seconds,
            "p50_ms": percentile(lat, 50),
            "p95_ms": percentile(lat, 95),
            "p99_ms": percentile(lat, 99),
            "max_ms": lat[-1] if lat else float("nan"),
            "slow_clients": sum(1 for o in self.outcomes if o.slow),
            "bytes_received": sum(o.received for o in self.outcomes),
            "by_kind": self._by_kind(),
            "server_histogram": self.server_histogram,
        }

    def _by_kind(self) -> dict[str, dict[str, int]]:
        out: dict[str, dict[str, int]] = {}
        for o in self.outcomes:
            bucket = out.setdefault(o.kind, {"requests": 0, "completed": 0, "shed": 0, "failures": 0})
            bucket["requests"] += 1
            if 200 <= o.status < 400:
                bucket["completed"] += 1
            if o.status in (429, 503):
                bucket["shed"] += 1
            if o.status == 0 or (o.status >= 500 and o.status != 503):
                bucket["failures"] += 1
        return out

    def summary(self) -> str:
        d = self.as_dict()
        return (
            f"{d['scenario']:<16s} {d['requests']:>5d} req "
            f"{d['throughput_rps']:>7.1f} rps  "
            f"p50 {d['p50_ms']:>7.1f} ms  p95 {d['p95_ms']:>7.1f} ms  "
            f"p99 {d['p99_ms']:>7.1f} ms  "
            f"shed {d['shed_rate']:>5.1%}  fail {d['failures']:d}"
        )


# -- the generator ----------------------------------------------------------------
@dataclass(frozen=True)
class _PlannedRequest:
    at: float  # seconds after scenario start
    kind: str
    tenant: str
    method: str
    target: str
    body: bytes
    slow: bool
    request_id: str = ""


def plan_requests(
    scenario: Scenario, clusters: Sequence[tuple[str, float, float]]
) -> list[_PlannedRequest]:
    """Materialise the arrival schedule + request specs (deterministic)."""
    if not clusters:
        raise ValueError("loadgen needs at least one cluster to aim at")
    rng = random.Random(scenario.seed)
    kinds = [k for k, _ in scenario.mix]
    weights = [w for _, w in scenario.mix]
    planned: list[_PlannedRequest] = []
    t = 0.0
    for i in range(scenario.requests):
        if scenario.rate is not None:
            t += rng.expovariate(scenario.rate)
        kind = rng.choices(kinds, weights)[0]
        tenant = scenario.tenants[i % len(scenario.tenants)]
        name, ra, dec = clusters[rng.randrange(len(clusters))]
        body = b""
        method = "GET"
        if kind == "cone":
            target = f"/cone?RA={ra:.4f}&DEC={dec:.4f}&SR={rng.uniform(0.05, 0.3):.3f}"
        elif kind == "sia":
            target = f"/sia?POS={ra:.4f},{dec:.4f}&SIZE={rng.uniform(0.1, 0.5):.3f}"
        elif kind == "submit":
            method = "POST"
            target = "/jobs"
            body = json.dumps(
                {
                    "user": tenant,
                    "cluster": name,
                    # a small option rotation: some submissions dedupe into
                    # in-flight/cached derivations, some are genuinely new
                    "options": {"loadgen_seq": i % 8},
                }
            ).encode("utf-8")
        elif kind == "status":
            target = "/queue"
        else:
            raise ValueError(f"unknown request kind {kind!r}")
        slow = bool(scenario.slow_every) and i % scenario.slow_every == 0
        planned.append(
            _PlannedRequest(
                at=t if scenario.rate is not None else 0.0,
                kind=kind,
                tenant=tenant,
                method=method,
                target=target,
                body=body,
                slow=slow,
                # Deterministic per-request id; the server must echo it
                # back verbatim (asserted per response in ``_fire``).
                request_id=f"lg{scenario.seed:x}-{i:05d}",
            )
        )
    return planned


async def _fire(
    host: str, port: int, plan: _PlannedRequest, t0: float, timeout: float, delay: float
) -> RequestOutcome:
    loop = asyncio.get_running_loop()
    await asyncio.sleep(max(0.0, t0 + plan.at - loop.time()))
    headers = [("X-Tenant", plan.tenant)]
    if plan.request_id:
        headers.append(("X-Request-Id", plan.request_id))
    if plan.body:
        headers.append(("Content-Type", "application/json"))
    started = time.monotonic()
    try:
        status, resp_headers, body = await http_request(
            host,
            port,
            plan.method,
            plan.target,
            headers=headers,
            body=plan.body,
            read_delay=delay if plan.slow else 0.0,
            timeout=timeout,
        )
        # The id echo contract holds on every parsed response except the
        # raw connection-flood 503, which is written before any request
        # headers are read.
        echoed = resp_headers.get("x-request-id")
        mismatch = bool(plan.request_id) and (
            echoed != plan.request_id
            if echoed is not None
            else status != 503
        )
        return RequestOutcome(
            kind=plan.kind,
            tenant=plan.tenant,
            status=status,
            latency=time.monotonic() - started,
            received=len(body),
            slow=plan.slow,
            id_mismatch=mismatch,
        )
    except Exception as exc:  # noqa: BLE001 - a dead request is data, not a crash
        return RequestOutcome(
            kind=plan.kind,
            tenant=plan.tenant,
            status=0,
            latency=time.monotonic() - started,
            received=0,
            slow=plan.slow,
            error=f"{type(exc).__name__}: {exc}",
        )


async def run_scenario(
    host: str,
    port: int,
    scenario: Scenario,
    clusters: Sequence[tuple[str, float, float]],
) -> ScenarioReport:
    """Drive one scenario against a live server; returns its report."""
    planned = plan_requests(scenario, clusters)
    t0 = asyncio.get_running_loop().time()
    wall_start = time.monotonic()
    outcomes = await asyncio.gather(
        *(
            _fire(host, port, plan, t0, scenario.request_timeout, scenario.slow_read_delay)
            for plan in planned
        )
    )
    return ScenarioReport(
        scenario=scenario,
        outcomes=list(outcomes),
        wall_seconds=time.monotonic() - wall_start,
    )


def demo_cluster_targets() -> list[tuple[str, float, float]]:
    """(name, ra, dec) of the demonstration clusters, for aiming queries."""
    from repro.sky.registry_data import DEMONSTRATION_CLUSTERS

    return [(c.name, c.center.ra, c.center.dec) for c in DEMONSTRATION_CLUSTERS]
