"""The asyncio connection tier: keep-alive, deadlines, graceful shutdown.

:class:`PortalHttpServer` owns the sockets.  Each accepted connection runs
one handler task that loops request → dispatch → response until the client
closes, a deadline fires, or the per-connection request cap is reached.
The design targets the two classic portal failure modes:

* **slow clients** — header/body reads and every response drain run under
  ``asyncio.wait_for`` deadlines, and the transport's write buffer is kept
  small so a reader that stalls trips the drain deadline instead of
  buffering the whole response in kernel+userspace memory;
* **connection floods** — beyond ``max_connections`` concurrent handlers,
  new connections get an immediate ``503 Retry-After`` and are closed
  (accept-and-shed, never accept-and-queue).

Shutdown is leak-free by construction: handler tasks are tracked in a
set, ``close()`` stops the listener, cancels whatever is still running,
and awaits every task — the serve-smoke CI job asserts no stray tasks or
sockets survive.
"""

from __future__ import annotations

import asyncio
import contextlib
import time

from repro import telemetry
from repro.serve.app import ServeApp
from repro.serve.http import (
    HttpError,
    HttpRequest,
    Response,
    SlowClientError,
    StreamingResponse,
    error_response,
    read_request,
    render_head,
    write_response,
)
from repro.serve.observability import (
    REQUEST_ID_HEADER,
    TRACE_ID_HEADER,
    request_id_of,
    trace_context_of,
)
from repro.telemetry import tracing

#: Keep the kernel-side write buffer small so ``drain()`` exerts real
#: backpressure and slow readers hit the write deadline.
WRITE_BUFFER_HIGH = 16384


class PortalHttpServer:
    """Serve a :class:`ServeApp` over asyncio streams."""

    def __init__(
        self,
        app: ServeApp,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        header_timeout: float = 5.0,
        keep_alive_timeout: float = 10.0,
        write_timeout: float = 5.0,
        max_connections: int = 256,
        max_requests_per_connection: int = 1000,
        max_header_bytes: int = 16384,
        max_body_bytes: int = 1 << 20,
    ) -> None:
        self.app = app
        self.host = host
        self._requested_port = port
        self.header_timeout = header_timeout
        self.keep_alive_timeout = keep_alive_timeout
        self.write_timeout = write_timeout
        self.max_connections = max_connections
        self.max_requests_per_connection = max_requests_per_connection
        self.max_header_bytes = max_header_bytes
        self.max_body_bytes = max_body_bytes
        self._server: asyncio.Server | None = None
        self._handlers: set[asyncio.Task] = set()
        self._closed = False

    # -- lifecycle ------------------------------------------------------------
    async def start(self) -> None:
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._on_connection,
            host=self.host,
            port=self._requested_port,
            limit=max(self.max_header_bytes, 65536),
        )

    @property
    def port(self) -> int:
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def connections(self) -> int:
        return len(self._handlers)

    async def close(self, grace: float = 5.0) -> None:
        """Stop accepting, give in-flight handlers ``grace`` seconds, then
        cancel; returns with every handler task finished."""
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        pending = set(self._handlers)
        if pending:
            _, still_running = await asyncio.wait(pending, timeout=grace)
            for task in still_running:
                task.cancel()
            if still_running:
                await asyncio.gather(*still_running, return_exceptions=True)
        self._handlers.clear()

    async def __aenter__(self) -> "PortalHttpServer":
        await self.start()
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.close()

    # -- per-connection handling ------------------------------------------------
    def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.ensure_future(self._serve_connection(reader, writer))
        self._handlers.add(task)
        task.add_done_callback(self._handlers.discard)

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        with contextlib.suppress(Exception):
            writer.transport.set_write_buffer_limits(high=WRITE_BUFFER_HIGH)
        telemetry.gauge_set("serve_open_connections", float(len(self._handlers)))
        try:
            if len(self._handlers) > self.max_connections or self._closed:
                telemetry.count("serve_shed_total", reason="connection-flood")
                plane = self.app.plane
                if plane is not None and plane.enabled:
                    plane.record_flood()
                writer.write(
                    render_head(
                        503,
                        [("Retry-After", "1"), ("Content-Length", "0")],
                        keep_alive=False,
                    )
                )
                with contextlib.suppress(asyncio.TimeoutError):
                    await asyncio.wait_for(writer.drain(), self.write_timeout)
                return
            served = 0
            while not self._closed and served < self.max_requests_per_connection:
                timeout = (
                    self.header_timeout if served == 0 else self.keep_alive_timeout
                )
                try:
                    request = await self._read_request(reader, timeout)
                except HttpError as error:
                    telemetry.count(
                        "serve_requests_total",
                        route="unparsed",
                        status=str(error.status),
                    )
                    plane = self.app.plane
                    if plane is not None and plane.enabled:
                        plane.end(
                            trace_id="",
                            request_id="",
                            method="",
                            path="",
                            route="unparsed",
                            tenant="unknown",
                            status=error.status,
                        )
                    await write_response(
                        writer,
                        error_response(error),
                        keep_alive=False,
                        write_timeout=self.write_timeout,
                    )
                    return
                if request is None:
                    return  # clean close or deadline between requests
                served += 1
                if not await self._serve_request(request, writer):
                    return
        except (SlowClientError, ConnectionResetError, BrokenPipeError):
            pass  # peer gone: nothing useful left to send
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()
            telemetry.gauge_set(
                "serve_open_connections", float(max(0, len(self._handlers) - 1))
            )

    async def _read_request(
        self, reader: asyncio.StreamReader, timeout: float
    ) -> HttpRequest | None:
        try:
            return await read_request(
                reader,
                max_header_bytes=self.max_header_bytes,
                max_body_bytes=self.max_body_bytes,
                timeout=timeout,
            )
        except SlowClientError:
            telemetry.count("serve_slow_client_aborts_total", side="read")
            return None

    async def _serve_request(
        self, request: HttpRequest, writer: asyncio.StreamWriter
    ) -> bool:
        """Dispatch + write one request; returns False to drop the connection."""
        route = self.app.route_label(request.method, request.path)
        method, path = request.method, request.path
        tenant = self.app.tenant_of(request)
        # The request id is echoed unconditionally — it is the cheap half of
        # the contract (loadgen asserts the echo on every response); the
        # full plane below is the guarded half.
        request_id = request_id_of(request)
        plane = self.app.plane
        active = plane is not None and plane.enabled and telemetry.enabled()
        trace_id = ""
        span = None
        token = None
        if active:
            trace_id, parent_span = trace_context_of(request)
            token = tracing.set_current((trace_id, parent_span))
            plane.begin(trace_id)
            span = telemetry.trace_span(
                "serve.request",
                method=method,
                route=route,
                path=path,
                tenant=tenant,
                request_id=request_id,
            )
            span.__enter__()
        started = time.monotonic()
        keep_alive = request.keep_alive
        status = 500
        bytes_sent = 0
        shed_reason = ""
        error_name = ""
        try:
            head_only = request.method == "HEAD"
            if head_only:
                request = HttpRequest(
                    method="GET",
                    target=request.target,
                    path=request.path,
                    query=request.query,
                    version=request.version,
                    headers=request.headers,
                    body=request.body,
                )
            try:
                response: Response | StreamingResponse = await self.app.handle(request)
            except HttpError as error:
                shed_reason = getattr(error, "shed_reason", "")
                response = error_response(error)
            status = response.status
            extra = ((REQUEST_ID_HEADER, request_id),)
            if active:
                extra += ((TRACE_ID_HEADER, trace_id),)
            response.headers = tuple(response.headers) + extra
            bytes_sent = await write_response(
                writer,
                response,
                keep_alive=keep_alive,
                write_timeout=self.write_timeout,
                head_only=head_only,
            )
            return keep_alive
        except SlowClientError:
            telemetry.count("serve_slow_client_aborts_total", side="write")
            status = 0  # aborted mid-response: no status reached the client
            return False
        except (ConnectionResetError, BrokenPipeError):
            status = 0
            return False
        except Exception as exc:  # noqa: BLE001 - handler bugs must not kill the tier
            telemetry.count("serve_errors_total", error=type(exc).__name__)
            error_name = type(exc).__name__
            status = 500
            with contextlib.suppress(Exception):
                await write_response(
                    writer,
                    Response(
                        status=500,
                        body=b"internal server error\n",
                        headers=((REQUEST_ID_HEADER, request_id),),
                    ),
                    keep_alive=False,
                    write_timeout=self.write_timeout,
                )
            return False
        finally:
            duration = time.monotonic() - started
            telemetry.count(
                "serve_requests_total", route=route, status=str(status)
            )
            telemetry.observe("serve_request_seconds", duration, route=route)
            if span is not None:
                span.set(status=status, bytes=bytes_sent)
                if shed_reason:
                    span.set(shed=shed_reason)
                if error_name or status >= 500 or status == 0:
                    span.status = "error"
                span.__exit__(None, None, None)
            if token is not None:
                tracing.CURRENT_SPAN.reset(token)
            if active:
                plane.end(
                    trace_id=trace_id,
                    request_id=request_id,
                    method=method,
                    path=path,
                    route=route,
                    tenant=tenant,
                    status=status,
                    shed_reason=shed_reason,
                    bytes_sent=bytes_sent,
                    duration_s=duration,
                    error=error_name,
                )
