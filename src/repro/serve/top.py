"""``repro top`` — a live ANSI dashboard over the ``/debug`` surface.

The renderer is a pure function from the three debug payloads
(``/debug/requests``, ``/debug/slo``, ``/health``) to a frame of text, so
it is unit-testable without a server; the poll loop around it is a thin
``urllib`` client so the dashboard needs nothing beyond the standard
library and works against any serving tier started with observability
enabled (``repro serve-http --observe``).
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request
from typing import Any, TextIO

__all__ = ["fetch_json", "render_dashboard", "run_top"]

#: ANSI: cursor home + clear to end of screen (no full-reset flicker).
CLEAR = "\x1b[H\x1b[J"

_STATE_GLYPH = {"ok": "ok", "warn": "WARN", "page": "PAGE!"}


def fetch_json(url: str, timeout: float = 5.0) -> dict[str, Any]:
    """GET one JSON document; raises ``urllib.error.URLError`` on failure."""
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def _fmt_rate(value: float | None) -> str:
    if value is None:
        return "     -"
    return f"{value:6.1f}"


def _fmt_ms(value: float | None) -> str:
    if value is None:
        return "      -"
    return f"{value * 1000.0:7.1f}"


def _rates_line(label: str, rates: dict[str, Any], total: Any) -> str:
    return (
        f"{label:<10s}"
        f" 1s {_fmt_rate(rates.get('1s'))} rps "
        f" 10s {_fmt_rate(rates.get('10s'))} rps "
        f" 60s {_fmt_rate(rates.get('60s'))} rps "
        f" total {total}"
    )


def _top_series(series: dict[str, float], n: int = 5) -> str:
    ranked = sorted(series.items(), key=lambda kv: (-kv[1], kv[0]))[:n]
    return "  ".join(f"{name} {rate:.1f}" for name, rate in ranked) or "(idle)"


def render_dashboard(
    requests: dict[str, Any],
    slo: dict[str, Any],
    health: dict[str, Any],
    *,
    url: str = "",
    clock: Any = time.localtime,
) -> str:
    """One dashboard frame from the three debug payloads (pure)."""
    lines: list[str] = []
    stamp = time.strftime("%H:%M:%S", clock())
    uptime = requests.get("uptime_s", 0.0)
    lines.append(f"repro top — {url or 'portal'}   up {uptime:.0f}s   {stamp}")
    lines.append("")

    req = requests.get("requests", {})
    err = requests.get("errors", {})
    lines.append(
        _rates_line("requests", req, int(req.get("total", 0)))
    )
    lines.append(_rates_line("errors", err, int(err.get("total", 0))))

    lat = requests.get("latency", {})
    lines.append(
        f"{'latency':<10s} p50 {_fmt_ms(lat.get('p50'))} ms  "
        f"p95 {_fmt_ms(lat.get('p95'))} ms  "
        f"p99 {_fmt_ms(lat.get('p99'))} ms   ({lat.get('window_s', 60)}s window)"
    )
    lines.append(
        f"{'queue':<10s} queued {health.get('queued', 0)}  "
        f"running {health.get('running', 0)}  "
        f"inflight {health.get('inflight', 0)}  "
        f"status {health.get('status', '?')}"
    )
    lines.append("")

    for objective in slo.get("objectives", ()):
        state = _STATE_GLYPH.get(objective.get("state", "?"), objective.get("state"))
        budget = objective.get("budget_remaining")
        budget_text = f"{budget * 100.0:5.1f}%" if budget is not None else "    -"
        lines.append(
            f"{'slo':<10s} {objective.get('objective', '?'):<13s} {state:<6s} "
            f"burn {objective.get('burn_short', 0.0):5.2f}/"
            f"{objective.get('burn_long', 0.0):5.2f}  "
            f"budget {budget_text}"
        )

    shed_totals = {
        k: float(v) for k, v in requests.get("shed_totals", {}).items() if v
    }
    if shed_totals:
        lines.append(
            f"{'sheds':<10s} "
            + "  ".join(
                f"{reason} {int(count)}" for reason, count in sorted(shed_totals.items())
            )
        )
    lines.append(f"{'tenants':<10s} {_top_series(requests.get('tenants', {}))}")
    lines.append(f"{'routes':<10s} {_top_series(requests.get('routes', {}))}")

    shards = health.get("shards")
    if shards:
        cells = []
        for name, info in sorted(shards.get("shards", {}).items()):
            if info.get("alive"):
                cells.append(f"{name} q{info.get('queued', 0)}/r{info.get('running', 0)}")
            else:
                cells.append(f"{name} DEAD")
        lines.append(
            f"{'shards':<10s} " + "  ".join(cells)
            + (f"  relocated {shards['relocated_jobs']}" if shards.get("relocated_jobs") else "")
        )

    sites = health.get("sites")
    if sites:
        lines.append(
            f"{'sites':<10s} "
            + "  ".join(f"{name} {state}" for name, state in sorted(sites.items()))
        )

    adaptive = health.get("adaptive")
    if adaptive:
        spec = adaptive.get("speculation", {})
        cells = [
            f"launched {spec.get('launched', 0)}",
            f"won {spec.get('won', 0)}",
            f"wasted {spec.get('wasted', 0)}",
            f"waste {spec.get('wasted_seconds', 0.0):.1f}s",
        ]
        lines.append(f"{'speculate':<10s} " + "  ".join(cells))
        autoscale = adaptive.get("autoscale")
        if autoscale:
            lines.append(
                f"{'autoscale':<10s} "
                + "  ".join(
                    f"{site} {slots}"
                    for site, slots in sorted(autoscale.get("slots", {}).items())
                )
                + f"  ups {autoscale.get('scale_ups', 0)}"
                + f"  downs {autoscale.get('scale_downs', 0)}"
            )

    flight = requests.get("flight", {})
    lines.append(
        f"{'flight':<10s} open {flight.get('open', 0)}  "
        f"completed {flight.get('completed', 0)}  "
        f"errors {flight.get('errors', 0)}"
    )
    return "\n".join(lines) + "\n"


def run_top(
    base_url: str,
    *,
    interval: float = 2.0,
    iterations: int | None = None,
    stream: TextIO | None = None,
    clear: bool = True,
    timeout: float = 5.0,
) -> int:
    """Poll the debug surface and redraw until interrupted.

    ``iterations`` bounds the frame count (``--once`` passes 1); ``None``
    loops until Ctrl-C.  Returns a process exit code.
    """
    out = stream if stream is not None else sys.stdout
    base = base_url.rstrip("/")
    frame = 0
    while iterations is None or frame < iterations:
        try:
            requests = fetch_json(f"{base}/debug/requests", timeout=timeout)
            slo = fetch_json(f"{base}/debug/slo", timeout=timeout)
            health = fetch_json(f"{base}/health", timeout=timeout)
        except urllib.error.HTTPError as exc:
            if exc.code == 404:
                print(
                    f"error: {base} has no /debug surface — start the tier "
                    "with observability enabled (repro serve-http --observe)",
                    file=sys.stderr,
                )
                return 2
            print(f"error: {base}: HTTP {exc.code}", file=sys.stderr)
            return 1
        except (urllib.error.URLError, OSError) as exc:
            print(f"error: cannot reach {base}: {exc}", file=sys.stderr)
            return 1
        if clear:
            out.write(CLEAR)
        out.write(render_dashboard(requests, slo, health, url=base))
        out.flush()
        frame += 1
        if iterations is not None and frame >= iterations:
            break
        try:
            time.sleep(interval)
        except KeyboardInterrupt:
            break
    return 0
