"""The worker bridge: blocking Grid work kept off the event loop.

Everything behind the HTTP tier is synchronous and lock-protected — the
:class:`~repro.scheduler.service.WorkloadManager` (condition variable +
dispatcher threads), the journal, the synthetic data services.  The bridge
runs those calls on a bounded :class:`~concurrent.futures.ThreadPoolExecutor`
so a slow journal append or a long cone selection never stalls connection
handling, and the executor size bounds how much blocking work the serve
tier will take on at once (the asyncio side queues behind it).
"""

from __future__ import annotations

import asyncio
import contextvars
import functools
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, TypeVar

T = TypeVar("T")


class WorkerBridge:
    """Run blocking callables on a dedicated pool, awaitably."""

    def __init__(self, max_workers: int = 8) -> None:
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="serve-bridge"
        )
        self._closed = False

    async def call(self, fn: Callable[..., T], *args: Any, **kwargs: Any) -> T:
        """Await ``fn(*args, **kwargs)`` executed on the bridge pool.

        The caller's :mod:`contextvars` context rides along, so spans
        opened on the pool thread parent to the HTTP request's
        ``serve.request`` span instead of starting orphan traces.
        """
        if self._closed:
            raise RuntimeError("worker bridge is closed")
        loop = asyncio.get_running_loop()
        ctx = contextvars.copy_context()
        return await loop.run_in_executor(
            self._executor, functools.partial(ctx.run, fn, *args, **kwargs)
        )

    def close(self, wait: bool = True) -> None:
        """Shut the pool down (idempotent); queued work is cancelled."""
        if self._closed:
            return
        self._closed = True
        self._executor.shutdown(wait=wait, cancel_futures=True)

    def __enter__(self) -> "WorkerBridge":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
