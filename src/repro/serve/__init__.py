"""The portal serving tier: asyncio HTTP in front of the workload manager.

The paper's portal (Figure 5) is the user-facing entry point; this package
is its network tier, built entirely on the standard library:

* :mod:`repro.serve.http` — minimal HTTP/1.1 parsing and (streamed)
  response writing over asyncio streams, with slow-client deadlines;
* :mod:`repro.serve.app` — endpoint routing (Cone/SIA queries, job
  submit/status/result, queue, health, metrics), per-tenant admission and
  429 + ``Retry-After`` backpressure reusing the scheduler's policy bounds;
* :mod:`repro.serve.server` — connection handling: keep-alive, connection
  caps with accept-and-shed, leak-free graceful shutdown;
* :mod:`repro.serve.bridge` — the thread-pool bridge that keeps blocking
  Grid work off the event loop;
* :mod:`repro.serve.loadgen` — the open-loop load generator (Poisson
  arrivals, tenant mixes, thundering-herd and slow-client scenarios)
  behind ``repro loadgen`` and the SLO benchmarks;
* :mod:`repro.serve.observability` — the live observability plane:
  request tracing across the HTTP boundary, windowed rates, flight
  recorder, SLO burn tracking and the ``/debug`` surface;
* :mod:`repro.serve.harness` — one-call wiring of the whole stack.
"""

from repro.serve.app import ServeApp, TenantGate
from repro.serve.bridge import WorkerBridge
from repro.serve.harness import ServingStack, SyntheticJobRunner, build_serving_stack
from repro.serve.observability import ObservabilityPlane
from repro.serve.http import (
    HttpError,
    HttpRequest,
    Response,
    SlowClientError,
    StreamingResponse,
)
from repro.serve.loadgen import (
    SCENARIOS,
    Scenario,
    ScenarioReport,
    demo_cluster_targets,
    herd_scenario,
    http_request,
    run_scenario,
    slow_client_scenario,
    steady_scenario,
)
from repro.serve.server import PortalHttpServer

__all__ = [
    "HttpError",
    "HttpRequest",
    "ObservabilityPlane",
    "PortalHttpServer",
    "Response",
    "SCENARIOS",
    "Scenario",
    "ScenarioReport",
    "ServeApp",
    "ServingStack",
    "SlowClientError",
    "StreamingResponse",
    "SyntheticJobRunner",
    "TenantGate",
    "WorkerBridge",
    "build_serving_stack",
    "demo_cluster_targets",
    "herd_scenario",
    "http_request",
    "run_scenario",
    "slow_client_scenario",
    "steady_scenario",
]
