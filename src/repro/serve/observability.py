"""The live observability plane for the serving tier.

:class:`ObservabilityPlane` bundles everything an operator needs to see a
running portal *now*, as opposed to the cumulative registry dumps that
feed post-hoc reports:

* windowed request/shed/status rates (1 s / 10 s / 60 s) and a decaying
  latency quantile window, per route and per tenant;
* the :class:`~repro.telemetry.flight.FlightRecorder`, watching every
  request trace and retaining the recent + all errored ones;
* the :class:`~repro.telemetry.slo.SLOTracker` burning availability and
  p99-latency budgets over short/long windows;
* a structured JSONL access log (one line per request: method, path,
  tenant, status, shed reason, bytes, duration, trace id) with a bounded
  in-memory tail for ``/debug/requests``.

The plane follows the PR-2 guard discipline: the serving tier asks
``plane is not None and plane.enabled`` once per request and otherwise
touches nothing, so a stack built without a plane — or with the plane
disabled — pays only that test (benchmarked by the observability
overhead gate in ``run_serve_bench``).
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
import uuid
from collections import deque
from typing import Any

from repro import telemetry
from repro.telemetry.flight import FlightRecorder
from repro.telemetry.slo import SLOTracker
from repro.telemetry.timeseries import LabelledWindows, LatencyWindow, WindowedCounter

__all__ = ["ObservabilityPlane", "request_id_of", "trace_context_of"]

#: Request ids accepted from clients: header token chars, bounded length.
_REQUEST_ID_RE = re.compile(r"^[A-Za-z0-9._~-]{1,64}$")

#: ``X-Trace-Context: <trace_id>/<span_id>`` — both token-shaped.
_TRACE_CTX_RE = re.compile(r"^([A-Za-z0-9._~-]{1,64})/([A-Za-z0-9._~-]{1,64})$")

#: Recent access-log entries kept in memory for ``/debug/requests``.
ACCESS_TAIL = 128

#: Name of the request-id header, both directions.
REQUEST_ID_HEADER = "X-Request-Id"
TRACE_CTX_HEADER = "X-Trace-Context"
TRACE_ID_HEADER = "X-Trace-Id"


def request_id_of(request: Any) -> str:
    """The client's ``X-Request-Id`` if well-formed, else a fresh one.

    Malformed ids (overlong, non-token characters) are replaced rather
    than echoed — a request header must never be able to corrupt the
    response head or the access log.
    """
    supplied = request.header("x-request-id")
    if supplied and _REQUEST_ID_RE.match(supplied):
        return supplied
    return f"r-{uuid.uuid4().hex[:12]}"


def trace_context_of(request: Any) -> tuple[str, str | None]:
    """(trace_id, parent_span_id) from ``X-Trace-Context``, or a fresh trace."""
    supplied = request.header("x-trace-context")
    if supplied:
        match = _TRACE_CTX_RE.match(supplied)
        if match:
            return match.group(1), match.group(2)
    from repro.telemetry.tracing import new_trace_id

    return new_trace_id(), None


def _finite(value: float | None) -> float | None:
    """NaN/inf → ``None`` so debug payloads stay strict JSON."""
    if value is None or value != value or value in (float("inf"), float("-inf")):
        return None
    return value


class ObservabilityPlane:
    """Windowed stats + flight recorder + SLO tracking + access log."""

    def __init__(
        self,
        *,
        access_log_path: str | os.PathLike | None = None,
        latency_target_s: float = 0.5,
        availability_budget: float = 0.001,
        latency_budget: float = 0.01,
        short_window_s: float = 60.0,
        long_window_s: float = 600.0,
        flight_completed: int = 64,
        flight_errors: int = 256,
        error_dump_dir: str | os.PathLike | None = None,
    ) -> None:
        self.enabled = False
        self.access_log_path = os.fspath(access_log_path) if access_log_path else None
        self.error_dump_dir = os.fspath(error_dump_dir) if error_dump_dir else None
        self.started_at = time.time()
        # Windowed counters.
        self.requests = WindowedCounter()
        self.errors = WindowedCounter()
        self.statuses = LabelledWindows(max_series=16)
        self.sheds = LabelledWindows(max_series=16)
        self.tenants = LabelledWindows(max_series=64)
        self.routes = LabelledWindows(max_series=32)
        self.latency = LatencyWindow(span_s=60.0)
        # Burn-rate budgets and whole-trace retention.
        self.slo = SLOTracker(
            availability_budget=availability_budget,
            latency_target_s=latency_target_s,
            latency_budget=latency_budget,
            short_window_s=short_window_s,
            long_window_s=long_window_s,
        )
        self.flight = FlightRecorder(
            max_completed=flight_completed, max_errors=flight_errors
        )
        self._access_tail: deque[dict[str, Any]] = deque(maxlen=ACCESS_TAIL)
        self._access_count = 0
        self._log_lock = threading.Lock()
        self._log_file: Any = None

    # -- lifecycle ------------------------------------------------------------
    def enable(self) -> None:
        """Turn the plane on; requires telemetry for span collection.

        When telemetry is off, it is enabled with a *bounded* tracer
        (ring of recent spans) — a long-running server must not grow an
        append-only span list forever.  An already-enabled telemetry
        runtime is left untouched.
        """
        if not telemetry.enabled():
            from repro.telemetry.tracing import Tracer

            telemetry.enable(tracer=Tracer(max_spans=50_000))
        self.flight.attach(telemetry.get_tracer())
        if self.access_log_path and self._log_file is None:
            self._log_file = open(self.access_log_path, "a", encoding="utf-8")
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False
        self.flight.detach()

    def close(self) -> None:
        self.disable()
        with self._log_lock:
            if self._log_file is not None:
                self._log_file.close()
                self._log_file = None

    # -- request lifecycle ------------------------------------------------------
    def begin(self, trace_id: str) -> None:
        if trace_id:
            self.flight.watch(trace_id)

    def end(
        self,
        *,
        trace_id: str,
        request_id: str,
        method: str,
        path: str,
        route: str,
        tenant: str,
        status: int,
        shed_reason: str = "",
        bytes_sent: int = 0,
        duration_s: float = 0.0,
        error: str = "",
    ) -> None:
        """Account one finished request everywhere at once."""
        failed = bool(error) or status >= 500 or status == 0
        shed = bool(shed_reason) and not failed
        self.requests.add(1.0)
        self.statuses.add(f"{status // 100}xx" if status else "aborted")
        self.routes.add(route)
        self.tenants.add(tenant)
        if failed:
            self.errors.add(1.0)
        if shed_reason:
            self.sheds.add(shed_reason)
        if not failed and not shed:
            self.latency.observe(duration_s)
        self.slo.record(ok=not failed, latency_s=None if failed else duration_s)
        entry = {
            "ts": round(time.time(), 6),
            "method": method,
            "path": path,
            "route": route,
            "tenant": tenant,
            "status": status,
            "shed": shed_reason,
            "bytes": bytes_sent,
            "dur_ms": round(duration_s * 1000.0, 3),
            "trace": trace_id,
            "request_id": request_id,
        }
        if error:
            entry["error"] = error
        self._log(entry)
        if trace_id:
            flight_status = "error" if failed else ("shed" if shed else "ok")
            self.flight.finish(trace_id, status=flight_status, meta=entry)
        if failed and error and self.error_dump_dir:
            self._dump_on_error()

    def record_flood(self) -> None:
        """A connection shed before any request was parsed."""
        self.requests.add(1.0)
        self.sheds.add("connection-flood")
        self.statuses.add("5xx")

    # -- access log -------------------------------------------------------------
    def _log(self, entry: dict[str, Any]) -> None:
        # Serialise outside the lock, and only when a file sink exists.
        line = (
            json.dumps(entry, sort_keys=True) if self._log_file is not None else None
        )
        with self._log_lock:
            self._access_count += 1
            self._access_tail.append(entry)
            if self._log_file is not None and line is not None:
                self._log_file.write(line + "\n")
                self._log_file.flush()

    def access_count(self) -> int:
        with self._log_lock:
            return self._access_count

    def access_tail(self, n: int = 20) -> list[dict[str, Any]]:
        with self._log_lock:
            tail = list(self._access_tail)
        return tail[-n:]

    # -- flight dumps -----------------------------------------------------------
    def dump_flight(self, path: str | os.PathLike) -> int:
        return self.flight.dump(path)

    def _dump_on_error(self) -> None:
        """Best-effort automatic dump after an unhandled handler error."""
        try:
            os.makedirs(self.error_dump_dir, exist_ok=True)
            path = os.path.join(
                self.error_dump_dir, f"flight-{os.getpid()}-{int(time.time())}.jsonl"
            )
            self.flight.dump(path)
        except OSError:
            pass

    # -- debug snapshots ---------------------------------------------------------
    def requests_snapshot(self, tail: int = 20) -> dict[str, Any]:
        quantiles = {
            k: _finite(v) for k, v in self.latency.quantiles().items()
        }
        return {
            "uptime_s": round(time.time() - self.started_at, 3),
            "requests": self.requests.snapshot(),
            "errors": self.errors.snapshot(),
            "statuses": self.statuses.rates(),
            "sheds": self.sheds.rates(),
            "shed_totals": self.sheds.totals(),
            "routes": self.routes.rates(),
            "tenants": self.tenants.rates(),
            "latency": {**quantiles, "window_s": self.latency.span_s},
            "access_log_count": self.access_count(),
            "flight": self.flight.stats(),
            "recent": self.access_tail(tail),
        }

    def slo_snapshot(self) -> dict[str, Any]:
        return self.slo.snapshot()

    def trace_snapshot(self, trace_id: str) -> dict[str, Any] | None:
        """A retained trace by id, merged with any late spans.

        Work the request queued (scheduler job bodies, executor nodes)
        completes *after* the HTTP response sealed the flight entry, so
        the live tracer is scanned for same-trace spans the recorder
        missed; traces that were never watched at all (e.g. CLI-origin
        spans) come back entirely from that scan.
        """
        entry = self.flight.get(trace_id)
        tracer_spans = [
            s for s in telemetry.get_tracer().spans() if s.get("trace") == trace_id
        ]
        if entry is None:
            if not tracer_spans:
                return None
            return {
                "trace": trace_id,
                "status": "unwatched",
                "meta": {},
                "spans": tracer_spans,
                "dropped_spans": 0,
                "ts": None,
            }
        seen = {s.get("span") for s in entry["spans"]}
        late = [s for s in tracer_spans if s.get("span") not in seen]
        if late:
            entry = {**entry, "spans": list(entry["spans"]) + late}
        return entry

    # -- /metrics enrichment -----------------------------------------------------
    def publish_gauges(self) -> None:
        """Push windowed rates into the metrics registry for scraping."""
        for label, rate in self.requests.rates().items():
            telemetry.gauge_set("serve_request_rate", rate, window=label)
        for label, rate in self.errors.rates().items():
            telemetry.gauge_set("serve_error_rate", rate, window=label)
        for name, value in self.latency.quantiles().items():
            finite = _finite(value)
            if finite is not None:
                telemetry.gauge_set(
                    "serve_latency_window_seconds", finite, quantile=name[1:]
                )
        snap = self.slo.snapshot()
        for objective in snap["objectives"]:
            telemetry.gauge_set(
                "serve_slo_burn_rate",
                objective["burn_long"],
                objective=objective["objective"],
                window="long",
            )
            telemetry.gauge_set(
                "serve_slo_burn_rate",
                objective["burn_short"],
                objective=objective["objective"],
                window="short",
            )
            telemetry.gauge_set(
                "serve_slo_budget_remaining",
                objective["budget_remaining"],
                objective=objective["objective"],
            )
