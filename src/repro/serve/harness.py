"""Wiring helpers: a complete serving stack in one call.

Used by the ``repro serve-http`` / ``repro loadgen`` CLI verbs, the
``run_serve_bench`` SLO benchmark and the CI serve-smoke script.  Two
runner flavours:

* ``"portal"`` — the real :class:`PortalJobRunner` walking the Figure-5
  flow on a demonstration environment (production shape, seconds/job);
* ``"synthetic"`` — :class:`SyntheticJobRunner`, a deterministic stand-in
  whose cost is a configurable few milliseconds: load tests of the
  *serving tier* must be dominated by connection handling and admission,
  not by galaxy morphology numerics.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field as dataclass_field

from repro.portal.demo import build_demo_environment
from repro.scheduler.journal import JobJournal
from repro.scheduler.job import JobSpec
from repro.scheduler.runner import JobOutcome, PortalJobRunner
from repro.scheduler.service import WorkloadManager
from repro.serve.app import ServeApp
from repro.serve.observability import ObservabilityPlane
from repro.serve.server import PortalHttpServer
from repro.votable.model import Field, VOTable
from repro.votable.writer import write_votable


class SyntheticJobRunner:
    """A deterministic, cheap job body for load-testing the serving tier.

    The produced VOTable depends only on the spec's cluster and options
    (so result caching and byte-identity assertions behave exactly as with
    real jobs), and the simulated compute time is derived from the spec's
    signature — stable across runs, varied across jobs.
    """

    def __init__(self, base_seconds: float = 0.005, spread_seconds: float = 0.01) -> None:
        self.base_seconds = base_seconds
        self.spread_seconds = spread_seconds

    def run(self, spec: JobSpec, resume_from: set[str] | None) -> JobOutcome:
        key = f"{spec.cluster}|{sorted(spec.options)}"
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        time.sleep(self.base_seconds + self.spread_seconds * digest[0] / 255.0)
        table = VOTable(
            [
                Field("id", "char"),
                Field("concentration", "double"),
                Field("asymmetry", "double"),
            ],
            name=f"{spec.cluster}-morphology",
            params={"cluster": spec.cluster},
        )
        for i in range(8):
            table.append(
                {
                    "id": f"{spec.cluster}-{i:04d}",
                    "concentration": 1.0 + digest[i + 1] / 64.0,
                    "asymmetry": digest[i + 9] / 512.0,
                }
            )
        return JobOutcome(
            result_bytes=write_votable(table).encode("utf-8"),
            galaxies=len(table),
            valid_measurements=len(table),
        )


@dataclass
class ServingStack:
    """Everything a running serve tier owns, with ordered teardown."""

    env: object
    manager: WorkloadManager
    app: ServeApp
    server: PortalHttpServer
    plane: ObservabilityPlane | None = None
    enable_plane: bool = False
    _started: bool = dataclass_field(default=False, repr=False)

    async def start(self) -> None:
        if self.plane is not None and self.enable_plane:
            self.plane.enable()
        self.manager.start()
        await self.server.start()
        self._started = True

    async def close(self, grace: float = 5.0) -> None:
        """Stop the listener, drain handlers, then the manager and bridge."""
        await self.server.close(grace=grace)
        self.app.bridge.close()
        self.manager.stop()
        if self.plane is not None:
            self.plane.close()
        self._started = False

    async def __aenter__(self) -> "ServingStack":
        await self.start()
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.close()


def build_serving_stack(
    *,
    journal_path: str | None = None,
    runner: str = "portal",
    clusters: object = None,
    host: str = "127.0.0.1",
    port: int = 0,
    max_workers: int = 4,
    slots_per_job: int = 4,
    observability: bool | None = None,
    access_log_path: str | None = None,
    latency_target_s: float = 0.5,
    **server_options: object,
) -> ServingStack:
    """Build (but do not start) a complete serving stack.

    ``runner="synthetic"`` still builds the demonstration environment —
    the Cone/SIA endpoints always serve real synthetic-sky queries — but
    swaps the job body for :class:`SyntheticJobRunner`.

    ``observability`` selects the plane configuration:

    * ``True`` — plane wired and enabled at :meth:`ServingStack.start`
      (turns telemetry on for span collection);
    * ``None`` (default) — plane wired but left disabled: the production
      shape, paying only the per-request guard test;
    * ``False`` — no plane object at all (the bench's no-plane baseline).
    """
    env = (
        build_demo_environment(clusters=clusters)
        if clusters is not None
        else build_demo_environment()
    )
    journal = JobJournal(journal_path)
    if runner == "portal":
        manager = WorkloadManager.for_environment(
            env,
            journal=journal,
            max_workers=max_workers,
            slots_per_job=slots_per_job,
        )
    elif runner == "synthetic":
        manager = WorkloadManager(
            SyntheticJobRunner(),
            journal=journal,
            max_workers=max_workers,
            slots_per_job=slots_per_job,
        )
    else:
        raise ValueError(f"unknown runner {runner!r}; expected 'portal' or 'synthetic'")
    plane = (
        None
        if observability is False
        else ObservabilityPlane(
            access_log_path=access_log_path, latency_target_s=latency_target_s
        )
    )
    app = ServeApp(env, manager, plane=plane)
    server = PortalHttpServer(app, host=host, port=port, **server_options)  # type: ignore[arg-type]
    return ServingStack(
        env=env,
        manager=manager,
        app=app,
        server=server,
        plane=plane,
        enable_plane=bool(observability),
    )


def build_fleet_serving_stack(
    data_dir: str,
    *,
    shards: int = 4,
    runner: str = "synthetic",
    host: str = "127.0.0.1",
    port: int = 0,
    max_workers: int = 2,
    slots_per_job: int = 4,
    base_seconds: float = 0.005,
    spread_seconds: float = 0.01,
    observability: bool | None = None,
    access_log_path: str | None = None,
    latency_target_s: float = 0.5,
    **server_options: object,
) -> ServingStack:
    """Build (but do not start) a *sharded* serving stack.

    Same HTTP surface as :func:`build_serving_stack`, but the manager slot
    holds a :class:`~repro.shard.fleet.ShardFleet`: submissions fan out to
    per-shard worker processes by sky tile, and ``/queue`` / ``/health`` /
    ``/metrics`` aggregate across the fleet.  The coordinator still builds
    a demonstration environment so the Cone/SIA endpoints serve locally.
    """
    from repro.shard.fleet import ShardFleet

    env = build_demo_environment()
    fleet = ShardFleet(
        data_dir,
        shards=shards,
        runner=runner,
        base_seconds=base_seconds,
        spread_seconds=spread_seconds,
        max_workers=max_workers,
        slots_per_job=slots_per_job,
    )
    plane = (
        None
        if observability is False
        else ObservabilityPlane(
            access_log_path=access_log_path, latency_target_s=latency_target_s
        )
    )
    app = ServeApp(env, fleet, plane=plane)
    server = PortalHttpServer(app, host=host, port=port, **server_options)  # type: ignore[arg-type]
    return ServingStack(
        env=env,
        manager=fleet,  # type: ignore[arg-type] - same facade, fleet-backed
        app=app,
        server=server,
        plane=plane,
        enable_plane=bool(observability),
    )


def ready_line(stack: ServingStack) -> str:
    """The machine-readable line the serve verbs print once listening.

    ``repro serve-http --port 0`` binds an ephemeral port; harnesses (CI,
    load generators, ``repro top`` wrappers) parse this single line instead
    of guessing.  Format: ``repro-serve-ready port=<p> url=<u>[ shards=<n>]``.
    """
    parts = [
        "repro-serve-ready",
        f"port={stack.server.port}",
        f"url={stack.server.url}",
    ]
    shard_names = getattr(stack.manager, "shard_names", None)
    if shard_names is not None:
        parts.append(f"shards={len(shard_names())}")
    return " ".join(parts)
