"""The portal application: endpoint routing, admission, streaming bodies.

:class:`ServeApp` maps the serving tier's HTTP surface onto the existing
components — Cone/SIA queries onto the synthetic data services, job
submission/status/results onto the :class:`WorkloadManager` — with the
overload behaviour web-scale astronomy portals need:

* **per-tenant admission** at the HTTP boundary: a
  :class:`TenantGate` bounds in-flight requests per tenant and globally,
  with bounds derived from the scheduler's
  :class:`~repro.scheduler.policy.AdmissionPolicy` so the HTTP tier and
  the queue agree on what "full" means;
* **backpressure, not queue growth**: a rejected request is a ``429``
  with a ``Retry-After`` estimated from current queue depth — the
  open-loop SkyServer lesson that shedding early beats collapsing late;
* **streaming results**: Cone/SIA tables and job results go out as
  chunked transfer encoding via :func:`repro.votable.writer.iter_votable`,
  so a large table never materialises as one string in the serving path.

Blocking work (service queries, journal appends, waits) runs on the
:class:`~repro.serve.bridge.WorkerBridge`; the app itself only ever runs
on the event loop.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Iterator

from repro import telemetry
from repro.core.errors import (
    QueueFullError,
    QuotaExceededError,
    SchedulerError,
    ServiceError,
    UnknownJobError,
)
from repro.scheduler.job import JobRecord
from repro.serve.bridge import WorkerBridge
from repro.serve.http import (
    HttpError,
    HttpRequest,
    Response,
    StreamingResponse,
)
from repro.serve.observability import ObservabilityPlane
from repro.services.protocol import ConeSearchRequest, SIARequest
from repro.votable.model import VOTable
from repro.votable.writer import iter_votable

#: Chunk size for streaming pre-materialised result bytes.
RESULT_CHUNK_BYTES = 16384

#: Upper bound on a ``?wait=`` long-poll, seconds.
MAX_WAIT_SECONDS = 30.0

VOTABLE_CONTENT_TYPE = "application/x-votable+xml"


class TenantGate:
    """In-flight request bounds, per tenant and global.

    Only ever touched from the event loop, so plain counters suffice.
    The defaults are taken from the scheduler's admission policy: a
    tenant may have as many requests in flight as it may have active
    jobs, and the server as many as the queue may hold.
    """

    def __init__(self, per_tenant: int = 16, total: int = 64) -> None:
        if per_tenant < 1 or total < 1:
            raise ValueError(
                f"gate bounds must be positive: per_tenant={per_tenant}, total={total}"
            )
        self.per_tenant = per_tenant
        self.total = total
        self._inflight: dict[str, int] = {}
        self._total = 0

    def try_enter(self, tenant: str) -> bool:
        if self._total >= self.total:
            return False
        if self._inflight.get(tenant, 0) >= self.per_tenant:
            return False
        self._inflight[tenant] = self._inflight.get(tenant, 0) + 1
        self._total += 1
        return True

    def leave(self, tenant: str) -> None:
        count = self._inflight.get(tenant, 0)
        if count <= 1:
            self._inflight.pop(tenant, None)
        else:
            self._inflight[tenant] = count - 1
        self._total = max(0, self._total - 1)

    def inflight(self, tenant: str | None = None) -> int:
        if tenant is None:
            return self._total
        return self._inflight.get(tenant, 0)


class _ReleasingChunks:
    """Iterator releasing a tenant-gate slot exactly once.

    A plain generator with ``finally`` is not enough: closing a generator
    that never started skips its ``finally`` entirely, so a stream
    abandoned before the first chunk (e.g. the response head write hit the
    slow-client deadline) would leak the slot.  This wrapper releases on
    exhaustion, on error, and on ``close()`` — whichever comes first.
    """

    def __init__(
        self, gate: TenantGate, tenant: str, inner: Iterable[bytes | str]
    ) -> None:
        self._gate = gate
        self._tenant = tenant
        self._inner: Iterator[bytes | str] = iter(inner)
        self._released = False

    def __iter__(self) -> "_ReleasingChunks":
        return self

    def __next__(self) -> bytes | str:
        try:
            return next(self._inner)
        except BaseException:  # including StopIteration
            self._release()
            raise

    def close(self) -> None:
        self._release()
        close = getattr(self._inner, "close", None)
        if close is not None:
            close()

    def _release(self) -> None:
        if not self._released:
            self._released = True
            self._gate.leave(self._tenant)


def _job_json(record: JobRecord) -> dict[str, Any]:
    return {
        **record.as_record(),
        "cache_hit": record.cache_hit,
        "wait_seconds": record.wait_seconds,
        "run_seconds": record.run_seconds,
        "error": record.error,
        "terminal": record.terminal,
    }


def _json_response(
    payload: Any, status: int = 200, headers: tuple[tuple[str, str], ...] = ()
) -> Response:
    return Response(
        status=status,
        body=(json.dumps(payload, sort_keys=True) + "\n").encode("utf-8"),
        content_type="application/json",
        headers=headers,
    )


def _float_param(request: HttpRequest, name: str) -> float:
    value = request.query.get(name)
    if value is None:
        raise HttpError(400, f"missing query parameter {name}")
    try:
        return float(value)
    except ValueError as exc:
        raise HttpError(400, f"malformed {name}={value!r}") from exc


class ServeApp:
    """Routes requests onto the demo environment and workload manager."""

    def __init__(
        self,
        env: Any,
        manager: Any,
        *,
        bridge: WorkerBridge | None = None,
        gate: TenantGate | None = None,
        plane: ObservabilityPlane | None = None,
    ) -> None:
        self.env = env
        self.manager = manager
        self.bridge = bridge if bridge is not None else WorkerBridge()
        if gate is None:
            admission = manager.admission
            gate = TenantGate(
                per_tenant=admission.max_active_per_user,
                total=admission.max_queue_depth,
            )
        self.gate = gate
        self.plane = plane

    @property
    def plane_active(self) -> bool:
        return self.plane is not None and self.plane.enabled

    # -- admission ------------------------------------------------------------
    @staticmethod
    def tenant_of(request: HttpRequest) -> str:
        return request.header("x-tenant") or request.query.get("user") or "anonymous"

    def retry_after(self) -> int:
        """Seconds a shed client should wait, from current backlog."""
        depth = self.manager.queue_depth() + self.manager.running_jobs()
        return max(1, min(30, round(0.5 * depth)))

    def _shed(self, reason: str, retry_after: int | None = None) -> HttpError:
        telemetry.count("serve_shed_total", reason=reason)
        seconds = self.retry_after() if retry_after is None else retry_after
        error = HttpError(
            429,
            f"overloaded ({reason}); retry after {seconds}s",
            headers=(("Retry-After", str(seconds)),),
        )
        error.shed_reason = reason
        return error

    # -- metrics labels --------------------------------------------------------
    @staticmethod
    def route_label(method: str, path: str) -> str:
        """Stable low-cardinality route label for metrics."""
        if path.startswith("/jobs"):
            if path == "/jobs":
                return "jobs.submit" if method == "POST" else "jobs.list"
            if path.endswith("/result"):
                return "jobs.result"
            return "jobs.status"
        if path in ("/cone", "/sia", "/health", "/metrics", "/queue"):
            return path[1:]
        if path.startswith("/debug/"):
            return "debug"
        return "unmatched"

    # -- dispatch --------------------------------------------------------------
    async def handle(self, request: HttpRequest) -> Response | StreamingResponse:
        """Route one request; raises :class:`HttpError` for error statuses."""
        tenant = self.tenant_of(request)
        if not self.gate.try_enter(tenant):
            raise self._shed("tenant-gate", retry_after=1)
        release = True
        try:
            response = await self._dispatch(request, tenant)
            if isinstance(response, StreamingResponse):
                # The body is produced after handle() returns; hold the
                # gate slot until the stream is fully consumed or closed.
                response.chunks = _ReleasingChunks(self.gate, tenant, response.chunks)
                release = False
            return response
        finally:
            if release:
                self.gate.leave(tenant)

    async def _dispatch(
        self, request: HttpRequest, tenant: str
    ) -> Response | StreamingResponse:
        method, path = request.method, request.path
        if path == "/health":
            return await self._health(method)
        if path == "/metrics":
            return await self._metrics(method)
        if path == "/cone":
            return await self._cone(request, method)
        if path == "/sia":
            return await self._sia(request, method)
        if path == "/queue":
            self._require(method, "GET")
            return _json_response(await self.bridge.call(self.manager.snapshot))
        if path == "/jobs":
            if method == "POST":
                return await self._submit(request, tenant)
            self._require(method, "GET")
            records = await self.bridge.call(self.manager.jobs)
            return _json_response({"jobs": [_job_json(r) for r in records]})
        if path.startswith("/jobs/"):
            return await self._job(request, method, path)
        if path.startswith("/debug/"):
            return await self._debug(request, method, path)
        raise HttpError(404, f"no route for {path}")

    @staticmethod
    def _require(method: str, *allowed: str) -> None:
        if method not in allowed:
            raise HttpError(
                405,
                f"method {method} not allowed",
                headers=(("Allow", ", ".join(allowed)),),
            )

    # -- endpoints ----------------------------------------------------------------
    async def _health(self, method: str) -> Response:
        self._require(method, "GET", "HEAD")
        payload: dict[str, Any] = {
            "status": "ok",
            "queued": self.manager.queue_depth(),
            "running": self.manager.running_jobs(),
            "inflight": self.gate.inflight(),
        }
        shard_health = getattr(self.manager, "shard_health", None)
        if shard_health is not None:
            # Fleet front door: aggregate per-shard liveness (reaping dead
            # workers as a side effect) and degrade status on any death.
            fleet_health = await self.bridge.call(shard_health)
            payload["shards"] = fleet_health
            if fleet_health["dead"]:
                payload["status"] = "degraded"
        health = getattr(self.env, "health", None)
        if health is not None:
            payload["sites"] = health.states()
        adaptive = getattr(self.env, "adaptive", None)
        if adaptive is not None:
            payload["adaptive"] = adaptive.snapshot()
        if self.plane_active:
            slo = self.plane.slo_snapshot()
            payload["slo"] = slo
            if slo["state"] != "ok":
                payload["status"] = "degraded"
        return _json_response(payload)

    async def _metrics(self, method: str) -> Response:
        self._require(method, "GET", "HEAD")
        if self.plane_active:
            self.plane.publish_gauges()
        merged = getattr(self.manager, "merged_metrics_text", None)
        if merged is not None:
            # Fleet front door: one exposition spanning the coordinator and
            # every worker process (per-shard series keep their labels).
            text = await self.bridge.call(merged)
        else:
            text = telemetry.prometheus_text()
        return Response(
            status=200,
            body=text.encode("utf-8"),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    # -- debug surface -----------------------------------------------------------
    async def _debug(
        self, request: HttpRequest, method: str, path: str
    ) -> Response:
        if not self.plane_active:
            raise HttpError(404, "observability plane is not enabled")
        plane = self.plane
        if path == "/debug/requests":
            self._require(method, "GET")
            return _json_response(plane.requests_snapshot())
        if path == "/debug/slo":
            self._require(method, "GET")
            return _json_response(plane.slo_snapshot())
        if path.startswith("/debug/trace/"):
            self._require(method, "GET")
            trace_id = path[len("/debug/trace/") :]
            entry = plane.trace_snapshot(trace_id)
            if entry is None:
                raise HttpError(404, f"no retained trace {trace_id!r}")
            return _json_response(entry)
        if path == "/debug/flight/dump":
            self._require(method, "POST")
            try:
                payload = json.loads(request.body or b"{}")
            except json.JSONDecodeError as exc:
                raise HttpError(400, f"malformed JSON body: {exc}") from exc
            target = payload.get("path") if isinstance(payload, dict) else None
            if not target or not isinstance(target, str):
                raise HttpError(400, "body requires a 'path' string")
            try:
                count = await self.bridge.call(plane.dump_flight, target)
            except OSError as exc:
                raise HttpError(400, f"cannot write dump: {exc}") from exc
            return _json_response({"path": target, "traces": count})
        raise HttpError(404, f"no route for {path}")

    def _stream_table(self, table: VOTable) -> StreamingResponse:
        return StreamingResponse(
            status=200,
            chunks=iter_votable(table),
            content_type=VOTABLE_CONTENT_TYPE,
            headers=(("X-Record-Count", str(len(table))),),
        )

    async def _cone(self, request: HttpRequest, method: str) -> StreamingResponse:
        self._require(method, "GET")
        catalog = request.query.get("catalog", "photometry")
        services = {
            "photometry": self.env.photometry_service,
            "redshift": self.env.redshift_service,
        }
        service = services.get(catalog)
        if service is None:
            raise HttpError(
                400, f"unknown catalog {catalog!r}; expected one of {sorted(services)}"
            )
        try:
            cone = ConeSearchRequest(
                ra=_float_param(request, "RA"),
                dec=_float_param(request, "DEC"),
                sr=_float_param(request, "SR"),
            )
        except ServiceError as exc:
            raise HttpError(400, str(exc)) from exc
        table = await self.bridge.call(service.search, cone)
        return self._stream_table(table)

    async def _sia(self, request: HttpRequest, method: str) -> StreamingResponse:
        self._require(method, "GET")
        survey = request.query.get("survey", "dss")
        archives = {
            "dss": self.env.optical_archive,
            "rosat": self.env.rosat_archive,
            "chandra": self.env.chandra_archive,
        }
        archive = archives.get(survey)
        if archive is None:
            raise HttpError(
                400, f"unknown survey {survey!r}; expected one of {sorted(archives)}"
            )
        pos = request.query.get("POS")
        if pos is None:
            raise HttpError(400, "missing query parameter POS")
        parts = pos.split(",")
        if len(parts) != 2:
            raise HttpError(400, f"malformed POS={pos!r}; expected RA,DEC")
        try:
            sia = SIARequest(
                ra=float(parts[0]),
                dec=float(parts[1]),
                size=_float_param(request, "SIZE"),
            )
        except (ValueError, ServiceError) as exc:
            raise HttpError(400, str(exc)) from exc
        table = await self.bridge.call(archive.query, sia)
        return self._stream_table(table)

    async def _submit(self, request: HttpRequest, tenant: str) -> Response:
        try:
            payload = json.loads(request.body or b"{}")
        except json.JSONDecodeError as exc:
            raise HttpError(400, f"malformed JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise HttpError(400, "JSON body must be an object")
        cluster = payload.get("cluster")
        if not cluster or not isinstance(cluster, str):
            raise HttpError(400, "body requires a 'cluster' string")
        options = payload.get("options") or {}
        if not isinstance(options, dict):
            raise HttpError(400, "'options' must be an object")
        user = payload.get("user") or tenant
        try:
            priority = int(payload.get("priority", 0))
        except (TypeError, ValueError) as exc:
            raise HttpError(400, "'priority' must be an integer") from exc
        try:
            record = await self.bridge.call(
                self.manager.submit, user, cluster, options, priority
            )
        except QueueFullError:
            raise self._shed("queue-full") from None
        except QuotaExceededError:
            raise self._shed("tenant-quota") from None
        except ValueError as exc:
            raise HttpError(400, str(exc)) from exc
        return _json_response(
            _job_json(record),
            status=202,
            headers=(("Location", f"/jobs/{record.job_id}"),),
        )

    async def _job(
        self, request: HttpRequest, method: str, path: str
    ) -> Response | StreamingResponse:
        self._require(method, "GET")
        rest = path[len("/jobs/") :]
        job_id, _, tail = rest.partition("/")
        if tail not in ("", "result"):
            raise HttpError(404, f"no route for {path}")
        try:
            if tail == "result":
                return await self._job_result(job_id)
            wait = request.query.get("wait")
            if wait is not None:
                timeout = min(max(float(wait), 0.0), MAX_WAIT_SECONDS)
                try:
                    await self.bridge.call(self.manager.wait, job_id, timeout)
                except SchedulerError:
                    pass  # long-poll timed out: report the current state
            record = await self.bridge.call(self.manager.job, job_id)
        except UnknownJobError as exc:
            raise HttpError(404, str(exc)) from exc
        except ValueError as exc:
            raise HttpError(400, str(exc)) from exc
        return _json_response(_job_json(record))

    async def _job_result(self, job_id: str) -> StreamingResponse:
        try:
            content = await self.bridge.call(self.manager.result_bytes, job_id)
        except UnknownJobError as exc:
            raise HttpError(404, str(exc)) from exc
        except SchedulerError as exc:
            # Known job, result unavailable (not completed / evicted).
            raise HttpError(409, str(exc)) from exc
        chunks = (
            content[i : i + RESULT_CHUNK_BYTES]
            for i in range(0, len(content), RESULT_CHUNK_BYTES)
        )
        return StreamingResponse(
            status=200, chunks=chunks, content_type=VOTABLE_CONTENT_TYPE
        )
