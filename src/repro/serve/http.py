"""Minimal HTTP/1.1 over asyncio streams: parsing, responses, streaming.

The serving tier speaks just enough HTTP/1.1 for the portal's endpoints —
GET/POST, query strings, ``Content-Length`` bodies, persistent connections
and chunked transfer encoding for streamed VOTables — implemented directly
on :class:`asyncio.StreamReader`/``StreamWriter`` with hard limits
everywhere a slow or hostile client could pin resources:

* header section bounded by ``max_header_bytes`` and a read deadline
  (slow-loris protection);
* bodies bounded by ``max_body_bytes`` (413 beyond it);
* every write drained under a deadline, so a client that stops reading a
  streamed response aborts the connection instead of wedging a handler.

Request ``Transfer-Encoding`` is deliberately unsupported (501): clients
of this service never need to chunk uploads, and rejecting it removes a
whole smuggling class.
"""

from __future__ import annotations

import asyncio
import contextlib
import urllib.parse
from dataclasses import dataclass
from typing import AsyncIterator, Iterable

#: Response reason phrases for the statuses the service emits.
REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A protocol- or application-level error with an HTTP mapping."""

    def __init__(
        self,
        status: int,
        detail: str = "",
        headers: tuple[tuple[str, str], ...] = (),
    ) -> None:
        super().__init__(detail or REASONS.get(status, str(status)))
        self.status = status
        self.detail = detail
        self.headers = headers


class SlowClientError(Exception):
    """The peer failed to send (or accept) bytes within its deadline."""


@dataclass
class HttpRequest:
    """One parsed request."""

    method: str
    target: str
    path: str
    query: dict[str, str]
    version: str
    headers: dict[str, str]  # keys lower-cased
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)


def _parse_headers(block: bytes) -> dict[str, str]:
    headers: dict[str, str] = {}
    for raw in block.split(b"\r\n"):
        if not raw:
            continue
        name, sep, value = raw.partition(b":")
        if not sep or not name or name != name.strip():
            raise HttpError(400, f"malformed header line {raw[:80]!r}")
        try:
            headers[name.decode("ascii").lower()] = value.strip().decode("ascii")
        except UnicodeDecodeError as exc:
            raise HttpError(400, "non-ASCII header") from exc
    return headers


def parse_request_head(head: bytes) -> HttpRequest:
    """Parse the request line + header block (no body)."""
    line, _, rest = head.partition(b"\r\n")
    parts = line.split(b" ")
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line {line[:80]!r}")
    raw_method, raw_target, raw_version = parts
    try:
        method = raw_method.decode("ascii")
        target = raw_target.decode("ascii")
        version = raw_version.decode("ascii")
    except UnicodeDecodeError as exc:
        raise HttpError(400, "non-ASCII request line") from exc
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HttpError(400, f"unsupported protocol version {version!r}")
    if not method.isalpha() or not method.isupper():
        raise HttpError(400, f"malformed method {method!r}")
    parsed = urllib.parse.urlsplit(target)
    query = dict(urllib.parse.parse_qsl(parsed.query, keep_blank_values=True))
    return HttpRequest(
        method=method,
        target=target,
        path=urllib.parse.unquote(parsed.path) or "/",
        query=query,
        version=version,
        headers=_parse_headers(rest),
    )


async def read_request(
    reader: asyncio.StreamReader,
    *,
    max_header_bytes: int = 16384,
    max_body_bytes: int = 1 << 20,
    timeout: float = 5.0,
) -> HttpRequest | None:
    """Read one request; ``None`` on a clean EOF before any byte arrived.

    Raises :class:`SlowClientError` when the deadline passes mid-request,
    :class:`HttpError` on protocol violations.
    """
    try:
        head = await asyncio.wait_for(
            reader.readuntil(b"\r\n\r\n"), timeout=timeout
        )
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between requests
        raise HttpError(400, "connection closed mid-request") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpError(413, "header section too large") from exc
    except asyncio.TimeoutError as exc:
        raise SlowClientError("request header deadline exceeded") from exc
    if len(head) > max_header_bytes:
        raise HttpError(413, "header section too large")
    request = parse_request_head(head[:-4])
    if "transfer-encoding" in request.headers:
        raise HttpError(501, "request transfer-encoding is not supported")
    length_text = request.header("content-length", "0")
    try:
        length = int(length_text)
    except ValueError as exc:
        raise HttpError(400, f"malformed content-length {length_text!r}") from exc
    if length < 0:
        raise HttpError(400, f"negative content-length {length}")
    if length > max_body_bytes:
        raise HttpError(413, f"body of {length} bytes exceeds {max_body_bytes}")
    if length:
        try:
            request.body = await asyncio.wait_for(
                reader.readexactly(length), timeout=timeout
            )
        except asyncio.IncompleteReadError as exc:
            raise HttpError(400, "connection closed mid-body") from exc
        except asyncio.TimeoutError as exc:
            raise SlowClientError("request body deadline exceeded") from exc
    return request


@dataclass
class Response:
    """A fully materialised response (Content-Length framing)."""

    status: int
    body: bytes = b""
    content_type: str = "text/plain; charset=utf-8"
    headers: tuple[tuple[str, str], ...] = ()


@dataclass
class StreamingResponse:
    """A chunked response whose body is produced incrementally.

    ``chunks`` yields ``str`` or ``bytes``; empty yields are skipped (an
    empty chunk would terminate the chunked stream early).
    """

    status: int
    chunks: AsyncIterator[bytes | str] | Iterable[bytes | str]
    content_type: str = "application/x-votable+xml"
    headers: tuple[tuple[str, str], ...] = ()


def render_head(
    status: int,
    headers: Iterable[tuple[str, str]],
    *,
    keep_alive: bool,
) -> bytes:
    reason = REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    lines.extend(f"{name}: {value}" for name, value in headers)
    lines.append("Connection: keep-alive" if keep_alive else "Connection: close")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")


async def _drain(writer: asyncio.StreamWriter, timeout: float) -> None:
    try:
        await asyncio.wait_for(writer.drain(), timeout=timeout)
    except asyncio.TimeoutError as exc:
        raise SlowClientError("response write deadline exceeded") from exc


async def write_response(
    writer: asyncio.StreamWriter,
    response: Response | StreamingResponse,
    *,
    keep_alive: bool,
    write_timeout: float = 5.0,
    head_only: bool = False,
) -> int:
    """Serialise ``response``; returns body bytes written.

    ``head_only`` supports HEAD: full headers, no body bytes (chunked
    responses still advertise chunked framing, per RFC 9110 §9.3.2).
    """
    base = [("Content-Type", response.content_type), *response.headers]
    if isinstance(response, Response):
        head = render_head(
            response.status,
            base + [("Content-Length", str(len(response.body)))],
            keep_alive=keep_alive,
        )
        writer.write(head if head_only else head + response.body)
        await _drain(writer, write_timeout)
        return 0 if head_only else len(response.body)
    head = render_head(
        response.status,
        base + [("Transfer-Encoding", "chunked")],
        keep_alive=keep_alive,
    )
    sent = 0
    chunks = response.chunks
    try:
        writer.write(head)
        await _drain(writer, write_timeout)
        if hasattr(chunks, "__aiter__"):
            async for chunk in chunks:  # type: ignore[union-attr]
                sent += await _write_chunk(writer, chunk, write_timeout, head_only)
        else:
            for chunk in chunks:  # type: ignore[union-attr]
                sent += await _write_chunk(writer, chunk, write_timeout, head_only)
        if not head_only:
            writer.write(b"0\r\n\r\n")
            await _drain(writer, write_timeout)
    finally:
        # An aborted write must still finalise the producer (generators
        # may hold resources — e.g. the app's tenant-gate slot).
        if hasattr(chunks, "aclose"):
            with contextlib.suppress(Exception):
                await chunks.aclose()  # type: ignore[union-attr]
        elif hasattr(chunks, "close"):
            with contextlib.suppress(Exception):
                chunks.close()  # type: ignore[union-attr]
    return sent


async def _write_chunk(
    writer: asyncio.StreamWriter,
    chunk: bytes | str,
    write_timeout: float,
    head_only: bool,
) -> int:
    data = chunk.encode("utf-8") if isinstance(chunk, str) else chunk
    if not data or head_only:
        return 0
    writer.write(f"{len(data):x}\r\n".encode("ascii") + data + b"\r\n")
    await _drain(writer, write_timeout)
    return len(data)


def error_response(error: HttpError) -> Response:
    body = (error.detail or REASONS.get(error.status, "")).encode("utf-8")
    return Response(
        status=error.status,
        body=body + b"\n" if body else b"",
        headers=error.headers,
    )
