"""Shared retry policy: exponential backoff + deterministic jitter + deadline.

One policy object serves every caller that talks to something unreliable —
VO service clients (cone search, SIA, cutout), RLS lookups, GRAM submission
and the scheduler's job requeue.  Centralising the policy means the chaos
harness has exactly one knob to reason about, and the classification of
*what is worth retrying* lives in exactly one place
(:func:`repro.core.errors.is_transient`).

Design constraints, in order:

1. **Determinism.**  Jitter is drawn from :func:`~repro.utils.rng.derive_rng`
   seeded with ``(seed, "retry", label, attempt)`` — the same call site
   retried in two different runs (or two different processes of a pool)
   backs off by the same amounts.  No global RNG state is touched.
2. **No real sleeping by default.**  ``retry_call(..., sleep=None)`` computes
   the backoff schedule but does not block; callers that carry a virtual
   clock (the transport :class:`~repro.services.transport.CostMeter`, the
   Condor simulator) charge the delay through ``on_backoff`` instead.  Pass
   ``sleep=time.sleep`` only at a genuinely wall-clock boundary.
3. **Zero cost on success.**  The first attempt runs outside any loop
   machinery beyond a ``try``; a policy of ``max_attempts=1`` behaves
   exactly like a bare call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.core.errors import is_transient
from repro.utils.rng import derive_rng

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule for transient failures.

    The delay before retry ``k`` (1-based: the delay after the ``k``-th
    failed attempt) is::

        delay(k) = min(base_delay_s * multiplier**(k-1), max_delay_s)
                   * (1 + jitter * u_k),   u_k ~ Uniform[-1, 1)

    and the whole ladder is abandoned once the *cumulative* scheduled
    delay would exceed ``deadline_s`` (if set).
    """

    max_attempts: int = 3
    base_delay_s: float = 0.5
    multiplier: float = 2.0
    max_delay_s: float = 30.0
    jitter: float = 0.1
    deadline_s: float | None = None
    seed: int = 2003

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def delay_for(self, attempt: int, label: str = "") -> float:
        """Backoff delay (seconds) after failed attempt ``attempt`` (1-based)."""
        base = min(
            self.base_delay_s * self.multiplier ** (attempt - 1),
            self.max_delay_s,
        )
        if self.jitter == 0.0 or base == 0.0:
            return base
        rng = derive_rng(self.seed, "retry", label, attempt)
        return base * (1.0 + self.jitter * float(rng.uniform(-1.0, 1.0)))


#: The policy used by the demo environment and the chaos harness when the
#: caller does not supply one.  Three attempts, 0.5 s → 1 s backoff,
#: deterministic 10% jitter — enough to ride out the injected transient
#: faults of every recoverable profile while keeping virtual wall cost low.
DEFAULT_RETRY_POLICY = RetryPolicy()


def retry_call(
    fn: Callable[[], T],
    policy: RetryPolicy | None,
    *,
    label: str = "",
    classify: Callable[[BaseException], bool] = is_transient,
    sleep: Callable[[float], None] | None = None,
    on_backoff: Callable[[int, float, BaseException], None] | None = None,
) -> T:
    """Call ``fn`` under ``policy``, retrying transient failures.

    Parameters
    ----------
    fn:
        Zero-argument callable; wrap arguments with a lambda/partial.
    policy:
        ``None`` means "no retries": the call is forwarded verbatim and
        this function adds a single ``try`` frame of overhead.
    label:
        Stable identity of the call site (e.g. ``"sia-query/abell-2151"``)
        — keys the deterministic jitter stream and telemetry.
    classify:
        Predicate deciding whether an exception is worth retrying.
        Defaults to :func:`repro.core.errors.is_transient`; anything it
        rejects propagates immediately.
    sleep:
        Real-sleep hook.  ``None`` (default) computes but does not serve
        the delay — callers on a virtual clock charge it via ``on_backoff``.
    on_backoff:
        ``on_backoff(attempt, delay_s, exc)`` fires before each retry —
        the hook where the transport meter charges failed-attempt cost and
        telemetry counts ``resilience_retries_total``.

    Raises
    ------
    BaseException
        The last failure, once attempts or the deadline are exhausted, or
        immediately for non-transient failures.
    """
    if policy is None or policy.max_attempts == 1:
        return fn()

    elapsed = 0.0
    attempt = 1
    while True:
        try:
            return fn()
        except BaseException as exc:  # noqa: BLE001 - classified below
            if attempt >= policy.max_attempts or not classify(exc):
                raise
            delay = policy.delay_for(attempt, label)
            if policy.deadline_s is not None and elapsed + delay > policy.deadline_s:
                raise
            elapsed += delay
            if on_backoff is not None:
                on_backoff(attempt, delay, exc)
            if sleep is not None and delay > 0.0:
                sleep(delay)
            attempt += 1
