"""Per-site circuit breakers and the site-health tracker.

A Grid site that just dropped three stage-ins in a row will very likely
drop the fourth: the paper's production ancestors (AstroGrid-D, Montage on
the TeraGrid) all converged on *stop scheduling onto sick sites* as the
single highest-leverage resilience mechanism.  We model it with the
classic three-state breaker:

``CLOSED``
    Healthy.  Calls flow; consecutive failures are counted.
``OPEN``
    Tripped after ``failure_threshold`` consecutive failures.  The site
    is blacklisted for ``recovery_time_s`` (of whatever clock the owner
    injects — wall for the local executor, sim-clock for the simulator).
``HALF_OPEN``
    The cooldown elapsed; one probe is allowed.  Success closes the
    breaker, failure re-opens it and restarts the cooldown.

The :class:`SiteHealthTracker` owns one breaker per site and is the
object shared between the executors (which report outcomes) and
``HealthAwareSiteSelector`` (which consults ``available()`` at planning
time).  All methods are thread-safe: the local executor reports from its
worker pool.
"""

from __future__ import annotations

import enum
import threading
import time
from typing import Callable, Iterable

from repro import telemetry


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """One site's failure accountant.

    Not thread-safe on its own — :class:`SiteHealthTracker` serialises
    access; use the tracker unless you have a single-threaded owner.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        recovery_time_s: float = 60.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if recovery_time_s < 0:
            raise ValueError("recovery_time_s must be non-negative")
        self.failure_threshold = failure_threshold
        self.recovery_time_s = recovery_time_s
        self._clock = clock
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self.transitions = 0

    @property
    def state(self) -> BreakerState:
        self._maybe_half_open()
        return self._state

    def allows(self) -> bool:
        """May a call be routed through this breaker right now?"""
        self._maybe_half_open()
        return self._state is not BreakerState.OPEN

    def record_success(self) -> None:
        self._maybe_half_open()
        self._consecutive_failures = 0
        if self._state is not BreakerState.CLOSED:
            self._transition(BreakerState.CLOSED)

    def record_failure(self) -> None:
        self._maybe_half_open()
        if self._state is BreakerState.HALF_OPEN:
            # The probe failed: straight back to OPEN, cooldown restarts.
            self._consecutive_failures = self.failure_threshold
            self._open()
            return
        self._consecutive_failures += 1
        if (
            self._state is BreakerState.CLOSED
            and self._consecutive_failures >= self.failure_threshold
        ):
            self._open()

    # -- internals ---------------------------------------------------------

    def _open(self) -> None:
        self._opened_at = self._clock()
        self._transition(BreakerState.OPEN)

    def _maybe_half_open(self) -> None:
        if (
            self._state is BreakerState.OPEN
            and self._clock() - self._opened_at >= self.recovery_time_s
        ):
            self._transition(BreakerState.HALF_OPEN)

    def _transition(self, new: BreakerState) -> None:
        if new is not self._state:
            self._state = new
            self.transitions += 1


class SiteHealthTracker:
    """Shared health ledger: one :class:`CircuitBreaker` per Grid site.

    Executors call :meth:`record_success` / :meth:`record_failure` as node
    attempts finish; the planner's ``HealthAwareSiteSelector`` calls
    :meth:`available` to filter candidates.  A site whose breaker is OPEN
    is blacklisted until its cooldown lapses into HALF_OPEN, at which
    point the selector may route a single probe job back to it.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        recovery_time_s: float = 60.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.failure_threshold = failure_threshold
        self.recovery_time_s = recovery_time_s
        self._clock = clock
        self._breakers: dict[str, CircuitBreaker] = {}
        self._lock = threading.Lock()

    def _breaker(self, site: str) -> CircuitBreaker:
        breaker = self._breakers.get(site)
        if breaker is None:
            breaker = CircuitBreaker(
                failure_threshold=self.failure_threshold,
                recovery_time_s=self.recovery_time_s,
                clock=self._clock,
            )
            self._breakers[site] = breaker
        return breaker

    def record_success(self, site: str) -> None:
        with self._lock:
            breaker = self._breaker(site)
            before = breaker.state
            breaker.record_success()
            after = breaker.state
        self._note_transition(site, before, after)

    def record_failure(self, site: str) -> None:
        with self._lock:
            breaker = self._breaker(site)
            before = breaker.state
            breaker.record_failure()
            after = breaker.state
        self._note_transition(site, before, after)
        telemetry.count("resilience_site_failures_total", site=site)

    def available(self, site: str) -> bool:
        """Is this site currently schedulable (breaker not OPEN)?

        Unknown sites are healthy by definition — the tracker only learns
        about a site when an executor reports an outcome for it.
        """
        with self._lock:
            breaker = self._breakers.get(site)
            return True if breaker is None else breaker.allows()

    def blacklisted(self) -> tuple[str, ...]:
        """Sites whose breaker is currently OPEN, sorted for determinism."""
        with self._lock:
            return tuple(
                sorted(
                    site
                    for site, breaker in self._breakers.items()
                    if breaker.state is BreakerState.OPEN
                )
            )

    def filter_available(self, sites: Iterable[str]) -> list[str]:
        """Order-preserving subset of ``sites`` that are schedulable."""
        with self._lock:
            return [
                site
                for site in sites
                if (b := self._breakers.get(site)) is None or b.allows()
            ]

    def states(self) -> dict[str, str]:
        """Snapshot ``{site: state}`` for reports and tests."""
        with self._lock:
            return {
                site: breaker.state.value
                for site, breaker in sorted(self._breakers.items())
            }

    def _note_transition(
        self, site: str, before: BreakerState, after: BreakerState
    ) -> None:
        if before is after:
            return
        telemetry.count(
            "resilience_breaker_transitions_total", site=site, to=after.value
        )
        telemetry.gauge_set(
            "resilience_breaker_open",
            1.0 if after is BreakerState.OPEN else 0.0,
            site=site,
        )
