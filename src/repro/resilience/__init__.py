"""``repro.resilience`` — the recovery half of the chaos story.

The :mod:`repro.faults` package breaks things; this package is what
makes the pipeline survive the breakage:

* :mod:`repro.resilience.retry` — the shared retry policy (exponential
  backoff + deterministic jitter + deadline) wrapped around every VO
  service call, RLS lookup and GRAM submission.  Sim-clock aware: the
  default configuration never sleeps for real, so the Condor simulator
  stays deterministic and the test suite stays fast.
* :mod:`repro.resilience.breaker` — per-site circuit breakers
  (closed/open/half-open) aggregated by a :class:`SiteHealthTracker`
  that feeds the planning layer: unhealthy sites are blacklisted by
  ``HealthAwareSiteSelector`` at mapping time so replans route around
  outages instead of rediscovering them.

Everything here is dependency-injected and zero-cost by default: no
retry policy ⇒ single attempt with no wrapper frames on the hot path,
no health tracker ⇒ planner behaviour is byte-identical to the seed.
See ``docs/resilience.md`` for the taxonomy and the backoff math.
"""

from __future__ import annotations

from repro.resilience.breaker import (
    BreakerState,
    CircuitBreaker,
    SiteHealthTracker,
)
from repro.resilience.retry import (
    DEFAULT_RETRY_POLICY,
    RetryPolicy,
    retry_call,
)

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "DEFAULT_RETRY_POLICY",
    "RetryPolicy",
    "SiteHealthTracker",
    "retry_call",
]
