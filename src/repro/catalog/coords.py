"""Spherical sky geometry, vectorised over numpy arrays.

Angles are degrees throughout (the unit of the Cone Search and SIA
protocols).  Separations use the Vincenty formula, which is numerically
stable at all angular scales — important because cluster work mixes
arcsecond-scale (galaxy matching) with degree-scale (field queries)
separations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SkyPosition:
    """An (RA, Dec) point on the celestial sphere, degrees."""

    ra: float
    dec: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.dec <= 90.0:
            raise ValueError(f"Dec out of range [-90, 90]: {self.dec}")
        object.__setattr__(self, "ra", float(self.ra) % 360.0)
        object.__setattr__(self, "dec", float(self.dec))

    def separation_deg(self, other: "SkyPosition") -> float:
        return float(angular_separation_deg(self.ra, self.dec, other.ra, other.dec))

    def offset(self, dra_deg: float, ddec_deg: float) -> "SkyPosition":
        """Small-angle offset: shift by ``dra`` along RA (true angle, i.e.
        divided by cos Dec) and ``ddec`` along Dec."""
        dec = self.dec + ddec_deg
        dec = min(90.0, max(-90.0, dec))
        cosd = np.cos(np.deg2rad(self.dec))
        ra = self.ra + (dra_deg / cosd if cosd > 1e-12 else 0.0)
        return SkyPosition(ra, dec)


def angular_separation_deg(
    ra1: np.ndarray | float,
    dec1: np.ndarray | float,
    ra2: np.ndarray | float,
    dec2: np.ndarray | float,
) -> np.ndarray:
    """Great-circle separation in degrees (Vincenty; broadcastable)."""
    lam1, phi1, lam2, phi2 = (np.deg2rad(np.asarray(a, dtype=float)) for a in (ra1, dec1, ra2, dec2))
    dlam = lam2 - lam1
    num = np.hypot(
        np.cos(phi2) * np.sin(dlam),
        np.cos(phi1) * np.sin(phi2) - np.sin(phi1) * np.cos(phi2) * np.cos(dlam),
    )
    den = np.sin(phi1) * np.sin(phi2) + np.cos(phi1) * np.cos(phi2) * np.cos(dlam)
    return np.rad2deg(np.arctan2(num, den))


def position_angle_deg(
    ra1: np.ndarray | float,
    dec1: np.ndarray | float,
    ra2: np.ndarray | float,
    dec2: np.ndarray | float,
) -> np.ndarray:
    """Position angle of point 2 as seen from point 1, East of North, degrees."""
    lam1, phi1, lam2, phi2 = (np.deg2rad(np.asarray(a, dtype=float)) for a in (ra1, dec1, ra2, dec2))
    dlam = lam2 - lam1
    x = np.sin(dlam)
    y = np.cos(phi1) * np.tan(phi2) - np.sin(phi1) * np.cos(dlam)
    pa = np.rad2deg(np.arctan2(x, y)) % 360.0
    # a tiny negative angle mod 360 can round to exactly 360.0
    return np.where(pa >= 360.0, 0.0, pa)


def cone_contains(
    center_ra: float,
    center_dec: float,
    radius_deg: float,
    ra: np.ndarray | float,
    dec: np.ndarray | float,
) -> np.ndarray:
    """Boolean mask: which (ra, dec) fall inside the given cone.

    This is the exact selection semantics of the Cone Search protocol
    (center + search radius ``SR``).
    """
    if radius_deg < 0:
        raise ValueError(f"cone radius must be non-negative: {radius_deg}")
    sep = angular_separation_deg(center_ra, center_dec, ra, dec)
    return np.asarray(sep <= radius_deg)
