"""DS9/Aladin region files: the catalog-overlay interchange format.

Figure 7's "colored dots ... at the positions of the galaxies within the
cluster; the dot color represents the value of the asymmetry index" is, in
practice, a region layer loaded over the imagery.  This module writes (and
re-parses) the ubiquitous DS9 ``.reg`` dialect so the reproduction's
catalogs drop straight into real astronomy viewers.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

#: Colour ramp from symmetric (orange, elliptical) to asymmetric (blue,
#: spiral) — the Figure 7 palette.
FIG7_COLORS = ("orange", "yellow", "green", "cyan", "blue")


@dataclass(frozen=True)
class CircleRegion:
    """One circular region in FK5 sky coordinates."""

    ra: float
    dec: float
    radius_arcsec: float
    color: str = "green"
    label: str = ""

    def to_line(self) -> str:
        attrs = [f"color={self.color}"]
        if self.label:
            attrs.append(f"text={{{self.label}}}")
        return f'circle({self.ra:.6f},{self.dec:.6f},{self.radius_arcsec:.2f}") # ' + " ".join(attrs)


def color_for_value(value: float, lo: float, hi: float, palette: tuple[str, ...] = FIG7_COLORS) -> str:
    """Map a value onto the palette (clipped linear ramp)."""
    if hi <= lo:
        return palette[0]
    t = min(max((value - lo) / (hi - lo), 0.0), 1.0)
    return palette[min(int(t * len(palette)), len(palette) - 1)]


def write_region_file(regions: list[CircleRegion], comment: str = "") -> str:
    """Serialise regions in the DS9 v4.1 format (fk5 frame)."""
    lines = ["# Region file format: DS9 version 4.1"]
    if comment:
        lines.append(f"# {comment}")
    lines.append(
        'global color=green dashlist=8 3 width=1 font="helvetica 10 normal roman" '
        "select=1 highlite=1 dash=0 fixed=0 edit=1 move=1 delete=1 include=1 source=1"
    )
    lines.append("fk5")
    lines.extend(region.to_line() for region in regions)
    return "\n".join(lines) + "\n"


_CIRCLE = re.compile(
    r'circle\(\s*([0-9.+-eE]+)\s*,\s*([0-9.+-eE]+)\s*,\s*([0-9.+-eE]+)"\s*\)'
    r"(?:\s*#\s*(.*))?"
)


def parse_region_file(text: str) -> list[CircleRegion]:
    """Parse the circle regions back out of a DS9 region file."""
    regions: list[CircleRegion] = []
    frame_seen = False
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#") or stripped.startswith("global"):
            continue
        if stripped in ("fk5", "icrs", "j2000"):
            frame_seen = True
            continue
        m = _CIRCLE.match(stripped)
        if not m:
            raise ValueError(f"unparseable region line: {line!r}")
        attrs = m.group(4) or ""
        color_match = re.search(r"color=(\w+)", attrs)
        label_match = re.search(r"text=\{([^}]*)\}", attrs)
        regions.append(
            CircleRegion(
                ra=float(m.group(1)),
                dec=float(m.group(2)),
                radius_arcsec=float(m.group(3)),
                color=color_match.group(1) if color_match else "green",
                label=label_match.group(1) if label_match else "",
            )
        )
    if regions and not frame_seen:
        raise ValueError("region file lacks a coordinate-frame line (fk5)")
    return regions


def catalog_to_regions(
    merged,
    radius_arcsec: float = 4.0,
    value_column: str = "asymmetry",
) -> list[CircleRegion]:
    """Figure 7's dot layer from a merged portal catalog.

    Valid rows become circles coloured by ``value_column`` on the
    orange-to-blue ramp; invalid rows become small red crosses' stand-ins
    (red circles labelled ``invalid``).
    """
    rows = list(merged)
    values = [r[value_column] for r in rows if r.get("valid") and r.get(value_column) is not None]
    lo = min(values) if values else 0.0
    hi = max(values) if values else 1.0
    regions: list[CircleRegion] = []
    for row in rows:
        if row.get("valid") and row.get(value_column) is not None:
            regions.append(
                CircleRegion(
                    ra=row["ra"],
                    dec=row["dec"],
                    radius_arcsec=radius_arcsec,
                    color=color_for_value(row[value_column], lo, hi),
                    label=row.get("id", ""),
                )
            )
        else:
            regions.append(
                CircleRegion(
                    ra=row["ra"],
                    dec=row["dec"],
                    radius_arcsec=radius_arcsec / 2,
                    color="red",
                    label=f"{row.get('id', '')} invalid",
                )
            )
    return regions
