"""Astronomical catalog substrate: sky geometry, cosmology, cross-matching.

Both NVO access protocols select data by *position on the sky* (the paper
notes "both of these interfaces use position in the sky as the primary data
selection criterion"), so correct spherical geometry underlies every
service.  The cosmology here supplies the (H0, Omega_m, flat) parameters the
``galMorph`` transformation of §3.2 receives, converting angular pixel
scales to physical ones at the cluster redshift.
"""

from repro.catalog.coords import (
    SkyPosition,
    angular_separation_deg,
    cone_contains,
    position_angle_deg,
)
from repro.catalog.cosmology import FlatLambdaCDM
from repro.catalog.crossmatch import crossmatch_positions, local_density

__all__ = [
    "SkyPosition",
    "angular_separation_deg",
    "position_angle_deg",
    "cone_contains",
    "FlatLambdaCDM",
    "crossmatch_positions",
    "local_density",
]
