"""Flat FRW cosmology: the (Ho, om, flat) parameter set of the paper's VDL.

The ``galMorph`` derivation of §3.2 carries ``Ho="100", om="0.3", flat="1"``
per galaxy, plus the redshift and pixel scale — exactly the inputs needed to
convert an angular pixel scale into a physical one.  This module provides
that conversion from first principles (comoving distance integral via
Simpson's rule; no astropy).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import integrate

#: Speed of light, km/s.
C_KM_S = 299_792.458


@dataclass(frozen=True)
class FlatLambdaCDM:
    """Spatially flat Lambda-CDM cosmology.

    Parameters
    ----------
    h0:
        Hubble constant in km/s/Mpc (the paper uses 100, i.e. distances in
        units of h^-1 Mpc).
    omega_m:
        Matter density parameter; dark energy fills the rest (flat).
    """

    h0: float = 100.0
    omega_m: float = 0.3

    def __post_init__(self) -> None:
        if self.h0 <= 0:
            raise ValueError(f"H0 must be positive: {self.h0}")
        if not 0.0 < self.omega_m <= 1.0:
            raise ValueError(f"Omega_m must be in (0, 1]: {self.omega_m}")

    @property
    def omega_lambda(self) -> float:
        return 1.0 - self.omega_m

    @property
    def hubble_distance_mpc(self) -> float:
        return C_KM_S / self.h0

    def efunc(self, z: np.ndarray | float) -> np.ndarray:
        """Dimensionless Hubble parameter E(z) = H(z)/H0."""
        z = np.asarray(z, dtype=float)
        return np.sqrt(self.omega_m * (1.0 + z) ** 3 + self.omega_lambda)

    def comoving_distance_mpc(self, z: float) -> float:
        """Line-of-sight comoving distance to redshift ``z`` in Mpc."""
        if z < 0:
            raise ValueError(f"redshift must be non-negative: {z}")
        if z == 0:
            return 0.0
        zs = np.linspace(0.0, z, 513)
        integrand = 1.0 / self.efunc(zs)
        return float(self.hubble_distance_mpc * integrate.simpson(integrand, x=zs))

    def angular_diameter_distance_mpc(self, z: float) -> float:
        """Angular diameter distance D_A = D_C / (1+z) for a flat universe."""
        return self.comoving_distance_mpc(z) / (1.0 + z)

    def luminosity_distance_mpc(self, z: float) -> float:
        """Luminosity distance D_L = D_C * (1+z) for a flat universe."""
        return self.comoving_distance_mpc(z) * (1.0 + z)

    def kpc_per_arcsec(self, z: float) -> float:
        """Physical scale at redshift ``z``: kiloparsecs per arcsecond."""
        d_a_kpc = self.angular_diameter_distance_mpc(z) * 1000.0
        return d_a_kpc * np.deg2rad(1.0 / 3600.0)

    def pixel_scale_kpc(self, z: float, pix_scale_deg: float) -> float:
        """Physical size (kpc) of one pixel of angular size ``pix_scale_deg``.

        This is the quantity ``galMorph`` derives from its ``pixScale``,
        ``redshift``, ``Ho``, ``om`` and ``flat`` arguments.
        """
        return self.kpc_per_arcsec(z) * abs(pix_scale_deg) * 3600.0

    def distance_modulus(self, z: float) -> float:
        """m - M = 5 log10(D_L / 10 pc)."""
        d_l_pc = self.luminosity_distance_mpc(z) * 1.0e6
        if d_l_pc <= 0:
            raise ValueError("distance modulus undefined at z=0")
        return float(5.0 * np.log10(d_l_pc / 10.0))
