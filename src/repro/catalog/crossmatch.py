"""Positional cross-matching and local density estimation.

The portal "triggers the construction of a catalog of the galaxies in the
cluster ... by retrieving records from catalogs from two other data centers"
(§4.2) — merging those catalogs requires matching sources by position.  The
science model needs the *local density of galaxies* (Dressler 1980), which
we estimate with the classical Nth-nearest-neighbour projected density.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.catalog.coords import angular_separation_deg


def _unit_vectors(ra_deg: np.ndarray, dec_deg: np.ndarray) -> np.ndarray:
    """(N, 3) unit vectors on the sphere for KD-tree chord matching."""
    ra = np.deg2rad(np.asarray(ra_deg, dtype=float))
    dec = np.deg2rad(np.asarray(dec_deg, dtype=float))
    return np.column_stack(
        (np.cos(dec) * np.cos(ra), np.cos(dec) * np.sin(ra), np.sin(dec))
    )


def crossmatch_positions(
    ra1: np.ndarray,
    dec1: np.ndarray,
    ra2: np.ndarray,
    dec2: np.ndarray,
    tolerance_arcsec: float = 2.0,
) -> list[tuple[int, int]]:
    """Match catalog 1 sources to their nearest catalog 2 source.

    Returns ``(i1, i2)`` index pairs for every catalog-1 source whose
    nearest catalog-2 neighbour lies within ``tolerance_arcsec``.  Matching
    is nearest-neighbour via a KD-tree on unit vectors (chord distance), so
    it is exact on the sphere and O((N+M) log M).
    """
    ra1, dec1 = np.atleast_1d(ra1), np.atleast_1d(dec1)
    ra2, dec2 = np.atleast_1d(ra2), np.atleast_1d(dec2)
    if ra2.size == 0 or ra1.size == 0:
        return []
    tree = cKDTree(_unit_vectors(ra2, dec2))
    # chord length for an angle theta: 2 sin(theta/2)
    max_chord = 2.0 * np.sin(np.deg2rad(tolerance_arcsec / 3600.0) / 2.0)
    dists, idx = tree.query(_unit_vectors(ra1, dec1), k=1)
    pairs = [(int(i1), int(i2)) for i1, (d, i2) in enumerate(zip(dists, idx)) if d <= max_chord]
    return pairs


def local_density(
    ra: np.ndarray,
    dec: np.ndarray,
    n_neighbors: int = 10,
) -> np.ndarray:
    """Projected Nth-nearest-neighbour surface density, galaxies / deg^2.

    Dressler's Sigma_N estimator: ``Sigma = N / (pi * theta_N^2)`` where
    ``theta_N`` is the angular distance to the Nth nearest neighbour.  For
    samples smaller than ``n_neighbors + 1`` the farthest available
    neighbour is used instead, so the estimator degrades gracefully on the
    paper's smallest (37-galaxy) cluster.
    """
    ra = np.atleast_1d(np.asarray(ra, dtype=float))
    dec = np.atleast_1d(np.asarray(dec, dtype=float))
    n = ra.size
    if n < 2:
        return np.zeros(n)
    k = min(n_neighbors, n - 1)
    tree = cKDTree(_unit_vectors(ra, dec))
    # k+1 because the closest hit is the point itself.
    dists, _ = tree.query(_unit_vectors(ra, dec), k=k + 1)
    chord = dists[:, -1]
    theta_deg = np.rad2deg(2.0 * np.arcsin(np.clip(chord / 2.0, 0.0, 1.0)))
    theta_deg = np.maximum(theta_deg, 1e-9)  # coincident positions
    return k / (np.pi * theta_deg**2)


def radial_separation_deg(
    center_ra: float, center_dec: float, ra: np.ndarray, dec: np.ndarray
) -> np.ndarray:
    """Cluster-centric angular radius of each galaxy, degrees."""
    return np.asarray(angular_separation_deg(center_ra, center_dec, ra, dec))
