"""GRAM / GSI shim: authenticated job submission.

"This prototype web service submits jobs onto the Grid using the
credentials stored at the web server" (§4.3.1(5)).  The gateway checks a
:class:`GridCredential` before accepting work — enough to reproduce the
authentication design decision (including expired-proxy failures) without
a real security stack.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ExecutionError


@dataclass(frozen=True)
class GridCredential:
    """A proxy credential, MyProxy-style: subject plus lifetime."""

    subject: str
    issued_at: float = 0.0
    lifetime_s: float = 12 * 3600.0

    def is_valid(self, now: float) -> bool:
        return self.issued_at <= now < self.issued_at + self.lifetime_s


class GramGateway:
    """Entry point jobs pass through on their way to a pool.

    Counts submissions per site so benches can report the §5 three-pool
    spread; rejects work when the presented credential is invalid.
    """

    def __init__(self) -> None:
        self.submissions: dict[str, int] = {}

    def authenticate(self, credential: GridCredential, now: float) -> None:
        if not credential.is_valid(now):
            raise ExecutionError(
                f"GSI authentication failed for {credential.subject!r}: proxy expired"
            )

    def submit(self, site: str, credential: GridCredential, now: float) -> None:
        """Record an authenticated submission to ``site``."""
        self.authenticate(credential, now)
        self.submissions[site] = self.submissions.get(site, 0) + 1

    def total_submissions(self) -> int:
        return sum(self.submissions.values())
