"""Discrete-event Grid simulator: Condor-G/DAGMan over the pool topology.

Executes a :class:`~repro.workflow.concrete.ConcreteWorkflow` in virtual
time.  Compute nodes occupy pool slots and take
``base_runtime(transformation) / pool.speed`` (log-normal jitter); transfer
nodes take the GridFTP latency+bandwidth time of the topology; failure
injection happens per attempt at the pool's ``failure_rate``.  DAGMan
semantics (release, retry, rescue) come from :class:`DagmanState`.

With an :class:`~repro.adaptive.AdaptiveController` attached the engine
additionally models the SLO-driven execution layer:

* **tail latency** — a chaos plan's ``slow_factor``/``slow_sigma`` spec
  multiplies compute durations per attempt (the slow-but-alive site);
* **speculation** — a compute node running past its class's budget
  (best-site p95 × multiplier) gets a duplicate on the next-best site;
  first finish wins, the loser is cancelled (slot freed immediately,
  elapsed seconds charged as ``speculative`` waste);
* **autoscaling** — per-site slot counts grow against blocked demand and
  shrink back to the provisioned floor, with cooldowns.

When the controller is ``None`` (the default) none of that code runs and
the event schedule — including every RNG draw — is identical to the
pre-adaptive engine.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro import telemetry
from repro.condor.dagman import DagmanState, NodeStatus
from repro.condor.pool import GridTopology
from repro.condor.report import ExecutionReport, NodeRun
from repro.resilience.breaker import SiteHealthTracker
from repro.utils.events import EventLog
from repro.utils.rng import derive_rng

if TYPE_CHECKING:  # pragma: no cover
    from repro.adaptive import AdaptiveController
    from repro.faults.plan import FaultInjector
from repro.workflow.concrete import (
    ClusteredComputeNode,
    ComputeNode,
    ConcreteWorkflow,
    RegistrationNode,
    TransferNode,
)

#: Default base runtimes (seconds on a speed-1.0 pool) per transformation.
DEFAULT_RUNTIMES: dict[str, float] = {
    "galMorph": 12.0,
    "concatVOTable": 5.0,
}
DEFAULT_RUNTIME_FALLBACK = 10.0
REGISTRATION_TIME_S = 0.05


def merge_forced_failures(
    workflow: ConcreteWorkflow,
    configured: dict[str, int],
    override: dict[str, int] | None = None,
) -> dict[str, int]:
    """Merge configured + runtime forced-failure maps, validating node ids.

    Both the :class:`SimulationOptions` map and any execute-time override
    must name nodes that actually exist in the workflow DAG; silently
    ignoring a typo'd id would make a fault-injection test vacuously pass.
    Raises :class:`~repro.core.errors.ExecutionError` listing offenders.
    """
    from repro.core.errors import ExecutionError

    merged = dict(configured)
    if override:
        merged.update(override)
    if merged:
        known = set(workflow.dag.node_ids())
        unknown = sorted(set(merged) - known)
        if unknown:
            raise ExecutionError(
                f"forced_failures reference unknown workflow nodes: {unknown}"
            )
    return merged


@dataclass
class SimulationOptions:
    """Simulator knobs."""

    seed: int = 2003
    max_retries: int = 2
    runtimes: dict[str, float] = field(default_factory=lambda: dict(DEFAULT_RUNTIMES))
    runtime_jitter: float = 0.15  # log-normal sigma; 0 disables jitter
    #: Node ids forced to fail on their first N attempts (deterministic tests).
    #: Ids are validated against the workflow DAG at execution start-up; an
    #: unknown id raises :class:`~repro.core.errors.ExecutionError`.
    forced_failures: dict[str, int] = field(default_factory=dict)
    #: Fallback size for transfers whose plan-time size is 0.
    default_file_size: int = 20160
    #: Per-submitted-job scheduling overhead (Condor-G match + launch).
    #: Clustering amortises exactly this cost.
    job_overhead_s: float = 0.0


def node_class(payload: object) -> str:
    """The estimator/speculation class of a compute payload.

    Clustered bundles are a different class from single nodes — their
    duration scales with member count, so they must not share a budget.
    """
    if isinstance(payload, ComputeNode):
        return payload.transformation
    if isinstance(payload, ClusteredComputeNode):
        return f"{payload.transformation}*{len(payload.members)}"
    raise TypeError(f"no node class for {type(payload).__name__}")


def payload_with_site(payload: object, site: str) -> object:
    """A compute payload re-pinned to ``site`` (speculative duplicates)."""
    if isinstance(payload, ComputeNode):
        return replace(payload, site=site)
    if isinstance(payload, ClusteredComputeNode):
        members = tuple(replace(m, site=site) for m in payload.members)
        return replace(payload, members=members, site=site)
    raise TypeError(f"cannot re-site {type(payload).__name__}")


class GridSimulator:
    """Runs concrete workflows in virtual time over a :class:`GridTopology`."""

    def __init__(
        self,
        topology: GridTopology,
        options: SimulationOptions | None = None,
        size_lookup: Callable[[str], int] | None = None,
        event_log: EventLog | None = None,
        mds: "MonitoringService | None" = None,
        faults: "FaultInjector | None" = None,
        health: SiteHealthTracker | None = None,
        adaptive: "AdaptiveController | None" = None,
    ) -> None:
        self.topology = topology
        self.options = options if options is not None else SimulationOptions()
        self.size_lookup = size_lookup
        self.events = event_log if event_log is not None else EventLog()
        #: when set, the simulator publishes live pool load into the MDS
        self.mds = mds
        #: chaos fault oracle; ``None`` (default) leaves the failure model
        #: exactly as seeded (pool failure_rate + forced_failures only)
        self.faults = faults
        #: shared circuit-breaker ledger fed with per-attempt outcomes
        self.health = health
        #: the adaptive-execution layer (speculation + autoscaling);
        #: ``None`` keeps the event schedule identical to the static engine
        self.adaptive = adaptive

    # -- duration / failure models ------------------------------------------------
    def _compute_duration(self, node: ComputeNode, rng: np.random.Generator) -> float:
        base = self.options.runtimes.get(node.transformation, DEFAULT_RUNTIME_FALLBACK)
        pool = self.topology.pools.get(node.site)
        speed = pool.speed if pool is not None else 1.0
        jitter = (
            float(rng.lognormal(0.0, self.options.runtime_jitter))
            if self.options.runtime_jitter > 0
            else 1.0
        )
        return base / speed * jitter

    def _transfer_size(self, node: TransferNode) -> int:
        if node.size_bytes > 0:
            return node.size_bytes
        if self.size_lookup is not None:
            size = self.size_lookup(node.lfn)
            if size > 0:
                return size
        return self.options.default_file_size

    def _duration(self, payload: object, rng: np.random.Generator) -> float:
        if isinstance(payload, ComputeNode):
            return self.options.job_overhead_s + self._compute_duration(payload, rng)
        if isinstance(payload, ClusteredComputeNode):
            # one scheduling overhead for the bundle, members sequential
            return self.options.job_overhead_s + sum(
                self._compute_duration(member, rng) for member in payload.members
            )
        if isinstance(payload, TransferNode):
            return self.topology.transfer_time(
                payload.source_site, payload.dest_site, self._transfer_size(payload)
            )
        if isinstance(payload, RegistrationNode):
            return REGISTRATION_TIME_S
        raise TypeError(f"unknown node payload {type(payload).__name__}")

    def _attempt_fails(
        self,
        node_id: str,
        payload: object,
        attempt: int,
        rng: np.random.Generator,
        forced_failures: dict[str, int] | None = None,
        now: float = 0.0,
    ) -> bool:
        forced_map = (
            forced_failures if forced_failures is not None else self.options.forced_failures
        )
        forced = forced_map.get(node_id, 0)
        if attempt <= forced:
            return True
        if self.faults is not None:
            if isinstance(payload, (ComputeNode, ClusteredComputeNode)):
                if self.faults.site_attempt_fails(payload.site, node_id, attempt, now):
                    return True
            elif isinstance(payload, TransferNode):
                if self.faults.transfer_fails(payload.dest_site, node_id, attempt):
                    return True
        if isinstance(payload, ComputeNode):
            pool = self.topology.pools.get(payload.site)
            if pool is not None and pool.failure_rate > 0:
                return bool(rng.random() < pool.failure_rate)
        if isinstance(payload, ClusteredComputeNode):
            pool = self.topology.pools.get(payload.site)
            if pool is not None and pool.failure_rate > 0:
                # the bundle fails if any member does
                survive = (1.0 - pool.failure_rate) ** len(payload.members)
                return bool(rng.random() > survive)
        return False

    # -- the event loop ---------------------------------------------------------------
    def execute(
        self,
        workflow: ConcreteWorkflow,
        completed: set[str] | None = None,
        forced_failures: dict[str, int] | None = None,
    ) -> ExecutionReport:
        """Simulate the workflow to completion (or stuck-failure) and report.

        ``completed`` resumes from a rescue DAG: those nodes are skipped.
        ``forced_failures`` is a runtime override merged over (and validated
        together with) :attr:`SimulationOptions.forced_failures`.
        """
        with telemetry.trace_span(
            "condor.execute", mode="simulate", nodes=len(workflow)
        ) as span:
            report = self._execute_impl(workflow, completed, forced_failures)
            span.set(
                succeeded=report.succeeded,
                makespan=report.makespan,
                retries=report.retries,
            )
        return report

    def _execute_impl(
        self,
        workflow: ConcreteWorkflow,
        completed: set[str] | None = None,
        forced_failures: dict[str, int] | None = None,
    ) -> ExecutionReport:
        forced = merge_forced_failures(
            workflow, self.options.forced_failures, forced_failures
        )
        dagman = DagmanState(
            workflow.dag, max_retries=self.options.max_retries, completed=completed
        )
        rng = derive_rng(self.options.seed, "simulator")

        adaptive = self.adaptive
        spec_policy = adaptive.speculation if adaptive is not None else None
        estimator = adaptive.estimator if adaptive is not None else None
        tracker = adaptive.tracker if adaptive is not None else None
        autoscaler = None
        if adaptive is not None and adaptive.autoscale is not None:
            from repro.adaptive.autoscale import SiteAutoscaler

            autoscaler = SiteAutoscaler(
                {name: pool.slots for name, pool in self.topology.pools.items()},
                adaptive.autoscale,
            )
            adaptive.last_autoscaler = autoscaler

        clock = 0.0
        seq = itertools.count()
        run_seq = itertools.count()
        #: (fire_time, seq, event, node_id, run_id) — "finish" completes a
        #: run; "spec" re-examines one that may have become a straggler.
        heap: list[tuple[float, int, str, str, int]] = []
        slots_busy: dict[str, int] = {name: 0 for name in self.topology.pools}
        first_start: dict[str, float] = {}
        retries = 0
        report = ExecutionReport()

        # per-run bookkeeping; a node has >1 active run only while a
        # speculative duplicate races the original
        run_payload: dict[int, object] = {}
        run_site: dict[int, str] = {}
        run_start: dict[int, float] = {}
        run_slot_site: dict[int, str] = {}
        node_runs: dict[str, set[int]] = {}
        finished_runs: set[int] = set()
        cancelled: set[int] = set()
        duplicate_runs: set[int] = set()
        speculated_nodes: set[str] = set()
        site_override: dict[str, str] = {}
        blocked: dict[str, int] = {}
        active_duplicates = 0

        def site_limit(site: str) -> int:
            if autoscaler is not None:
                return autoscaler.slots(site)
            return self.topology.pool(site).slots

        def publish_load(site: str) -> None:
            if self.mds is None:
                return
            from repro.condor.mds import ResourceRecord

            pool = self.topology.pools[site]
            self.mds.publish(
                ResourceRecord(
                    site=site,
                    total_slots=pool.slots,
                    busy_slots=slots_busy[site],
                    cpu_speed=pool.speed,
                    timestamp=clock,
                )
            )

        def site_of(payload: object) -> str:
            if isinstance(payload, (ComputeNode, ClusteredComputeNode)):
                return payload.site
            if isinstance(payload, TransferNode):
                return payload.dest_site
            if isinstance(payload, RegistrationNode):
                return payload.site
            raise TypeError(type(payload).__name__)

        def active_runs(node_id: str) -> set[int]:
            return {
                r
                for r in node_runs.get(node_id, ())
                if r not in finished_runs and r not in cancelled
            }

        def record_node(
            node_id: str, payload: object, attempt: int, success: bool, site: str
        ) -> None:
            """Publish the finished node as a synthetic sim-clock span."""
            if not telemetry.enabled():
                return
            telemetry.record_span(
                "condor.node",
                first_start[node_id],
                clock,
                status="ok" if success else "error",
                clock="sim",
                node=node_id,
                kind=_kind(payload),
                site=site,
                attempts=attempt,
                deps=sorted(workflow.dag.parents(node_id)),
            )
            telemetry.count(
                "workflow_nodes_total", state="succeeded" if success else "failed"
            )

        def spec_budget(payload: object) -> float | None:
            """Straggler threshold for this payload's class, or ``None``
            while the estimator lacks history."""
            assert spec_policy is not None and estimator is not None
            cls = node_class(payload)
            if estimator.class_samples(cls) < spec_policy.min_samples:
                return None
            quantile = estimator.best_quantile(cls, spec_policy.quantile)
            if quantile is None:
                return None
            return max(spec_policy.min_budget_s, quantile * spec_policy.p95_multiplier)

        def start_run(node_id: str, payload: object, holds_slot: bool) -> int:
            nonlocal clock
            duration = self._duration(payload, rng)
            attempt = dagman.attempts[node_id]
            if self.faults is not None and isinstance(
                payload, (ComputeNode, ClusteredComputeNode)
            ):
                factor = self.faults.site_slowdown(payload.site, node_id, attempt)
                if factor > 1.0:
                    duration *= factor
            rid = next(run_seq)
            run_payload[rid] = payload
            run_site[rid] = site_of(payload)
            run_start[rid] = clock
            if holds_slot:
                run_slot_site[rid] = payload.site
            node_runs.setdefault(node_id, set()).add(rid)
            heapq.heappush(heap, (clock + duration, next(seq), "finish", node_id, rid))
            return rid

        def try_start(node_id: str) -> bool:
            payload = workflow.dag.payload(node_id)
            compute = isinstance(payload, (ComputeNode, ClusteredComputeNode))
            holds_slot = compute and payload.site in slots_busy
            if holds_slot:
                if slots_busy[payload.site] >= site_limit(payload.site):
                    blocked[payload.site] = blocked.get(payload.site, 0) + 1
                    return False
                slots_busy[payload.site] += 1
                publish_load(payload.site)
            dagman.mark_running(node_id)
            first_start.setdefault(node_id, clock)
            rid = start_run(node_id, payload, holds_slot)
            if spec_policy is not None and compute:
                budget = spec_budget(payload)
                if budget is not None:
                    heapq.heappush(heap, (clock + budget, next(seq), "spec", node_id, rid))
            return True

        def start_all_ready() -> None:
            blocked.clear()
            for node_id in dagman.ready_nodes():
                try_start(node_id)
            if autoscaler is None:
                return
            grew = False
            for site in sorted(slots_busy):
                before = autoscaler.slots(site)
                after = autoscaler.evaluate(
                    site, blocked.get(site, 0), slots_busy[site], clock
                )
                grew = grew or after > before
            if grew:
                # the grant may admit blocked nodes right now
                for node_id in dagman.ready_nodes():
                    try_start(node_id)

        def free_slot(rid: int) -> None:
            slot_site = run_slot_site.pop(rid, None)
            if slot_site is not None:
                slots_busy[slot_site] -= 1
                publish_load(slot_site)

        def cancel_run(rid: int, node_id: str) -> None:
            """Lose the race: slot back immediately, elapsed charged."""
            nonlocal active_duplicates
            cancelled.add(rid)
            free_slot(rid)
            if rid in duplicate_runs:
                active_duplicates -= 1
            elapsed = clock - run_start[rid]
            report.spec_wasted += 1
            if tracker is not None:
                tracker.record_waste(run_site[rid], node_id, elapsed)
            self.events.emit(
                clock,
                "simulator",
                "node-spec-cancelled",
                node=node_id,
                site=run_site[rid],
                wasted_s=round(elapsed, 3),
            )

        def launch_duplicate(node_id: str, rid: int) -> bool:
            """Duplicate a straggling run on the next-best site with a free
            slot; shares the node's attempt number (and hence its
            derivation signature), so either result is acceptable."""
            nonlocal active_duplicates
            payload = run_payload[rid]
            best: tuple[float, str] | None = None
            for site in sorted(slots_busy):
                if site == payload.site:
                    continue
                if slots_busy[site] >= site_limit(site):
                    continue
                predicted = (
                    estimator.predict(site, node_class(payload))
                    if estimator is not None
                    else None
                )
                if predicted is None:
                    pool = self.topology.pools[site]
                    base = self.options.runtimes.get(
                        node_class(payload).split("*")[0], DEFAULT_RUNTIME_FALLBACK
                    )
                    predicted = base / pool.speed
                if best is None or predicted < best[0]:
                    best = (predicted, site)
            if best is None:
                return False
            dup_payload = payload_with_site(payload, best[1])
            slots_busy[best[1]] += 1
            publish_load(best[1])
            dup_rid = start_run(node_id, dup_payload, holds_slot=True)
            duplicate_runs.add(dup_rid)
            active_duplicates += 1
            speculated_nodes.add(node_id)
            report.speculated += 1
            if tracker is not None:
                tracker.record_launch(best[1], node_id)
            self.events.emit(
                clock,
                "simulator",
                "node-speculated",
                node=node_id,
                from_site=run_site[rid],
                to_site=best[1],
                running_s=round(clock - run_start[rid], 3),
            )
            return True

        start_all_ready()
        while heap:
            clock, _, event, node_id, rid = heapq.heappop(heap)

            if event == "spec":
                # still a live straggler? (not finished, not cancelled, not
                # already duplicated — one duplicate per node per attempt)
                if (
                    rid in finished_runs
                    or rid in cancelled
                    or node_id in speculated_nodes
                    or rid not in active_runs(node_id)
                ):
                    continue
                assert spec_policy is not None
                if active_duplicates >= spec_policy.max_active or not launch_duplicate(
                    node_id, rid
                ):
                    # no duplicate budget/slot right now: re-examine later
                    budget = spec_budget(run_payload[rid])
                    if budget is not None:
                        heapq.heappush(
                            heap, (clock + budget, next(seq), "spec", node_id, rid)
                        )
                continue

            if rid in cancelled:
                continue  # the slot was freed when the race was decided
            finished_runs.add(rid)
            free_slot(rid)
            if rid in duplicate_runs:
                active_duplicates -= 1
            payload = run_payload[rid]

            attempt = dagman.attempts[node_id]
            failed = self._attempt_fails(node_id, payload, attempt, rng, forced, now=clock)
            if self.health is not None:
                if failed:
                    self.health.record_failure(site_of(payload))
                else:
                    self.health.record_success(site_of(payload))

            if failed:
                survivors = active_runs(node_id)
                if survivors:
                    # a sibling copy is still racing — absorb this failure
                    # as speculative waste instead of a DAGMan transition
                    report.spec_wasted += 1
                    if tracker is not None:
                        tracker.record_waste(
                            run_site[rid], node_id, clock - run_start[rid]
                        )
                    self.events.emit(
                        clock, "simulator", "node-spec-copy-failed",
                        node=node_id, site=run_site[rid],
                    )
                    continue
                will_retry = dagman.mark_failure(node_id)
                speculated_nodes.discard(node_id)  # a retry may speculate anew
                self.events.emit(clock, "simulator", "node-failed", node=node_id, attempt=attempt, retry=will_retry)
                if will_retry:
                    retries += 1
                    telemetry.count("workflow_retries_total")
                else:
                    record_node(node_id, payload, attempt, False, site_of(payload))
                    report.runs.append(
                        NodeRun(
                            node_id=node_id,
                            kind=_kind(payload),
                            site=site_of(payload),
                            start=first_start[node_id],
                            end=clock,
                            attempts=attempt,
                            success=False,
                        )
                    )
            else:
                for other in sorted(active_runs(node_id)):
                    cancel_run(other, node_id)
                if rid in duplicate_runs:
                    report.spec_won += 1
                    site_override[node_id] = run_site[rid]
                    if tracker is not None:
                        tracker.record_win(run_site[rid], node_id)
                if estimator is not None and isinstance(
                    payload, (ComputeNode, ClusteredComputeNode)
                ):
                    estimator.observe(
                        run_site[rid], node_class(payload), clock - run_start[rid]
                    )
                dagman.mark_success(node_id)
                final_site = site_override.get(node_id, site_of(payload))
                record_node(node_id, payload, attempt, True, final_site)
                report.runs.append(
                    NodeRun(
                        node_id=node_id,
                        kind=_kind(payload),
                        site=final_site,
                        start=first_start[node_id],
                        end=clock,
                        attempts=attempt,
                        success=True,
                    )
                )
                if isinstance(payload, TransferNode):
                    key = payload.kind.value
                    report.transfer_counts[key] = report.transfer_counts.get(key, 0) + 1
                    report.bytes_moved += self._transfer_size(payload)
            start_all_ready()

        report.makespan = clock
        report.succeeded = dagman.succeeded()
        report.failed_nodes = tuple(dagman.failed_nodes())
        report.unrunnable_nodes = tuple(
            n for n, s in dagman.status.items() if s is NodeStatus.UNRUNNABLE
        )
        report.retries = retries
        return report


def _kind(payload: object) -> str:
    if isinstance(payload, (ComputeNode, ClusteredComputeNode)):
        return "compute"
    if isinstance(payload, TransferNode):
        return "transfer"
    return "registration"
