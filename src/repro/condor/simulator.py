"""Discrete-event Grid simulator: Condor-G/DAGMan over the pool topology.

Executes a :class:`~repro.workflow.concrete.ConcreteWorkflow` in virtual
time.  Compute nodes occupy pool slots and take
``base_runtime(transformation) / pool.speed`` (log-normal jitter); transfer
nodes take the GridFTP latency+bandwidth time of the topology; failure
injection happens per attempt at the pool's ``failure_rate``.  DAGMan
semantics (release, retry, rescue) come from :class:`DagmanState`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro import telemetry
from repro.condor.dagman import DagmanState, NodeStatus
from repro.condor.pool import GridTopology
from repro.condor.report import ExecutionReport, NodeRun
from repro.resilience.breaker import SiteHealthTracker
from repro.utils.events import EventLog
from repro.utils.rng import derive_rng

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.plan import FaultInjector
from repro.workflow.concrete import (
    ClusteredComputeNode,
    ComputeNode,
    ConcreteWorkflow,
    RegistrationNode,
    TransferNode,
)

#: Default base runtimes (seconds on a speed-1.0 pool) per transformation.
DEFAULT_RUNTIMES: dict[str, float] = {
    "galMorph": 12.0,
    "concatVOTable": 5.0,
}
DEFAULT_RUNTIME_FALLBACK = 10.0
REGISTRATION_TIME_S = 0.05


def merge_forced_failures(
    workflow: ConcreteWorkflow,
    configured: dict[str, int],
    override: dict[str, int] | None = None,
) -> dict[str, int]:
    """Merge configured + runtime forced-failure maps, validating node ids.

    Both the :class:`SimulationOptions` map and any execute-time override
    must name nodes that actually exist in the workflow DAG; silently
    ignoring a typo'd id would make a fault-injection test vacuously pass.
    Raises :class:`~repro.core.errors.ExecutionError` listing offenders.
    """
    from repro.core.errors import ExecutionError

    merged = dict(configured)
    if override:
        merged.update(override)
    if merged:
        known = set(workflow.dag.node_ids())
        unknown = sorted(set(merged) - known)
        if unknown:
            raise ExecutionError(
                f"forced_failures reference unknown workflow nodes: {unknown}"
            )
    return merged


@dataclass
class SimulationOptions:
    """Simulator knobs."""

    seed: int = 2003
    max_retries: int = 2
    runtimes: dict[str, float] = field(default_factory=lambda: dict(DEFAULT_RUNTIMES))
    runtime_jitter: float = 0.15  # log-normal sigma; 0 disables jitter
    #: Node ids forced to fail on their first N attempts (deterministic tests).
    #: Ids are validated against the workflow DAG at execution start-up; an
    #: unknown id raises :class:`~repro.core.errors.ExecutionError`.
    forced_failures: dict[str, int] = field(default_factory=dict)
    #: Fallback size for transfers whose plan-time size is 0.
    default_file_size: int = 20160
    #: Per-submitted-job scheduling overhead (Condor-G match + launch).
    #: Clustering amortises exactly this cost.
    job_overhead_s: float = 0.0


class GridSimulator:
    """Runs concrete workflows in virtual time over a :class:`GridTopology`."""

    def __init__(
        self,
        topology: GridTopology,
        options: SimulationOptions | None = None,
        size_lookup: Callable[[str], int] | None = None,
        event_log: EventLog | None = None,
        mds: "MonitoringService | None" = None,
        faults: "FaultInjector | None" = None,
        health: SiteHealthTracker | None = None,
    ) -> None:
        self.topology = topology
        self.options = options if options is not None else SimulationOptions()
        self.size_lookup = size_lookup
        self.events = event_log if event_log is not None else EventLog()
        #: when set, the simulator publishes live pool load into the MDS
        self.mds = mds
        #: chaos fault oracle; ``None`` (default) leaves the failure model
        #: exactly as seeded (pool failure_rate + forced_failures only)
        self.faults = faults
        #: shared circuit-breaker ledger fed with per-attempt outcomes
        self.health = health

    # -- duration / failure models ------------------------------------------------
    def _compute_duration(self, node: ComputeNode, rng: np.random.Generator) -> float:
        base = self.options.runtimes.get(node.transformation, DEFAULT_RUNTIME_FALLBACK)
        pool = self.topology.pools.get(node.site)
        speed = pool.speed if pool is not None else 1.0
        jitter = (
            float(rng.lognormal(0.0, self.options.runtime_jitter))
            if self.options.runtime_jitter > 0
            else 1.0
        )
        return base / speed * jitter

    def _transfer_size(self, node: TransferNode) -> int:
        if node.size_bytes > 0:
            return node.size_bytes
        if self.size_lookup is not None:
            size = self.size_lookup(node.lfn)
            if size > 0:
                return size
        return self.options.default_file_size

    def _duration(self, payload: object, rng: np.random.Generator) -> float:
        if isinstance(payload, ComputeNode):
            return self.options.job_overhead_s + self._compute_duration(payload, rng)
        if isinstance(payload, ClusteredComputeNode):
            # one scheduling overhead for the bundle, members sequential
            return self.options.job_overhead_s + sum(
                self._compute_duration(member, rng) for member in payload.members
            )
        if isinstance(payload, TransferNode):
            return self.topology.transfer_time(
                payload.source_site, payload.dest_site, self._transfer_size(payload)
            )
        if isinstance(payload, RegistrationNode):
            return REGISTRATION_TIME_S
        raise TypeError(f"unknown node payload {type(payload).__name__}")

    def _attempt_fails(
        self,
        node_id: str,
        payload: object,
        attempt: int,
        rng: np.random.Generator,
        forced_failures: dict[str, int] | None = None,
        now: float = 0.0,
    ) -> bool:
        forced_map = (
            forced_failures if forced_failures is not None else self.options.forced_failures
        )
        forced = forced_map.get(node_id, 0)
        if attempt <= forced:
            return True
        if self.faults is not None:
            if isinstance(payload, (ComputeNode, ClusteredComputeNode)):
                if self.faults.site_attempt_fails(payload.site, node_id, attempt, now):
                    return True
            elif isinstance(payload, TransferNode):
                if self.faults.transfer_fails(payload.dest_site, node_id, attempt):
                    return True
        if isinstance(payload, ComputeNode):
            pool = self.topology.pools.get(payload.site)
            if pool is not None and pool.failure_rate > 0:
                return bool(rng.random() < pool.failure_rate)
        if isinstance(payload, ClusteredComputeNode):
            pool = self.topology.pools.get(payload.site)
            if pool is not None and pool.failure_rate > 0:
                # the bundle fails if any member does
                survive = (1.0 - pool.failure_rate) ** len(payload.members)
                return bool(rng.random() > survive)
        return False

    # -- the event loop ---------------------------------------------------------------
    def execute(
        self,
        workflow: ConcreteWorkflow,
        completed: set[str] | None = None,
        forced_failures: dict[str, int] | None = None,
    ) -> ExecutionReport:
        """Simulate the workflow to completion (or stuck-failure) and report.

        ``completed`` resumes from a rescue DAG: those nodes are skipped.
        ``forced_failures`` is a runtime override merged over (and validated
        together with) :attr:`SimulationOptions.forced_failures`.
        """
        with telemetry.trace_span(
            "condor.execute", mode="simulate", nodes=len(workflow)
        ) as span:
            report = self._execute_impl(workflow, completed, forced_failures)
            span.set(
                succeeded=report.succeeded,
                makespan=report.makespan,
                retries=report.retries,
            )
        return report

    def _execute_impl(
        self,
        workflow: ConcreteWorkflow,
        completed: set[str] | None = None,
        forced_failures: dict[str, int] | None = None,
    ) -> ExecutionReport:
        forced = merge_forced_failures(
            workflow, self.options.forced_failures, forced_failures
        )
        dagman = DagmanState(
            workflow.dag, max_retries=self.options.max_retries, completed=completed
        )
        rng = derive_rng(self.options.seed, "simulator")

        clock = 0.0
        seq = itertools.count()
        heap: list[tuple[float, int, str]] = []
        slots_busy: dict[str, int] = {name: 0 for name in self.topology.pools}
        first_start: dict[str, float] = {}
        retries = 0
        report = ExecutionReport()

        def publish_load(site: str) -> None:
            if self.mds is None:
                return
            from repro.condor.mds import ResourceRecord

            pool = self.topology.pools[site]
            self.mds.publish(
                ResourceRecord(
                    site=site,
                    total_slots=pool.slots,
                    busy_slots=slots_busy[site],
                    cpu_speed=pool.speed,
                    timestamp=clock,
                )
            )

        def site_of(payload: object) -> str:
            if isinstance(payload, (ComputeNode, ClusteredComputeNode)):
                return payload.site
            if isinstance(payload, TransferNode):
                return payload.dest_site
            if isinstance(payload, RegistrationNode):
                return payload.site
            raise TypeError(type(payload).__name__)

        def record_node(node_id: str, payload: object, attempt: int, success: bool) -> None:
            """Publish the finished node as a synthetic sim-clock span."""
            if not telemetry.enabled():
                return
            telemetry.record_span(
                "condor.node",
                first_start[node_id],
                clock,
                status="ok" if success else "error",
                clock="sim",
                node=node_id,
                kind=_kind(payload),
                site=site_of(payload),
                attempts=attempt,
                deps=sorted(workflow.dag.parents(node_id)),
            )
            telemetry.count(
                "workflow_nodes_total", state="succeeded" if success else "failed"
            )

        def try_start(node_id: str) -> bool:
            payload = workflow.dag.payload(node_id)
            if isinstance(payload, (ComputeNode, ClusteredComputeNode)) and payload.site in slots_busy:
                pool = self.topology.pool(payload.site)
                if slots_busy[payload.site] >= pool.slots:
                    return False
                slots_busy[payload.site] += 1
                publish_load(payload.site)
            dagman.mark_running(node_id)
            first_start.setdefault(node_id, clock)
            duration = self._duration(payload, rng)
            heapq.heappush(heap, (clock + duration, next(seq), node_id))
            return True

        def start_all_ready() -> None:
            for node_id in dagman.ready_nodes():
                try_start(node_id)

        start_all_ready()
        while heap:
            clock, _, node_id = heapq.heappop(heap)
            payload = workflow.dag.payload(node_id)
            if isinstance(payload, (ComputeNode, ClusteredComputeNode)) and payload.site in slots_busy:
                slots_busy[payload.site] -= 1
                publish_load(payload.site)

            attempt = dagman.attempts[node_id]
            failed = self._attempt_fails(node_id, payload, attempt, rng, forced, now=clock)
            if self.health is not None:
                if failed:
                    self.health.record_failure(site_of(payload))
                else:
                    self.health.record_success(site_of(payload))
            if failed:
                will_retry = dagman.mark_failure(node_id)
                self.events.emit(clock, "simulator", "node-failed", node=node_id, attempt=attempt, retry=will_retry)
                if will_retry:
                    retries += 1
                    telemetry.count("workflow_retries_total")
                else:
                    record_node(node_id, payload, attempt, success=False)
                    report.runs.append(
                        NodeRun(
                            node_id=node_id,
                            kind=_kind(payload),
                            site=site_of(payload),
                            start=first_start[node_id],
                            end=clock,
                            attempts=attempt,
                            success=False,
                        )
                    )
            else:
                dagman.mark_success(node_id)
                record_node(node_id, payload, attempt, success=True)
                report.runs.append(
                    NodeRun(
                        node_id=node_id,
                        kind=_kind(payload),
                        site=site_of(payload),
                        start=first_start[node_id],
                        end=clock,
                        attempts=attempt,
                        success=True,
                    )
                )
                if isinstance(payload, TransferNode):
                    key = payload.kind.value
                    report.transfer_counts[key] = report.transfer_counts.get(key, 0) + 1
                    report.bytes_moved += self._transfer_size(payload)
            start_all_ready()

        report.makespan = clock
        report.succeeded = dagman.succeeded()
        report.failed_nodes = tuple(dagman.failed_nodes())
        report.unrunnable_nodes = tuple(
            n for n, s in dagman.status.items() if s is NodeStatus.UNRUNNABLE
        )
        report.retries = retries
        return report


def _kind(payload: object) -> str:
    if isinstance(payload, (ComputeNode, ClusteredComputeNode)):
        return "compute"
    if isinstance(payload, TransferNode):
        return "transfer"
    return "registration"
