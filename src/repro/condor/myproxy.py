"""MyProxy: the online credential repository of §4.3.1(5).

"This prototype web service submits jobs onto the Grid using the
credentials stored at the web server.  However, for a more general
solution, we are planning to use MyProxy as a solution for authentication
of users" (Novotny 2001).

Users *store* a long-lived credential under a passphrase; services
*retrieve* short-lived delegated proxies from it.  Delegation never
outlives the stored credential, retrieval requires the passphrase, and
expired credentials are refused — the properties the real MyProxy provides
and the fault-injection tests exercise.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass

from repro.condor.gram import GridCredential
from repro.core.errors import ExecutionError

#: Default lifetime of a delegated proxy: 12 hours, MyProxy's default.
DEFAULT_PROXY_LIFETIME_S = 12 * 3600.0


def _digest(passphrase: str) -> str:
    return hashlib.sha256(passphrase.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class StoredCredential:
    """A long-lived credential deposited with ``myproxy-init``."""

    subject: str
    passphrase_digest: str
    issued_at: float
    lifetime_s: float

    def expires_at(self) -> float:
        return self.issued_at + self.lifetime_s


class MyProxyServer:
    """The credential repository."""

    def __init__(self) -> None:
        self._store: dict[str, StoredCredential] = {}
        self._lock = threading.Lock()
        self.delegations = 0

    def store(
        self,
        subject: str,
        passphrase: str,
        now: float,
        lifetime_s: float = 7 * 24 * 3600.0,
    ) -> None:
        """``myproxy-init``: deposit a credential for later delegation."""
        if not passphrase:
            raise ExecutionError("MyProxy requires a non-empty passphrase")
        with self._lock:
            self._store[subject] = StoredCredential(
                subject=subject,
                passphrase_digest=_digest(passphrase),
                issued_at=now,
                lifetime_s=lifetime_s,
            )

    def retrieve(
        self,
        subject: str,
        passphrase: str,
        now: float,
        proxy_lifetime_s: float = DEFAULT_PROXY_LIFETIME_S,
    ) -> GridCredential:
        """``myproxy-logon``: delegate a short-lived proxy.

        The delegated proxy never outlives the stored credential.
        """
        with self._lock:
            stored = self._store.get(subject)
        if stored is None:
            raise ExecutionError(f"MyProxy holds no credential for {subject!r}")
        if _digest(passphrase) != stored.passphrase_digest:
            raise ExecutionError(f"MyProxy passphrase mismatch for {subject!r}")
        if now >= stored.expires_at():
            raise ExecutionError(f"stored credential for {subject!r} has expired")
        lifetime = min(proxy_lifetime_s, stored.expires_at() - now)
        with self._lock:
            self.delegations += 1
        return GridCredential(subject=subject, issued_at=now, lifetime_s=lifetime)

    def destroy(self, subject: str) -> None:
        """``myproxy-destroy``: remove a stored credential."""
        with self._lock:
            if subject not in self._store:
                raise ExecutionError(f"MyProxy holds no credential for {subject!r}")
            del self._store[subject]

    def holds(self, subject: str) -> bool:
        with self._lock:
            return subject in self._store
