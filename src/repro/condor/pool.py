"""Condor pools and the Grid topology connecting them.

The paper's campaign ran on "three Condor pools, one each at University of
Southern California, University of Wisconsin, and Fermilab";
:func:`GridTopology.default_demo` builds that configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.units import MB


@dataclass(frozen=True)
class CondorPool:
    """One compute site.

    Attributes
    ----------
    name:
        Site name; matches TC/RLS site names.
    slots:
        Concurrently running jobs the pool accepts.
    speed:
        Relative CPU speed (runtime divisor).
    failure_rate:
        Probability an individual job invocation fails (failure injection
        for the §4.3.1(4) fault-tolerance experiments).
    """

    name: str
    slots: int = 10
    speed: float = 1.0
    failure_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.slots < 1:
            raise ValueError(f"pool {self.name!r} needs at least one slot")
        if self.speed <= 0:
            raise ValueError(f"pool {self.name!r} speed must be positive")
        if not 0.0 <= self.failure_rate < 1.0:
            raise ValueError(f"pool {self.name!r} failure rate must be in [0, 1)")


@dataclass
class GridTopology:
    """Pools plus the network model between all sites (GridFTP links).

    Any site name not in ``pools`` (storage-only sites like the service
    cache) still participates in transfers via the default link parameters.
    """

    pools: dict[str, CondorPool] = field(default_factory=dict)
    default_bandwidth_bps: float = 10.0 * MB  # 80 Mbit/s circa 2003
    default_latency_s: float = 0.2
    bandwidth_overrides: dict[tuple[str, str], float] = field(default_factory=dict)

    def add_pool(self, pool: CondorPool) -> None:
        if pool.name in self.pools:
            raise ValueError(f"pool {pool.name!r} already in topology")
        self.pools[pool.name] = pool

    def pool(self, name: str) -> CondorPool:
        if name not in self.pools:
            raise KeyError(f"unknown pool {name!r}; known: {sorted(self.pools)}")
        return self.pools[name]

    def capacities(self) -> dict[str, int]:
        return {name: pool.slots for name, pool in self.pools.items()}

    def bandwidth(self, src: str, dst: str) -> float:
        """Link bandwidth in bytes/second, symmetric overrides honoured."""
        return self.bandwidth_overrides.get(
            (src, dst), self.bandwidth_overrides.get((dst, src), self.default_bandwidth_bps)
        )

    def transfer_time(self, src: str, dst: str, size_bytes: int) -> float:
        """GridFTP transfer-time model: latency + size/bandwidth."""
        if src == dst:
            return 0.0
        return self.default_latency_s + size_bytes / self.bandwidth(src, dst)

    @classmethod
    def default_demo(cls, failure_rate: float = 0.0) -> "GridTopology":
        """The paper's three-pool testbed (§5)."""
        topo = cls()
        topo.add_pool(CondorPool("isi", slots=12, speed=1.0, failure_rate=failure_rate))
        topo.add_pool(CondorPool("uwisc", slots=20, speed=1.1, failure_rate=failure_rate))
        topo.add_pool(CondorPool("fnal", slots=16, speed=0.9, failure_rate=failure_rate))
        return topo
