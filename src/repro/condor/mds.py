"""Monitoring and Discovery Service (Globus MDS) — the paper's future work.

§3.2: "Currently the information about the available resources is
statically configured.  In the near future, we plan to include dynamic
information provided by Globus Monitoring and Discovery Service (MDS)."

This module supplies that dynamic layer: pools publish load snapshots into
the :class:`MonitoringService`; the :class:`MdsSiteSelector` queries it at
planning time and sends each job to the site with the most *free* capacity,
weighted by CPU speed.  The ablation benchmark compares it against the
paper's static random policy.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.core.errors import PlanningError
from repro.condor.pool import GridTopology
from repro.pegasus.site_selector import SiteSelector


@dataclass(frozen=True)
class ResourceRecord:
    """One site's published state: what MDS GRIS/GIIS would report."""

    site: str
    total_slots: int
    busy_slots: int
    cpu_speed: float
    timestamp: float

    @property
    def free_slots(self) -> int:
        return max(self.total_slots - self.busy_slots, 0)


class MonitoringService:
    """The directory service: sites publish, planners query."""

    def __init__(self) -> None:
        self._records: dict[str, ResourceRecord] = {}
        self._lock = threading.Lock()
        self.query_count = 0

    def publish(self, record: ResourceRecord) -> None:
        """A site (or the simulator on its behalf) publishes fresh state."""
        with self._lock:
            existing = self._records.get(record.site)
            if existing is not None and record.timestamp < existing.timestamp:
                return  # stale update: directory keeps the newest
            self._records[record.site] = record

    def query(self, site: str) -> ResourceRecord:
        with self._lock:
            self.query_count += 1
            if site not in self._records:
                raise KeyError(f"MDS has no record for site {site!r}")
            return self._records[site]

    def query_all(self) -> list[ResourceRecord]:
        with self._lock:
            self.query_count += 1
            return list(self._records.values())

    def sites(self) -> list[str]:
        with self._lock:
            return list(self._records)

    @classmethod
    def from_topology(cls, topology: GridTopology, timestamp: float = 0.0) -> "MonitoringService":
        """Bootstrap the directory from a topology (all pools idle)."""
        mds = cls()
        for pool in topology.pools.values():
            mds.publish(
                ResourceRecord(
                    site=pool.name,
                    total_slots=pool.slots,
                    busy_slots=0,
                    cpu_speed=pool.speed,
                    timestamp=timestamp,
                )
            )
        return mds


class MdsSiteSelector(SiteSelector):
    """Dynamic site selection driven by live MDS records.

    Jobs are distributed proportionally to each site's *free* effective
    capacity (free slots x cpu speed): the selector tracks its own pending
    assignments and always picks the site whose per-free-slot queue is
    shortest.  Sites with zero free slots are avoided entirely unless every
    candidate is saturated, in which case total capacity decides.
    """

    def __init__(self, mds: MonitoringService) -> None:
        self.mds = mds
        self._pending: dict[str, int] = {}

    def _score(self, record: ResourceRecord) -> float:
        """Prospective queue depth per usable slot if this job is assigned
        here: lower is better."""
        pending = self._pending.get(record.site, 0)
        free_capacity = record.free_slots * record.cpu_speed
        if free_capacity > 0:
            return (pending + 1) / free_capacity
        # Saturated: fall back to total capacity, heavily penalised so any
        # site with a free slot wins first.
        total_capacity = max(record.total_slots * record.cpu_speed, 1e-9)
        return 1e6 + (pending + 1) / total_capacity

    def choose(self, job_id: str, candidate_sites: list[str]) -> str:
        self._require(job_id, candidate_sites)
        scored: list[tuple[float, str]] = []
        for site in sorted(candidate_sites):
            try:
                record = self.mds.query(site)
            except KeyError:
                continue  # unmonitored sites cannot be chosen dynamically
            scored.append((self._score(record), site))
        if not scored:
            raise PlanningError(
                f"MDS has no records for any candidate site of job {job_id!r}: {candidate_sites}"
            )
        best = min(scored, key=lambda pair: pair[0])[1]
        self._pending[best] = self._pending.get(best, 0) + 1
        return best
