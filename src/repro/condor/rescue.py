"""Rescue DAGs: DAGMan's resume-after-failure artifact.

When nodes fail permanently, DAGMan writes a rescue DAG marking completed
nodes DONE so a later submission re-runs only the remainder.  We reproduce
that file format and the corresponding programmatic resume path used by the
fault-tolerance benchmark.
"""

from __future__ import annotations

from repro.condor.report import ExecutionReport
from repro.workflow.concrete import ConcreteWorkflow


def rescue_dag_text(
    workflow: ConcreteWorkflow,
    report: ExecutionReport,
    dag_name: str = "workflow",
) -> str:
    """Render the rescue DAG for a partially failed run."""
    done = {run.node_id for run in report.runs if run.success}
    lines = [f"# Rescue DAG for {dag_name}"]
    for node_id in workflow.dag.topological_order():
        lines.append(f"JOB {node_id} {node_id}.sub" + (" DONE" if node_id in done else ""))
    for parent, child in sorted(workflow.dag.edges()):
        lines.append(f"PARENT {parent} CHILD {child}")
    return "\n".join(lines) + "\n"


def completed_nodes(report: ExecutionReport) -> set[str]:
    """Node ids a rescue submission would skip."""
    return {run.node_id for run in report.runs if run.success}


def portable_completed_nodes(report: ExecutionReport) -> set[str]:
    """Completed node ids that survive a *replan*.

    Compute nodes are named after their derivations (``job-dv-...``), so
    the same id denotes the same work in any plan of the same request.
    Transfer and registration nodes are minted by a per-plan sequential
    namer (``xfer-0001``, ``reg-0001``): the same name in a later plan is
    a different node, so carrying them across submissions would wrongly
    pre-mark fresh work DONE.  Cross-submission rescue state (the workload
    manager's resume path) must use this filtered view.
    """
    return {
        run.node_id
        for run in report.runs
        if run.success and run.kind == "compute"
    }
