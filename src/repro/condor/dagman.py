"""DAGMan scheduling state: release-on-parent-success with retries.

Shared by the simulator and the real local executor, so both obey the same
semantics: a node becomes ready when every parent has succeeded; a node
that exhausts its retries is FAILED and all its descendants become
UNRUNNABLE (DAGMan then emits a rescue DAG, :mod:`repro.condor.rescue`).
"""

from __future__ import annotations

import enum

from repro.core.errors import ExecutionError
from repro.workflow.dag import DAG


class NodeStatus(str, enum.Enum):
    PENDING = "pending"  # waiting for parents
    READY = "ready"  # all parents succeeded; eligible to run
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"  # retries exhausted
    UNRUNNABLE = "unrunnable"  # an ancestor failed


class DagmanState:
    """Tracks per-node status and drives the ready queue."""

    def __init__(self, dag: DAG, max_retries: int = 2, completed: set[str] | None = None) -> None:
        """``completed`` pre-marks nodes DONE — the rescue-DAG resume path:
        a resubmission skips everything the failed run finished."""
        dag.validate()
        self.dag = dag
        self.max_retries = max_retries
        self.status: dict[str, NodeStatus] = {}
        self.attempts: dict[str, int] = {}
        self._unfinished_parents: dict[str, int] = {}
        done = set(completed or ())
        unknown = done - set(dag.node_ids())
        if unknown:
            raise ExecutionError(f"completed set references unknown nodes: {sorted(unknown)}")
        for node_id in dag.node_ids():
            parents = dag.parents(node_id)
            self._unfinished_parents[node_id] = sum(1 for p in parents if p not in done)
            if node_id in done:
                self.status[node_id] = NodeStatus.DONE
            elif self._unfinished_parents[node_id] == 0:
                self.status[node_id] = NodeStatus.READY
            else:
                self.status[node_id] = NodeStatus.PENDING
            self.attempts[node_id] = 0

    # -- queries ---------------------------------------------------------------
    def ready_nodes(self) -> list[str]:
        """Nodes eligible to start, in DAG insertion order."""
        return [n for n in self.dag.node_ids() if self.status[n] is NodeStatus.READY]

    def is_complete(self) -> bool:
        """True when no node can make further progress."""
        return all(
            s in (NodeStatus.DONE, NodeStatus.FAILED, NodeStatus.UNRUNNABLE)
            for s in self.status.values()
        )

    def succeeded(self) -> bool:
        return all(s is NodeStatus.DONE for s in self.status.values())

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for s in self.status.values():
            out[s.value] = out.get(s.value, 0) + 1
        return out

    def failed_nodes(self) -> list[str]:
        return [n for n, s in self.status.items() if s is NodeStatus.FAILED]

    def done_nodes(self) -> list[str]:
        return [n for n, s in self.status.items() if s is NodeStatus.DONE]

    # -- transitions ---------------------------------------------------------------
    def mark_running(self, node_id: str) -> None:
        if self.status[node_id] is not NodeStatus.READY:
            raise ExecutionError(
                f"cannot start node {node_id!r} in state {self.status[node_id].value}"
            )
        self.status[node_id] = NodeStatus.RUNNING
        self.attempts[node_id] += 1

    def mark_success(self, node_id: str) -> list[str]:
        """Complete a node; returns children that just became READY."""
        if self.status[node_id] is not NodeStatus.RUNNING:
            raise ExecutionError(
                f"cannot complete node {node_id!r} in state {self.status[node_id].value}"
            )
        self.status[node_id] = NodeStatus.DONE
        released: list[str] = []
        for child in self.dag.children(node_id):
            self._unfinished_parents[child] -= 1
            if self._unfinished_parents[child] == 0 and self.status[child] is NodeStatus.PENDING:
                self.status[child] = NodeStatus.READY
                released.append(child)
        return released

    def mark_failure(self, node_id: str) -> bool:
        """Record a failed attempt.

        Returns True when the node will be retried (status back to READY);
        False when retries are exhausted — the node is FAILED and all its
        descendants become UNRUNNABLE.
        """
        if self.status[node_id] is not NodeStatus.RUNNING:
            raise ExecutionError(
                f"cannot fail node {node_id!r} in state {self.status[node_id].value}"
            )
        if self.attempts[node_id] <= self.max_retries:
            self.status[node_id] = NodeStatus.READY
            return True
        self.status[node_id] = NodeStatus.FAILED
        for descendant in self.dag.descendants(node_id):
            if self.status[descendant] in (NodeStatus.PENDING, NodeStatus.READY):
                self.status[descendant] = NodeStatus.UNRUNNABLE
        return False
