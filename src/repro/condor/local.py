"""The real executor: concrete workflows over actual bytes and callables.

Where the simulator models time, :class:`LocalExecutor` does the work:
compute nodes call registered Python functions (the real ``galMorph`` and
``concatVOTable`` of :mod:`repro.portal.executables`), transfer nodes move
bytes between :class:`~repro.rls.site.StorageSite` stores, registration
nodes publish into the live RLS.  Parallelism uses a thread pool (the
workloads are numpy-bound, which releases the GIL in the kernels), with all
DAGMan state transitions confined to the driver thread.
"""

from __future__ import annotations

import contextvars
import heapq
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from typing import TYPE_CHECKING, Callable, Sequence

from repro import telemetry
from repro.condor.dagman import DagmanState, NodeStatus
from repro.condor.gram import GramGateway, GridCredential
from repro.condor.report import ExecutionReport, NodeRun
from repro.core.errors import (
    ExecutionError,
    StaleReplicaError,
    TransientTransportError,
    TransportError,
)
from repro.core.provenance import InvocationRecord, ProvenanceStore
from repro.resilience.breaker import SiteHealthTracker
from repro.resilience.retry import RetryPolicy, retry_call
from repro.rls.rls import Replica, ReplicaLocationService
from repro.rls.site import StorageSite

if TYPE_CHECKING:  # pragma: no cover
    from repro.adaptive import AdaptiveController
    from repro.faults.plan import FaultInjector
from repro.utils.events import EventLog
from repro.workflow.abstract import AbstractJob
from repro.workflow.concrete import (
    ClusteredComputeNode,
    ComputeNode,
    ConcreteWorkflow,
    RegistrationNode,
    TransferNode,
)

def _payload_kind(payload: object) -> str:
    if isinstance(payload, (ComputeNode, ClusteredComputeNode)):
        return "compute"
    if isinstance(payload, TransferNode):
        return "transfer"
    return "registration"


def _payload_site(payload: object) -> str:
    if isinstance(payload, TransferNode):
        return payload.dest_site
    return payload.site  # type: ignore[union-attr]


#: A transformation body: (job, inputs by lfn) -> outputs by lfn.
Executable = Callable[[AbstractJob, dict[str, bytes]], dict[str, bytes]]

#: A *batch* transformation body: one call handles a whole seqexec bundle of
#: same-transformation jobs, returning one outputs dict per job (same order).
#: This is how clustered compute nodes amortise per-cutout setup — the real
#: galMorph batch body shares one cutout-geometry cache across all members.
BatchExecutable = Callable[
    [Sequence[AbstractJob], Sequence[dict[str, bytes]]], Sequence[dict[str, bytes]]
]


class ExecutableRegistry:
    """Maps logical transformation names to Python callables.

    This is the local-execution counterpart of the Transformation Catalog:
    the TC says *where* an executable lives; the registry says *what it
    does* when this process is the execution site.

    Transformations may additionally register a **batch body** via
    :meth:`register_batch`; clustered compute nodes whose members all share
    that transformation are then executed through one call instead of a
    per-member loop, amortising setup (geometry caches, cosmology tables)
    across the bundle.
    """

    def __init__(self) -> None:
        self._executables: dict[str, Executable] = {}
        self._batch_executables: dict[str, BatchExecutable] = {}

    def register(self, transformation: str, fn: Executable) -> None:
        if transformation in self._executables:
            raise ValueError(f"executable for {transformation!r} already registered")
        self._executables[transformation] = fn

    def register_batch(self, transformation: str, fn: BatchExecutable) -> None:
        """Install a whole-bundle body for ``transformation``.

        The per-job body must still be registered (it remains the fallback
        for unclustered nodes and mixed-transformation bundles).
        """
        if transformation not in self._executables:
            raise ValueError(
                f"register the per-job executable for {transformation!r} "
                "before its batch variant"
            )
        if transformation in self._batch_executables:
            raise ValueError(f"batch executable for {transformation!r} already registered")
        self._batch_executables[transformation] = fn

    def get(self, transformation: str) -> Executable:
        if transformation not in self._executables:
            raise ExecutionError(f"no executable registered for transformation {transformation!r}")
        return self._executables[transformation]

    def get_batch(self, transformation: str) -> BatchExecutable | None:
        """The batch body for ``transformation``, or ``None`` if only the
        per-job body exists."""
        return self._batch_executables.get(transformation)

    def __contains__(self, transformation: str) -> bool:
        return transformation in self._executables


class LocalExecutor:
    """Thread-pooled real execution of concrete workflows."""

    def __init__(
        self,
        sites: dict[str, StorageSite],
        registry: ExecutableRegistry,
        rls: ReplicaLocationService,
        max_workers: int = 8,
        max_retries: int = 2,
        provenance: ProvenanceStore | None = None,
        event_log: EventLog | None = None,
        gram: GramGateway | None = None,
        credential: GridCredential | None = None,
        forced_failures: dict[str, int] | None = None,
        faults: "FaultInjector | None" = None,
        health: SiteHealthTracker | None = None,
        gram_retry: RetryPolicy | None = None,
        adaptive: "AdaptiveController | None" = None,
    ) -> None:
        self.sites = dict(sites)
        self.registry = registry
        self.rls = rls
        self.max_workers = max_workers
        self.max_retries = max_retries
        self.provenance = provenance if provenance is not None else ProvenanceStore()
        self.events = event_log if event_log is not None else EventLog()
        self.gram = gram
        self.credential = credential
        #: Node ids whose first N attempts raise (fault injection; validated
        #: against the workflow DAG at execute() start-up, like the simulator).
        self.forced_failures = dict(forced_failures or {})
        #: Chaos fault oracle (site outages / flakes / transfer failures);
        #: ``None`` — the default — leaves the execution paths untouched.
        self.faults = faults
        #: Shared per-site circuit-breaker ledger; node outcomes feed it so
        #: the planner's health-aware site selection can route around
        #: misbehaving sites on the next (re)plan.
        self.health = health
        #: Retry policy for GRAM submission (transient gatekeeper refusals).
        self.gram_retry = gram_retry
        #: Adaptive-execution layer.  When armed with a speculation policy,
        #: a compute node running past its class budget gets a duplicate
        #: task attributed to the next-best site; first result wins and the
        #: loser's elapsed seconds are charged as ``speculative`` waste.
        #: Registration nodes are never duplicated, so the RLS sees each
        #: (lfn, pfn, site) exactly once.
        self.adaptive = adaptive
        self._rls_lock = threading.Lock()

    # -- storage helpers -----------------------------------------------------
    def _site(self, name: str) -> StorageSite:
        if name not in self.sites:
            raise ExecutionError(f"no storage configured for site {name!r}")
        return self.sites[name]

    def _read_input(self, site_name: str, lfn: str) -> bytes:
        """Read an input file at a site: canonical PFN first, then any RLS
        replica registered at that site (the skipped-stage-in case)."""
        site = self._site(site_name)
        canonical = site.pfn_for(lfn)
        if site.exists(canonical):
            return site.get(canonical)
        for replica in self.rls.lookup(lfn):
            if replica.site == site_name and site.exists(replica.pfn):
                return site.get(replica.pfn)
        raise TransportError(f"input {lfn!r} not present at site {site_name!r}")

    def _submit_gram(self, site_name: str) -> None:
        """GRAM submission, retried under the configured policy.

        A 2003 gatekeeper sheds load with transient refusals; wrapping the
        submit in the shared retry ladder absorbs them.  Without a policy
        this is a plain call.
        """
        if self.gram_retry is None:
            self.gram.submit(site_name, self.credential, time.time())
            return

        def on_backoff(attempt: int, delay: float, exc: BaseException) -> None:
            telemetry.count("resilience_retries_total", target="gram")

        retry_call(
            lambda: self.gram.submit(site_name, self.credential, time.time()),
            self.gram_retry,
            label=f"gram/{site_name}",
            on_backoff=on_backoff,
        )

    # -- node bodies (run on worker threads) -------------------------------------
    def _run_compute(self, node: ComputeNode) -> None:
        if self.gram is not None and self.credential is not None:
            self._submit_gram(node.site)
        inputs = {lfn: self._read_input(node.site, lfn) for lfn in node.job.inputs}
        fn = self.registry.get(node.job.transformation)
        outputs = fn(node.job, inputs)
        missing = set(node.job.outputs) - set(outputs)
        if missing:
            raise ExecutionError(
                f"job {node.job.job_id!r} did not produce declared outputs {sorted(missing)}"
            )
        site = self._site(node.site)
        for lfn, content in outputs.items():
            site.put(site.pfn_for(lfn), content)

    def _run_cluster(self, payload: ClusteredComputeNode) -> None:
        """Run a seqexec bundle, batched when the transformation allows it.

        If every member shares one transformation and a batch body is
        registered for it, the whole bundle goes through a single call —
        one GRAM submission per member is still recorded (the paper's
        accounting is per-job), inputs are still read per member, and each
        member's declared outputs are still checked and written.  Otherwise
        the bundle falls back to the seed per-member loop.
        """
        transformations = {member.job.transformation for member in payload.members}
        batch_fn = (
            self.registry.get_batch(next(iter(transformations)))
            if len(transformations) == 1
            else None
        )
        if batch_fn is None:
            # seqexec semantics: members run sequentially in one task
            for member in payload.members:
                self._run_compute(member)
            return

        if self.gram is not None and self.credential is not None:
            for member in payload.members:
                self._submit_gram(member.site)
        jobs = [member.job for member in payload.members]
        inputs_list = [
            {lfn: self._read_input(member.site, lfn) for lfn in member.job.inputs}
            for member in payload.members
        ]
        outputs_list = batch_fn(jobs, inputs_list)
        if len(outputs_list) != len(jobs):
            raise ExecutionError(
                f"batch executable for {jobs[0].transformation!r} returned "
                f"{len(outputs_list)} results for {len(jobs)} jobs"
            )
        for member, outputs in zip(payload.members, outputs_list):
            missing = set(member.job.outputs) - set(outputs)
            if missing:
                raise ExecutionError(
                    f"job {member.job.job_id!r} did not produce declared outputs "
                    f"{sorted(missing)}"
                )
            site = self._site(member.site)
            for lfn, content in outputs.items():
                site.put(site.pfn_for(lfn), content)

    def _run_transfer(self, node: TransferNode) -> int:
        source = self._site(node.source_site)
        try:
            content = source.get(node.source_pfn)
        except TransportError:
            content = self._failover_fetch(node)
        self._site(node.dest_site).put(node.dest_pfn, content)
        return len(content)

    def _failover_fetch(self, node: TransferNode) -> bytes:
        """Stage-in failover: the planned source PFN is gone.

        The RLS mapping that produced this transfer was stale — unregister
        it so no later plan trips over it, then walk the remaining
        replicas in catalog order and serve the first one that verifies.
        Only when *no* replica holds the bytes does the failure propagate
        (as :class:`StaleReplicaError`, retried by DAGMan like any other
        node failure).
        """
        self.rls.invalidate_stale(
            Replica(lfn=node.lfn, pfn=node.source_pfn, site=node.source_site)
        )
        for replica in self.rls.lookup(node.lfn):
            site = self.sites.get(replica.site)
            if site is None:
                continue
            try:
                content = site.get(replica.pfn)
            except TransportError:
                self.rls.invalidate_stale(replica)
                continue
            telemetry.count("resilience_replica_failovers_total")
            self.events.emit(
                0.0,
                "local-executor",
                "replica-failover",
                lfn=node.lfn,
                stale_site=node.source_site,
                served_from=replica.site,
            )
            return content
        raise StaleReplicaError(
            f"no live replica of {node.lfn!r}: planned source "
            f"{node.source_pfn!r} at {node.source_site!r} vanished and no "
            "alternative replica verified"
        )

    def _run_registration(self, node: RegistrationNode) -> None:
        with self._rls_lock:
            self.rls.register(node.lfn, node.pfn, node.site)

    def _run_node(self, payload: object) -> int:
        """Dispatch; returns bytes moved (transfers) or 0."""
        if isinstance(payload, ComputeNode):
            self._run_compute(payload)
            return 0
        if isinstance(payload, ClusteredComputeNode):
            self._run_cluster(payload)
            return 0
        if isinstance(payload, TransferNode):
            return self._run_transfer(payload)
        if isinstance(payload, RegistrationNode):
            self._run_registration(payload)
            return 0
        raise TypeError(f"unknown node payload {type(payload).__name__}")

    def _traced_run_node(
        self, workflow: ConcreteWorkflow, node_id: str, payload: object, attempt: int
    ) -> int:
        """Worker-thread body with a per-node span around :meth:`_run_node`.

        Submitted through ``contextvars.copy_context().run`` so the span
        parents to the driver's open ``condor.execute`` span even though
        :class:`ThreadPoolExecutor` does not propagate contextvars itself.
        """
        with telemetry.trace_span(
            "condor.node",
            node=node_id,
            kind=_payload_kind(payload),
            site=_payload_site(payload),
            attempts=attempt,
            deps=sorted(workflow.dag.parents(node_id)),
        ):
            return self._run_node(payload)

    @staticmethod
    def _forced_failure(node_id: str, attempt: int) -> int:
        raise ExecutionError(f"forced failure of node {node_id!r} (attempt {attempt})")

    @staticmethod
    def _injected_site_failure(node_id: str, site: str, attempt: int) -> int:
        raise ExecutionError(
            f"injected site fault: {site!r} refused node {node_id!r} (attempt {attempt})"
        )

    @staticmethod
    def _injected_transfer_failure(node_id: str, site: str, attempt: int) -> int:
        raise TransientTransportError(
            f"injected transfer fault: stage to {site!r} dropped for node "
            f"{node_id!r} (attempt {attempt})"
        )

    @staticmethod
    def _with_delay(delay_s: float, fn: Callable[..., int], *args: object) -> int:
        """Worker body prefixed with an injected wall stall (slow-site chaos)."""
        time.sleep(delay_s)
        return fn(*args)

    # -- the driver loop -----------------------------------------------------------
    def execute(
        self,
        workflow: ConcreteWorkflow,
        completed: set[str] | None = None,
        forced_failures: dict[str, int] | None = None,
    ) -> ExecutionReport:
        """Run the workflow to completion; never raises for job failures —
        DAGMan semantics report them instead.  ``completed`` resumes from a
        rescue DAG, skipping the nodes an earlier run finished.
        ``forced_failures`` is a runtime override merged over the
        constructor map; both are validated against the workflow DAG."""
        with telemetry.trace_span(
            "condor.execute", mode="local", nodes=len(workflow)
        ) as span:
            report = self._execute_impl(workflow, completed, forced_failures)
            span.set(
                succeeded=report.succeeded,
                makespan=report.makespan,
                retries=report.retries,
            )
        return report

    def _execute_impl(
        self,
        workflow: ConcreteWorkflow,
        completed: set[str] | None = None,
        forced_failures: dict[str, int] | None = None,
    ) -> ExecutionReport:
        from repro.condor.simulator import merge_forced_failures, node_class

        forced = merge_forced_failures(workflow, self.forced_failures, forced_failures)
        dagman = DagmanState(workflow.dag, max_retries=self.max_retries, completed=completed)
        report = ExecutionReport()
        t0 = time.perf_counter()
        first_start: dict[str, float] = {}
        in_flight: dict[Future, str] = {}
        retries = 0

        adaptive = self.adaptive
        spec_policy = adaptive.speculation if adaptive is not None else None
        estimator = adaptive.estimator if adaptive is not None else None
        tracker = adaptive.tracker if adaptive is not None else None

        # per-future bookkeeping for the speculation race: attributed site,
        # launch time, duplicate flag.  A node's outcome is decided by its
        # first finished copy; later copies are stale and skipped (their
        # deterministic double-writes land byte-identical content).
        future_meta: dict[Future, tuple[str, float, bool]] = {}
        node_futures: dict[str, list[Future]] = {}
        resolved: set[str] = set()
        speculated: set[str] = set()
        spec_deadlines: list[tuple[float, str]] = []
        active_dups = 0

        def now() -> float:
            return time.perf_counter() - t0

        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:

            def submit_body(
                payload: object, node_id: str, attempt: int, delay_s: float
            ) -> Future:
                if telemetry.enabled():
                    # a copied Context can be entered once, so copy per task
                    ctx = contextvars.copy_context()
                    if delay_s > 0:
                        return pool.submit(
                            self._with_delay, delay_s, ctx.run,
                            self._traced_run_node, workflow, node_id, payload, attempt,
                        )
                    return pool.submit(
                        ctx.run, self._traced_run_node, workflow, node_id, payload, attempt
                    )
                if delay_s > 0:
                    return pool.submit(self._with_delay, delay_s, self._run_node, payload)
                return pool.submit(self._run_node, payload)

            def spec_budget(payload: object) -> float | None:
                assert spec_policy is not None and estimator is not None
                cls = node_class(payload)
                if estimator.class_samples(cls) < spec_policy.min_samples:
                    return None
                quantile = estimator.best_quantile(cls, spec_policy.quantile)
                if quantile is None:
                    return None
                return max(spec_policy.min_budget_s, quantile * spec_policy.p95_multiplier)

            def track_future(
                future: Future, node_id: str, site: str, duplicate: bool
            ) -> None:
                in_flight[future] = node_id
                future_meta[future] = (site, now(), duplicate)
                node_futures.setdefault(node_id, []).append(future)

            def launch_ready() -> None:
                for node_id in dagman.ready_nodes():
                    dagman.mark_running(node_id)
                    first_start.setdefault(node_id, now())
                    resolved.discard(node_id)
                    node_futures.pop(node_id, None)
                    payload = workflow.dag.payload(node_id)
                    attempt = dagman.attempts[node_id]
                    site = _payload_site(payload)
                    kind = _payload_kind(payload)
                    if attempt <= forced.get(node_id, 0):
                        track_future(
                            pool.submit(self._forced_failure, node_id, attempt),
                            node_id, site, False,
                        )
                        continue
                    if self.faults is not None:
                        if kind == "compute" and self.faults.site_attempt_fails(
                            site, node_id, attempt
                        ):
                            track_future(
                                pool.submit(
                                    self._injected_site_failure, node_id, site, attempt
                                ),
                                node_id, site, False,
                            )
                            continue
                        if kind == "transfer" and self.faults.transfer_fails(
                            site, node_id, attempt
                        ):
                            track_future(
                                pool.submit(
                                    self._injected_transfer_failure, node_id, site, attempt
                                ),
                                node_id, site, False,
                            )
                            continue
                    delay_s = (
                        self.faults.site_wall_delay(site, node_id, attempt)
                        if self.faults is not None and kind == "compute"
                        else 0.0
                    )
                    track_future(
                        submit_body(payload, node_id, attempt, delay_s),
                        node_id, site, False,
                    )
                    if spec_policy is not None and kind == "compute":
                        budget = spec_budget(payload)
                        if budget is not None:
                            heapq.heappush(spec_deadlines, (now() + budget, node_id))

            def launch_duplicate(node_id: str) -> bool:
                """Second copy of a straggler, attributed to the next-best
                site.  The body is the original's (bytes live at the planned
                site; both copies are deterministic), so whichever finishes
                first yields identical outputs.  Never duplicates transfers
                or registrations."""
                nonlocal active_dups
                payload = workflow.dag.payload(node_id)
                origin = _payload_site(payload)
                best: tuple[float, str] | None = None
                assert estimator is not None
                for site in estimator.sites():
                    if site == origin or site not in self.sites:
                        continue
                    predicted = estimator.predict(site, node_class(payload))
                    if predicted is None:
                        continue
                    if best is None or predicted < best[0]:
                        best = (predicted, site)
                if best is None:
                    fallback = sorted(s for s in self.sites if s != origin)
                    if not fallback:
                        return False
                    alt = fallback[0]
                else:
                    alt = best[1]
                attempt = dagman.attempts[node_id]
                delay_s = (
                    self.faults.site_wall_delay(alt, node_id, attempt)
                    if self.faults is not None
                    else 0.0
                )
                track_future(
                    submit_body(payload, node_id, attempt, delay_s), node_id, alt, True
                )
                speculated.add(node_id)
                active_dups += 1
                report.speculated += 1
                if tracker is not None:
                    tracker.record_launch(alt, node_id)
                self.events.emit(
                    now(), "local-executor", "node-speculated",
                    node=node_id, from_site=origin, to_site=alt,
                )
                return True

            def fire_due_speculation() -> None:
                if spec_policy is None:
                    return
                t = now()
                while spec_deadlines and spec_deadlines[0][0] <= t:
                    _, node_id = heapq.heappop(spec_deadlines)
                    if node_id in resolved or node_id in speculated:
                        continue
                    if not any(f in in_flight for f in node_futures.get(node_id, ())):
                        continue  # already finished (or failed into a retry)
                    if active_dups >= spec_policy.max_active:
                        # over the duplicate cap: look again shortly
                        heapq.heappush(spec_deadlines, (t + 0.05, node_id))
                        return
                    launch_duplicate(node_id)

            launch_ready()
            while in_flight:
                timeout = None
                if spec_policy is not None and spec_deadlines:
                    timeout = max(0.0, spec_deadlines[0][0] - now())
                done, _ = wait(list(in_flight), timeout=timeout, return_when=FIRST_COMPLETED)
                for future in done:
                    node_id = in_flight.pop(future)
                    site, started, duplicate = future_meta.pop(future)
                    payload = workflow.dag.payload(node_id)
                    if duplicate:
                        active_dups -= 1
                    if node_id in resolved:
                        continue  # a sibling copy already decided this node
                    exc = future.exception()
                    if self.health is not None:
                        if exc is None:
                            self.health.record_success(site)
                        else:
                            self.health.record_failure(site)
                    siblings = [
                        f for f in node_futures.get(node_id, ()) if f in in_flight
                    ]
                    if exc is None:
                        resolved.add(node_id)
                        for loser in siblings:
                            loser.cancel()
                            loser_site, loser_started, _ = future_meta[loser]
                            report.spec_wasted += 1
                            if tracker is not None:
                                tracker.record_waste(
                                    loser_site, node_id, now() - loser_started
                                )
                            self.events.emit(
                                now(), "local-executor", "node-spec-cancelled",
                                node=node_id, site=loser_site,
                            )
                        if duplicate:
                            report.spec_won += 1
                            if tracker is not None:
                                tracker.record_win(site, node_id)
                        if estimator is not None and _payload_kind(payload) == "compute":
                            estimator.observe(site, node_class(payload), now() - started)
                        dagman.mark_success(node_id)
                        telemetry.count("workflow_nodes_total", state="succeeded")
                        if isinstance(payload, TransferNode):
                            key = payload.kind.value
                            report.transfer_counts[key] = report.transfer_counts.get(key, 0) + 1
                            report.bytes_moved += future.result()
                            telemetry.count("workflow_bytes_moved_total", future.result())
                        self._record_run(report, dagman, payload, node_id, first_start, now(), True, "")
                    elif siblings:
                        # this copy lost by failing; the race is still live
                        report.spec_wasted += 1
                        if tracker is not None:
                            tracker.record_waste(site, node_id, now() - started)
                        self.events.emit(
                            now(), "local-executor", "node-spec-copy-failed",
                            node=node_id, site=site, error=str(exc),
                        )
                    else:
                        will_retry = dagman.mark_failure(node_id)
                        speculated.discard(node_id)  # a retry may speculate anew
                        self.events.emit(
                            now(), "local-executor", "node-failed",
                            node=node_id, error=str(exc), retry=will_retry,
                        )
                        if will_retry:
                            retries += 1
                            telemetry.count("workflow_retries_total")
                        else:
                            telemetry.count("workflow_nodes_total", state="failed")
                            self._record_run(
                                report, dagman, payload, node_id, first_start, now(), False, str(exc)
                            )
                fire_due_speculation()
                launch_ready()

        report.makespan = now()
        report.succeeded = dagman.succeeded()
        report.failed_nodes = tuple(dagman.failed_nodes())
        report.unrunnable_nodes = tuple(
            n for n, s in dagman.status.items() if s is NodeStatus.UNRUNNABLE
        )
        report.retries = retries
        return report

    def _record_run(
        self,
        report: ExecutionReport,
        dagman: DagmanState,
        payload: object,
        node_id: str,
        first_start: dict[str, float],
        end: float,
        success: bool,
        detail: str,
    ) -> None:
        if isinstance(payload, ClusteredComputeNode):
            kind, site = "compute", payload.site
            for member in payload.members:
                self.provenance.record(
                    InvocationRecord(
                        job_id=member.job.job_id,
                        transformation=member.job.transformation,
                        site=member.site,
                        start_time=first_start[node_id],
                        end_time=end,
                        inputs=member.job.inputs,
                        outputs=member.job.outputs,
                        parameters=dict(member.job.parameters),
                        success=success,
                    )
                )
        elif isinstance(payload, ComputeNode):
            kind, site = "compute", payload.site
            self.provenance.record(
                InvocationRecord(
                    job_id=payload.job.job_id,
                    transformation=payload.job.transformation,
                    site=payload.site,
                    start_time=first_start[node_id],
                    end_time=end,
                    inputs=payload.job.inputs,
                    outputs=payload.job.outputs,
                    parameters=dict(payload.job.parameters),
                    success=success,
                )
            )
        elif isinstance(payload, TransferNode):
            kind, site = "transfer", payload.dest_site
        else:
            kind, site = "registration", payload.site  # type: ignore[union-attr]
        report.runs.append(
            NodeRun(
                node_id=node_id,
                kind=kind,
                site=site,
                start=first_start[node_id],
                end=end,
                attempts=dagman.attempts[node_id],
                success=success,
                detail=detail,
            )
        )
