"""ClassAd-style matchmaking: how jobs meet machines inside a Condor pool.

§3.3: "The scheduling of jobs within a condor pool is left to the condor
matchmaking system" (Litzkow 1988).  This module implements a compact
ClassAd dialect sufficient for that role:

* **ads** are attribute dictionaries (numbers, strings, booleans);
* each ad may carry a ``requirements`` expression that must evaluate true
  against the *other* party's attributes (symmetric matching), and a
  ``rank`` expression whose value orders acceptable matches;
* expressions support comparisons, ``&&`` / ``||`` / ``!``, arithmetic,
  parentheses, and cross-ad attribute references via the ``other.`` prefix
  (standing in for ClassAds' TARGET scope).

The :class:`Matchmaker` pairs job ads with machine ads exactly as a Condor
negotiator cycle does: feasibility both ways, then rank.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.core.errors import ExecutionError


class ClassAdError(ExecutionError):
    """Malformed expression or evaluation failure."""


# -- expression engine ---------------------------------------------------------

_TOKEN = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+\.\d*|\.\d+|\d+)
  | (?P<string>"[^"]*")
  | (?P<op>&&|\|\||==|!=|<=|>=|[<>()!+\-*/])
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*(?:\.[A-Za-z_][A-Za-z_0-9]*)?)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"true": True, "false": False, "undefined": None}


def _tokenize(text: str) -> list[tuple[str, str]]:
    out: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN.match(text, pos)
        if not m:
            raise ClassAdError(f"unexpected character {text[pos]!r} in expression {text!r}")
        pos = m.end()
        kind = m.lastgroup or ""
        if kind == "ws":
            continue
        out.append((kind, m.group()))
    return out


class _Parser:
    """Recursive-descent parser producing a small AST of tuples."""

    def __init__(self, tokens: list[tuple[str, str]], source: str) -> None:
        self.tokens = tokens
        self.source = source
        self.index = 0

    def peek(self) -> tuple[str, str] | None:
        return self.tokens[self.index] if self.index < len(self.tokens) else None

    def next(self) -> tuple[str, str]:
        tok = self.peek()
        if tok is None:
            raise ClassAdError(f"unexpected end of expression: {self.source!r}")
        self.index += 1
        return tok

    def expect_op(self, op: str) -> None:
        kind, value = self.next()
        if kind != "op" or value != op:
            raise ClassAdError(f"expected {op!r}, got {value!r} in {self.source!r}")

    # grammar: or_expr > and_expr > not_expr > comparison > additive > term
    def parse(self) -> tuple:
        node = self.or_expr()
        if self.peek() is not None:
            raise ClassAdError(f"trailing tokens in expression {self.source!r}")
        return node

    def or_expr(self) -> tuple:
        node = self.and_expr()
        while (tok := self.peek()) and tok == ("op", "||"):
            self.next()
            node = ("or", node, self.and_expr())
        return node

    def and_expr(self) -> tuple:
        node = self.not_expr()
        while (tok := self.peek()) and tok == ("op", "&&"):
            self.next()
            node = ("and", node, self.not_expr())
        return node

    def not_expr(self) -> tuple:
        if (tok := self.peek()) and tok == ("op", "!"):
            self.next()
            return ("not", self.not_expr())
        return self.comparison()

    def comparison(self) -> tuple:
        node = self.additive()
        tok = self.peek()
        if tok and tok[0] == "op" and tok[1] in ("==", "!=", "<", ">", "<=", ">="):
            op = self.next()[1]
            return ("cmp", op, node, self.additive())
        return node

    def additive(self) -> tuple:
        node = self.multiplicative()
        while (tok := self.peek()) and tok[0] == "op" and tok[1] in ("+", "-"):
            op = self.next()[1]
            node = ("arith", op, node, self.multiplicative())
        return node

    def multiplicative(self) -> tuple:
        node = self.term()
        while (tok := self.peek()) and tok[0] == "op" and tok[1] in ("*", "/"):
            op = self.next()[1]
            node = ("arith", op, node, self.term())
        return node

    def term(self) -> tuple:
        kind, value = self.next()
        if kind == "number":
            return ("lit", float(value) if "." in value else int(value))
        if kind == "string":
            return ("lit", value[1:-1])
        if kind == "name":
            lowered = value.lower()
            if lowered in _KEYWORDS:
                return ("lit", _KEYWORDS[lowered])
            return ("ref", value)
        if kind == "op" and value == "(":
            node = self.or_expr()
            self.expect_op(")")
            return node
        if kind == "op" and value == "-":
            return ("neg", self.term())
        raise ClassAdError(f"unexpected token {value!r} in {self.source!r}")


def parse_expression(text: str) -> tuple:
    """Parse a ClassAd expression to an AST (cached by callers)."""
    return _Parser(_tokenize(text), text).parse()


def evaluate(node: tuple, own: dict[str, Any], other: dict[str, Any]) -> Any:
    """Evaluate an AST against own/other attribute scopes.

    Undefined references evaluate to ``None``; comparisons/boolean
    operators over ``None`` yield False (ClassAds' strict semantics,
    simplified).
    """
    kind = node[0]
    if kind == "lit":
        return node[1]
    if kind == "ref":
        name = node[1]
        if name.startswith("other."):
            return other.get(name[6:])
        if name.startswith("my."):
            return own.get(name[3:])
        return own.get(name)
    if kind == "not":
        value = evaluate(node[1], own, other)
        return not bool(value) if value is not None else False
    if kind == "and":
        return bool(evaluate(node[1], own, other)) and bool(evaluate(node[2], own, other))
    if kind == "or":
        return bool(evaluate(node[1], own, other)) or bool(evaluate(node[2], own, other))
    if kind == "neg":
        value = evaluate(node[1], own, other)
        if not isinstance(value, (int, float)):
            raise ClassAdError(f"cannot negate {value!r}")
        return -value
    if kind == "cmp":
        _, op, left_node, right_node = node
        left = evaluate(left_node, own, other)
        right = evaluate(right_node, own, other)
        if left is None or right is None:
            return False
        try:
            if op == "==":
                return left == right
            if op == "!=":
                return left != right
            if op == "<":
                return left < right
            if op == ">":
                return left > right
            if op == "<=":
                return left <= right
            return left >= right
        except TypeError as exc:
            raise ClassAdError(f"cannot compare {left!r} {op} {right!r}") from exc
    if kind == "arith":
        _, op, left_node, right_node = node
        left = evaluate(left_node, own, other)
        right = evaluate(right_node, own, other)
        if not isinstance(left, (int, float)) or not isinstance(right, (int, float)):
            raise ClassAdError(f"arithmetic on non-numbers: {left!r} {op} {right!r}")
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if right == 0:
            raise ClassAdError("division by zero in ClassAd expression")
        return left / right
    raise ClassAdError(f"unknown AST node {kind!r}")  # pragma: no cover


# -- ads and the matchmaker ------------------------------------------------------


@dataclass
class ClassAd:
    """One advertisement: attributes plus requirements/rank expressions."""

    attributes: dict[str, Any] = field(default_factory=dict)
    requirements: str = "true"
    rank: str = "0"

    def __post_init__(self) -> None:
        self._requirements_ast = parse_expression(self.requirements)
        self._rank_ast = parse_expression(self.rank)

    def accepts(self, other: "ClassAd") -> bool:
        """Does this ad's requirements expression accept the other party?"""
        return bool(evaluate(self._requirements_ast, self.attributes, other.attributes))

    def rank_of(self, other: "ClassAd") -> float:
        value = evaluate(self._rank_ast, self.attributes, other.attributes)
        if value is None:
            return 0.0
        if isinstance(value, bool):
            return 1.0 if value else 0.0
        if not isinstance(value, (int, float)):
            raise ClassAdError(f"rank must be numeric, got {value!r}")
        return float(value)


class Matchmaker:
    """Pairs job ads with machine ads, Condor-negotiator style."""

    def match(self, job: ClassAd, machines: Iterable[ClassAd]) -> ClassAd | None:
        """The best mutually acceptable machine for ``job`` (or None).

        Feasibility is symmetric (both requirements must hold); among
        feasible machines the job's rank decides, machine rank as the
        tie-breaker.
        """
        best: tuple[float, float, int] | None = None
        best_machine: ClassAd | None = None
        for index, machine in enumerate(machines):
            if not job.accepts(machine) or not machine.accepts(job):
                continue
            key = (job.rank_of(machine), machine.rank_of(job), -index)
            if best is None or key > best:
                best = key
                best_machine = machine
        return best_machine

    def match_all(
        self, jobs: list[ClassAd], machines: list[ClassAd]
    ) -> list[tuple[ClassAd, ClassAd | None]]:
        """One negotiation cycle: each job claims its best machine; claimed
        machines are unavailable to later jobs (one claim per cycle)."""
        available = list(machines)
        out: list[tuple[ClassAd, ClassAd | None]] = []
        for job in jobs:
            machine = self.match(job, available)
            if machine is not None:
                available.remove(machine)
            out.append((job, machine))
        return out
