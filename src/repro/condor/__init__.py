"""Condor-G / DAGMan execution substrate.

"Pegasus ... submits it to Condor-G/DAGMan for execution" (§3.2).  Two
interchangeable back-ends execute the same concrete workflows:

* :class:`GridSimulator` — a discrete-event simulation of the three Condor
  pools (slots, relative CPU speeds, inter-site bandwidth/latency, failure
  injection).  Used for timing/ablation benchmarks where wall-clock shape
  matters.
* :class:`LocalExecutor` — real execution: compute nodes invoke registered
  Python callables (the actual galMorph code), transfer nodes move real
  bytes between :class:`~repro.rls.site.StorageSite` stores, registration
  nodes publish into the live RLS.  Used for the end-to-end science runs.

Both are driven by the shared :class:`DagmanState` scheduler, which
implements DAGMan's release-on-parent-success semantics, per-node retries,
and rescue-DAG generation.
"""

from repro.condor.dagman import DagmanState, NodeStatus
from repro.condor.gram import GramGateway, GridCredential
from repro.condor.local import ExecutableRegistry, LocalExecutor
from repro.condor.mds import MdsSiteSelector, MonitoringService, ResourceRecord
from repro.condor.myproxy import MyProxyServer
from repro.condor.pool import CondorPool, GridTopology
from repro.condor.report import ExecutionReport, NodeRun
from repro.condor.rescue import rescue_dag_text
from repro.condor.simulator import GridSimulator

__all__ = [
    "DagmanState",
    "NodeStatus",
    "GramGateway",
    "GridCredential",
    "ExecutableRegistry",
    "LocalExecutor",
    "MonitoringService",
    "MdsSiteSelector",
    "ResourceRecord",
    "MyProxyServer",
    "CondorPool",
    "GridTopology",
    "ExecutionReport",
    "NodeRun",
    "rescue_dag_text",
    "GridSimulator",
]
