"""Execution reports: what happened when a concrete workflow ran.

:meth:`ExecutionReport.summary` keeps the original one-line format (older
tooling greps its ``OK``/``FAILED(n)`` prefix); the structured views —
:meth:`ExecutionReport.as_dict`, :meth:`ExecutionReport.slowest`,
:meth:`ExecutionReport.timeline_text` and :meth:`ExecutionReport.render` —
are the telemetry-era interface, sharing the renderer the trace-based
``repro telemetry report`` CLI uses.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any

from repro.workflow.concrete import TransferKind


@dataclass(frozen=True)
class NodeRun:
    """Timing and outcome of one concrete node's (final) execution."""

    node_id: str
    kind: str  # "compute" | "transfer" | "registration"
    site: str
    start: float
    end: float
    attempts: int
    success: bool
    detail: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class ExecutionReport:
    """Aggregate outcome of a DAGMan run.

    ``transfer_counts`` is keyed by :class:`TransferKind` value so the §5
    accounting (stage-in vs stage-out vs inter-site) falls straight out.
    """

    runs: list[NodeRun] = field(default_factory=list)
    makespan: float = 0.0
    succeeded: bool = False
    failed_nodes: tuple[str, ...] = ()
    unrunnable_nodes: tuple[str, ...] = ()
    transfer_counts: dict[str, int] = field(default_factory=dict)
    bytes_moved: int = 0
    retries: int = 0
    #: straggler mitigation: duplicates launched, duplicates that beat the
    #: original, and duplicates (or originals) cancelled after losing the
    #: race.  Zero everywhere unless the adaptive layer was armed.
    speculated: int = 0
    spec_won: int = 0
    spec_wasted: int = 0

    @property
    def compute_runs(self) -> list[NodeRun]:
        return [r for r in self.runs if r.kind == "compute"]

    @property
    def transfer_runs(self) -> list[NodeRun]:
        return [r for r in self.runs if r.kind == "transfer"]

    def transfers_of_kind(self, kind: TransferKind) -> int:
        return self.transfer_counts.get(kind.value, 0)

    def jobs_per_site(self) -> dict[str, int]:
        """Completed compute jobs per site — the three-pool §5 spread."""
        out: dict[str, int] = {}
        for run in self.compute_runs:
            if run.success:
                out[run.site] = out.get(run.site, 0) + 1
        return out

    def summary(self) -> str:
        """One-line rollup (compat format — tooling greps the prefix)."""
        counts = {
            "compute": len(self.compute_runs),
            "transfer": len(self.transfer_runs),
        }
        status = "OK" if self.succeeded else f"FAILED({len(self.failed_nodes)})"
        spec = f" speculated={self.speculated}" if self.speculated else ""
        return (
            f"{status} makespan={self.makespan:.1f}s "
            f"compute={counts['compute']} transfers={counts['transfer']} "
            f"bytes={self.bytes_moved} retries={self.retries}{spec}"
        )

    # -- structured / telemetry-era views -----------------------------------------
    def as_dict(self) -> dict[str, Any]:
        """JSON-ready structured form of the whole report."""
        return {
            "succeeded": self.succeeded,
            "makespan": self.makespan,
            "retries": self.retries,
            "speculated": self.speculated,
            "spec_won": self.spec_won,
            "spec_wasted": self.spec_wasted,
            "bytes_moved": self.bytes_moved,
            "transfer_counts": dict(self.transfer_counts),
            "failed_nodes": list(self.failed_nodes),
            "unrunnable_nodes": list(self.unrunnable_nodes),
            "jobs_per_site": self.jobs_per_site(),
            "runs": [asdict(run) for run in self.runs],
        }

    def to_span_records(self, clock: str = "run") -> list[dict[str, Any]]:
        """The node runs as synthetic ``condor.node`` span records.

        Lets the trace renderer (:mod:`repro.telemetry.report`) draw the
        timeline / slowest-node sections straight from an
        :class:`ExecutionReport`, with or without live telemetry.
        """
        records: list[dict[str, Any]] = []
        for i, run in enumerate(self.runs):
            records.append(
                {
                    "name": "condor.node",
                    "trace": "report",
                    "span": f"r{i:x}",
                    "parent": None,
                    "start": run.start,
                    "end": run.end,
                    "dur": run.duration,
                    "status": "ok" if run.success else "error",
                    "clock": clock,
                    "attrs": {
                        "node": run.node_id,
                        "kind": run.kind,
                        "site": run.site,
                        "attempts": run.attempts,
                    },
                }
            )
        return records

    def slowest(self, n: int = 5) -> list[NodeRun]:
        """Top-``n`` node runs by duration."""
        return sorted(self.runs, key=lambda r: -r.duration)[:n]

    def timeline_text(self, width: int = 40, limit: int = 40) -> str:
        """Gantt-style per-node timeline (same renderer as the trace CLI)."""
        from repro.telemetry.report import _timeline_lines

        return "\n".join(_timeline_lines(self.to_span_records(), width=width, limit=limit))

    def render(self, top: int = 5, width: int = 40) -> str:
        """Multi-section run report: summary, timeline, slowest nodes.

        When telemetry was enabled for the run, kernel-quality counters
        (``galmorph_invalid_rows_total``) are surfaced here too.
        """
        from repro import telemetry
        from repro.telemetry.report import _fmt_dur

        out = [f"== run summary ==", f"  {self.summary()}"]
        per_site = self.jobs_per_site()
        if per_site:
            out.append(
                "  jobs/site: "
                + "  ".join(f"{site}={n}" for site, n in sorted(per_site.items()))
            )
        invalid = telemetry.get_registry().get("galmorph_invalid_rows_total")
        if invalid is not None and invalid.total() > 0:
            out.append(
                f"  !! galmorph produced {int(invalid.total())} invalid row(s) "
                "(valid=false in the output VOTable)"
            )
        out.append("")
        out.append("== node timeline ==")
        out.append(self.timeline_text(width=width))
        out.append("")
        out.append(f"== top {top} slowest nodes ==")
        for run in self.slowest(top):
            mark = " " if run.success else "!"
            out.append(
                f"    {run.node_id:<34s} {run.kind:<12s} {run.site:<12s} "
                f"{_fmt_dur(run.duration)}{mark}"
            )
        return "\n".join(out) + "\n"
