"""Execution reports: what happened when a concrete workflow ran."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.workflow.concrete import TransferKind


@dataclass(frozen=True)
class NodeRun:
    """Timing and outcome of one concrete node's (final) execution."""

    node_id: str
    kind: str  # "compute" | "transfer" | "registration"
    site: str
    start: float
    end: float
    attempts: int
    success: bool
    detail: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class ExecutionReport:
    """Aggregate outcome of a DAGMan run.

    ``transfer_counts`` is keyed by :class:`TransferKind` value so the §5
    accounting (stage-in vs stage-out vs inter-site) falls straight out.
    """

    runs: list[NodeRun] = field(default_factory=list)
    makespan: float = 0.0
    succeeded: bool = False
    failed_nodes: tuple[str, ...] = ()
    unrunnable_nodes: tuple[str, ...] = ()
    transfer_counts: dict[str, int] = field(default_factory=dict)
    bytes_moved: int = 0
    retries: int = 0

    @property
    def compute_runs(self) -> list[NodeRun]:
        return [r for r in self.runs if r.kind == "compute"]

    @property
    def transfer_runs(self) -> list[NodeRun]:
        return [r for r in self.runs if r.kind == "transfer"]

    def transfers_of_kind(self, kind: TransferKind) -> int:
        return self.transfer_counts.get(kind.value, 0)

    def jobs_per_site(self) -> dict[str, int]:
        """Completed compute jobs per site — the three-pool §5 spread."""
        out: dict[str, int] = {}
        for run in self.compute_runs:
            if run.success:
                out[run.site] = out.get(run.site, 0) + 1
        return out

    def summary(self) -> str:
        counts = {
            "compute": len(self.compute_runs),
            "transfer": len(self.transfer_runs),
        }
        status = "OK" if self.succeeded else f"FAILED({len(self.failed_nodes)})"
        return (
            f"{status} makespan={self.makespan:.1f}s "
            f"compute={counts['compute']} transfers={counts['transfer']} "
            f"bytes={self.bytes_moved} retries={self.retries}"
        )
