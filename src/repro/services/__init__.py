"""NVO data services: Cone Search, Simple Image Access, cutouts, registry.

§3.1: "Two standard interfaces provided by the data resources of the NVO
project allowed us to access data from the various astronomy catalogs in a
uniform way" — the Cone Search protocol for catalog records and the Simple
Image Access (SIA) protocol for images, both "based on HTTP Get
operations".  This package implements the protocols (request objects with
URL round-trips), synthetic archive services behind them, the Table 1 data
-center registry, and the transport cost model that reproduces the paper's
observed SIA bottleneck ("an image query and download for each galaxy must
be done separately").
"""

from repro.services.conesearch import (
    ConeSearchService,
    SyntheticPhotometryCatalog,
    SyntheticRedshiftCatalog,
)
from repro.services.cutout import CutoutSIAService
from repro.services.protocol import ConeSearchRequest, SIARequest
from repro.services.nvoregistry import (
    FailoverConeSearch,
    FailoverSIA,
    ResourceRecord,
    ResourceRegistry,
    SkyCoverage,
)
from repro.services.registry import DataCenter, DataCenterRegistry, default_registry
from repro.services.sia import OpticalImageArchive, SIAService, XrayImageArchive
from repro.services.tableops import TableOpRequest, VOTableOperationsService
from repro.services.transport import CostMeter, TransportModel

__all__ = [
    "ConeSearchRequest",
    "SIARequest",
    "ConeSearchService",
    "SyntheticPhotometryCatalog",
    "SyntheticRedshiftCatalog",
    "SIAService",
    "OpticalImageArchive",
    "XrayImageArchive",
    "CutoutSIAService",
    "ResourceRegistry",
    "ResourceRecord",
    "SkyCoverage",
    "FailoverConeSearch",
    "FailoverSIA",
    "DataCenter",
    "DataCenterRegistry",
    "default_registry",
    "TableOpRequest",
    "VOTableOperationsService",
    "CostMeter",
    "TransportModel",
]
