"""The Cone Search and SIA request protocols.

Both are "simple, highly-specialized" HTTP GET interfaces whose primary
selection criterion is position on the sky (§3.1).  Requests round-trip
through their URL form, which the tests verify — the URL *is* the protocol.
"""

from __future__ import annotations

import urllib.parse
from dataclasses import dataclass

from repro.core.errors import ServiceError


def _validate_position(ra: float, dec: float) -> None:
    if not 0.0 <= ra < 360.0:
        raise ServiceError(f"RA out of range [0, 360): {ra}")
    if not -90.0 <= dec <= 90.0:
        raise ServiceError(f"Dec out of range [-90, 90]: {dec}")


@dataclass(frozen=True)
class ConeSearchRequest:
    """Cone Search: all catalog records within ``sr`` degrees of (ra, dec)."""

    ra: float
    dec: float
    sr: float

    def __post_init__(self) -> None:
        _validate_position(self.ra, self.dec)
        if self.sr < 0:
            raise ServiceError(f"search radius must be non-negative: {self.sr}")

    def to_url(self, base: str) -> str:
        query = urllib.parse.urlencode({"RA": self.ra, "DEC": self.dec, "SR": self.sr})
        return f"{base}?{query}"

    @classmethod
    def from_url(cls, url: str) -> "ConeSearchRequest":
        params = _query_params(url)
        try:
            return cls(ra=float(params["RA"]), dec=float(params["DEC"]), sr=float(params["SR"]))
        except KeyError as exc:
            raise ServiceError(f"cone search URL missing parameter {exc}") from exc


@dataclass(frozen=True)
class SIARequest:
    """Simple Image Access: images overlapping a rectangle on the sky.

    ``POS`` is the centre (ra, dec); ``SIZE`` the angular width/height in
    degrees.  ``fmt`` mirrors the protocol's FORMAT parameter.
    """

    ra: float
    dec: float
    size: float
    fmt: str = "image/fits"

    def __post_init__(self) -> None:
        _validate_position(self.ra, self.dec)
        if self.size <= 0:
            raise ServiceError(f"SIA SIZE must be positive: {self.size}")

    def to_url(self, base: str) -> str:
        query = urllib.parse.urlencode(
            {"POS": f"{self.ra},{self.dec}", "SIZE": self.size, "FORMAT": self.fmt}
        )
        return f"{base}?{query}"

    @classmethod
    def from_url(cls, url: str) -> "SIARequest":
        params = _query_params(url)
        try:
            ra_text, dec_text = params["POS"].split(",")
            return cls(
                ra=float(ra_text),
                dec=float(dec_text),
                size=float(params["SIZE"]),
                fmt=params.get("FORMAT", "image/fits"),
            )
        except (KeyError, ValueError) as exc:
            raise ServiceError(f"malformed SIA URL {url!r}: {exc}") from exc


def _query_params(url: str) -> dict[str, str]:
    parsed = urllib.parse.urlparse(url)
    return {k: v[0] for k, v in urllib.parse.parse_qs(parsed.query).items()}
