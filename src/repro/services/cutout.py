"""The image cutout service: per-galaxy images over SIA.

§3.1 notes the SIA interface "is general enough to provide access to both
simple static images from an image archive ... and custom cutout images
from an image cutout service".  This service is the latter kind: queried at
a galaxy position it returns a reference to a cutout "extracted from a
larger one but which contains only that galaxy", and fetching that URL
renders the FITS cutout on demand.
"""

from __future__ import annotations

import urllib.parse
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro import telemetry
from repro.catalog.coords import angular_separation_deg
from repro.core.errors import ServiceError
from repro.fits.io import write_fits_bytes
from repro.services.faulting import mangle_payload, pre_call_fault, truncate_table
from repro.services.protocol import SIARequest
from repro.services.sia import SIA_FIELDS
from repro.services.transport import CostMeter, TransportModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.plan import FaultInjector
from repro.sky.cluster import ClusterModel
from repro.sky.imaging import PIXEL_SCALE_ARCSEC, CutoutFactory
from repro.votable.model import VOTable


class CutoutSIAService:
    """SIA-flavoured cutout service over the synthetic sky."""

    def __init__(
        self,
        clusters: Sequence[ClusterModel],
        cutout_size: int = 64,
        meter: CostMeter | None = None,
        transport: TransportModel | None = None,
        default_band: str = "r",
        faults: "FaultInjector | None" = None,
    ) -> None:
        self.clusters = {c.name: c for c in clusters}
        self.cutout_size = cutout_size
        self.meter = meter
        self.transport = transport if transport is not None else TransportModel()
        self.faults = faults
        self.default_band = default_band
        self.base_url = "http://cutout.synth/sia"
        self._factories: dict[tuple[str, str], CutoutFactory] = {}
        self._fits_cache: dict[str, bytes] = {}

    def _factory(self, cluster_name: str, band: str | None = None) -> CutoutFactory:
        band = band if band is not None else self.default_band
        key = (cluster_name, band)
        if key not in self._factories:
            if cluster_name not in self.clusters:
                raise ServiceError(f"cutout service knows no cluster {cluster_name!r}")
            self._factories[key] = CutoutFactory(
                self.clusters[cluster_name], size=self.cutout_size, band=band
            )
        return self._factories[key]

    def url_for(self, cluster_name: str, galaxy_id: str, band: str | None = None) -> str:
        band = band if band is not None else self.default_band
        query = urllib.parse.urlencode({"cluster": cluster_name, "id": galaxy_id, "band": band})
        return f"{self.base_url}/cutout?{query}"

    # -- SIA interface --------------------------------------------------------
    def _query_rows(self, request: SIARequest) -> list[list]:
        """Metadata rows for every known galaxy inside the request box."""
        rows: list[list] = []
        half = request.size / 2.0
        for name, cluster in self.clusters.items():
            factory = self._factory(name)
            members = factory.members()
            ra = np.array([m.ra for m in members])
            dec = np.array([m.dec for m in members])
            sep = angular_separation_deg(request.ra, request.dec, ra, dec)
            for idx in np.nonzero(sep <= half)[0]:
                m = members[int(idx)]
                rows.append(
                    [
                        m.galaxy_id,
                        m.ra,
                        m.dec,
                        self.cutout_size,
                        PIXEL_SCALE_ARCSEC / 3600.0,
                        "image/fits",
                        self.url_for(name, m.galaxy_id),
                        self.estimated_size(),
                    ]
                )
        return rows

    def query(self, request: SIARequest) -> VOTable:
        """Cutout references for every known galaxy inside the request box.

        One record per matching galaxy; the paper's portal issues one such
        (tight) query per catalog row, which is the protocol inefficiency
        the campaign measures.
        """
        with telemetry.trace_span("service.cutout_query") as span:
            action = "ok"
            if self.faults is not None:
                action = pre_call_fault(
                    self.faults,
                    "cutout-query",
                    meter=self.meter,
                    transport=self.transport,
                    category="sia-query",
                )
            table = VOTable(SIA_FIELDS, name="cutouts")
            for row in self._query_rows(request):
                table.append(row)
            if self.meter is not None:
                self.meter.charge("sia-query", self.transport.sia_query.time(256 * len(table)))
            if action in ("malformed", "partial"):
                table = truncate_table("cutout-query", table, action)
            span.set(records=len(table))
        telemetry.count("service_requests_total", kind="cutout-query")
        return table

    def fetch(self, url: str) -> bytes:
        """Render and download one cutout (one HTTP GET per galaxy)."""
        with telemetry.trace_span("service.cutout_fetch") as span:
            action = "ok"
            if self.faults is not None:
                action = pre_call_fault(
                    self.faults,
                    "cutout-fetch",
                    meter=self.meter,
                    transport=self.transport,
                    category="sia-download",
                )
            payload = self._fetch_impl(url)
            if action in ("malformed", "partial"):
                payload = mangle_payload("cutout-fetch", payload)
            span.set(bytes=len(payload))
        telemetry.count("service_requests_total", kind="cutout-fetch")
        return payload

    def _fetch_impl(self, url: str) -> bytes:
        params = {k: v[0] for k, v in urllib.parse.parse_qs(urllib.parse.urlparse(url).query).items()}
        cluster_name = params.get("cluster", "")
        galaxy_id = params.get("id", "")
        band = params.get("band", self.default_band)
        cache_key = f"{cluster_name}/{galaxy_id}/{band}"
        if cache_key not in self._fits_cache:
            factory = self._factory(cluster_name, band)
            try:
                hdu = factory.render_cutout(galaxy_id)
            except KeyError as exc:
                raise ServiceError(str(exc)) from exc
            self._fits_cache[cache_key] = write_fits_bytes(hdu)
        payload = self._fits_cache[cache_key]
        if self.meter is not None:
            self.meter.charge("sia-download", self.transport.sia_download.time(len(payload)))
        return payload

    # -- the batched extension of §4.2 -------------------------------------------
    def query_batch(self, requests: list[SIARequest]) -> VOTable:
        """The hypothetical batch interface: "This could be sped up
        tremendously if one could query for all images at once."

        Semantically equivalent to issuing every request separately, but
        charged as a *single* query round-trip.
        """
        if not requests:
            raise ServiceError("batch query requires at least one request")
        with telemetry.trace_span("service.cutout_query_batch", requests=len(requests)) as span:
            merged = VOTable(SIA_FIELDS, name="cutouts")
            for request in requests:
                for row in self._query_rows(request):
                    merged.append(row)
            if self.meter is not None:
                self.meter.charge(
                    "sia-batch-query", self.transport.sia_query.time(256 * len(merged))
                )
            span.set(records=len(merged))
        telemetry.count("service_requests_total", kind="cutout-query-batch")
        return merged

    def fetch_batch(self, urls: list[str]) -> list[bytes]:
        """Bulk download: one request latency for the whole set (the cached
        GridFTP-style path of §4.3.1(3))."""
        if not urls:
            raise ServiceError("batch fetch requires at least one URL")
        meter, self.meter = self.meter, None  # suppress per-item charges
        try:
            payloads = [self.fetch(url) for url in urls]
        finally:
            self.meter = meter
        if self.meter is not None:
            total = sum(len(p) for p in payloads)
            self.meter.charge("sia-batch-download", self.transport.gridftp.time(total))
        return payloads

    def estimated_size(self) -> int:
        """Nominal cutout FITS size in bytes (for SIA metadata records)."""
        # header (1 block) + data rounded to 2880: exact for 64x64 float32.
        data_bytes = self.cutout_size * self.cutout_size * 4
        padded = ((data_bytes + 2879) // 2880) * 2880
        return 2880 + padded
