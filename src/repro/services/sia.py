"""Simple Image Access services: synthetic optical and X-ray archives.

Each archive serves a cluster field as a set of survey *tiles* (SIA returns
one metadata record per overlapping image; DSS-style plate archives return
many).  ``query`` gives VOTable metadata with access URLs, ``fetch``
renders the actual FITS bytes — one HTTP round-trip per image, which is
exactly the SIA inefficiency the paper measured.
"""

from __future__ import annotations

import urllib.parse
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro import telemetry
from repro.core.errors import ServiceError
from repro.fits.hdu import ImageHDU
from repro.fits.header import Header
from repro.fits.io import write_fits_bytes
from repro.fits.wcs import TanWCS
from repro.catalog.coords import angular_separation_deg
from repro.services.faulting import mangle_payload, pre_call_fault, truncate_table
from repro.services.protocol import SIARequest
from repro.services.transport import CostMeter, TransportModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.plan import FaultInjector
from repro.sky.cluster import ClusterModel
from repro.sky.xray import beta_model
from repro.utils.rng import derive_rng
from repro.votable.model import Field, VOTable

#: Survey tiles are small 2003-era postage stamps: 64x64 float32.
TILE_SIZE = 64
TILE_SCALE_DEG = 0.004  # ~14 arcsec/pixel: coarse context imagery

SIA_FIELDS = (
    Field("title", "char", ucd="meta.title"),
    Field("ra", "double", unit="deg", ucd="pos.eq.ra"),
    Field("dec", "double", unit="deg", ucd="pos.eq.dec"),
    Field("naxis", "int", ucd="meta.number"),
    Field("scale", "double", unit="deg/pix"),
    Field("format", "char"),
    Field("url", "char", ucd="meta.ref.url"),
    Field("size_bytes", "long"),
)

def _tile_fits_bytes() -> int:
    """Serialized size of one tile FITS (header block + padded data)."""
    data = np.zeros((TILE_SIZE, TILE_SIZE), dtype=np.float32)
    return len(write_fits_bytes(ImageHDU(data)))


class SIAService(ABC):
    """Base synthetic image archive."""

    #: archive identifier used in URLs and FITS headers
    survey: str = "SYNTH"

    #: fault-stream prefix: queries draw from ``{prefix}-query``, fetches
    #: from ``{prefix}-fetch``.  X-ray archives override this so a chaos
    #: profile can take them down independently of the optical survey.
    fault_stream: str = "sia"

    def __init__(
        self,
        clusters: Sequence[ClusterModel],
        tiles_per_cluster: dict[str, int] | int = 8,
        meter: CostMeter | None = None,
        transport: TransportModel | None = None,
        faults: "FaultInjector | None" = None,
    ) -> None:
        self.clusters = {c.name: c for c in clusters}
        if isinstance(tiles_per_cluster, int):
            self.tiles_per_cluster = {name: tiles_per_cluster for name in self.clusters}
        else:
            self.tiles_per_cluster = dict(tiles_per_cluster)
        self.meter = meter
        self.transport = transport if transport is not None else TransportModel()
        self.faults = faults
        self.base_url = f"http://{self.survey.lower()}.synth/sia"
        self._tile_bytes = _tile_fits_bytes()

    # -- tile geometry -----------------------------------------------------------
    def _tile_span(self, cluster: ClusterModel) -> float:
        """Angular size of one tile, chosen so the whole grid fits inside a
        standard cluster-field query (SIZE = 2.2 x tidal radius)."""
        n = self.tiles_per_cluster.get(cluster.name, 0)
        if n <= 1:
            return TILE_SIZE * TILE_SCALE_DEG
        rings = int(np.ceil((np.sqrt(n) - 1) / 2.0))
        # Corner tiles of ring R sit at R * span * sqrt(2) from the centre;
        # keep even those inside the standard query half-size.
        return 0.95 * 1.1 * cluster.tidal_radius_deg / (max(rings, 1) * np.sqrt(2.0))

    def _tile_scale(self, cluster: ClusterModel) -> float:
        """Degrees per pixel of this cluster's tiles."""
        return self._tile_span(cluster) / TILE_SIZE

    def _tile_centers(self, cluster: ClusterModel) -> list[tuple[float, float]]:
        """Deterministic tile grid spiralling out from the cluster centre."""
        n = self.tiles_per_cluster.get(cluster.name, 0)
        tile_span = self._tile_span(cluster)
        centers: list[tuple[float, float]] = []
        ring = 0
        while len(centers) < n:
            if ring == 0:
                candidates = [(0, 0)]
            else:
                candidates = []
                for i in range(-ring, ring + 1):
                    for j in (-ring, ring):
                        candidates.append((i, j))
                for j in range(-ring + 1, ring):
                    for i in (-ring, ring):
                        candidates.append((i, j))
                candidates.sort()
            for i, j in candidates:
                if len(centers) >= n:
                    break
                pos = cluster.center.offset(i * tile_span, j * tile_span)
                centers.append((pos.ra, pos.dec))
            ring += 1
        return centers

    def query(self, request: SIARequest) -> VOTable:
        """All tiles whose centre lies within the requested box (+margin)."""
        with telemetry.trace_span("service.sia_query", survey=self.survey) as span:
            action = "ok"
            if self.faults is not None:
                stream = f"{self.fault_stream}-query"
                action = pre_call_fault(
                    self.faults,
                    stream,
                    meter=self.meter,
                    transport=self.transport,
                    category="sia-query",
                )
            table = self._query_impl(request)
            if action in ("malformed", "partial"):
                table = truncate_table(f"{self.fault_stream}-query", table, action)
            span.set(records=len(table))
        telemetry.count("service_requests_total", kind="sia-query", survey=self.survey)
        return table

    def _query_impl(self, request: SIARequest) -> VOTable:
        table = VOTable(SIA_FIELDS, name=f"{self.survey}-images")
        for cluster in self.clusters.values():
            half = request.size / 2.0 + self._tile_span(cluster)
            for k, (ra, dec) in enumerate(self._tile_centers(cluster)):
                if angular_separation_deg(request.ra, request.dec, ra, dec) <= half:
                    url = (
                        f"{self.base_url}/image?"
                        + urllib.parse.urlencode({"cluster": cluster.name, "tile": k})
                    )
                    table.append(
                        [
                            f"{self.survey} {cluster.name} tile {k}",
                            ra,
                            dec,
                            TILE_SIZE,
                            self._tile_scale(cluster),
                            "image/fits",
                            url,
                            self._tile_bytes,
                        ]
                    )
        if self.meter is not None:
            self.meter.charge("sia-query", self.transport.sia_query.time(256 * len(table)))
        return table

    def fetch(self, url: str) -> bytes:
        """Download one image by its access URL (one HTTP GET per image)."""
        with telemetry.trace_span("service.sia_fetch", survey=self.survey) as span:
            action = "ok"
            if self.faults is not None:
                stream = f"{self.fault_stream}-fetch"
                action = pre_call_fault(
                    self.faults,
                    stream,
                    meter=self.meter,
                    transport=self.transport,
                    category="sia-download",
                )
            payload = self._fetch_impl(url)
            if action in ("malformed", "partial"):
                payload = mangle_payload(f"{self.fault_stream}-fetch", payload)
            span.set(bytes=len(payload))
        telemetry.count("service_requests_total", kind="sia-fetch", survey=self.survey)
        return payload

    def _fetch_impl(self, url: str) -> bytes:
        params = {k: v[0] for k, v in urllib.parse.parse_qs(urllib.parse.urlparse(url).query).items()}
        name = params.get("cluster")
        if name not in self.clusters:
            raise ServiceError(f"{self.survey}: unknown cluster in URL {url!r}")
        tile = int(params.get("tile", "-1"))
        centers = self._tile_centers(self.clusters[name])
        if not 0 <= tile < len(centers):
            raise ServiceError(f"{self.survey}: tile {tile} out of range for {name}")
        payload = write_fits_bytes(self._render_tile(self.clusters[name], tile, centers[tile]))
        if self.meter is not None:
            self.meter.charge("sia-download", self.transport.sia_download.time(len(payload)))
        return payload

    def _tile_header(self, cluster: ClusterModel, tile: int, center: tuple[float, float]) -> Header:
        header = Header()
        header.set("OBJECT", cluster.name, "cluster field")
        header.set("SURVEY", self.survey)
        header.set("TILE", tile)
        header.set("BUNIT", "counts")
        scale = self._tile_scale(cluster)
        TanWCS(
            crval1=center[0],
            crval2=center[1],
            crpix1=(TILE_SIZE + 1) / 2.0,
            crpix2=(TILE_SIZE + 1) / 2.0,
            cdelt1=-scale,
            cdelt2=scale,
        ).to_header(header)
        return header

    @abstractmethod
    def _render_tile(self, cluster: ClusterModel, tile: int, center: tuple[float, float]) -> ImageHDU:
        """Render the pixel content of one tile."""


class OpticalImageArchive(SIAService):
    """DSS-like optical survey: sky noise plus smooth cluster light."""

    survey = "SYNTH-DSS"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.base_url = f"http://{self.survey.lower()}.synth/sia"

    def _render_tile(self, cluster: ClusterModel, tile: int, center: tuple[float, float]) -> ImageHDU:
        rng = derive_rng(cluster.seed, "tile", self.survey, cluster.name, tile)
        data = rng.normal(5.0, 1.0, (TILE_SIZE, TILE_SIZE))
        # Diffuse intracluster light falling off with distance from centre.
        dist = angular_separation_deg(cluster.center.ra, cluster.center.dec, center[0], center[1])
        data += 3.0 * np.exp(-float(dist) / max(cluster.core_radius_deg * 4, 1e-6))
        return ImageHDU(data.astype(np.float32), self._tile_header(cluster, tile, center))


class XrayImageArchive(SIAService):
    """ROSAT/Chandra-like X-ray survey: beta-model gas emission tiles."""

    survey = "SYNTH-ROSAT"
    fault_stream = "xray"

    def __init__(self, *args, survey: str = "SYNTH-ROSAT", **kwargs) -> None:
        self.survey = survey
        super().__init__(*args, **kwargs)
        self.base_url = f"http://{self.survey.lower()}.synth/sia"

    def _render_tile(self, cluster: ClusterModel, tile: int, center: tuple[float, float]) -> ImageHDU:
        rng = derive_rng(cluster.seed, "tile", self.survey, cluster.name, tile)
        yy, xx = np.indices((TILE_SIZE, TILE_SIZE), dtype=float)
        # Offset of each pixel from the cluster centre, via the tile WCS.
        header = self._tile_header(cluster, tile, center)
        wcs = TanWCS.from_header(header)
        ras, decs = wcs.pixel_to_sky(xx + 1.0, yy + 1.0)
        r_deg = angular_separation_deg(cluster.center.ra, cluster.center.dec, ras, decs)
        expected = beta_model(r_deg, 40.0, cluster.core_radius_deg * 1.5) + 0.3
        data = rng.poisson(expected).astype(np.float32)
        return ImageHDU(data, header)
