"""The data-center registry: Table 1 of the paper.

"Table 1 outlines which datasets were involved in the demonstration" —
five data centers, their collections, and which of the two standard
interfaces each implements.  The paper also calls out (§4.2, §5) that a
*general registry of image and catalog services* was a missing capability;
this module provides exactly that: capability-based discovery instead of
hard-coding services into the portal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

Interface = Literal["SIA", "Cone Search"]


@dataclass(frozen=True)
class DataCenter:
    """One registry entry: a data center's collection and its interfaces."""

    center: str
    collection: str
    interfaces: tuple[str, ...]
    service_key: str = ""  # key into the portal's service wiring

    def __post_init__(self) -> None:
        for iface in self.interfaces:
            if iface not in ("SIA", "Cone Search"):
                raise ValueError(f"unknown interface {iface!r}")


class DataCenterRegistry:
    """Discoverable collection of :class:`DataCenter` records."""

    def __init__(self, centers: list[DataCenter] | None = None) -> None:
        self._centers: list[DataCenter] = list(centers or [])

    def add(self, center: DataCenter) -> None:
        self._centers.append(center)

    def all(self) -> list[DataCenter]:
        return list(self._centers)

    def with_interface(self, interface: Interface) -> list[DataCenter]:
        """Discovery by capability — the registry service §5 asks for."""
        return [c for c in self._centers if interface in c.interfaces]

    def by_collection(self, collection: str) -> DataCenter:
        for c in self._centers:
            if c.collection == collection:
                return c
        raise KeyError(f"no registered collection {collection!r}")

    def table_rows(self) -> list[tuple[str, str, str]]:
        """Rows of Table 1: (data center, collection, interfaces used)."""
        return [(c.center, c.collection, ", ".join(c.interfaces)) for c in self._centers]

    def __len__(self) -> int:
        return len(self._centers)


def default_registry() -> DataCenterRegistry:
    """Table 1, verbatim, with service keys into the synthetic back-ends."""
    return DataCenterRegistry(
        [
            DataCenter(
                "Chandra X-ray Center",
                "Chandra Data Archive",
                ("SIA",),
                service_key="chandra",
            ),
            DataCenter(
                "NASA High-Energy Astrophysical Science Archive (HEASARC)",
                "ROSAT X-ray data",
                ("SIA",),
                service_key="rosat",
            ),
            DataCenter(
                "NASA Infrared Processing and Analysis Center (IPAC)",
                "NASA Extragalactic Database (NED)",
                ("Cone Search",),
                service_key="ned",
            ),
            DataCenter(
                "Canadian Astrophysical Data Center (CADC)",
                "Canadian Network for Cosmology (CNOC) Survey",
                ("SIA", "Cone Search"),
                service_key="cnoc",
            ),
            DataCenter(
                "Multimission Archive at Space Telescope (MAST)",
                "Digitized Sky Survey (DSS)",
                ("SIA", "Cone Search"),
                service_key="dss",
            ),
        ]
    )
