"""The NVO resource registry and service failover.

§5: "Most obvious is the need for a registry of data and service
resources.  This would allow users to discover the relevant data and tools
necessary for the study ... Obviously, providing this flexibility would
require a higher level of fault tolerance and recovery."

Two pieces, both of which the paper identifies as missing from the
prototype:

* :class:`ResourceRegistry` — service *resources* (not just data centers):
  each record declares a capability (``cone-search`` / ``sia`` / ``cutout``
  / ``table-ops`` / ``compute``), a waveband, sky coverage, and the live
  service object behind it.  Queries discover resources by capability,
  waveband and position — what the hard-coded portal could not do.
* :class:`FailoverConeSearch` / :class:`FailoverSIA` — the "higher level of
  fault tolerance": equivalent discovered services tried in order, with
  failures counted and the working replica promoted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.catalog.coords import angular_separation_deg
from repro.core.errors import ServiceError
from repro.services.protocol import ConeSearchRequest, SIARequest
from repro.votable.model import VOTable

CAPABILITIES = ("cone-search", "sia", "cutout", "table-ops", "compute")


@dataclass(frozen=True)
class SkyCoverage:
    """A cone on the sky a resource serves; ``all_sky`` covers everything."""

    ra: float = 0.0
    dec: float = 0.0
    radius_deg: float = 180.0

    @property
    def all_sky(self) -> bool:
        return self.radius_deg >= 180.0

    def contains(self, ra: float, dec: float) -> bool:
        if self.all_sky:
            return True
        return float(angular_separation_deg(self.ra, self.dec, ra, dec)) <= self.radius_deg


@dataclass(frozen=True)
class ResourceRecord:
    """One registered service resource."""

    identifier: str  # ivo://-style identifier
    title: str
    capability: str
    service: Any  # the live service object
    waveband: str = "optical"
    coverage: SkyCoverage = field(default_factory=SkyCoverage)
    publisher: str = ""

    def __post_init__(self) -> None:
        if self.capability not in CAPABILITIES:
            raise ServiceError(
                f"unknown capability {self.capability!r}; expected one of {CAPABILITIES}"
            )
        if not self.identifier.startswith("ivo://"):
            raise ServiceError(f"resource identifier must be ivo://-style: {self.identifier!r}")


class ResourceRegistry:
    """Registration + discovery of NVO service resources."""

    def __init__(self) -> None:
        self._records: dict[str, ResourceRecord] = {}

    def register(self, record: ResourceRecord) -> None:
        if record.identifier in self._records:
            raise ServiceError(f"resource {record.identifier!r} already registered")
        self._records[record.identifier] = record

    def unregister(self, identifier: str) -> None:
        if identifier not in self._records:
            raise ServiceError(f"no registered resource {identifier!r}")
        del self._records[identifier]

    def resource(self, identifier: str) -> ResourceRecord:
        if identifier not in self._records:
            raise ServiceError(f"no registered resource {identifier!r}")
        return self._records[identifier]

    def all(self) -> list[ResourceRecord]:
        return list(self._records.values())

    def discover(
        self,
        capability: str | None = None,
        waveband: str | None = None,
        ra: float | None = None,
        dec: float | None = None,
    ) -> list[ResourceRecord]:
        """Find resources by capability, waveband and/or sky position."""
        out = []
        for record in self._records.values():
            if capability is not None and record.capability != capability:
                continue
            if waveband is not None and record.waveband != waveband:
                continue
            if ra is not None and dec is not None and not record.coverage.contains(ra, dec):
                continue
            out.append(record)
        return out

    def __len__(self) -> int:
        return len(self._records)


class _FailoverBase:
    """Shared try-in-order / promote-on-success machinery."""

    def __init__(self, records: Iterable[ResourceRecord]) -> None:
        self._records = list(records)
        if not self._records:
            raise ServiceError("failover requires at least one resource")
        self.failures: dict[str, int] = {}
        self.calls = 0

    def _attempt(self, fn_name: str, *args: Any) -> Any:
        self.calls += 1
        last_error: Exception | None = None
        for i, record in enumerate(self._records):
            try:
                result = getattr(record.service, fn_name)(*args)
            except ServiceError as exc:
                self.failures[record.identifier] = self.failures.get(record.identifier, 0) + 1
                last_error = exc
                continue
            if i > 0:
                # promote the working replica so later calls hit it first
                self._records.insert(0, self._records.pop(i))
            return result
        raise ServiceError(
            f"all {len(self._records)} registered services failed; last error: {last_error}"
        )

    @property
    def active_identifier(self) -> str:
        return self._records[0].identifier


class FailoverConeSearch(_FailoverBase):
    """A cone-search facade over equivalent discovered resources."""

    def search(self, request: ConeSearchRequest) -> VOTable:
        return self._attempt("search", request)


class FailoverSIA(_FailoverBase):
    """An SIA facade over equivalent discovered resources."""

    def query(self, request: SIARequest) -> VOTable:
        return self._attempt("query", request)

    def fetch(self, url: str) -> bytes:
        return self._attempt("fetch", url)
