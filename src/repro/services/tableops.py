"""The general-purpose VOTable manipulation service.

§4.2/§5: "Joining is one of a few general-purpose VOTable manipulations
that should be implemented as a generic, external service that could be
used by a number of different NVO applications ... We also discovered the
general utility of a service that could join two VOTables on an arbitrary
column or manipulate tables in other ways."

This is that service: join / select / stack / add-column behind one
request-shaped API, with transport metering like any other NVO service, so
the portal (and anything else) can delegate table work instead of linking a
local library.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.errors import ServiceError
from repro.services.transport import CostMeter, TransportModel
from repro.votable.model import Field, VOTable
from repro.votable.ops import add_column, inner_join, left_join, select_rows, vstack
from repro.votable.parser import parse_votable
from repro.votable.writer import write_votable


@dataclass(frozen=True)
class TableOpRequest:
    """One manipulation request.

    ``operation`` is one of ``join`` / ``left-join`` / ``select`` /
    ``stack`` / ``add-column``; ``params`` carries the operation arguments
    (e.g. ``on`` for joins, ``column``/``minimum``/``maximum`` for selects).
    """

    operation: str
    params: dict[str, Any] = field(default_factory=dict)


class VOTableOperationsService:
    """Executes :class:`TableOpRequest` over serialised VOTables.

    Tables cross the service boundary as XML text — exactly as they would
    over HTTP — so the service also doubles as a round-trip stress test of
    the format layer.
    """

    OPERATIONS = ("join", "left-join", "select", "stack", "add-column")

    def __init__(self, meter: CostMeter | None = None, transport: TransportModel | None = None) -> None:
        self.meter = meter
        self.transport = transport if transport is not None else TransportModel()
        self.request_count = 0

    # -- the wire API -----------------------------------------------------------
    def execute(self, request: TableOpRequest, *documents: str) -> str:
        """Run one operation over XML documents; returns the result as XML."""
        self.request_count += 1
        tables = [parse_votable(doc) for doc in documents]
        result = self._dispatch(request, tables)
        payload = write_votable(result)
        if self.meter is not None:
            nbytes = sum(len(d) for d in documents) + len(payload)
            self.meter.charge("table-ops", self.transport.sia_query.time(nbytes))
        return payload

    # -- convenience object API (same dispatch, no serialisation) ---------------
    def apply(self, request: TableOpRequest, *tables: VOTable) -> VOTable:
        self.request_count += 1
        return self._dispatch(request, list(tables))

    def _dispatch(self, request: TableOpRequest, tables: list[VOTable]) -> VOTable:
        op = request.operation
        params = request.params
        if op not in self.OPERATIONS:
            raise ServiceError(
                f"unknown table operation {op!r}; supported: {self.OPERATIONS}"
            )
        if op in ("join", "left-join"):
            self._expect_tables(op, tables, 2)
            on = params.get("on")
            if not on:
                raise ServiceError("join requires the 'on' column parameter")
            joiner = inner_join if op == "join" else left_join
            return joiner(tables[0], tables[1], on=on, suffix=params.get("suffix", "_2"))
        if op == "select":
            self._expect_tables(op, tables, 1)
            column = params.get("column")
            if not column:
                raise ServiceError("select requires the 'column' parameter")
            lo = params.get("minimum")
            hi = params.get("maximum")

            def keep(row: dict[str, Any]) -> bool:
                value = row.get(column)
                if value is None:
                    return False
                if lo is not None and value < lo:
                    return False
                if hi is not None and value > hi:
                    return False
                return True

            return select_rows(tables[0], keep)
        if op == "stack":
            if not tables:
                raise ServiceError("stack requires at least one table")
            return vstack(tables)
        # add-column
        self._expect_tables(op, tables, 1)
        name = params.get("name")
        datatype = params.get("datatype", "double")
        values = params.get("values")
        if not name or values is None:
            raise ServiceError("add-column requires 'name' and 'values'")
        return add_column(tables[0], Field(name, datatype), values)

    @staticmethod
    def _expect_tables(op: str, tables: list[VOTable], n: int) -> None:
        if len(tables) != n:
            raise ServiceError(f"operation {op!r} takes {n} table(s), got {len(tables)}")
