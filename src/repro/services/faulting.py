"""Fault application shared by every VO service client.

Each synthetic service accepts an optional
:class:`~repro.faults.plan.FaultInjector` at construction.  When present,
the service consults it *before* serving a call (``pre_call_fault``: may
raise a typed error) and *after* rendering a payload (``mangle_payload`` /
``truncate_table``: corruption that must be detected by the caller, the
way a truncated HTTP body is).

Cost semantics (the "failed attempts cost money" satellite):

* a **timeout** charges the *full* transport timeout — waiting for
  nothing is the most expensive way a call can fail;
* a transient **error** charges one request latency — the server
  answered, just unhelpfully;
* **malformed** payloads charge the full transfer (the bytes moved, they
  were just damaged in flight);
* every retried attempt then re-charges as a fresh call, so a campaign
  under chaos reports the real virtual wall cost of its recovery.

Every injected fault also increments ``faults_injected_total`` with
``stream``/``action`` labels through the telemetry registry.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro import telemetry
from repro.core.errors import (
    PermanentServiceError,
    ServiceTimeoutError,
    TransientServiceError,
)
from repro.services.transport import CostMeter, TransportModel
from repro.votable.model import VOTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.faults.plan import FaultInjector

#: Fraction of a payload/table that survives a "malformed"/"partial" fault.
DAMAGE_KEEP_FRACTION = 0.6


def pre_call_fault(
    faults: "FaultInjector",
    stream: str,
    *,
    meter: CostMeter | None,
    transport: TransportModel,
    category: str,
) -> str:
    """Decide the fate of the next call on ``stream``.

    Raises the typed error for ``timeout``/``error`` fates (charging the
    meter first); returns the action string otherwise so the caller can
    apply payload damage after rendering (``malformed``/``partial``) or
    proceed normally (``ok``).
    """
    action = faults.service_action(stream)
    if action == "ok":
        return action
    telemetry.count("faults_injected_total", stream=stream, action=action)
    permanent = faults.service_fault_is_permanent(stream)
    if action == "timeout":
        if meter is not None:
            meter.charge(category, transport.timeout_s)
        if permanent:
            raise PermanentServiceError(f"{stream}: injected permanent timeout")
        raise ServiceTimeoutError(
            f"{stream}: injected timeout after {transport.timeout_s:.1f}s"
        )
    if action == "error":
        if meter is not None:
            meter.charge(category, transport.sia_query.request_latency_s)
        if permanent:
            raise PermanentServiceError(f"{stream}: injected permanent server error")
        raise TransientServiceError(f"{stream}: injected transient server error")
    # "malformed" / "partial" are applied to the rendered payload by the
    # caller; the render itself (and its charge) still happens.
    return action


def mangle_payload(stream: str, payload: bytes) -> bytes:
    """Truncate a binary payload the way a dropped connection would.

    The fault was already counted by :func:`pre_call_fault` when the
    injector decided this call's fate; this helper only applies it.
    """
    keep = max(1, int(len(payload) * DAMAGE_KEEP_FRACTION))
    return payload[:keep]


def truncate_table(stream: str, table: VOTable, action: str) -> VOTable:
    """Return a deterministically truncated copy of ``table``.

    Models a partial archive response: the prefix of the row set with a
    ``fault_partial`` PARAM annotation so downstream consumers (and the
    chaos report) can tell the table is incomplete.  (Counted by
    :func:`pre_call_fault` at decision time, not here.)
    """
    keep = max(1, int(len(table) * DAMAGE_KEEP_FRACTION)) if len(table) else 0
    params = dict(table.params)
    params["fault_partial"] = f"{keep}/{len(table)}"
    out = VOTable(
        table.fields, name=table.name, description=table.description, params=params
    )
    for i, row in enumerate(table):
        if i >= keep:
            break
        out.append(row)
    return out
