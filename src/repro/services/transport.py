"""Transport cost model: why SIA was the bottleneck and GridFTP was not.

§4.2: "The major bottleneck in the application's operation is the querying
of image servers ... This is due to some inherent inefficiencies in the SIA
protocol: an image query and download for each galaxy must be done
separately."  §4.3.1(3): cached data "is then available via GridFTP, which
provides much better performance than the SIA."

The model charges a fixed per-request latency plus size/bandwidth, with
2003-plausible defaults making SIA overhead-dominated for 20 KB cutouts and
GridFTP bandwidth-dominated.  Costs accrue in virtual seconds on a
:class:`CostMeter`, so portal/service benchmarks measure protocol shape,
not wall-clock noise.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.utils.units import KB, MB


@dataclass(frozen=True)
class ProtocolCost:
    """Latency + bandwidth parameters of one access protocol."""

    request_latency_s: float
    bandwidth_bps: float

    def time(self, nbytes: int = 0) -> float:
        """Virtual seconds to issue one request moving ``nbytes``."""
        if nbytes < 0:
            raise ValueError(f"negative payload size: {nbytes}")
        return self.request_latency_s + nbytes / self.bandwidth_bps


@dataclass(frozen=True)
class TransportModel:
    """Per-protocol costs for the demonstration environment.

    * ``sia_query`` — one SIA/Cone Search HTTP GET returning VOTable
      metadata (latency-dominated: a web query against a 2003 archive).
    * ``sia_download`` — one HTTP image download through the archive stack.
    * ``gridftp`` — bulk parallel-stream transfer between Grid sites.
    """

    sia_query: ProtocolCost = ProtocolCost(request_latency_s=0.8, bandwidth_bps=256 * KB)
    sia_download: ProtocolCost = ProtocolCost(request_latency_s=0.5, bandwidth_bps=512 * KB)
    gridftp: ProtocolCost = ProtocolCost(request_latency_s=0.05, bandwidth_bps=10 * MB)
    #: Transport-level timeout.  A call that times out is charged this
    #: *full* duration on the meter — waiting for nothing is the most
    #: expensive way a call can fail, and benchmarks under chaos must
    #: reflect that real wall cost.
    timeout_s: float = 10.0

    def batched_query_time(self, n_items: int, nbytes_total: int) -> float:
        """The hypothetical batch interface of §4.2 ("This could be sped up
        tremendously if one could query for all images at once"): one
        request latency, same payload volume."""
        if n_items < 1:
            raise ValueError("batch must contain at least one item")
        return self.sia_query.time(nbytes_total)


class CostMeter:
    """Accumulates virtual transport seconds, by category."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._totals: dict[str, float] = {}
        self._counts: dict[str, int] = {}

    def charge(self, category: str, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"negative charge: {seconds}")
        with self._lock:
            self._totals[category] = self._totals.get(category, 0.0) + seconds
            self._counts[category] = self._counts.get(category, 0) + 1

    def total(self, category: str | None = None) -> float:
        with self._lock:
            if category is None:
                return sum(self._totals.values())
            return self._totals.get(category, 0.0)

    def count(self, category: str) -> int:
        with self._lock:
            return self._counts.get(category, 0)

    def breakdown(self) -> dict[str, float]:
        with self._lock:
            return dict(self._totals)

    def reset(self) -> None:
        with self._lock:
            self._totals.clear()
            self._counts.clear()
