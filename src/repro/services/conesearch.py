"""Cone Search services over the synthetic sky.

Two catalog services with *different schemas*, standing in for the paper's
two catalog data centers (NED at IPAC and the CNOC survey at CADC, Table
1): a photometry catalog and a redshift catalog.  The portal must query
both and join them by position — the integration step §4.2 describes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro import telemetry
from repro.catalog.coords import cone_contains
from repro.services.faulting import pre_call_fault, truncate_table
from repro.services.protocol import ConeSearchRequest
from repro.services.transport import CostMeter, TransportModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.plan import FaultInjector
from repro.sky.cluster import ClusterModel, GalaxyRecord
from repro.utils.rng import derive_rng
from repro.votable.model import Field, VOTable


class ConeSearchService(ABC):
    """Base cone-search service: position-indexed record retrieval."""

    def __init__(
        self,
        clusters: Sequence[ClusterModel],
        meter: CostMeter | None = None,
        transport: TransportModel | None = None,
        faults: "FaultInjector | None" = None,
    ) -> None:
        self.clusters = list(clusters)
        self.meter = meter
        self.transport = transport if transport is not None else TransportModel()
        self.faults = faults
        self._members: list[tuple[ClusterModel, GalaxyRecord]] | None = None

    def _all_members(self) -> list[tuple[ClusterModel, GalaxyRecord]]:
        if self._members is None:
            self._members = [
                (cluster, member)
                for cluster in self.clusters
                for member in cluster.generate_members()
            ]
        return self._members

    def search(self, request: ConeSearchRequest) -> VOTable:
        """Run the cone selection and charge the query to the meter."""
        with telemetry.trace_span("service.cone_search", service=type(self).__name__) as span:
            action = "ok"
            if self.faults is not None:
                action = pre_call_fault(
                    self.faults,
                    "cone-query",
                    meter=self.meter,
                    transport=self.transport,
                    category="cone-query",
                )
            table = self._search_impl(request)
            if action in ("malformed", "partial"):
                table = truncate_table("cone-query", table, action)
            span.set(records=len(table))
        telemetry.count(
            "service_requests_total", kind="cone-search", service=type(self).__name__
        )
        return table

    def _search_impl(self, request: ConeSearchRequest) -> VOTable:
        members = self._all_members()
        ra = np.array([m.ra for _, m in members])
        dec = np.array([m.dec for _, m in members])
        mask = cone_contains(request.ra, request.dec, request.sr, ra, dec)
        selected = [members[i] for i in np.nonzero(mask)[0]]
        table = self._build_table(selected)
        if self.meter is not None:
            payload = 256 * len(table)  # VOTable row weight estimate
            self.meter.charge("cone-query", self.transport.sia_query.time(payload))
        return table

    @abstractmethod
    def _build_table(self, members: list[tuple[ClusterModel, GalaxyRecord]]) -> VOTable:
        """Render selected members with this catalog's schema."""


class SyntheticPhotometryCatalog(ConeSearchService):
    """NED-like photometry records: positions, magnitudes, colors."""

    FIELDS = (
        Field("id", "char", ucd="meta.id"),
        Field("ra", "double", unit="deg", ucd="pos.eq.ra"),
        Field("dec", "double", unit="deg", ucd="pos.eq.dec"),
        Field("mag_r", "double", unit="mag", ucd="phot.mag"),
        Field("color_gr", "double", unit="mag", ucd="phot.color"),
    )

    def _build_table(self, members: list[tuple[ClusterModel, GalaxyRecord]]) -> VOTable:
        table = VOTable(self.FIELDS, name="photometry")
        for cluster, m in members:
            rng = derive_rng(cluster.seed, "phot", m.galaxy_id)
            # Early types sit on the red sequence; late types are bluer.
            red = m.morph.value in ("E", "S0")
            color = rng.normal(0.75 if red else 0.35, 0.08)
            table.append([m.galaxy_id, m.ra, m.dec, m.magnitude, float(color)])
        return table


class SyntheticRedshiftCatalog(ConeSearchService):
    """CNOC-like spectroscopy records: positions, redshifts, velocities."""

    FIELDS = (
        Field("id", "char", ucd="meta.id"),
        Field("ra", "double", unit="deg", ucd="pos.eq.ra"),
        Field("dec", "double", unit="deg", ucd="pos.eq.dec"),
        Field("redshift", "double", ucd="src.redshift"),
        Field("velocity", "double", unit="km/s", ucd="phys.veloc"),
    )

    def _build_table(self, members: list[tuple[ClusterModel, GalaxyRecord]]) -> VOTable:
        table = VOTable(self.FIELDS, name="redshifts")
        c_km_s = 299_792.458
        for cluster, m in members:
            velocity = (m.redshift - cluster.redshift) * c_km_s
            table.append([m.galaxy_id, m.ra, m.dec, m.redshift, float(velocity)])
        return table
