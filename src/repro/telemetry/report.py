"""Run reports from trace JSONL: timeline, critical path, slowest nodes.

Consumes the span records exported by
:meth:`repro.telemetry.tracing.Tracer.export_jsonl` and renders the
operator's view of a run:

* **span hierarchy** — the portal → services → planner → condor →
  morphology tree, with sibling spans of the same name aggregated
  (``galmorph.galaxy ×27``) so campaign-scale traces stay readable;
* **workflow node timeline** — Gantt-style bars over the per-DAG-node
  ``condor.node`` spans (wall or virtual clock, whichever the executor
  recorded);
* **critical path** — the longest dependency chain through the executed
  DAG, from the ``deps`` attribute each node span carries;
* **top-N slowest nodes**.

Everything here is pure: records in, strings/dicts out.  The CLI entry is
``python -m repro telemetry report``.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracing import SpanRecord

__all__ = [
    "node_spans",
    "critical_path",
    "slowest_spans",
    "summarize",
    "render_report",
    "render_resilience_summary",
]

#: Metric families the resilience summary renders, in display order.
RESILIENCE_METRICS = (
    "faults_injected_total",
    "resilience_retries_total",
    "resilience_site_failures_total",
    "resilience_breaker_transitions_total",
    "resilience_breaker_open",
    "resilience_sites_blacklisted_total",
    "resilience_blacklist_fallbacks_total",
    "resilience_replica_failovers_total",
    "rls_stale_invalidations_total",
    "scheduler_requeues_total",
    "portal_archive_errors_total",
    "portal_dropped_galaxies_total",
    "service_request_errors_total",
    "galmorph_shm_fallback_total",
    "galmorph_pool_fallback_total",
    # adaptive-execution layer (speculation / placement / deadline SLO)
    "speculation_launched_total",
    "speculation_won_total",
    "speculation_wasted_total",
    "speculation_wasted_seconds_total",
    "adaptive_predictive_choices_total",
    "adaptive_placement_switches_total",
    "adaptive_site_slots",
    "scheduler_deadline_sheds_total",
)

#: Span name the Condor executors use for per-DAG-node spans.
NODE_SPAN = "condor.node"


def _by_id(spans: Sequence[SpanRecord]) -> dict[str, SpanRecord]:
    return {rec["span"]: rec for rec in spans}


def _children(spans: Sequence[SpanRecord]) -> dict[str | None, list[SpanRecord]]:
    index = _by_id(spans)
    kids: dict[str | None, list[SpanRecord]] = {}
    for rec in spans:
        parent = rec.get("parent")
        if parent is not None and parent not in index:
            parent = None  # orphan (e.g. trimmed trace): treat as a root
        kids.setdefault(parent, []).append(rec)
    for group in kids.values():
        group.sort(key=lambda r: (r.get("start", 0.0), r["span"]))
    return kids


def roots(spans: Sequence[SpanRecord]) -> list[SpanRecord]:
    """Spans with no (resolvable) parent, in start order."""
    return _children(spans).get(None, [])


def node_spans(spans: Sequence[SpanRecord]) -> list[SpanRecord]:
    """The per-DAG-node spans, final attempt per node id."""
    latest: dict[str, SpanRecord] = {}
    for rec in spans:
        if rec["name"] != NODE_SPAN:
            continue
        node = str(rec.get("attrs", {}).get("node", rec["span"]))
        have = latest.get(node)
        if have is None or rec.get("end", 0.0) >= have.get("end", 0.0):
            latest[node] = rec
    return sorted(latest.values(), key=lambda r: (r.get("start", 0.0), r["span"]))


def critical_path(spans: Sequence[SpanRecord]) -> list[SpanRecord]:
    """Longest cumulative-duration dependency chain through the node spans.

    Uses each node span's ``deps`` attribute (its DAG parents).  Returns
    the chain in execution order; empty when the trace has no node spans.
    """
    nodes = {str(r["attrs"].get("node", r["span"])): r for r in node_spans(spans)}
    if not nodes:
        return []
    best: dict[str, float] = {}
    prev: dict[str, str | None] = {}

    order = sorted(nodes, key=lambda n: (nodes[n].get("start", 0.0), n))
    for name in order:
        rec = nodes[name]
        deps = [str(d) for d in rec["attrs"].get("deps", []) if str(d) in nodes]
        incoming = max(
            ((best.get(d, 0.0), d) for d in deps), default=(0.0, None)
        )
        best[name] = incoming[0] + float(rec.get("dur", 0.0))
        prev[name] = incoming[1]

    tail = max(best, key=lambda n: (best[n], n))
    chain: list[SpanRecord] = []
    cursor: str | None = tail
    while cursor is not None:
        chain.append(nodes[cursor])
        cursor = prev.get(cursor)
    chain.reverse()
    return chain


def slowest_spans(
    spans: Sequence[SpanRecord], n: int = 5, names: Iterable[str] | None = None
) -> list[SpanRecord]:
    """Top-``n`` spans by duration (node spans by default, if any exist)."""
    pool: Sequence[SpanRecord]
    if names is not None:
        wanted = set(names)
        pool = [r for r in spans if r["name"] in wanted]
    else:
        pool = node_spans(spans) or list(spans)
    return sorted(pool, key=lambda r: -float(r.get("dur", 0.0)))[:n]


def summarize(spans: Sequence[SpanRecord]) -> dict[str, Any]:
    """Structured rollup of a trace (what the CLI/status pages consume)."""
    traces = sorted({r.get("trace", "?") for r in spans})
    nodes = node_spans(spans)
    chain = critical_path(spans)
    errors = [r for r in spans if r.get("status") != "ok"]
    by_kind: dict[str, int] = {}
    for rec in nodes:
        kind = str(rec["attrs"].get("kind", "?"))
        by_kind[kind] = by_kind.get(kind, 0) + 1
    makespan = 0.0
    if nodes:
        t0 = min(float(r.get("start", 0.0)) for r in nodes)
        makespan = max(float(r.get("end", 0.0)) for r in nodes) - t0
    return {
        "spans": len(spans),
        "traces": len(traces),
        "roots": [
            {"name": r["name"], "dur": float(r.get("dur", 0.0))} for r in roots(spans)
        ],
        "nodes": len(nodes),
        "nodes_by_kind": by_kind,
        "node_makespan": makespan,
        "critical_path_len": len(chain),
        "critical_path_seconds": sum(float(r.get("dur", 0.0)) for r in chain),
        "errors": len(errors),
    }


# -- rendering -----------------------------------------------------------------
def _fmt_dur(seconds: float) -> str:
    if seconds >= 100:
        return f"{seconds:8.1f}s"
    if seconds >= 0.1:
        return f"{seconds:8.3f}s"
    return f"{seconds * 1e3:7.2f}ms"


def _tree_lines(
    spans: Sequence[SpanRecord], max_depth: int = 12
) -> list[str]:
    kids = _children(spans)
    lines: list[str] = []

    def walk(rec: SpanRecord, depth: int) -> None:
        if depth > max_depth:
            return
        indent = "  " * depth
        mark = "" if rec.get("status") == "ok" else "  !ERROR"
        lines.append(f"{indent}{rec['name']:<{max(40 - 2 * depth, 8)}s}{_fmt_dur(float(rec.get('dur', 0.0)))}{mark}")
        groups: dict[str, list[SpanRecord]] = {}
        for child in kids.get(rec["span"], []):
            groups.setdefault(child["name"], []).append(child)
        for name, group in groups.items():
            if len(group) == 1:
                walk(group[0], depth + 1)
            else:
                total = sum(float(c.get("dur", 0.0)) for c in group)
                slow = max(group, key=lambda c: float(c.get("dur", 0.0)))
                bad = sum(1 for c in group if c.get("status") != "ok")
                suffix = f"  !{bad} error(s)" if bad else ""
                lines.append(
                    f"{'  ' * (depth + 1)}{name} ×{len(group)}"
                    f"{'':<{max(40 - 2 * (depth + 1) - len(name) - len(str(len(group))) - 2, 1)}s}"
                    f"{_fmt_dur(total)}  (max {_fmt_dur(float(slow.get('dur', 0.0))).strip()}){suffix}"
                )
                walk(slow, depth + 2)

    for root in roots(spans):
        walk(root, 0)
    return lines


def _timeline_lines(
    nodes: Sequence[SpanRecord], width: int = 40, limit: int = 40
) -> list[str]:
    if not nodes:
        return ["  (no condor.node spans in this trace)"]
    t0 = min(float(r.get("start", 0.0)) for r in nodes)
    t1 = max(float(r.get("end", 0.0)) for r in nodes)
    span = max(t1 - t0, 1e-12)
    clock = str(nodes[0].get("clock", "wall"))
    lines = [f"  clock={clock}  t0={t0:.3f}  makespan={span:.3f}s"]
    shown = list(nodes)[:limit]
    label_w = max((len(str(r["attrs"].get("node", r["span"]))) for r in shown), default=8)
    label_w = min(label_w, 34)
    for rec in shown:
        node = str(rec["attrs"].get("node", rec["span"]))[:label_w]
        start = float(rec.get("start", 0.0)) - t0
        end = float(rec.get("end", 0.0)) - t0
        a = int(round(start / span * width))
        b = max(int(round(end / span * width)), a + 1)
        bar = " " * a + "#" * (b - a) + " " * (width - b)
        mark = " " if rec.get("status") == "ok" else "!"
        lines.append(
            f"  {node:<{label_w}s} |{bar}|{mark} {start:9.3f} -> {end:9.3f}  "
            f"({_fmt_dur(float(rec.get('dur', 0.0))).strip()})"
        )
    if len(nodes) > limit:
        lines.append(f"  ... {len(nodes) - limit} more node(s) not shown")
    return lines


def render_report(spans: Sequence[SpanRecord], top: int = 5, width: int = 40) -> str:
    """The full human-readable run report."""
    summary = summarize(spans)
    nodes = node_spans(spans)
    chain = critical_path(spans)
    out: list[str] = []
    out.append("== trace summary ==")
    out.append(
        f"  spans={summary['spans']}  traces={summary['traces']}  "
        f"dag-nodes={summary['nodes']} {summary['nodes_by_kind']}  "
        f"errors={summary['errors']}"
    )
    for root in summary["roots"]:
        out.append(f"  root {root['name']}  {_fmt_dur(root['dur']).strip()}")

    out.append("")
    out.append("== span hierarchy ==")
    out.extend(_tree_lines(spans))

    out.append("")
    out.append("== workflow node timeline ==")
    out.extend(_timeline_lines(nodes, width=width))

    out.append("")
    out.append("== critical path ==")
    if chain:
        total = sum(float(r.get("dur", 0.0)) for r in chain)
        makespan = summary["node_makespan"] or total
        out.append(
            f"  {len(chain)} node(s), {total:.3f}s "
            f"({100.0 * total / makespan:.0f}% of node makespan)"
        )
        for rec in chain:
            attrs = rec["attrs"]
            out.append(
                f"    {str(attrs.get('node', rec['span'])):<34s} "
                f"{str(attrs.get('kind', '?')):<12s} "
                f"{str(attrs.get('site', '?')):<12s} {_fmt_dur(float(rec.get('dur', 0.0)))}"
            )
    else:
        out.append("  (no condor.node spans; nothing to chain)")

    out.append("")
    out.append(f"== top {top} slowest nodes ==")
    for rec in slowest_spans(spans, n=top):
        attrs = rec.get("attrs", {})
        out.append(
            f"    {str(attrs.get('node', rec['name'])):<34s} "
            f"{str(attrs.get('kind', rec['name'])):<12s} "
            f"{str(attrs.get('site', '-')):<12s} {_fmt_dur(float(rec.get('dur', 0.0)))}"
        )
    return "\n".join(out) + "\n"


def render_resilience_summary(registry: MetricsRegistry) -> str:
    """The chaos/resilience view of a run's metrics registry.

    Renders every :data:`RESILIENCE_METRICS` family that collected at
    least one sample — injected faults, retry ladders, breaker
    transitions, replica failovers, stale invalidations, scheduler
    requeues, portal degradation.  Returns ``""`` when none did (a
    fault-free run), so callers can append it conditionally.
    """
    lines: list[str] = []
    for name in RESILIENCE_METRICS:
        metric = registry.get(name)
        if metric is None:
            continue
        samples = metric.samples()  # type: ignore[union-attr]
        if not samples:
            continue
        total = sum(value for _, value in samples)
        lines.append(f"  {name:<44s} {total:g}")
        labelled = [(key, value) for key, value in samples if key]
        for key, value in labelled:
            label = ",".join(f"{k}={v}" for k, v in key)
            lines.append(f"      {label:<40s} {value:g}")
    if not lines:
        return ""
    return "== resilience ==\n" + "\n".join(lines) + "\n"
