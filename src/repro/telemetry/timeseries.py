"""Windowed time-series: sliding-window rates and decaying latency quantiles.

The PR-2 metrics registry is *cumulative*: counters only ever grow, and a
dashboard scraping them has to difference successive scrapes itself.  The
live observability plane needs the opposite view — "what happened in the
last second / ten seconds / minute" — without unbounded memory and without
a lock on the request hot path doing anything expensive.  Two primitives
provide it:

* :class:`RingCounter` — a ring of time buckets over a fixed span; adding
  is O(1) (index arithmetic + one float add), reading sums the live
  buckets.  :class:`WindowedCounter` stacks three rings at the canonical
  1 s / 10 s / 60 s windows.
* :class:`LatencyWindow` — a ring of per-second bounded reservoirs over
  the trailing minute; old samples *decay* by falling out of the ring, and
  each second's reservoir is capped so a traffic burst cannot balloon
  memory.  Quantiles are nearest-rank over the merged trailing window.

Everything takes an explicit ``now`` (falling back to the instance clock)
so tests — and the discrete-event simulator's scaled sim time — can drive
the windows deterministically.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, Sequence

__all__ = [
    "RingCounter",
    "WindowedCounter",
    "LatencyWindow",
    "LabelledWindows",
    "nearest_rank",
]

#: The canonical windows of the observability plane, seconds.
DEFAULT_WINDOWS: tuple[float, ...] = (1.0, 10.0, 60.0)

#: Buckets per ring: resolution is span / DEFAULT_BUCKETS.
DEFAULT_BUCKETS = 20

#: Per-second reservoir cap in a :class:`LatencyWindow`.
RESERVOIR_CAP = 64


def nearest_rank(sorted_samples: Sequence[float], q: float) -> float:
    """Nearest-rank quantile (``q`` in (0, 100]) of pre-sorted samples."""
    if not sorted_samples:
        return float("nan")
    if not 0.0 < q <= 100.0:
        raise ValueError(f"quantile must be in (0, 100], got {q}")
    rank = max(1, -(-len(sorted_samples) * q // 100))  # ceil without math
    return sorted_samples[int(rank) - 1]


class RingCounter:
    """A sliding sum over ``span_s`` seconds in ``buckets`` ring slots.

    Each slot covers ``span_s / buckets`` seconds and remembers which
    absolute bucket index it last held, so stale slots are lazily zeroed
    on access — no background sweeper thread.  One short lock guards the
    two-word update; contention is bounded by the slot arithmetic being
    branch-free and allocation-free.
    """

    __slots__ = ("span_s", "resolution_s", "_n", "_sums", "_epochs", "_lock", "_clock")

    def __init__(
        self,
        span_s: float,
        buckets: int = DEFAULT_BUCKETS,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if span_s <= 0:
            raise ValueError(f"window span must be positive, got {span_s}")
        if buckets < 1:
            raise ValueError(f"ring needs at least one bucket, got {buckets}")
        self.span_s = float(span_s)
        self.resolution_s = self.span_s / buckets
        self._n = buckets
        self._sums = [0.0] * buckets
        self._epochs = [-1] * buckets
        self._lock = threading.Lock()
        self._clock = clock

    def _index(self, now: float) -> int:
        return int(now / self.resolution_s)

    def add(self, value: float = 1.0, now: float | None = None) -> None:
        now = self._clock() if now is None else now
        idx = self._index(now)
        slot = idx % self._n
        with self._lock:
            if self._epochs[slot] != idx:
                self._epochs[slot] = idx
                self._sums[slot] = 0.0
            self._sums[slot] += value

    def total(self, now: float | None = None) -> float:
        """Sum over the trailing window ending at ``now``."""
        now = self._clock() if now is None else now
        idx = self._index(now)
        oldest = idx - self._n + 1
        with self._lock:
            return sum(
                s
                for s, e in zip(self._sums, self._epochs)
                if oldest <= e <= idx
            )

    def rate(self, now: float | None = None) -> float:
        """Per-second rate over the trailing window."""
        return self.total(now) / self.span_s


class WindowedCounter:
    """One counter observed through the canonical 1 s / 10 s / 60 s windows."""

    __slots__ = ("_rings", "_lifetime", "_lock")

    def __init__(
        self,
        windows: Sequence[float] = DEFAULT_WINDOWS,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._rings = {
            _window_label(span): RingCounter(span, clock=clock) for span in windows
        }
        self._lifetime = 0.0
        self._lock = threading.Lock()

    def add(self, value: float = 1.0, now: float | None = None) -> None:
        with self._lock:
            self._lifetime += value
        for ring in self._rings.values():
            ring.add(value, now)

    @property
    def lifetime(self) -> float:
        with self._lock:
            return self._lifetime

    def rates(self, now: float | None = None) -> dict[str, float]:
        """``{"1s": r, "10s": r, "60s": r}`` per-second rates."""
        return {label: ring.rate(now) for label, ring in self._rings.items()}

    def totals(self, now: float | None = None) -> dict[str, float]:
        return {label: ring.total(now) for label, ring in self._rings.items()}

    def snapshot(self, now: float | None = None) -> dict[str, float]:
        out = {f"rate_{label}": ring.rate(now) for label, ring in self._rings.items()}
        out["total"] = self.lifetime
        return out


def _window_label(span_s: float) -> str:
    if float(span_s).is_integer():
        return f"{int(span_s)}s"
    return f"{span_s:g}s"


class LatencyWindow:
    """Decaying quantile sketch: per-second capped reservoirs over a minute.

    ``observe`` appends into the current second's reservoir; beyond
    :data:`RESERVOIR_CAP` samples a second, random replacement keeps the
    reservoir an unbiased sample of that second.  ``quantile`` merges the
    trailing ``window_s`` seconds and takes the nearest rank — samples
    older than the ring's span have fully decayed (fallen out).
    """

    __slots__ = ("span_s", "_cap", "_slots", "_counts", "_epochs", "_rng", "_lock", "_clock")

    def __init__(
        self,
        span_s: float = 60.0,
        cap: int = RESERVOIR_CAP,
        clock: Callable[[], float] = time.monotonic,
        seed: int = 0x5EED,
    ) -> None:
        if span_s < 1.0:
            raise ValueError(f"latency window must span at least 1s, got {span_s}")
        self.span_s = float(span_s)
        self._cap = cap
        n = int(self.span_s)  # one-second slots
        self._slots: list[list[float]] = [[] for _ in range(n)]
        self._counts = [0] * n
        self._epochs = [-1] * n
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._clock = clock

    def observe(self, value: float, now: float | None = None) -> None:
        now = self._clock() if now is None else now
        idx = int(now)
        slot = idx % len(self._slots)
        with self._lock:
            if self._epochs[slot] != idx:
                self._epochs[slot] = idx
                self._slots[slot] = []
                self._counts[slot] = 0
            bucket = self._slots[slot]
            self._counts[slot] += 1
            if len(bucket) < self._cap:
                bucket.append(value)
            else:
                # Reservoir sampling: keep each of the second's n samples
                # with probability cap/n.
                pick = self._rng.randrange(self._counts[slot])
                if pick < self._cap:
                    bucket[pick] = value

    def samples(self, window_s: float | None = None, now: float | None = None) -> list[float]:
        """Sorted trailing-window samples (the merge the quantiles rank)."""
        now = self._clock() if now is None else now
        window = self.span_s if window_s is None else min(window_s, self.span_s)
        idx = int(now)
        oldest = idx - int(window) + 1
        with self._lock:
            merged = [
                v
                for slot, epoch in enumerate(self._epochs)
                if oldest <= epoch <= idx
                for v in self._slots[slot]
            ]
        merged.sort()
        return merged

    def count(self, window_s: float | None = None, now: float | None = None) -> int:
        """Observations (not retained samples) in the trailing window."""
        now = self._clock() if now is None else now
        window = self.span_s if window_s is None else min(window_s, self.span_s)
        idx = int(now)
        oldest = idx - int(window) + 1
        with self._lock:
            return sum(
                c
                for c, epoch in zip(self._counts, self._epochs)
                if oldest <= epoch <= idx
            )

    def quantile(
        self, q: float, window_s: float | None = None, now: float | None = None
    ) -> float:
        return nearest_rank(self.samples(window_s, now), q)

    def quantiles(
        self,
        qs: Sequence[float] = (50.0, 95.0, 99.0),
        window_s: float | None = None,
        now: float | None = None,
    ) -> dict[str, float]:
        merged = self.samples(window_s, now)
        return {f"p{q:g}": nearest_rank(merged, q) for q in qs}


class LabelledWindows:
    """A family of :class:`WindowedCounter` keyed by one label value.

    Cardinality is bounded: beyond ``max_series`` distinct labels new
    values collapse into ``"__other__"`` so a tenant-id or path explosion
    cannot grow memory without bound.
    """

    OVERFLOW = "__other__"

    def __init__(
        self,
        max_series: int = 32,
        windows: Sequence[float] = DEFAULT_WINDOWS,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.max_series = max_series
        self._windows = tuple(windows)
        self._clock = clock
        self._series: dict[str, WindowedCounter] = {}
        self._lock = threading.Lock()

    def _get(self, label: str) -> WindowedCounter:
        with self._lock:
            counter = self._series.get(label)
            if counter is None:
                if len(self._series) >= self.max_series:
                    label = self.OVERFLOW
                    counter = self._series.get(label)
                if counter is None:
                    counter = WindowedCounter(self._windows, clock=self._clock)
                    self._series[label] = counter
            return counter

    def add(self, label: str, value: float = 1.0, now: float | None = None) -> None:
        self._get(str(label)).add(value, now)

    def labels(self) -> list[str]:
        with self._lock:
            return sorted(self._series)

    def rates(self, now: float | None = None) -> dict[str, dict[str, float]]:
        with self._lock:
            series = dict(self._series)
        return {label: counter.rates(now) for label, counter in sorted(series.items())}

    def totals(self) -> dict[str, float]:
        with self._lock:
            return {label: c.lifetime for label, c in sorted(self._series.items())}
